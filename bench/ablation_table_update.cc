// AB-TABLE — how should the controller edit the hash table?
//
// The paper reassigns slots in place ("our instrumentation of the LB's hash
// table shows that the updates incorporate the latency inflation in
// milliseconds"). The textbook alternative is to adjust per-backend weights
// and rebuild the weighted Maglev table. This bench compares both on the
// Fig. 3 rig:
//  * recovery quality (p95 after injection),
//  * reaction (first update after injection),
//  * churn (total slots whose owner changed — each changed slot risks
//    remapping a future connection-less flow; existing connections are
//    always protected by conntrack).
#include <cstdio>
#include <iostream>

#include "scenario/cluster_rig.h"
#include "util/csv.h"
#include "util/flags.h"

using namespace inband;

int main(int argc, char** argv) {
  std::int64_t duration_s = 6;

  FlagSet flags{"ablation: slot-shift vs weight-rebuild table updates"};
  flags.add("duration_s", &duration_s, "simulated seconds");
  if (!flags.parse(argc, argv)) return 1;

  CsvWriter csv{std::cout};
  csv.header("mode", "p95_before_us", "p95_after_us", "first_update_ms",
             "updates", "slots_disturbed", "requests");

  for (TableUpdateMode mode :
       {TableUpdateMode::kShiftSlots, TableUpdateMode::kWeightRebuild}) {
    ClusterRigConfig cfg;
    cfg.mode = LbMode::kInband;
    cfg.duration = sec(duration_s);
    cfg.inject_time = cfg.duration / 2;
    cfg.inject_extra = ms(1);
    cfg.client.requests_per_conn = 50;
    cfg.server.workers = 8;
    cfg.inband.ensemble.epoch = ms(16);
    cfg.inband.controller.cooldown = ms(1);
    cfg.inband.table_update = mode;
    ClusterRig rig{cfg};
    rig.run();

    auto* policy = rig.inband_policy();
    SimTime first_update = kNoTime;
    for (const auto& ev : policy->shift_history()) {
      if (ev.t >= cfg.inject_time) {
        first_update = ev.t;
        break;
      }
    }
    const double before = percentile_in_window(
        rig.get_latency_samples(), cfg.inject_time / 2, cfg.inject_time,
        0.95);
    const double after = percentile_in_window(
        rig.get_latency_samples(), (cfg.inject_time + cfg.duration) / 2,
        cfg.duration, 0.95);
    csv.row(mode == TableUpdateMode::kShiftSlots ? "shift_slots"
                                                 : "weight_rebuild",
            before / 1e3, after / 1e3,
            first_update == kNoTime
                ? -1.0
                : to_ms(first_update - cfg.inject_time),
            policy->shift_history().size(), policy->slots_disturbed(),
            rig.records().size());
  }

  std::fprintf(stderr,
               "\nexpectation: both recover the tail; slot-shift should "
               "disturb fewer table entries per unit of traffic moved, while "
               "weight-rebuild pays a full O(M) build per update.\n");
  return 0;
}
