// Sharded parallel rig throughput sweep (BENCH_parallel.json).
//
// Runs the same ShardedRig topology at worker counts {1, 2, 4, 8} and
// reports aggregate packets/s for each, the parallel speedups relative to
// the 1-worker oracle, and — the hard gate — whether the combined digest is
// bit-identical across every worker count. Perf numbers never gate (runner
// hardware varies; `hw_threads` is recorded so a 1-core container's ~1×
// "speedup" reads as what it is); digest divergence or a malformed report
// exits non-zero.
#include <cstdint>
#include <cstdio>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "scenario/sharded_rig.h"
#include "util/bench_cli.h"
#include "util/json.h"
#include "util/time.h"

namespace inband {
namespace {

// detlint:allow(wall-clock): this harness *measures* wall time; nothing simulated depends on it
using Clock = std::chrono::steady_clock;

double wall_seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct SweepPoint {
  int workers = 0;
  double wall_ms = 0;
  double packets_per_sec = 0;
  std::uint64_t packets = 0;
  std::uint64_t cross_packets = 0;
  std::uint64_t records = 0;
  std::uint64_t digest = 0;
};

ShardedRigConfig sweep_config(int shards, SimTime duration, int servers,
                              int clients, int remote_clients,
                              SimTime cross_latency, std::int64_t seed) {
  ShardedRigConfig cfg;
  cfg.num_shards = shards;
  cfg.shard.mode = LbMode::kInband;
  cfg.shard.num_servers = servers;
  cfg.shard.num_client_hosts = clients;
  cfg.shard.duration = duration;
  cfg.shard.inject_time = duration / 2;
  cfg.shard.seed = static_cast<std::uint64_t>(seed);
  cfg.shard.client.connections = 4;
  cfg.shard.client.pipeline = 4;
  cfg.shard.server.workers = 8;
  cfg.shard.share_sample_interval = ms(10);
  cfg.shard.audit_interval = 0;
  cfg.cross_latency = cross_latency;
  cfg.remote_clients_per_shard = remote_clients;
  cfg.remote_client.connections = 2;
  cfg.remote_client.pipeline = 2;
  cfg.remote_client.requests_per_conn = 50;
  return cfg;
}

SweepPoint run_point(ShardedRigConfig cfg, int workers) {
  cfg.workers = workers;
  SweepPoint p;
  p.workers = workers;
  ShardedRig rig{cfg};
  const auto start = Clock::now();
  rig.run();
  const double secs = wall_seconds(start, Clock::now());
  p.wall_ms = secs * 1e3;
  p.packets = rig.total_packets_sent();
  p.cross_packets = rig.cross_packets();
  p.records = rig.total_records();
  p.packets_per_sec = static_cast<double>(p.packets) / secs;
  p.digest = rig.combined_digest();
  return p;
}

const char* const kRequiredMetricKeys[] = {
    "shards",          "hw_threads",
    "rig_packets",     "cross_packets",
    "w1_packets_per_sec", "w2_packets_per_sec",
    "w4_packets_per_sec", "w8_packets_per_sec",
    "speedup_w2",      "speedup_w4",
    "speedup_w8",      "combined_digest",
    "digest_match",
};

bool validate_report(const std::string& path, std::string* error) {
  auto root = json_parse_file(path, error);
  if (root == nullptr) return false;
  const JsonValue* schema = root->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->str_v != BenchCli::kSchema) {
    *error = "bad or missing schema tag";
    return false;
  }
  const JsonValue* metrics = root->find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    *error = "missing metrics object";
    return false;
  }
  for (const char* key : kRequiredMetricKeys) {
    if (metrics->find(key) == nullptr) {
      *error = std::string{"missing metrics key: "} + key;
      return false;
    }
  }
  const JsonValue* match = metrics->find("digest_match");
  if (!match->is_bool()) {
    *error = "digest_match is not a bool";
    return false;
  }
  return true;
}

int bench_main(int argc, char** argv) {
  BenchCli cli{"parallel_rig",
               "sharded parallel rig worker sweep (BENCH_parallel.json)"};
  cli.set_json_default("BENCH_parallel.json");
  std::int64_t shards = 8;
  std::int64_t rig_ms = 1000;
  std::int64_t servers = 2;
  std::int64_t clients = 2;
  std::int64_t remote_clients = 1;
  std::int64_t cross_us = 200;
  cli.flags().add("shards", &shards, "number of shards (one LB tier each)");
  cli.flags().add("rig_ms", &rig_ms, "simulated ms per sweep point");
  cli.flags().add("servers", &servers, "servers per shard");
  cli.flags().add("clients", &clients, "local client hosts per shard");
  cli.flags().add("remote_clients", &remote_clients,
                  "cross-shard client hosts per shard");
  cli.flags().add("cross_us", &cross_us,
                  "cross-shard trunk latency (the lookahead), microseconds");
  if (!cli.parse(argc, argv)) return 1;

  if (cli.quick()) {
    shards = 4;
    rig_ms = 300;
  }

  const ShardedRigConfig cfg = sweep_config(
      static_cast<int>(shards), ms(rig_ms), static_cast<int>(servers),
      static_cast<int>(clients), static_cast<int>(remote_clients),
      us(cross_us), cli.seed());
  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(stderr,
               "parallel rig: %lld shards x %lldms, %u hardware thread(s)\n",
               static_cast<long long>(shards), static_cast<long long>(rig_ms),
               hw);

  std::vector<SweepPoint> points;
  for (const int w : {1, 2, 4, 8}) {
    points.push_back(run_point(cfg, w));
    const SweepPoint& p = points.back();
    std::fprintf(stderr,
                 "  w=%d: %.0fk pkts/s wall (%.0f ms), %llu pkts "
                 "(%llu cross), digest %016llx\n",
                 w, p.packets_per_sec / 1e3, p.wall_ms,
                 static_cast<unsigned long long>(p.packets),
                 static_cast<unsigned long long>(p.cross_packets),
                 static_cast<unsigned long long>(p.digest));
  }

  bool digest_match = true;
  for (const SweepPoint& p : points) {
    digest_match = digest_match && p.digest == points[0].digest &&
                   p.packets == points[0].packets &&
                   p.records == points[0].records;
  }
  const double base = points[0].packets_per_sec;

  const bool wrote = cli.write_json([&](JsonWriter& w) {
    w.kv("shards", shards);
    w.kv("rig_ms", rig_ms);
    w.kv("hw_threads", static_cast<std::int64_t>(hw));
    w.kv("rig_packets", points[0].packets);
    w.kv("cross_packets", points[0].cross_packets);
    w.kv("records", points[0].records);
    for (const SweepPoint& p : points) {
      const std::string prefix = "w" + std::to_string(p.workers);
      w.kv((prefix + "_packets_per_sec").c_str(), p.packets_per_sec);
      w.kv((prefix + "_wall_ms").c_str(), p.wall_ms);
    }
    w.kv("speedup_w2", base > 0 ? points[1].packets_per_sec / base : 0.0);
    w.kv("speedup_w4", base > 0 ? points[2].packets_per_sec / base : 0.0);
    w.kv("speedup_w8", base > 0 ? points[3].packets_per_sec / base : 0.0);
    char hex[32];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(points[0].digest));
    w.kv("combined_digest", hex);
    w.kv("digest_match", digest_match);
  });
  if (!wrote) return 1;

  int rc = 0;
  if (!digest_match) {
    std::fprintf(stderr,
                 "FAIL: combined digests diverged across worker counts\n");
    rc = 1;
  }
  if (!cli.json_path().empty()) {
    std::string error;
    if (!validate_report(cli.json_path(), &error)) {
      std::fprintf(stderr, "FAIL: %s schema: %s\n", cli.json_path().c_str(),
                   error.c_str());
      rc = 1;
    }
  }
  return rc;
}

}  // namespace
}  // namespace inband

int main(int argc, char** argv) { return inband::bench_main(argc, argv); }
