// ABLATION — the controller zoo under fire.
//
// Sweeps every registered WeightController (α-shift, KnapsackLB gauging,
// distributed gradient descent, shortest-queue and its stale-view variant)
// over a grid of fault plans on the Fig. 3 cluster rig:
//
//   clean  — only the mid-run +1 ms delay on the LB→victim path;
//   loss   — plus 1% loss / 1% reorder / 0.2% dup / 20 us jitter everywhere;
//   flap   — plus a scheduled outage of one LB→server link before injection;
//   stall  — plus a server process freeze before injection.
//
// Per (controller, plan) cell it reports the three quantities the zoo is
// judged on:
//   * convergence_ms — injection → victim slot share below half its fair
//     share (the reaction-time claim, generalized);
//   * steady_p95_us / steady_p99_us — client GET latency in the settled
//     final quarter of the run;
//   * oscillation_tv_per_epoch — total variation of the share vector per
//     16 ms epoch over that settled window: 0 for a law at rest, high for
//     one that herds (scenario/metrics.h).
//
// Every cell runs twice with the same seed; the state digests must match or
// the harness exits non-zero — controller determinism is part of the result,
// not an assumption. The JSON report self-validates against its schema
// (exit non-zero on mismatch), so CI can run `--quick` as a smoke test.
#include <cstdio>
#include <string>
#include <vector>

#include "scenario/cluster_rig.h"
#include "util/bench_cli.h"
#include "util/json.h"

using namespace inband;

namespace {

struct PlanSpec {
  const char* name;
  FaultPlan plan;
};

// The fault grid, windows scaled to the run length. Disruptions (flap,
// stall) land in the first half so the post-injection convergence window
// stays clean; background noise runs throughout.
std::vector<PlanSpec> make_plans(SimTime duration) {
  std::vector<PlanSpec> plans;
  plans.push_back({"clean", {}});

  plans.push_back({"loss", make_noise_plan(0.01, 0.01, 0.002, us(20))});

  FaultPlan flap;
  LinkFlapSpec f;
  f.scope = LinkScope::kLbToServer;
  f.index = 1;  // not the delay victim: two distinct disturbances
  f.down_at = duration / 4;
  f.up_at = duration / 4 + duration / 16;
  flap.flaps.push_back(f);
  plans.push_back({"flap", flap});

  FaultPlan stall;
  ServerFaultSpec s;
  s.kind = ServerFaultSpec::Kind::kStall;
  s.server = 1;
  s.at = duration / 4;
  s.until = duration / 4 + duration / 8;
  stall.servers.push_back(s);
  plans.push_back({"stall", stall});
  return plans;
}

struct CellResult {
  std::string controller;
  std::string plan;
  double convergence_ms = -1.0;  // -1: victim never drained
  double steady_p95_us = 0.0;
  double steady_p99_us = 0.0;
  double oscillation_tv_per_epoch = 0.0;
  std::uint64_t updates = 0;
  std::uint64_t samples = 0;
  std::uint64_t digest = 0;
  bool digest_match = false;
};

ClusterRigConfig cell_config(ControllerKind kind, const FaultPlan& plan,
                             std::int64_t seed, SimTime duration,
                             int servers) {
  ClusterRigConfig cfg;
  cfg.mode = LbMode::kInband;
  cfg.num_servers = servers;
  cfg.num_client_hosts = 2;
  cfg.duration = duration;
  cfg.inject_time = duration / 2;
  cfg.inject_extra = ms(1);
  cfg.victim = 0;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.fault = plan;
  cfg.client.connections = 4;
  cfg.client.pipeline = 4;
  cfg.client.requests_per_conn = 50;
  cfg.server.workers = 8;
  cfg.maglev_table_size = 1021;
  cfg.share_sample_interval = ms(1);
  cfg.audit_interval = 0;
  cfg.inband.ensemble.epoch = ms(16);
  cfg.inband.controller_kind = kind;
  cfg.inband.controller.cooldown = ms(1);
  cfg.inband.controller.min_samples = 3;
  cfg.inband.tracker.ewma_tau = ms(2);
  return cfg;
}

constexpr SimTime kOscEpoch = ms(16);

CellResult run_cell(ControllerKind kind, const PlanSpec& spec,
                    std::int64_t seed, SimTime duration, int servers) {
  const ClusterRigConfig cfg =
      cell_config(kind, spec.plan, seed, duration, servers);
  const SimTime inj = cfg.inject_time;
  const SimTime steady_from = inj + (duration - inj) / 2;

  CellResult cell;
  cell.controller = controller_kind_name(kind);
  cell.plan = spec.name;

  std::uint64_t digests[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    ClusterRig rig{cfg};
    rig.run();
    digests[run] = rig.state_digest();
    if (run != 0) continue;

    // Metrics come from the first run; the second exists only to prove the
    // first reproduces.
    const double fair = 1.0 / static_cast<double>(servers);
    const SimTime drained = share_drained_at(
        rig.share_history(), static_cast<std::size_t>(cfg.victim), fair / 2.0,
        inj);
    if (drained != kNoTime) cell.convergence_ms = to_ms(drained - inj);
    const auto latency = rig.get_latency_samples();
    cell.steady_p95_us =
        percentile_in_window(latency, steady_from, duration, 0.95) / 1e3;
    cell.steady_p99_us =
        percentile_in_window(latency, steady_from, duration, 0.99) / 1e3;
    cell.oscillation_tv_per_epoch = weight_total_variation_per_epoch(
        rig.share_history(), kOscEpoch, steady_from, duration);
    auto* policy = rig.inband_policy();
    cell.updates = policy->controller().shifts();
    cell.samples = policy->samples_total();
  }
  cell.digest = digests[0];
  cell.digest_match = digests[0] == digests[1];
  return cell;
}

const char* const kRequiredCellKeys[] = {
    "controller",    "plan",          "convergence_ms",
    "steady_p95_us", "steady_p99_us", "oscillation_tv_per_epoch",
    "updates",       "digest",        "digest_match",
};

bool validate_report(const std::string& path, std::size_t expected_cells,
                     std::string* error) {
  auto root = json_parse_file(path, error);
  if (root == nullptr) return false;
  const JsonValue* schema = root->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->str_v != BenchCli::kSchema) {
    *error = "bad or missing schema tag";
    return false;
  }
  const JsonValue* metrics = root->find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    *error = "missing metrics object";
    return false;
  }
  const JsonValue* cells = metrics->find("cells");
  if (cells == nullptr || !cells->is_array()) {
    *error = "missing metrics.cells array";
    return false;
  }
  if (cells->arr_v.size() != expected_cells) {
    *error = "metrics.cells has wrong cardinality";
    return false;
  }
  for (const auto& cell : cells->arr_v) {
    for (const char* key : kRequiredCellKeys) {
      if (cell.find(key) == nullptr) {
        *error = std::string{"cell missing key: "} + key;
        return false;
      }
    }
    const JsonValue* match = cell.find("digest_match");
    if (!match->is_bool()) {
      *error = "cell digest_match is not a bool";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchCli cli{"ablation_controllers",
               "controller zoo vs fault plans: convergence, steady tails, "
               "oscillation"};
  std::int64_t duration_ms = 4000;
  std::int64_t servers = 3;
  std::string only_controller;
  cli.flags().add("duration_ms", &duration_ms, "simulated ms per cell");
  cli.flags().add("servers", &servers, "rig server count");
  cli.flags().add("controller", &only_controller,
                  "restrict the sweep to one controller (by name)");
  if (!cli.parse(argc, argv)) return 1;

  if (cli.quick()) {
    duration_ms = 800;
  }
  const SimTime duration = ms(duration_ms);

  std::vector<ControllerKind> kinds;
  if (only_controller.empty()) {
    kinds = controller_registry();
  } else {
    const auto kind = controller_kind_from_name(only_controller);
    if (!kind.has_value()) {
      std::fprintf(stderr, "unknown controller: %s\n", only_controller.c_str());
      return 1;
    }
    kinds.push_back(*kind);
  }
  const auto plans = make_plans(duration);

  std::vector<CellResult> cells;
  bool all_match = true;
  std::fprintf(stderr,
               "%-22s %-6s %14s %12s %12s %10s %8s\n", "controller", "plan",
               "convergence_ms", "p95_us", "p99_us", "osc_tv", "updates");
  for (const ControllerKind kind : kinds) {
    for (const auto& spec : plans) {
      CellResult cell =
          run_cell(kind, spec, cli.seed(), duration,
                   static_cast<int>(servers));
      all_match = all_match && cell.digest_match;
      std::fprintf(stderr, "%-22s %-6s %14.2f %12.1f %12.1f %10.4f %8llu%s\n",
                   cell.controller.c_str(), cell.plan.c_str(),
                   cell.convergence_ms, cell.steady_p95_us, cell.steady_p99_us,
                   cell.oscillation_tv_per_epoch,
                   static_cast<unsigned long long>(cell.updates),
                   cell.digest_match ? "" : "  DIGEST MISMATCH");
      cells.push_back(std::move(cell));
    }
  }

  const bool wrote = cli.write_json([&](JsonWriter& w) {
    w.kv("duration_ms", duration_ms);
    w.kv("servers", servers);
    w.kv("plans", static_cast<std::int64_t>(plans.size()));
    w.key("cells").begin_array();
    for (const auto& cell : cells) {
      w.begin_object();
      w.kv("controller", cell.controller);
      w.kv("plan", cell.plan);
      w.kv("convergence_ms", cell.convergence_ms);
      w.kv("steady_p95_us", cell.steady_p95_us);
      w.kv("steady_p99_us", cell.steady_p99_us);
      w.kv("oscillation_tv_per_epoch", cell.oscillation_tv_per_epoch);
      w.kv("updates", cell.updates);
      w.kv("samples", cell.samples);
      char hex[32];
      std::snprintf(hex, sizeof hex, "%016llx",
                    static_cast<unsigned long long>(cell.digest));
      w.kv("digest", hex);
      w.kv("digest_match", cell.digest_match);
      w.end_object();
    }
    w.end_array();
  });
  if (!wrote) return 1;

  int rc = 0;
  if (!all_match) {
    std::fprintf(stderr, "FAIL: same-seed cell digests diverged\n");
    rc = 1;
  }
  if (!cli.json_path().empty()) {
    std::string error;
    if (!validate_report(cli.json_path(), cells.size(), &error)) {
      std::fprintf(stderr, "FAIL: %s schema: %s\n", cli.json_path().c_str(),
                   error.c_str());
      rc = 1;
    } else {
      std::fprintf(stderr, "report ok: %s\n", cli.json_path().c_str());
    }
  }
  return rc;
}
