// FIG2A — reproduces Fig. 2(a): FIXEDTIMEOUT estimates vs. ground truth on a
// backlogged flow-controlled TCP flow whose true RTT steps up mid-run.
//
// The paper's claims this bench regenerates:
//  * a too-low δ (64 µs) produces many erroneously low T_LB outputs — a
//    horizontal band near the timeout value;
//  * a too-high δ (1024 µs, before the step) produces a small number of
//    erroneously large outputs;
//  * neither tracks the RTT step at t = step_time.
//
// Output: CSV series (downsampled) with one row per sample — series column ∈
// {truth, fixed64us, fixed1024us} — followed by a summary block on stderr.
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/fixed_timeout.h"
#include "scenario/backlogged_rig.h"
#include "util/csv.h"
#include "util/flags.h"

using namespace inband;

int main(int argc, char** argv) {
  std::int64_t duration_ms = 6000;
  std::int64_t step_ms = 3000;
  std::int64_t step_extra_us = 1500;
  std::int64_t low_delta_us = 64;
  std::int64_t high_delta_us = 1024;
  std::int64_t downsample = 20;

  FlagSet flags{"Fig 2(a): fixed-timeout estimates vs ground truth"};
  flags.add("duration_ms", &duration_ms, "experiment length, ms");
  flags.add("step_ms", &step_ms, "time of the RTT step, ms");
  flags.add("step_extra_us", &step_extra_us, "injected extra delay, us");
  flags.add("low_delta_us", &low_delta_us, "the too-low timeout, us");
  flags.add("high_delta_us", &high_delta_us, "the too-high timeout, us");
  flags.add("downsample", &downsample, "emit every Nth point");
  if (!flags.parse(argc, argv)) return 1;

  BackloggedRigConfig cfg;
  cfg.duration = ms(duration_ms);
  cfg.step_time = ms(step_ms);
  cfg.step_extra = us(step_extra_us);
  BackloggedRig rig{cfg};
  rig.run();

  FixedTimeout low{us(low_delta_us)};
  FixedTimeout high{us(high_delta_us)};
  FixedTimeoutState low_state;
  FixedTimeoutState high_state;
  std::vector<Sample> low_samples;
  std::vector<Sample> high_samples;
  for (SimTime t : rig.arrivals()) {
    if (SimTime v = low.on_packet(low_state, t); v != kNoTime) {
      low_samples.push_back({t, v});
    }
    if (SimTime v = high.on_packet(high_state, t); v != kNoTime) {
      high_samples.push_back({t, v});
    }
  }

  CsvWriter csv{std::cout};
  csv.header("t_s", "series", "rtt_us");
  const auto emit = [&](const std::vector<Sample>& v, const char* name) {
    std::size_t i = 0;
    for (const auto& s : v) {
      if (static_cast<std::int64_t>(i++) % downsample == 0) {
        csv.row(to_sec(s.t), name, to_us(s.value));
      }
    }
  };
  emit(rig.ground_truth(), "truth");
  emit(low_samples, "fixed_low");
  emit(high_samples, "fixed_high");

  // --- paper-claim summary ---
  const auto low_acc = summarize_accuracy(low_samples, rig.ground_truth());
  const auto high_acc = summarize_accuracy(high_samples, rig.ground_truth());
  const double truth_before =
      mean_in_window(rig.ground_truth(), 0, cfg.step_time);
  std::size_t low_band = 0;  // spuriously low: below half the true RTT
  for (const auto& s : low_samples) {
    if (static_cast<double>(s.value) < 0.5 * truth_before) ++low_band;
  }
  std::size_t high_before = 0;
  for (const auto& s : high_samples) {
    if (s.t < cfg.step_time) ++high_before;
  }
  std::size_t low_before = 0;
  for (const auto& s : low_samples) {
    if (s.t < cfg.step_time) ++low_before;
  }

  std::fprintf(stderr, "\n--- FIG2A summary ---\n");
  std::fprintf(stderr, "true RTT before step: %.0fus; after: %.0fus\n",
               truth_before / 1e3,
               mean_in_window(rig.ground_truth(), cfg.step_time,
                              cfg.duration) / 1e3);
  std::fprintf(stderr,
               "fixed delta=%lldus: %zu samples (%zu before step), "
               "%zu spuriously low (<50%% of truth), median rel err %.0f%%\n",
               static_cast<long long>(low_delta_us), low_samples.size(),
               low_before, low_band, 100 * low_acc.median_rel_error);
  std::fprintf(stderr,
               "fixed delta=%lldus: %zu samples (%zu before step), "
               "median rel err %.0f%%\n",
               static_cast<long long>(high_delta_us), high_samples.size(),
               high_before, 100 * high_acc.median_rel_error);
  // True batch count before the step ≈ step_time / true RTT: a correct
  // estimator would emit about that many samples in that interval.
  const double true_batches_before =
      static_cast<double>(cfg.step_time) / truth_before;
  std::fprintf(stderr,
               "claim check: low-delta erroneous (median err > 25%% and "
               "over-samples vs ~%.0f true batches) %s; high-delta "
               "under-samples before step (expect << %zu) %s\n",
               true_batches_before,
               (low_acc.median_rel_error > 0.25 &&
                static_cast<double>(low_before) > true_batches_before)
                   ? "PASS"
                   : "FAIL",
               low_before, high_before * 4 < low_before ? "PASS" : "FAIL");
  return 0;
}
