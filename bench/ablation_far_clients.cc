// FAR — §5(1): "the end-to-end RTT of a client request is not always
// representative of the delays that an LB can control."
//
// Three near clients plus one client 1 ms farther away, no server fault at
// all. The far client's samples (RTT + 2 ms round trip) land on whichever
// server its connections currently map to, so the vanilla controller keeps
// "discovering" a slow server that does not exist and drains healthy
// backends. The flow-floor normalization extension scores each sample as
// inflation above that flow's own observed minimum, cancelling the
// client-specific distance.
//
// Output: per configuration — spurious shifts, final slot shares, p95.
#include <cstdio>
#include <iostream>

#include "scenario/cluster_rig.h"
#include "util/csv.h"
#include "util/flags.h"

using namespace inband;

namespace {

struct Row {
  const char* name;
  std::uint64_t shifts;
  double share0;
  double share1;
  double p95_us;
  std::uint64_t samples;
};

Row run_case(const char* name, bool normalize, SimTime far_extra,
             std::int64_t duration_s) {
  ClusterRigConfig cfg;
  cfg.mode = LbMode::kInband;
  cfg.num_servers = 2;
  cfg.num_client_hosts = 4;
  cfg.client_extra_distance = {0, 0, 0, far_extra};  // client 3 is far
  cfg.duration = sec(duration_s);
  cfg.inject_time = sec(duration_s * 10);  // no server fault, ever
  cfg.client.connections = 2;
  cfg.client.pipeline = 4;
  cfg.client.requests_per_conn = 50;
  cfg.server.workers = 8;
  cfg.inband.ensemble.epoch = ms(16);
  cfg.inband.controller.cooldown = ms(1);
  cfg.inband.normalize_client_floor = normalize;
  ClusterRig rig{cfg};
  rig.run();

  auto* policy = rig.inband_policy();
  const auto shares = policy->table().shares();
  const double p95 = percentile_in_window(rig.get_latency_samples(),
                                          sec(1), cfg.duration, 0.95);
  return {name, policy->controller().shifts(), shares[0], shares[1],
          p95 / 1e3, policy->samples_total()};
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t duration_s = 6;
  std::int64_t far_extra_us = 1000;

  FlagSet flags{"ablation: far clients bias the controller (paper §5.1)"};
  flags.add("duration_s", &duration_s, "simulated seconds");
  flags.add("far_extra_us", &far_extra_us, "extra one-way distance, us");
  if (!flags.parse(argc, argv)) return 1;

  CsvWriter csv{std::cout};
  csv.header("case", "spurious_shifts", "share_s0", "share_s1", "p95_us",
             "inband_samples");
  const Row rows[] = {
      run_case("equidistant_absolute", false, 0, duration_s),
      run_case("far_client_absolute", false, us(far_extra_us), duration_s),
      run_case("far_client_client_floor", true, us(far_extra_us), duration_s),
  };
  for (const auto& r : rows) {
    csv.row(r.name, r.shifts, r.share0, r.share1, r.p95_us, r.samples);
  }

  std::fprintf(stderr,
               "\nexpectation: no fault is injected, so every shift is "
               "spurious. The absolute-latency controller chases the far "
               "client around the pool; flow-floor normalization should "
               "bring shifts back to ~the equidistant baseline.\n");
  return 0;
}
