// FIG3 — reproduces Fig. 3: p95 GET latency over time in a two-server
// memcached-style cluster, regular Maglev vs. the latency-aware in-band LB,
// with a 1 ms delay injected on the LB→server-0 path mid-run.
//
// Claims this bench regenerates:
//  * static Maglev's p95 jumps by ≈ the injected delay and stays there;
//  * the latency-aware LB shifts traffic off the slow server and its p95
//    returns near the pre-injection baseline;
//  * the hash-table updates incorporate the inflation within milliseconds
//    (REACT: reaction summary at the bottom).
#include <cstdio>
#include <iostream>

#include "scenario/cluster_rig.h"
#include "telemetry/time_series.h"
#include "util/csv.h"
#include "util/flags.h"

using namespace inband;

namespace {

ClusterRigConfig base_config(std::int64_t duration_s, std::int64_t inject_ms,
                             std::int64_t seed) {
  ClusterRigConfig cfg;
  cfg.num_servers = 2;
  cfg.num_client_hosts = 2;
  cfg.duration = sec(duration_s);
  cfg.inject_time = cfg.duration / 2;
  cfg.inject_extra = ms(inject_ms);
  cfg.victim = 0;
  cfg.client.connections = 4;
  cfg.client.pipeline = 4;
  cfg.client.requests_per_conn = 50;
  cfg.server.workers = 8;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.inband.ensemble.epoch = ms(16);
  cfg.inband.controller.cooldown = ms(1);
  cfg.inband.controller.min_samples = 3;
  cfg.share_sample_interval = ms(1);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t duration_s = 8;
  std::int64_t inject_ms = 1;
  std::int64_t bucket_ms = 100;
  std::int64_t seed = 2022;
  double loss = 0.0;
  double reorder = 0.0;
  double dup = 0.0;
  std::int64_t fault_jitter_us = 0;

  FlagSet flags{"Fig 3: p95 GET latency, static Maglev vs latency-aware"};
  flags.add("duration_s", &duration_s, "simulated seconds");
  flags.add("inject_ms", &inject_ms, "injected LB->server0 delay, ms");
  flags.add("bucket_ms", &bucket_ms, "aggregation bucket, ms");
  flags.add("seed", &seed, "rng seed");
  flags.add("loss", &loss, "per-packet loss probability on every link");
  flags.add("reorder", &reorder, "per-packet reorder probability");
  flags.add("dup", &dup, "per-packet duplication probability");
  flags.add("fault_jitter_us", &fault_jitter_us,
            "max per-packet fault-layer jitter (us)");
  if (!flags.parse(argc, argv)) return 1;

  FaultPlan fault;
  if (loss > 0.0 || reorder > 0.0 || dup > 0.0 || fault_jitter_us > 0) {
    fault = make_noise_plan(loss, reorder, dup, us(fault_jitter_us));
  }

  auto cfg_maglev = base_config(duration_s, inject_ms, seed);
  cfg_maglev.mode = LbMode::kStaticMaglev;
  cfg_maglev.fault = fault;
  ClusterRig maglev{cfg_maglev};
  maglev.run();

  auto cfg_inband = base_config(duration_s, inject_ms, seed);
  cfg_inband.mode = LbMode::kInband;
  cfg_inband.fault = fault;
  ClusterRig inband{cfg_inband};
  inband.run();

  // --- the figure: p95 per bucket for both designs ---
  CsvWriter csv{std::cout};
  csv.header("t_s", "series", "p95_get_latency_us", "requests");
  const auto emit = [&](ClusterRig& rig, const char* name) {
    TimeSeries series;
    for (const auto& s : rig.get_latency_samples()) {
      series.add(s.t, static_cast<double>(s.value));
    }
    for (const auto& row : series.bucketize(ms(bucket_ms), Agg::kP95)) {
      csv.row(to_sec(row.bucket_start), name, row.value / 1e3, row.count);
    }
  };
  emit(maglev, "maglev");
  emit(inband, "latency-aware");

  // --- summary + claim checks ---
  const SimTime inj = cfg_maglev.inject_time;
  const SimTime end = cfg_maglev.duration;
  const auto window_p95 = [](ClusterRig& rig, SimTime a, SimTime b) {
    return percentile_in_window(rig.get_latency_samples(), a, b, 0.95);
  };
  const double m_before = window_p95(maglev, inj / 2, inj);
  const double m_after = window_p95(maglev, (inj + end) / 2, end);
  const double i_before = window_p95(inband, inj / 2, inj);
  const double i_after = window_p95(inband, (inj + end) / 2, end);

  std::fprintf(stderr, "\n--- FIG3 summary (injection %.1fs, +%lldms) ---\n",
               to_sec(inj), static_cast<long long>(inject_ms));
  std::fprintf(stderr, "p95 GET  maglev: %.0fus -> %.0fus\n", m_before / 1e3,
               m_after / 1e3);
  std::fprintf(stderr, "p95 GET  latency-aware: %.0fus -> %.0fus\n",
               i_before / 1e3, i_after / 1e3);
  const auto dataplane = [](ClusterRig& rig, const char* name) {
    const NetStats net = rig.net().stats();
    std::fprintf(stderr,
                 "dataplane %s: %llu pkts in %llu batches, pool high-water "
                 "%llu of %llu slots\n",
                 name, static_cast<unsigned long long>(net.packets_sent),
                 static_cast<unsigned long long>(net.batches),
                 static_cast<unsigned long long>(net.pool.high_water),
                 static_cast<unsigned long long>(net.pool.slots));
  };
  dataplane(maglev, "maglev");
  dataplane(inband, "latency-aware");

  auto* policy = inband.inband_policy();
  SimTime first_shift = kNoTime;
  for (const auto& ev : policy->shift_history()) {
    if (ev.t >= inj) {
      first_shift = ev.t;
      break;
    }
  }
  SimTime drained_at = kNoTime;
  for (const auto& snap : inband.share_history()) {
    if (snap.t >= inj && !snap.shares.empty() && snap.shares[0] < 0.05) {
      drained_at = snap.t;
      break;
    }
  }
  std::fprintf(stderr, "--- REACT summary ---\n");
  if (first_shift != kNoTime) {
    std::fprintf(stderr, "first hash-table update: %.2fms after injection\n",
                 to_ms(first_shift - inj));
  }
  if (drained_at != kNoTime) {
    std::fprintf(stderr,
                 "victim slot share below 5%%: %.2fms after injection\n",
                 to_ms(drained_at - inj));
  }
  std::fprintf(stderr, "shifts executed: %llu; in-band samples: %llu\n",
               static_cast<unsigned long long>(policy->controller().shifts()),
               static_cast<unsigned long long>(policy->samples_total()));
  std::fprintf(stderr,
               "claim checks: maglev stays inflated %s; latency-aware "
               "recovers %s; reaction in ms %s\n",
               m_after > m_before + 0.7 * static_cast<double>(ms(inject_ms))
                   ? "PASS"
                   : "FAIL",
               i_after < m_after * 0.7 ? "PASS" : "FAIL",
               first_shift != kNoTime && first_shift - inj < ms(50)
                   ? "PASS"
                   : "FAIL");
  return 0;
}
