// FIG2B — reproduces Fig. 2(b): ENSEMBLETIMEOUT on the same backlogged-flow
// trace as FIG2A. The claims this bench regenerates:
//  * the sample-cliff rule picks a δ_m bracketing the true RTT, and the
//    emitted T_LB samples track the ground truth closely;
//  * when the true RTT steps up mid-run, δ_m follows within ~an epoch.
//
// Output: CSV — truth samples, ensemble samples, and the chosen δ over time —
// plus an accuracy summary on stderr.
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/ensemble_timeout.h"
#include "scenario/backlogged_rig.h"
#include "util/csv.h"
#include "util/flags.h"

using namespace inband;

int main(int argc, char** argv) {
  std::int64_t duration_ms = 6000;
  std::int64_t step_ms = 3000;
  std::int64_t step_extra_us = 1500;
  std::int64_t epoch_ms = 64;
  std::int64_t downsample = 20;

  FlagSet flags{"Fig 2(b): ensemble-timeout tracking vs ground truth"};
  flags.add("duration_ms", &duration_ms, "experiment length, ms");
  flags.add("step_ms", &step_ms, "time of the RTT step, ms");
  flags.add("step_extra_us", &step_extra_us, "injected extra delay, us");
  flags.add("epoch_ms", &epoch_ms, "ensemble epoch E, ms");
  flags.add("downsample", &downsample, "emit every Nth point");
  if (!flags.parse(argc, argv)) return 1;

  BackloggedRigConfig cfg;
  cfg.duration = ms(duration_ms);
  cfg.step_time = ms(step_ms);
  cfg.step_extra = us(step_extra_us);
  BackloggedRig rig{cfg};
  rig.run();

  EnsembleConfig ecfg;
  ecfg.epoch = ms(epoch_ms);
  EnsembleTimeout est{ecfg};
  EnsembleState state;
  std::vector<Sample> samples;
  std::vector<Sample> delta_series;
  SimTime last_delta = kNoTime;
  for (SimTime t : rig.arrivals()) {
    if (SimTime v = est.on_packet(state, t); v != kNoTime) {
      samples.push_back({t, v});
    }
    const SimTime d = est.current_delta(state);
    if (d != last_delta) {
      delta_series.push_back({t, d});
      last_delta = d;
    }
  }

  CsvWriter csv{std::cout};
  csv.header("t_s", "series", "value_us");
  const auto emit = [&](const std::vector<Sample>& v, const char* name,
                        std::int64_t every) {
    std::size_t i = 0;
    for (const auto& s : v) {
      if (static_cast<std::int64_t>(i++) % every == 0) {
        csv.row(to_sec(s.t), name, to_us(s.value));
      }
    }
  };
  emit(rig.ground_truth(), "truth", downsample);
  emit(samples, "ensemble", downsample);
  emit(delta_series, "chosen_delta", 1);

  // Accuracy, excluding the first-epoch warm-up.
  std::vector<Sample> warm;
  for (const auto& s : samples) {
    if (s.t > 2 * ms(epoch_ms)) warm.push_back(s);
  }
  const auto acc = summarize_accuracy(warm, rig.ground_truth());

  // Tracking: time from the step until the chosen delta changes.
  SimTime adapt_at = kNoTime;
  for (const auto& d : delta_series) {
    if (d.t >= cfg.step_time) {
      adapt_at = d.t;
      break;
    }
  }

  std::fprintf(stderr, "\n--- FIG2B summary ---\n");
  std::fprintf(stderr, "ensemble samples: %zu (epoch %lldms, k=%zu)\n",
               samples.size(), static_cast<long long>(epoch_ms), est.k());
  std::fprintf(stderr,
               "accuracy vs client ground truth: median rel err %.1f%%, "
               "p90 %.1f%%, mean %.1f%%\n",
               100 * acc.median_rel_error, 100 * acc.p90_rel_error,
               100 * acc.mean_rel_error);
  if (adapt_at != kNoTime) {
    std::fprintf(stderr, "delta adapted %.1fms after the RTT step\n",
                 to_ms(adapt_at - cfg.step_time));
  }
  std::fprintf(stderr, "claim check: median rel err < 25%% %s\n",
               acc.median_rel_error < 0.25 ? "PASS" : "FAIL");
  return 0;
}
