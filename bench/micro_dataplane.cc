// PERF — microbenchmarks of the per-packet dataplane cost (§2.4: LBs are
// operationally CPU-bound, so in-band measurement must be cheap).
//
// google-benchmark binary: measures the per-packet cost of Algorithm 1, the
// k=7 ensemble of Algorithm 2, the per-flow state lookup, conntrack, Maglev
// lookup, the whole InbandLbPolicy::on_packet path, and Maglev table builds.
//
// The *_Legacy variants run the pre-pool reference implementations from
// check/reference_models.h on the identical op sequence, so a single run
// reports the slab-pool speedup as a same-machine ratio. Hot-loop benchmarks
// also report "allocs_per_iter" via the counting allocator linked into this
// binary (0 in steady state is the contract; the counter reads 0 with a
// "counting" flag when a sanitizer owns operator new).
#include <benchmark/benchmark.h>

#include "check/reference_models.h"
#include "core/ensemble_timeout.h"
#include "core/fixed_timeout.h"
#include "core/handshake_rtt.h"
#include "core/flow_state_table.h"
#include "core/inband_lb_policy.h"
#include "lb/conntrack.h"
#include "lb/maglev.h"
#include "sim/event_queue.h"
#include "util/alloc_counter.h"

namespace inband {
namespace {

// Tracks heap allocations across the timed loop and attaches per-iteration
// counters. Call arm() immediately before the loop (after setup allocations)
// and report() after it.
class AllocMeter {
 public:
  void arm() { before_ = allocs::snapshot(); }
  void report(benchmark::State& state) {
    const auto d = allocs::delta(before_, allocs::snapshot());
    const auto iters = static_cast<double>(state.iterations());
    state.counters["allocs_per_iter"] = benchmark::Counter(
        iters > 0 ? static_cast<double>(d.count) / iters : 0.0);
    state.counters["alloc_counting"] =
        benchmark::Counter(allocs::counting_enabled() ? 1.0 : 0.0);
  }

 private:
  allocs::Snapshot before_;
};

BackendPool make_pool(int n) {
  BackendPool pool;
  for (int i = 0; i < n; ++i) {
    pool.push_back({static_cast<BackendId>(i), "backend" + std::to_string(i),
                    make_ipv4(10, 2, 0, static_cast<std::uint8_t>(1 + i)), 1,
                    true});
  }
  return pool;
}

FlowKey flow_n(std::uint32_t n) {
  return {{make_ipv4(10, 0, 0, 1 + (n & 0x3f)),
           static_cast<std::uint16_t>(1024 + (n % 50000))},
          {make_ipv4(10, 1, 0, 1), 80},
          IpProto::kTcp};
}

void BM_FixedTimeout_OnPacket(benchmark::State& state) {
  FixedTimeout ft{us(256)};
  FixedTimeoutState s;
  SimTime t = 0;
  for (auto _ : state) {
    t += us(50);
    benchmark::DoNotOptimize(ft.on_packet(s, t));
  }
}
BENCHMARK(BM_FixedTimeout_OnPacket);

void BM_Ensemble_OnPacket(benchmark::State& state) {
  EnsembleTimeout est{{}};
  EnsembleState s;
  SimTime t = 0;
  for (auto _ : state) {
    t += us(50);
    benchmark::DoNotOptimize(est.on_packet(s, t));
  }
}
BENCHMARK(BM_Ensemble_OnPacket);

void BM_FlowTable_GetOrCreate(benchmark::State& state) {
  FlowStateTable table;
  // Pre-populate a working set.
  const auto flows = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < flows; ++i) table.get_or_create(flow_n(i), 0);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.get_or_create(flow_n(i++ % flows), 1));
  }
}
BENCHMARK(BM_FlowTable_GetOrCreate)->Arg(1024)->Arg(65536);

void BM_Conntrack_Lookup(benchmark::State& state) {
  ConnTracker ct;
  const auto flows = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < flows; ++i) ct.insert(flow_n(i), i % 4, 0);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ct.lookup(flow_n(i++ % flows), 1));
  }
}
BENCHMARK(BM_Conntrack_Lookup)->Arg(1024)->Arg(65536);

void BM_Maglev_Lookup(benchmark::State& state) {
  MaglevTable table{65537};
  table.build(make_pool(8));
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(flow_n(i++)));
  }
}
BENCHMARK(BM_Maglev_Lookup);

void BM_Maglev_Build(benchmark::State& state) {
  const auto pool = make_pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    MaglevTable table{65537};
    table.build(pool);
    benchmark::DoNotOptimize(table.raw_table().data());
  }
}
BENCHMARK(BM_Maglev_Build)->Arg(2)->Arg(16)->Arg(128)->Unit(
    benchmark::kMillisecond);

void BM_Maglev_ShiftSlots(benchmark::State& state) {
  MaglevTable table{65537};
  const auto pool = make_pool(8);
  table.build(pool);
  for (auto _ : state) {
    table.shift_slots(0, 0.01);
    // Rebuild occasionally so backend 0 does not run dry.
    if (table.slots_owned(0) < 656) {
      state.PauseTiming();
      table.build(pool);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_Maglev_ShiftSlots);

void BM_InbandPolicy_OnPacket(benchmark::State& state) {
  InbandPolicyConfig cfg;
  cfg.maglev_table_size = 65537;
  InbandLbPolicy policy{make_pool(8), cfg};
  Packet pkt;
  pkt.payload_len = 100;
  const auto flows = static_cast<std::uint32_t>(state.range(0));
  SimTime t = 0;
  std::uint32_t i = 0;
  for (auto _ : state) {
    ++i;
    t += us(5);
    pkt.flow = flow_n(i % flows);
    policy.on_packet(pkt, i % 8, t, false);
  }
  state.counters["samples"] =
      static_cast<double>(policy.samples_total());
}
BENCHMARK(BM_InbandPolicy_OnPacket)->Arg(64)->Arg(4096);

void BM_HandshakeRtt_OnPacket(benchmark::State& state) {
  HandshakeRttEstimator est;
  SimTime t = 0;
  std::uint32_t i = 0;
  Packet syn;
  syn.flags = tcpflag::kSyn;
  Packet ack;
  ack.flags = tcpflag::kAck;
  for (auto _ : state) {
    ++i;
    t += us(10);
    syn.flow = ack.flow = flow_n(i);
    est.on_packet(syn, t);
    benchmark::DoNotOptimize(est.on_packet(ack, t + us(100)));
  }
}
BENCHMARK(BM_HandshakeRtt_OnPacket);

void BM_Maglev_WeightedRebuild(benchmark::State& state) {
  auto pool = make_pool(8);
  for (auto& b : pool) b.weight = 1000;
  std::uint32_t flip = 0;
  for (auto _ : state) {
    pool[0].weight = 1000 - 100 * (flip++ % 2);  // alternate 1000/900
    MaglevTable table{65537};
    table.build(pool);
    benchmark::DoNotOptimize(table.raw_table().data());
  }
}
BENCHMARK(BM_Maglev_WeightedRebuild)->Unit(benchmark::kMillisecond);

void BM_InbandPolicy_OnPacket_ClientFloor(benchmark::State& state) {
  InbandPolicyConfig cfg;
  cfg.maglev_table_size = 65537;
  cfg.normalize_client_floor = true;
  InbandLbPolicy policy{make_pool(8), cfg};
  Packet pkt;
  pkt.payload_len = 100;
  SimTime t = 0;
  std::uint32_t i = 0;
  for (auto _ : state) {
    ++i;
    t += us(5);
    pkt.flow = flow_n(i % 4096);
    policy.on_packet(pkt, i % 8, t, false);
  }
}
BENCHMARK(BM_InbandPolicy_OnPacket_ClientFloor);

// --- Event-queue benchmarks: slab pool vs the legacy map-of-std::function
// queue, identical op sequences. ---------------------------------------------

// This payload reproduces the pre-batch link delivery, which captured a
// whole Packet by value (~136 bytes) — the worst case the legacy
// map-of-std::function queue had to heap-allocate for, and the historical
// workload the slab-vs-legacy comparison was built around. (Since the
// PacketBatch redesign, live deliveries capture only a PacketSink pointer
// plus a pooled PacketRef; perf_dataplane's eq_steady models that size.)
struct DeliveryPayload {
  unsigned char packet_bytes[136];
  std::uint64_t* fired;
  void operator()() const { ++*fired; }
};

// Fires one event through whichever interface the queue offers: the fused
// in-place fire_next (slab pool) or pop+invoke (legacy).
template <typename Q>
SimTime fire_one(Q& q) {
  if constexpr (requires { q.fire_next([](SimTime) {}); }) {
    return q.fire_next([](SimTime) {});
  } else {
    auto ev = q.pop();
    ev.fn();
    return ev.t;
  }
}

// Steady state: a fixed-size pending set; each iteration pops the earliest
// event and schedules a replacement — Simulator::step's inner cycle.
template <typename Q>
void eq_steady_state(benchmark::State& state) {
  Q q;
  std::uint64_t fired = 0;
  std::uint64_t x = 0x2545F4914F6CDD1DULL;  // xorshift64
  const auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  DeliveryPayload payload{};
  payload.fired = &fired;
  const auto pending = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < pending; ++i) {
    q.push(static_cast<SimTime>(next() % 100000), payload);
  }
  SimTime t = 0;
  AllocMeter meter;
  meter.arm();
  for (auto _ : state) {
    t = fire_one(q);
    q.push(t + 1 + static_cast<SimTime>(next() % 1000), payload);
  }
  meter.report(state);
  state.SetItemsProcessed(state.iterations());
  if (fired == 0) std::abort();  // keep the loop observable
}

void BM_EventQueue_SteadyState(benchmark::State& state) {
  eq_steady_state<EventQueue>(state);
}
BENCHMARK(BM_EventQueue_SteadyState)->Arg(128)->Arg(4096);

void BM_EventQueue_SteadyState_Legacy(benchmark::State& state) {
  eq_steady_state<LegacyEventQueue>(state);
}
BENCHMARK(BM_EventQueue_SteadyState_Legacy)->Arg(128)->Arg(4096);

// Cancel-heavy: per iteration, push 4 timers, cancel 2 (one fresh, one mid-
// heap from an earlier round), pop 2 — TCP retransmit/delack timer churn.
template <typename Q>
void eq_cancel_heavy(benchmark::State& state) {
  Q q;
  std::uint64_t fired = 0;
  std::uint64_t x = 0x9E3779B97F4A7C15ULL;
  const auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  std::vector<EventId> backlog;
  backlog.reserve(1024);
  SimTime floor = 0;
  AllocMeter meter;
  meter.arm();
  for (auto _ : state) {
    EventId fresh = kInvalidEventId;
    for (int k = 0; k < 4; ++k) {
      fresh = q.push(floor + 1 + static_cast<SimTime>(next() % 5000),
                     [&fired] { ++fired; });
      backlog.push_back(fresh);
    }
    q.cancel(fresh);
    backlog.pop_back();
    if (!backlog.empty()) {
      const std::size_t victim = next() % backlog.size();
      q.cancel(backlog[victim]);  // may already have fired: stale-handle path
      backlog[victim] = backlog.back();
      backlog.pop_back();
    }
    for (int k = 0; k < 2 && !q.empty(); ++k) floor = fire_one(q);
    if (backlog.size() > 512) {
      backlog.erase(backlog.begin(), backlog.begin() + 256);
    }
  }
  meter.report(state);
  state.SetItemsProcessed(state.iterations() * 8);  // pushes+cancels+pops
}

void BM_EventQueue_CancelHeavy(benchmark::State& state) {
  eq_cancel_heavy<EventQueue>(state);
}
BENCHMARK(BM_EventQueue_CancelHeavy);

void BM_EventQueue_CancelHeavy_Legacy(benchmark::State& state) {
  eq_cancel_heavy<LegacyEventQueue>(state);
}
BENCHMARK(BM_EventQueue_CancelHeavy_Legacy);

// Eviction churn: a full table where every third insert is a new flow, so
// capacity eviction runs constantly — the lazy min-heap's worst case and the
// legacy O(n) scan's pathology.
template <typename Table>
void flow_table_evict_churn(benchmark::State& state) {
  FlowStateTableConfig cfg;
  cfg.max_entries = static_cast<std::size_t>(state.range(0));
  Table table{cfg};
  const auto n = static_cast<std::uint32_t>(cfg.max_entries);
  for (std::uint32_t i = 0; i < n; ++i) {
    table.get_or_create(flow_n(i), static_cast<SimTime>(i));
  }
  std::uint32_t i = n;
  SimTime t = static_cast<SimTime>(n);
  AllocMeter meter;
  meter.arm();
  for (auto _ : state) {
    ++i;
    ++t;
    // Two refreshes and one brand-new flow per round.
    table.get_or_create(flow_n(i % n), t);
    table.get_or_create(flow_n((i * 7 + 1) % n), t);
    table.get_or_create(flow_n(i), t);  // new flow: forces an eviction
  }
  meter.report(state);
  state.SetItemsProcessed(state.iterations() * 3);
  state.counters["evictions"] = static_cast<double>(table.evictions());
}

void BM_FlowTable_EvictChurn(benchmark::State& state) {
  flow_table_evict_churn<FlowStateTable>(state);
}
BENCHMARK(BM_FlowTable_EvictChurn)->Arg(1024)->Arg(16384);

void BM_FlowTable_EvictChurn_Legacy(benchmark::State& state) {
  flow_table_evict_churn<LegacyFlowStateTable>(state);
}
BENCHMARK(BM_FlowTable_EvictChurn_Legacy)->Arg(1024)->Arg(16384);

void BM_HashFlow(benchmark::State& state) {
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash_flow(flow_n(i++)));
  }
}
BENCHMARK(BM_HashFlow);

}  // namespace
}  // namespace inband

BENCHMARK_MAIN();
