// PERF — microbenchmarks of the per-packet dataplane cost (§2.4: LBs are
// operationally CPU-bound, so in-band measurement must be cheap).
//
// google-benchmark binary: measures the per-packet cost of Algorithm 1, the
// k=7 ensemble of Algorithm 2, the per-flow state lookup, conntrack, Maglev
// lookup, the whole InbandLbPolicy::on_packet path, and Maglev table builds.
#include <benchmark/benchmark.h>

#include "core/ensemble_timeout.h"
#include "core/fixed_timeout.h"
#include "core/handshake_rtt.h"
#include "core/flow_state_table.h"
#include "core/inband_lb_policy.h"
#include "lb/conntrack.h"
#include "lb/maglev.h"

namespace inband {
namespace {

BackendPool make_pool(int n) {
  BackendPool pool;
  for (int i = 0; i < n; ++i) {
    pool.push_back({static_cast<BackendId>(i), "backend" + std::to_string(i),
                    make_ipv4(10, 2, 0, static_cast<std::uint8_t>(1 + i)), 1,
                    true});
  }
  return pool;
}

FlowKey flow_n(std::uint32_t n) {
  return {{make_ipv4(10, 0, 0, 1 + (n & 0x3f)),
           static_cast<std::uint16_t>(1024 + (n % 50000))},
          {make_ipv4(10, 1, 0, 1), 80},
          IpProto::kTcp};
}

void BM_FixedTimeout_OnPacket(benchmark::State& state) {
  FixedTimeout ft{us(256)};
  FixedTimeoutState s;
  SimTime t = 0;
  for (auto _ : state) {
    t += us(50);
    benchmark::DoNotOptimize(ft.on_packet(s, t));
  }
}
BENCHMARK(BM_FixedTimeout_OnPacket);

void BM_Ensemble_OnPacket(benchmark::State& state) {
  EnsembleTimeout est{{}};
  EnsembleState s;
  SimTime t = 0;
  for (auto _ : state) {
    t += us(50);
    benchmark::DoNotOptimize(est.on_packet(s, t));
  }
}
BENCHMARK(BM_Ensemble_OnPacket);

void BM_FlowTable_GetOrCreate(benchmark::State& state) {
  FlowStateTable table;
  // Pre-populate a working set.
  const auto flows = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < flows; ++i) table.get_or_create(flow_n(i), 0);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.get_or_create(flow_n(i++ % flows), 1));
  }
}
BENCHMARK(BM_FlowTable_GetOrCreate)->Arg(1024)->Arg(65536);

void BM_Conntrack_Lookup(benchmark::State& state) {
  ConnTracker ct;
  const auto flows = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < flows; ++i) ct.insert(flow_n(i), i % 4, 0);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ct.lookup(flow_n(i++ % flows), 1));
  }
}
BENCHMARK(BM_Conntrack_Lookup)->Arg(1024)->Arg(65536);

void BM_Maglev_Lookup(benchmark::State& state) {
  MaglevTable table{65537};
  table.build(make_pool(8));
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(flow_n(i++)));
  }
}
BENCHMARK(BM_Maglev_Lookup);

void BM_Maglev_Build(benchmark::State& state) {
  const auto pool = make_pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    MaglevTable table{65537};
    table.build(pool);
    benchmark::DoNotOptimize(table.raw_table().data());
  }
}
BENCHMARK(BM_Maglev_Build)->Arg(2)->Arg(16)->Arg(128)->Unit(
    benchmark::kMillisecond);

void BM_Maglev_ShiftSlots(benchmark::State& state) {
  MaglevTable table{65537};
  const auto pool = make_pool(8);
  table.build(pool);
  for (auto _ : state) {
    table.shift_slots(0, 0.01);
    // Rebuild occasionally so backend 0 does not run dry.
    if (table.slots_owned(0) < 656) {
      state.PauseTiming();
      table.build(pool);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_Maglev_ShiftSlots);

void BM_InbandPolicy_OnPacket(benchmark::State& state) {
  InbandPolicyConfig cfg;
  cfg.maglev_table_size = 65537;
  InbandLbPolicy policy{make_pool(8), cfg};
  Packet pkt;
  pkt.payload_len = 100;
  const auto flows = static_cast<std::uint32_t>(state.range(0));
  SimTime t = 0;
  std::uint32_t i = 0;
  for (auto _ : state) {
    ++i;
    t += us(5);
    pkt.flow = flow_n(i % flows);
    policy.on_packet(pkt, i % 8, t, false);
  }
  state.counters["samples"] =
      static_cast<double>(policy.samples_total());
}
BENCHMARK(BM_InbandPolicy_OnPacket)->Arg(64)->Arg(4096);

void BM_HandshakeRtt_OnPacket(benchmark::State& state) {
  HandshakeRttEstimator est;
  SimTime t = 0;
  std::uint32_t i = 0;
  Packet syn;
  syn.flags = tcpflag::kSyn;
  Packet ack;
  ack.flags = tcpflag::kAck;
  for (auto _ : state) {
    ++i;
    t += us(10);
    syn.flow = ack.flow = flow_n(i);
    est.on_packet(syn, t);
    benchmark::DoNotOptimize(est.on_packet(ack, t + us(100)));
  }
}
BENCHMARK(BM_HandshakeRtt_OnPacket);

void BM_Maglev_WeightedRebuild(benchmark::State& state) {
  auto pool = make_pool(8);
  for (auto& b : pool) b.weight = 1000;
  std::uint32_t flip = 0;
  for (auto _ : state) {
    pool[0].weight = 1000 - 100 * (flip++ % 2);  // alternate 1000/900
    MaglevTable table{65537};
    table.build(pool);
    benchmark::DoNotOptimize(table.raw_table().data());
  }
}
BENCHMARK(BM_Maglev_WeightedRebuild)->Unit(benchmark::kMillisecond);

void BM_InbandPolicy_OnPacket_ClientFloor(benchmark::State& state) {
  InbandPolicyConfig cfg;
  cfg.maglev_table_size = 65537;
  cfg.normalize_client_floor = true;
  InbandLbPolicy policy{make_pool(8), cfg};
  Packet pkt;
  pkt.payload_len = 100;
  SimTime t = 0;
  std::uint32_t i = 0;
  for (auto _ : state) {
    ++i;
    t += us(5);
    pkt.flow = flow_n(i % 4096);
    policy.on_packet(pkt, i % 8, t, false);
  }
}
BENCHMARK(BM_InbandPolicy_OnPacket_ClientFloor);

void BM_HashFlow(benchmark::State& state) {
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash_flow(flow_n(i++)));
  }
}
BENCHMARK(BM_HashFlow);

}  // namespace
}  // namespace inband

BENCHMARK_MAIN();
