// AB-DEP — §5(3): "How should an LB recognize that a server appears to be
// slow not because it is slow but [because] one of its downstream
// dependencies is slow? How should an LB shift traffic if a dependency is
// slow?"
//
// Two scenarios on the Fig. 3 rig, with servers calling a downstream
// dependency on half their requests:
//  * private dependency — only server 0's downstream degrades by 1 ms.
//    Indistinguishable from server slowness at the LB, and that is fine:
//    shifting to server 1 genuinely helps.
//  * shared dependency — both servers call the *same* downstream, which
//    degrades. The right answer is to hold fire: no routing decision can
//    dodge a shared downstream. Whether the controller realizes that
//    depends on the score statistic: a fast EWMA sees transient gaps in the
//    bimodal per-request latencies and thrashes; a windowed p95 sees both
//    tails inflate together and stays quiet. Both variants are measured.
#include <cstdio>
#include <iostream>

#include "scenario/cluster_rig.h"
#include "util/csv.h"
#include "util/flags.h"

using namespace inband;

namespace {

struct Row {
  const char* scenario;
  double p95_before_us;
  double p95_after_us;
  std::uint64_t shifts;
  double share_s0;
};

Row run_case(const char* name, bool shared, std::int64_t duration_s,
             LatencyScoreMode score_mode = LatencyScoreMode::kEwma,
             double global_guard = 0.0, SimTime ewma_tau = ms(2),
             bool hold_fire = false) {
  ClusterRigConfig cfg;
  cfg.mode = LbMode::kInband;
  cfg.duration = sec(duration_s);
  cfg.inject_time = sec(duration_s * 10);  // no link fault; deps instead
  cfg.client.requests_per_conn = 50;
  cfg.server.workers = 8;
  cfg.inband.ensemble.epoch = ms(16);
  cfg.inband.controller.cooldown = ms(1);
  cfg.inband.controller.warmup = ms(200);  // skip cold-start transients
  cfg.inband.tracker.mode = score_mode;
  cfg.inband.tracker.window = ms(20);
  cfg.inband.tracker.ewma_tau = ewma_tau;
  cfg.inband.controller.global_guard = global_guard;
  if (hold_fire) cfg.inband.controller.rel_threshold = 1e9;  // oracle: never shift
  if (global_guard > 0.0) cfg.inband.controller.confirm = ms(2);
  if (score_mode == LatencyScoreMode::kWindowedP95) {
    // Tail scores amplify estimator noise (an occasional multi-RTT sample
    // parks in the window's p95 for a full window), so tail-based control
    // needs wider trigger margins than EWMA-based control.
    cfg.inband.controller.rel_threshold = 3.0;
    cfg.inband.controller.min_abs_gap = us(300);
  }
  ClusterRig rig{cfg};

  const SimTime degrade_at = cfg.duration / 2;
  // Dependencies outlive the run; they degrade mid-way by 1 ms.
  // Healthy dependencies add negligible latency; the experiment isolates
  // what happens when one degrades.
  SharedDependency shared_dep{0};
  SharedDependency private_dep0{0};
  SharedDependency private_dep1{0};
  if (shared) {
    shared_dep.inject(degrade_at, ms(1));
    rig.server(0).add_injector(
        std::make_unique<DependencyInjector>(shared_dep, 0.5));
    rig.server(1).add_injector(
        std::make_unique<DependencyInjector>(shared_dep, 0.5));
  } else {
    private_dep0.inject(degrade_at, ms(1));
    rig.server(0).add_injector(
        std::make_unique<DependencyInjector>(private_dep0, 0.5));
    rig.server(1).add_injector(
        std::make_unique<DependencyInjector>(private_dep1, 0.5));
  }
  rig.run();

  const auto get = rig.get_latency_samples();
  auto* policy = rig.inband_policy();
  const auto shares = policy->table().shares();
  return {name,
          percentile_in_window(get, degrade_at / 2, degrade_at, 0.95) / 1e3,
          percentile_in_window(get, (degrade_at + cfg.duration) / 2,
                               cfg.duration, 0.95) /
              1e3,
          policy->controller().shifts(), shares[0]};
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t duration_s = 6;

  FlagSet flags{"ablation: slow downstream dependencies (paper §5.3)"};
  flags.add("duration_s", &duration_s, "simulated seconds");
  if (!flags.parse(argc, argv)) return 1;

  CsvWriter csv{std::cout};
  csv.header("scenario", "p95_before_us", "p95_after_us", "shifts",
             "share_s0");
  for (const Row& r :
       {run_case("private_dependency", false, duration_s),
        run_case("shared_dependency", true, duration_s),
        run_case("shared_dependency_p95score", true, duration_s,
                 LatencyScoreMode::kWindowedP95),
        run_case("private_dependency_p95score", false, duration_s,
                 LatencyScoreMode::kWindowedP95),
        run_case("shared_dependency_guard", true, duration_s,
                 LatencyScoreMode::kEwma, 3.0),
        run_case("private_dependency_guard", false, duration_s,
                 LatencyScoreMode::kEwma, 3.0),
        run_case("shared_dep_guard_smooth", true, duration_s,
                 LatencyScoreMode::kEwma, 3.0, ms(20)),
        run_case("private_dep_guard_smooth", false, duration_s,
                 LatencyScoreMode::kEwma, 3.0, ms(20)),
        run_case("shared_dep_oracle_holdfire", true, duration_s,
                 LatencyScoreMode::kEwma, 0.0, ms(2), true)}) {
    csv.row(r.scenario, r.p95_before_us, r.p95_after_us, r.shifts,
            r.share_s0);
  }

  std::fprintf(stderr,
               "\nreading the rows: a private dependency fault is handled "
               "perfectly by the paper's mechanism (p95 recovers). A shared "
               "fault is where it breaks: the ideal response is to hold fire "
               "(oracle row = the true floor), but every controller variant "
               "still shifts — the guard, confirmation and smoothing each "
               "close one trigger for spurious shifts, yet queue-coupled "
               "oscillation remains: with a shared capacity fault the server "
               "you shift toward genuinely slows down. Quantifies the open "
               "questions in paper S5(3)/S5(4); see EXPERIMENTS.md.\n");
  return 0;
}
