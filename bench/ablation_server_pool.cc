// AB-POOL / AB-HERD — §5(4): larger pools and multiple LBs.
//
//  * pool sweep: 8 servers, one degraded; latency-aware vs. static Maglev,
//    least-conn and round-robin — who routes around the slow server?
//  * herd: two independent in-band LBs sharing the pool — do their
//    uncoordinated α-shifts oscillate or converge?
#include <cstdio>
#include <iostream>
#include <vector>

#include "scenario/cluster_rig.h"
#include "util/csv.h"
#include "util/flags.h"

using namespace inband;

namespace {

ClusterRigConfig pool_config(LbMode mode, int servers, std::int64_t dur_s) {
  ClusterRigConfig cfg;
  cfg.mode = mode;
  cfg.num_servers = servers;
  cfg.num_client_hosts = 4;
  cfg.duration = sec(dur_s);
  cfg.inject_time = cfg.duration / 2;
  cfg.inject_extra = ms(1);
  cfg.victim = 0;
  cfg.client.connections = 4;
  cfg.client.pipeline = 4;
  cfg.client.requests_per_conn = 50;
  cfg.server.workers = 8;
  cfg.inband.ensemble.epoch = ms(16);
  cfg.inband.controller.cooldown = ms(1);
  cfg.share_sample_interval = ms(5);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t servers = 8;
  std::int64_t duration_s = 6;

  FlagSet flags{"ablation: pool size and multi-LB herd (paper §5.4)"};
  flags.add("servers", &servers, "pool size for the mode comparison");
  flags.add("duration_s", &duration_s, "per-run simulated seconds");
  if (!flags.parse(argc, argv)) return 1;

  CsvWriter csv{std::cout};
  csv.header("experiment", "mode", "p95_before_us", "p95_after_us",
             "victim_new_flows", "requests_total");

  for (LbMode mode : {LbMode::kStaticMaglev, LbMode::kInband,
                      LbMode::kLeastConn, LbMode::kRoundRobin}) {
    ClusterRig rig{pool_config(mode, static_cast<int>(servers), duration_s)};
    rig.run();
    const SimTime inj = rig.config().inject_time;
    const SimTime end = rig.config().duration;
    const double before =
        percentile_in_window(rig.get_latency_samples(), inj / 2, inj, 0.95);
    const double after = percentile_in_window(rig.get_latency_samples(),
                                              (inj + end) / 2, end, 0.95);
    // Requests landing on the victim late in the run.
    const std::uint64_t victim_before = [&] {
      return rig.server(0).requests_served();
    }();
    (void)victim_before;
    csv.row("pool8", lb_mode_name(mode), before / 1e3, after / 1e3,
            rig.lb().new_flows_to(0), rig.records().size());
  }

  // Herd: 2 LBs, inband, shared pool.
  {
    auto cfg = pool_config(LbMode::kInband, 2, duration_s);
    cfg.num_lbs = 2;
    cfg.num_client_hosts = 4;
    ClusterRig rig{cfg};
    rig.run();
    const SimTime inj = cfg.inject_time;
    const SimTime end = cfg.duration;
    const double after = percentile_in_window(rig.get_latency_samples(),
                                              (inj + end) / 2, end, 0.95);
    std::uint64_t total_shifts = 0;
    for (int l = 0; l < 2; ++l) {
      total_shifts += rig.inband_policy(l)->controller().shifts();
    }
    csv.row("herd2lb", "inband-x2", 0.0, after / 1e3, total_shifts,
            rig.records().size());
    std::fprintf(stderr,
                 "herd: 2 LBs made %llu shifts total; victim shares: "
                 "%.1f%% / %.1f%%\n",
                 static_cast<unsigned long long>(total_shifts),
                 100.0 * static_cast<double>(
                             rig.inband_policy(0)->table().slots_owned(0)) /
                     static_cast<double>(
                         rig.inband_policy(0)->table().table_size()),
                 100.0 * static_cast<double>(
                             rig.inband_policy(1)->table().slots_owned(0)) /
                     static_cast<double>(
                         rig.inband_policy(1)->table().table_size()));
  }

  std::fprintf(stderr,
               "\nexpectation: with 8 servers the injected 1ms hits ~1/8 of "
               "flows; latency-aware and least-conn route around it, static "
               "Maglev and round-robin do not.\n");
  return 0;
}
