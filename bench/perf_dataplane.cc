// PERF — the dataplane hot-path harness behind BENCH_dataplane.json.
//
// Three reproducible measurements:
//  1. event-queue steady state: a pop→invoke→reschedule loop at a fixed
//     pending-set size, the simulator's innermost cycle (events/sec,
//     ns/event);
//  2. event-queue cancel-heavy: pushes, mid-heap cancels, and pops
//     interleaved — the timer-churn pattern TCP retransmit/delack timers
//     produce, and the workload that grows tombstones;
//  3. a scaled Fig. 3 cluster rig: wall-clock packets/sec + events/sec and
//     heap allocations per packet (global operator new counting via
//     src/util/alloc_counter, linked into this binary only), plus a same-seed
//     double run whose state digests must match;
//  4. the sharded parallel rig (scenario/sharded_rig.h) at 1 and 4 workers:
//     aggregate packets/sec each, the 4-worker speedup, and — the gate —
//     whether the combined digest is identical at both worker counts.
//     rig_parallel_hw_threads records the runner's core budget, because a
//     1-core container legitimately measures a ~1x "speedup"
//     (bench/parallel_rig sweeps {1,2,4,8} in more detail).
//
// Output: the common bench JSON envelope with metrics {before?, after,
// improvement?}. --before <path> splices a previous report in as "before"
// and computes the improvement ratios — that is how the repo-root
// BENCH_dataplane.json records the pre/post numbers of a hot-path change.
// The harness exits non-zero on digest mismatch or if its own output fails
// schema validation, and on nothing else (no wall-clock gating), so CI can
// run it as a smoke test without flakiness.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "scenario/cluster_rig.h"
#include "scenario/sharded_rig.h"
#include "sim/event_queue.h"
#include "util/alloc_counter.h"
#include "util/bench_cli.h"
#include "util/json.h"

using namespace inband;

namespace {

// detlint:allow(wall-clock): this harness *measures* wall time; nothing simulated depends on it
using Clock = std::chrono::steady_clock;

double wall_seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// xorshift64: cheap deterministic times for the microbenches.
struct MiniRng {
  std::uint64_t x;
  std::uint64_t next() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  }
};

struct EqResult {
  double events_per_sec = 0;
  double ns_per_event = 0;
};

// Best-of-N wrapper: wall-clock microbenches on a shared box are noisy in
// one direction only (preemption, frequency dips), so the fastest of a few
// repetitions is the closest estimate of the true cost.
template <typename BenchFn>
EqResult best_of(int reps, BenchFn&& bench) {
  EqResult best;
  for (int i = 0; i < reps; ++i) {
    const EqResult r = bench();
    if (r.events_per_sec > best.events_per_sec) best = r;
  }
  return best;
}

// Runs one event the way Simulator::step does for the queue at hand: the
// fused in-place fire when the queue provides it, pop+invoke otherwise
// (the pre-arena queue's only interface). Returns the event time.
template <typename Q>
SimTime fire_one(Q& q) {
  if constexpr (requires { q.fire_next([](SimTime) {}); }) {
    return q.fire_next([](SimTime) {});
  } else {
    auto ev = q.pop();
    ev.fn();
    return ev.t;
  }
}

// The simulator's dominant event is a link delivery. Since the PacketBatch
// redesign its callback carries a PacketSink pointer plus a pooled
// PacketRef — three words, not the ~140-byte by-value Packet it used to.
// The steady-state bench models the new capture size so the measured event
// cost matches what the rig actually schedules.
struct FakeDelivery {
  unsigned char handle_bytes[24];  // sink* + PacketRef{state*, pkt*}
  std::uint64_t* fired;
  void operator()() const { ++*fired; }
};

// Steady state: keep `pending` events in flight; each iteration pops the
// earliest and schedules a replacement — exactly what Simulator::step does
// all day. The callback bumps a counter so the invoke path is measured too.
EqResult eq_steady(std::uint64_t iterations, std::size_t pending) {
  EventQueue q;
  MiniRng rng{0x2545F4914F6CDD1DULL};
  std::uint64_t fired = 0;
  SimTime t = 0;
  FakeDelivery ev_payload{};
  ev_payload.fired = &fired;
  for (std::size_t i = 0; i < pending; ++i) {
    ev_payload.handle_bytes[0] = static_cast<unsigned char>(i);
    q.push(static_cast<SimTime>(rng.next() % 100000), ev_payload);
  }
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < iterations; ++i) {
    t = fire_one(q);
    ev_payload.handle_bytes[0] = static_cast<unsigned char>(i);
    q.push(t + 1 + static_cast<SimTime>(rng.next() % 1000), ev_payload);
  }
  const double secs = wall_seconds(start, Clock::now());
  while (!q.empty()) q.pop();
  if (fired == 0) std::abort();  // keep the loop observable
  EqResult r;
  r.events_per_sec = static_cast<double>(iterations) / secs;
  r.ns_per_event = secs * 1e9 / static_cast<double>(iterations);
  return r;
}

// Cancel-heavy: per round, push 4 timers, cancel 2 of them (one fresh, one
// from an earlier round — a mid-heap tombstone), pop 2. Ops = pushes +
// cancels + pops.
EqResult eq_cancel_heavy(std::uint64_t rounds) {
  EventQueue q;
  MiniRng rng{0x9E3779B97F4A7C15ULL};
  std::vector<EventId> backlog;
  backlog.reserve(1024);
  std::uint64_t fired = 0;
  SimTime floor = 0;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < rounds; ++i) {
    EventId fresh = kInvalidEventId;
    for (int k = 0; k < 4; ++k) {
      fresh = q.push(floor + 1 + static_cast<SimTime>(rng.next() % 5000),
                     [&fired] { ++fired; });
      backlog.push_back(fresh);
    }
    q.cancel(fresh);
    backlog.pop_back();
    if (!backlog.empty()) {
      const std::size_t victim = rng.next() % backlog.size();
      q.cancel(backlog[victim]);  // may already have fired: stale-handle path
      backlog[victim] = backlog.back();
      backlog.pop_back();
    }
    for (int k = 0; k < 2 && !q.empty(); ++k) {
      floor = fire_one(q);
    }
    if (backlog.size() > 512) backlog.erase(backlog.begin(),
                                            backlog.begin() + 256);
  }
  const double secs = wall_seconds(start, Clock::now());
  const double ops = static_cast<double>(rounds) * 8.0;
  EqResult r;
  r.events_per_sec = ops / secs;
  r.ns_per_event = secs * 1e9 / ops;
  return r;
}

struct RigResult {
  std::uint64_t packets = 0;
  std::uint64_t events = 0;
  double wall_ms = 0;
  double packets_per_sec = 0;
  double events_per_sec = 0;
  std::uint64_t heap_allocs = 0;
  double heap_allocs_per_packet = 0;
  double heap_bytes_per_packet = 0;
  std::uint64_t batches = 0;
  double packets_per_batch = 0;
  std::uint64_t max_batch = 0;
  std::uint64_t pool_slots = 0;
  std::uint64_t pool_high_water = 0;
  std::uint64_t digest = 0;
  bool digest_match = false;
  bool alloc_counting = false;
};

ClusterRigConfig rig_config(std::int64_t seed, SimTime duration,
                            int servers, int clients) {
  ClusterRigConfig cfg;
  cfg.mode = LbMode::kInband;
  cfg.num_servers = servers;
  cfg.num_client_hosts = clients;
  cfg.duration = duration;
  cfg.inject_time = duration / 2;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.client.connections = 4;
  cfg.client.pipeline = 4;
  cfg.server.workers = 8;
  cfg.share_sample_interval = ms(10);
  cfg.audit_interval = 0;  // measure the dataplane, not the auditor
  return cfg;
}

RigResult run_rig(const ClusterRigConfig& cfg) {
  RigResult r;
  r.alloc_counting = allocs::counting_enabled();
  ClusterRig rig{cfg};
  const auto ev0 = rig.sim().executed_events();
  const auto before = allocs::snapshot();
  const auto start = Clock::now();
  rig.run();
  const double secs = wall_seconds(start, Clock::now());
  const auto mem = allocs::delta(before, allocs::snapshot());
  const NetStats net = rig.net().stats();
  r.packets = net.packets_sent;
  r.batches = net.batches;
  if (net.batches > 0) {
    r.packets_per_batch = static_cast<double>(net.batch_packets) /
                          static_cast<double>(net.batches);
  }
  r.max_batch = net.max_batch;
  r.pool_slots = net.pool.slots;
  r.pool_high_water = net.pool.high_water;
  r.events = rig.sim().executed_events() - ev0;
  r.wall_ms = secs * 1e3;
  r.packets_per_sec = static_cast<double>(r.packets) / secs;
  r.events_per_sec = static_cast<double>(r.events) / secs;
  r.heap_allocs = mem.count;
  if (r.packets > 0) {
    r.heap_allocs_per_packet =
        static_cast<double>(mem.count) / static_cast<double>(r.packets);
    r.heap_bytes_per_packet =
        static_cast<double>(mem.bytes) / static_cast<double>(r.packets);
  }
  r.digest = rig.state_digest();
  return r;
}

struct ParallelResult {
  std::int64_t shards = 0;
  std::uint64_t packets = 0;
  std::uint64_t cross_packets = 0;
  double w1_packets_per_sec = 0;
  double w4_packets_per_sec = 0;
  double speedup_4w = 0;
  std::uint64_t digest = 0;
  bool digest_match = false;
};

ParallelResult run_parallel(std::int64_t seed, int shards, SimTime duration) {
  ShardedRigConfig cfg;
  cfg.num_shards = shards;
  cfg.shard = rig_config(seed, duration, /*servers=*/2, /*clients=*/2);
  cfg.remote_clients_per_shard = 1;
  cfg.remote_client.connections = 2;
  cfg.remote_client.pipeline = 2;
  cfg.remote_client.requests_per_conn = 50;

  ParallelResult r;
  r.shards = shards;
  double walls[2] = {0, 0};
  std::uint64_t digests[2] = {0, 0};
  const int workers[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    cfg.workers = workers[i];
    ShardedRig rig{cfg};
    const auto start = Clock::now();
    rig.run();
    walls[i] = wall_seconds(start, Clock::now());
    digests[i] = rig.combined_digest();
    if (i == 0) {
      r.packets = rig.total_packets_sent();
      r.cross_packets = rig.cross_packets();
    }
  }
  r.w1_packets_per_sec = static_cast<double>(r.packets) / walls[0];
  r.w4_packets_per_sec = static_cast<double>(r.packets) / walls[1];
  r.speedup_4w =
      walls[1] > 0 ? r.w1_packets_per_sec > 0
                         ? r.w4_packets_per_sec / r.w1_packets_per_sec
                         : 0.0
                   : 0.0;
  r.digest = digests[0];
  r.digest_match = digests[0] == digests[1];
  return r;
}

void write_metrics(JsonWriter& w, const EqResult& steady,
                   const EqResult& cancel, const RigResult& rig,
                   const ParallelResult& par) {
  w.kv("eq_steady_events_per_sec", steady.events_per_sec);
  w.kv("eq_steady_ns_per_event", steady.ns_per_event);
  w.kv("eq_cancel_heavy_events_per_sec", cancel.events_per_sec);
  w.kv("eq_cancel_heavy_ns_per_event", cancel.ns_per_event);
  w.kv("rig_packets", rig.packets);
  w.kv("rig_events", rig.events);
  w.kv("rig_wall_ms", rig.wall_ms);
  w.kv("rig_packets_per_sec", rig.packets_per_sec);
  w.kv("rig_events_per_sec", rig.events_per_sec);
  w.kv("rig_alloc_counting", rig.alloc_counting);
  w.kv("rig_heap_allocs", rig.heap_allocs);
  w.kv("rig_heap_allocs_per_packet", rig.heap_allocs_per_packet);
  w.kv("rig_heap_bytes_per_packet", rig.heap_bytes_per_packet);
  w.kv("rig_batches", rig.batches);
  w.kv("rig_packets_per_batch", rig.packets_per_batch);
  w.kv("rig_max_batch", rig.max_batch);
  w.kv("rig_pool_slots", rig.pool_slots);
  w.kv("rig_pool_high_water", rig.pool_high_water);
  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(rig.digest));
  w.kv("rig_digest", hex);
  w.kv("rig_digest_match", rig.digest_match);
  w.kv("rig_parallel_shards", par.shards);
  w.kv("rig_parallel_hw_threads",
       static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  w.kv("rig_parallel_packets", par.packets);
  w.kv("rig_parallel_cross_packets", par.cross_packets);
  w.kv("rig_parallel_w1_packets_per_sec", par.w1_packets_per_sec);
  w.kv("rig_parallel_w4_packets_per_sec", par.w4_packets_per_sec);
  w.kv("rig_parallel_speedup_4w", par.speedup_4w);
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(par.digest));
  w.kv("rig_parallel_digest", hex);
  w.kv("rig_parallel_digest_match", par.digest_match);
}

// The keys every metrics object must carry; the smoke test and --before
// splicing both rely on them.
const char* const kRequiredMetricKeys[] = {
    "eq_steady_events_per_sec",   "eq_steady_ns_per_event",
    "eq_cancel_heavy_events_per_sec", "eq_cancel_heavy_ns_per_event",
    "rig_packets",                "rig_events",
    "rig_packets_per_sec",        "rig_events_per_sec",
    "rig_heap_allocs_per_packet", "rig_heap_bytes_per_packet",
    "rig_digest",                 "rig_digest_match",
};

// Batch-shape keys: mandatory in "after", optional in a spliced "before" —
// reports written before the PacketBatch boundary predate these metrics.
const char* const kBatchMetricKeys[] = {
    "rig_batches", "rig_packets_per_batch",
    "rig_pool_slots", "rig_pool_high_water",
};

// Parallel-rig keys: mandatory in "after", optional in a spliced "before" —
// reports written before the sharded rig existed predate these metrics.
const char* const kParallelMetricKeys[] = {
    "rig_parallel_shards",             "rig_parallel_hw_threads",
    "rig_parallel_w1_packets_per_sec", "rig_parallel_w4_packets_per_sec",
    "rig_parallel_speedup_4w",         "rig_parallel_cross_packets",
    "rig_parallel_digest",             "rig_parallel_digest_match",
};

bool validate_metrics_object(const JsonValue& metrics, bool require_batch,
                             std::string* error) {
  for (const char* key : kRequiredMetricKeys) {
    const JsonValue* v = metrics.find(key);
    if (v == nullptr) {
      *error = std::string{"missing metrics key: "} + key;
      return false;
    }
  }
  if (require_batch) {
    for (const char* key : kBatchMetricKeys) {
      if (metrics.find(key) == nullptr) {
        *error = std::string{"missing metrics key: "} + key;
        return false;
      }
    }
    for (const char* key : kParallelMetricKeys) {
      if (metrics.find(key) == nullptr) {
        *error = std::string{"missing metrics key: "} + key;
        return false;
      }
    }
    const JsonValue* pmatch = metrics.find("rig_parallel_digest_match");
    if (!pmatch->is_bool()) {
      *error = "rig_parallel_digest_match is not a bool";
      return false;
    }
  }
  const JsonValue* match = metrics.find("rig_digest_match");
  if (!match->is_bool()) {
    *error = "rig_digest_match is not a bool";
    return false;
  }
  return true;
}

// Validates the file this harness just wrote: envelope + the "after"
// metrics object (and "before", when present).
bool validate_report(const std::string& path, std::string* error) {
  auto root = json_parse_file(path, error);
  if (root == nullptr) return false;
  const JsonValue* schema = root->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->str_v != BenchCli::kSchema) {
    *error = "bad or missing schema tag";
    return false;
  }
  const JsonValue* metrics = root->find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    *error = "missing metrics object";
    return false;
  }
  const JsonValue* after = metrics->find("after");
  if (after == nullptr || !after->is_object()) {
    *error = "missing metrics.after object";
    return false;
  }
  if (!validate_metrics_object(*after, /*require_batch=*/true, error)) {
    return false;
  }
  const JsonValue* before = metrics->find("before");
  if (before != nullptr && before->is_object() &&
      !validate_metrics_object(*before, /*require_batch=*/false, error)) {
    return false;
  }
  return true;
}

// Extracts the metrics object from a previous report: accepts either a
// combined file (metrics.after) or any object carrying the metric keys.
const JsonValue* baseline_metrics(const JsonValue& root) {
  if (const JsonValue* metrics = root.find("metrics")) {
    if (const JsonValue* after = metrics->find("after")) return after;
    if (metrics->find("eq_steady_events_per_sec") != nullptr) return metrics;
  }
  if (root.find("eq_steady_events_per_sec") != nullptr) return &root;
  return nullptr;
}

double num_or(const JsonValue& obj, const char* key, double fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->num_v : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  BenchCli cli{"perf_dataplane",
               "dataplane hot-path perf harness (BENCH_dataplane.json)"};
  cli.set_json_default("BENCH_dataplane.json");
  std::int64_t eq_iterations = 4'000'000;
  // Sized to the Fig. 3 rig's measured in-flight event set (mean ~70, peak
  // ~130 with 4 servers / 4 client hosts) — the steady-state bench should
  // exercise the simulator's real operating point, not an artificially deep
  // heap.
  std::int64_t eq_pending = 128;
  std::int64_t cancel_rounds = 1'000'000;
  std::int64_t rig_ms = 3000;
  std::int64_t rig_servers = 4;
  std::int64_t rig_clients = 4;
  std::string before_path;
  cli.flags().add("eq_iterations", &eq_iterations,
                  "steady-state pop/push iterations");
  cli.flags().add("eq_pending", &eq_pending,
                  "pending-event set size for the steady-state bench");
  cli.flags().add("cancel_rounds", &cancel_rounds,
                  "rounds of the cancel-heavy bench");
  cli.flags().add("rig_ms", &rig_ms, "simulated ms of the Fig. 3 rig");
  cli.flags().add("rig_servers", &rig_servers, "rig server count");
  cli.flags().add("rig_clients", &rig_clients, "rig client-host count");
  cli.flags().add("before", &before_path,
                  "previous report whose metrics become the 'before' column");
  if (!cli.parse(argc, argv)) return 1;

  if (cli.quick()) {
    eq_iterations = 400'000;
    cancel_rounds = 100'000;
    rig_ms = 400;
    rig_servers = 2;
    rig_clients = 2;
  }

  std::fprintf(stderr, "eq steady: %lld iterations, %lld pending...\n",
               static_cast<long long>(eq_iterations),
               static_cast<long long>(eq_pending));
  const int reps = cli.quick() ? 2 : 5;
  const EqResult steady = best_of(reps, [&] {
    return eq_steady(static_cast<std::uint64_t>(eq_iterations),
                     static_cast<std::size_t>(eq_pending));
  });
  std::fprintf(stderr, "  %.2fM events/s (%.1f ns/event)\n",
               steady.events_per_sec / 1e6, steady.ns_per_event);

  std::fprintf(stderr, "eq cancel-heavy: %lld rounds...\n",
               static_cast<long long>(cancel_rounds));
  const EqResult cancel = best_of(reps, [&] {
    return eq_cancel_heavy(static_cast<std::uint64_t>(cancel_rounds));
  });
  std::fprintf(stderr, "  %.2fM ops/s (%.1f ns/op)\n",
               cancel.events_per_sec / 1e6, cancel.ns_per_event);

  std::fprintf(stderr,
               "fig3 rig: %lldms sim, %lld servers, %lld clients...\n",
               static_cast<long long>(rig_ms),
               static_cast<long long>(rig_servers),
               static_cast<long long>(rig_clients));
  const ClusterRigConfig cfg =
      rig_config(cli.seed(), ms(rig_ms), static_cast<int>(rig_servers),
                 static_cast<int>(rig_clients));
  RigResult rig = run_rig(cfg);
  const RigResult rig2 = run_rig(cfg);  // same seed: digest must reproduce
  rig.digest_match = rig.digest == rig2.digest;
  std::fprintf(stderr,
               "  %.0fk pkts/s wall, %.0fk events/s wall, "
               "%.2f heap allocs/pkt (%s), digest %016llx %s\n",
               rig.packets_per_sec / 1e3, rig.events_per_sec / 1e3,
               rig.heap_allocs_per_packet,
               rig.alloc_counting ? "counted" : "NOT COUNTED",
               static_cast<unsigned long long>(rig.digest),
               rig.digest_match ? "reproduced" : "MISMATCH");

  const int par_shards = cli.quick() ? 4 : 8;
  const SimTime par_ms = cli.quick() ? ms(300) : ms(1000);
  std::fprintf(stderr,
               "parallel rig: %d shards x %lldms sim, workers {1, 4}, "
               "%u hardware thread(s)...\n",
               par_shards, static_cast<long long>(par_ms / ms(1)),
               std::thread::hardware_concurrency());
  const ParallelResult par = run_parallel(cli.seed(), par_shards, par_ms);
  std::fprintf(stderr,
               "  w1 %.0fk pkts/s, w4 %.0fk pkts/s (%.2fx), "
               "%llu cross, digest %016llx %s\n",
               par.w1_packets_per_sec / 1e3, par.w4_packets_per_sec / 1e3,
               par.speedup_4w,
               static_cast<unsigned long long>(par.cross_packets),
               static_cast<unsigned long long>(par.digest),
               par.digest_match ? "reproduced" : "MISMATCH");

  // Optional baseline to splice in as "before".
  std::unique_ptr<JsonValue> before_root;
  const JsonValue* before = nullptr;
  if (!before_path.empty()) {
    std::string error;
    before_root = json_parse_file(before_path, &error);
    if (before_root == nullptr) {
      std::fprintf(stderr, "cannot parse --before %s: %s\n",
                   before_path.c_str(), error.c_str());
      return 1;
    }
    before = baseline_metrics(*before_root);
    if (before == nullptr) {
      std::fprintf(stderr, "--before %s carries no metrics\n",
                   before_path.c_str());
      return 1;
    }
  }

  const bool wrote = cli.write_json([&](JsonWriter& w) {
    w.key("before");
    if (before != nullptr) {
      json_write_value(w, *before);
    } else {
      w.value_null();
    }
    w.key("after").begin_object();
    write_metrics(w, steady, cancel, rig, par);
    w.end_object();
    w.key("improvement");
    if (before != nullptr) {
      const double b_steady =
          num_or(*before, "eq_steady_events_per_sec", 0);
      const double b_cancel =
          num_or(*before, "eq_cancel_heavy_events_per_sec", 0);
      const double b_allocs =
          num_or(*before, "rig_heap_allocs_per_packet", 0);
      w.begin_object();
      w.kv("eq_steady_speedup",
           b_steady > 0 ? steady.events_per_sec / b_steady : 0.0);
      w.kv("eq_cancel_heavy_speedup",
           b_cancel > 0 ? cancel.events_per_sec / b_cancel : 0.0);
      w.kv("allocs_per_packet_ratio",
           rig.heap_allocs_per_packet > 0
               ? b_allocs / rig.heap_allocs_per_packet
               : 0.0);
      w.end_object();
    } else {
      w.value_null();
    }
  });
  if (!wrote) return 1;

  // Hard failures: non-reproducible rig, or a report that fails its own
  // schema. Perf numbers themselves never gate — machines differ.
  int rc = 0;
  if (!rig.digest_match) {
    std::fprintf(stderr, "FAIL: same-seed rig digests diverged\n");
    rc = 1;
  }
  if (!par.digest_match) {
    std::fprintf(stderr,
                 "FAIL: sharded rig digests diverged across worker counts\n");
    rc = 1;
  }
  if (!cli.json_path().empty()) {
    std::string error;
    if (!validate_report(cli.json_path(), &error)) {
      std::fprintf(stderr, "FAIL: %s schema: %s\n", cli.json_path().c_str(),
                   error.c_str());
      rc = 1;
    } else {
      std::fprintf(stderr, "report ok: %s\n", cli.json_path().c_str());
    }
  }
  return rc;
}
