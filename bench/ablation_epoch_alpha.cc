// AB-EPOCH / AB-ALPHA — ablations of the paper's two hard-coded constants:
// the epoch E = 64 ms (Algorithm 2) and the shift fraction α = 10% (§3).
//
//  * epoch sweep (Fig. 2 rig): estimator accuracy and adaptation lag vs. E;
//  * alpha sweep (Fig. 3 rig): recovery speed and post-recovery tail vs. α.
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/ensemble_timeout.h"
#include "scenario/backlogged_rig.h"
#include "scenario/cluster_rig.h"
#include "util/csv.h"
#include "util/flags.h"

using namespace inband;

namespace {

void epoch_sweep(std::int64_t duration_ms, CsvWriter& csv) {
  BackloggedRigConfig cfg;
  cfg.duration = ms(duration_ms);
  cfg.step_time = ms(duration_ms / 2);
  cfg.step_extra = us(1500);
  BackloggedRig rig{cfg};
  rig.run();  // one trace, replayed under every epoch setting

  for (std::int64_t epoch_ms_v : {8, 16, 32, 64, 128, 256, 512}) {
    EnsembleConfig ecfg;
    ecfg.epoch = ms(epoch_ms_v);
    EnsembleTimeout est{ecfg};
    EnsembleState state;
    std::vector<Sample> samples;
    SimTime adapted_at = kNoTime;
    SimTime prev_delta = kNoTime;
    for (SimTime t : rig.arrivals()) {
      if (SimTime v = est.on_packet(state, t); v != kNoTime) {
        samples.push_back({t, v});
      }
      const SimTime d = est.current_delta(state);
      if (t >= cfg.step_time && adapted_at == kNoTime && prev_delta != kNoTime &&
          d != prev_delta) {
        adapted_at = t;
      }
      if (t < cfg.step_time) prev_delta = d;
    }
    std::vector<Sample> warm;
    for (const auto& s : samples) {
      if (s.t > 2 * ms(epoch_ms_v)) warm.push_back(s);
    }
    const auto acc = summarize_accuracy(warm, rig.ground_truth());
    csv.row("epoch_sweep", epoch_ms_v, 100 * acc.median_rel_error,
            100 * acc.p90_rel_error,
            adapted_at == kNoTime ? -1.0 : to_ms(adapted_at - cfg.step_time),
            samples.size());
  }
}

void alpha_sweep(std::int64_t duration_s, CsvWriter& csv, bool restore) {
  for (double alpha : {0.02, 0.05, 0.10, 0.20, 0.50}) {
    ClusterRigConfig cfg;
    cfg.mode = LbMode::kInband;
    cfg.duration = sec(duration_s);
    cfg.inject_time = cfg.duration / 2;
    cfg.inject_extra = ms(1);
    cfg.client.requests_per_conn = 50;
    cfg.server.workers = 8;
    cfg.inband.ensemble.epoch = ms(16);
    cfg.inband.controller.alpha = alpha;
    cfg.inband.controller.cooldown = ms(1);
    cfg.share_sample_interval = ms(1);
    if (restore) {
      // The §5(4) extension: without it, one aggressive shift triggered by
      // a transient can permanently drain a healthy server (it stops
      // producing samples, so the controller can never exonerate it).
      cfg.inband.restore_interval = ms(10);
      cfg.inband.restore_step = 0.05;
    }
    ClusterRig rig{cfg};
    rig.run();

    SimTime drained_at = kNoTime;
    for (const auto& snap : rig.share_history()) {
      if (snap.t >= cfg.inject_time && !snap.shares.empty() &&
          snap.shares[0] < 0.05) {
        drained_at = snap.t;
        break;
      }
    }
    const double p95_late = percentile_in_window(
        rig.get_latency_samples(), (cfg.inject_time + cfg.duration) / 2,
        cfg.duration, 0.95);
    auto* policy = rig.inband_policy();
    csv.row(restore ? "alpha_sweep_restore" : "alpha_sweep", alpha,
            drained_at == kNoTime ? -1.0 : to_ms(drained_at - cfg.inject_time),
            p95_late / 1e3,
            static_cast<double>(policy->controller().shifts()),
            rig.records().size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t epoch_rig_ms = 4000;
  std::int64_t alpha_rig_s = 6;

  FlagSet flags{"ablations of E (epoch) and alpha (shift fraction)"};
  flags.add("epoch_rig_ms", &epoch_rig_ms, "Fig2-rig length for epoch sweep");
  flags.add("alpha_rig_s", &alpha_rig_s, "Fig3-rig length for alpha sweep");
  if (!flags.parse(argc, argv)) return 1;

  CsvWriter csv{std::cout};
  // Generic columns; meaning depends on the sweep (see header comment):
  // epoch_sweep: param=E_ms, a=median_err%, b=p90_err%, c=adapt_lag_ms, d=samples
  // alpha_sweep: param=alpha, a=drain_ms, b=p95_late_us, c=shifts, d=requests
  csv.header("sweep", "param", "a", "b", "c", "d");
  epoch_sweep(epoch_rig_ms, csv);
  alpha_sweep(alpha_rig_s, csv, /*restore=*/false);
  alpha_sweep(alpha_rig_s, csv, /*restore=*/true);

  std::fprintf(stderr,
               "\nepoch_sweep columns: E_ms, median_err%%, p90_err%%, "
               "adapt_lag_ms, samples\n"
               "alpha_sweep columns: alpha, drain_time_ms, p95_late_us, "
               "shifts, requests\n");
  return 0;
}
