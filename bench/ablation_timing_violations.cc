// AB-DACK / AB-PACE / AB-APP — §5(2) of the paper: "LBs must identify and
// handle violations of the timing assumptions": delayed ACKs, packet pacing,
// and application-limited clients. This bench quantifies how each violation
// degrades ENSEMBLETIMEOUT's accuracy on the Fig. 2 rig.
//
// Output: one CSV row per scenario with estimator sample counts and accuracy
// against client ground truth.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/ensemble_timeout.h"
#include "scenario/cluster_rig.h"
#include "telemetry/time_series.h"
#include "scenario/backlogged_rig.h"
#include "util/csv.h"
#include "util/flags.h"

using namespace inband;

namespace {

struct Result {
  std::string scenario;
  std::size_t arrivals;
  std::size_t samples;
  AccuracySummary acc;
};

Result run_scenario(const std::string& name, BackloggedRigConfig cfg) {
  BackloggedRig rig{cfg};
  rig.run();
  EnsembleTimeout est{{}};
  EnsembleState state;
  std::vector<Sample> samples;
  for (SimTime t : rig.arrivals()) {
    if (SimTime v = est.on_packet(state, t); v != kNoTime) {
      samples.push_back({t, v});
    }
  }
  std::vector<Sample> warm;
  for (const auto& s : samples) {
    if (s.t > ms(128)) warm.push_back(s);
  }
  return {name, rig.arrivals().size(), samples.size(),
          summarize_accuracy(warm, rig.ground_truth())};
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t duration_ms = 4000;

  FlagSet flags{"ablation: timing-assumption violations (paper §5.2)"};
  flags.add("duration_ms", &duration_ms, "per-scenario length, ms");
  if (!flags.parse(argc, argv)) return 1;

  BackloggedRigConfig base;
  base.duration = ms(duration_ms);
  base.step_time = ms(duration_ms / 2);
  base.step_extra = us(1500);

  std::vector<Result> results;
  results.push_back(run_scenario("baseline", base));

  {
    auto cfg = base;
    cfg.delayed_ack = true;
    cfg.delack_timeout = ms(40);
    results.push_back(run_scenario("delayed_ack_40ms", cfg));
  }
  {
    auto cfg = base;
    cfg.delayed_ack = true;
    cfg.delack_timeout = ms(4);
    results.push_back(run_scenario("delayed_ack_4ms", cfg));
  }
  {
    auto cfg = base;
    cfg.pacing = true;
    // Pace near the flow's natural rate: W/RTT ≈ 23KB/210us ≈ 880 Mb/s.
    cfg.pacing_rate_bps = 900'000'000;
    results.push_back(run_scenario("paced_900mbps", cfg));
  }
  {
    auto cfg = base;
    cfg.pacing = true;
    cfg.pacing_rate_bps = 5'000'000'000;  // mild pacing: bursts survive
    results.push_back(run_scenario("paced_5gbps", cfg));
  }
  {
    // Application-limited: a tiny window (1 segment outstanding) removes
    // the burst structure — each "batch" is a single packet, which still
    // works, but with think-time-like stalls the gaps all look alike. The
    // closest rig analogue: window of 1 segment.
    auto cfg = base;
    cfg.window_segments = 1;
    results.push_back(run_scenario("app_limited_w1", cfg));
  }
  {
    auto cfg = base;
    cfg.window_segments = 2;
    results.push_back(run_scenario("app_limited_w2", cfg));
  }

  CsvWriter csv{std::cout};
  csv.header("scenario", "lb_arrivals", "estimator_samples",
             "median_rel_err_pct", "p90_rel_err_pct", "scored_samples");
  for (const auto& r : results) {
    csv.row(r.scenario, r.arrivals, r.samples, 100 * r.acc.median_rel_error,
            100 * r.acc.p90_rel_error, r.acc.samples);
  }

  // --- think-time clients (application-limited in the request/response
  // sense): the pause the LB measures includes the client's think time, so
  // the "latency" the controller sees overestimates the true response
  // latency by think/(RTT+service). Quantified on the cluster rig by
  // comparing the per-server EWMA score against the client-side median.
  for (std::int64_t think_us : {0, 200, 1000}) {
    ClusterRigConfig cc;
    cc.mode = LbMode::kInband;
    cc.duration = sec(2);
    cc.inject_time = sec(10);  // no injection
    cc.client.think_time = us(think_us);
    cc.client.requests_per_conn = 0;  // persistent conns
    cc.client.connections = 2;
    cc.client.pipeline = 1;  // strict request-response
    ClusterRig rig{cc};
    rig.run();
    std::vector<double> lat;
    for (const auto& r : rig.records()) {
      lat.push_back(static_cast<double>(r.latency));
    }
    const double truth_median = exact_percentile(std::move(lat), 0.5);
    auto* policy = rig.inband_policy();
    double score = 0.0;
    int scored = 0;
    for (const auto& s : policy->tracker().scores(rig.sim().now())) {
      score += s.score_ns;
      ++scored;
    }
    if (scored > 0) score /= scored;
    csv.row("think_time_" + std::to_string(think_us) + "us",
            policy->samples_total(), policy->samples_total(),
            truth_median > 0 ? 100.0 * (score - truth_median) / truth_median
                             : 0.0,
            0.0, scored);
  }

  std::fprintf(stderr, "\n--- ablation summary ---\n");
  std::fprintf(stderr,
               "baseline median err %.1f%%; worst scenario median err %.1f%%\n",
               100 * results[0].acc.median_rel_error,
               100 * [&] {
                 double w = 0;
                 for (const auto& r : results) {
                   w = std::max(w, r.acc.median_rel_error);
                 }
                 return w;
               }());
  std::fprintf(stderr,
               "expectation: aggressive pacing erases inter-batch gaps and "
               "delayed ACKs add T_trigger error — both should degrade "
               "accuracy vs baseline.\n");
  return 0;
}
