file(REMOVE_RECURSE
  "CMakeFiles/latency_aware_cluster.dir/latency_aware_cluster.cc.o"
  "CMakeFiles/latency_aware_cluster.dir/latency_aware_cluster.cc.o.d"
  "latency_aware_cluster"
  "latency_aware_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_aware_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
