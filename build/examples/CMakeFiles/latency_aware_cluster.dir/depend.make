# Empty dependencies file for latency_aware_cluster.
# This may be replaced when dependencies are built.
