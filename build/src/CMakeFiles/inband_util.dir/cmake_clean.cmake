file(REMOVE_RECURSE
  "CMakeFiles/inband_util.dir/util/csv.cc.o"
  "CMakeFiles/inband_util.dir/util/csv.cc.o.d"
  "CMakeFiles/inband_util.dir/util/flags.cc.o"
  "CMakeFiles/inband_util.dir/util/flags.cc.o.d"
  "CMakeFiles/inband_util.dir/util/logging.cc.o"
  "CMakeFiles/inband_util.dir/util/logging.cc.o.d"
  "CMakeFiles/inband_util.dir/util/rng.cc.o"
  "CMakeFiles/inband_util.dir/util/rng.cc.o.d"
  "CMakeFiles/inband_util.dir/util/time.cc.o"
  "CMakeFiles/inband_util.dir/util/time.cc.o.d"
  "libinband_util.a"
  "libinband_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inband_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
