file(REMOVE_RECURSE
  "libinband_util.a"
)
