# Empty dependencies file for inband_util.
# This may be replaced when dependencies are built.
