file(REMOVE_RECURSE
  "CMakeFiles/inband_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/inband_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/inband_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/inband_sim.dir/sim/simulator.cc.o.d"
  "libinband_sim.a"
  "libinband_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inband_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
