file(REMOVE_RECURSE
  "libinband_sim.a"
)
