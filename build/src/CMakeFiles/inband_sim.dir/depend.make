# Empty dependencies file for inband_sim.
# This may be replaced when dependencies are built.
