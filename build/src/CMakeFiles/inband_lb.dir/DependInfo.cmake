
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lb/conntrack.cc" "src/CMakeFiles/inband_lb.dir/lb/conntrack.cc.o" "gcc" "src/CMakeFiles/inband_lb.dir/lb/conntrack.cc.o.d"
  "/root/repo/src/lb/load_balancer.cc" "src/CMakeFiles/inband_lb.dir/lb/load_balancer.cc.o" "gcc" "src/CMakeFiles/inband_lb.dir/lb/load_balancer.cc.o.d"
  "/root/repo/src/lb/maglev.cc" "src/CMakeFiles/inband_lb.dir/lb/maglev.cc.o" "gcc" "src/CMakeFiles/inband_lb.dir/lb/maglev.cc.o.d"
  "/root/repo/src/lb/policies.cc" "src/CMakeFiles/inband_lb.dir/lb/policies.cc.o" "gcc" "src/CMakeFiles/inband_lb.dir/lb/policies.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/inband_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
