file(REMOVE_RECURSE
  "CMakeFiles/inband_lb.dir/lb/conntrack.cc.o"
  "CMakeFiles/inband_lb.dir/lb/conntrack.cc.o.d"
  "CMakeFiles/inband_lb.dir/lb/load_balancer.cc.o"
  "CMakeFiles/inband_lb.dir/lb/load_balancer.cc.o.d"
  "CMakeFiles/inband_lb.dir/lb/maglev.cc.o"
  "CMakeFiles/inband_lb.dir/lb/maglev.cc.o.d"
  "CMakeFiles/inband_lb.dir/lb/policies.cc.o"
  "CMakeFiles/inband_lb.dir/lb/policies.cc.o.d"
  "libinband_lb.a"
  "libinband_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inband_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
