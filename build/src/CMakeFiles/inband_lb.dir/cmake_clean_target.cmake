file(REMOVE_RECURSE
  "libinband_lb.a"
)
