# Empty dependencies file for inband_lb.
# This may be replaced when dependencies are built.
