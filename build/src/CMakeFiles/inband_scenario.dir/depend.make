# Empty dependencies file for inband_scenario.
# This may be replaced when dependencies are built.
