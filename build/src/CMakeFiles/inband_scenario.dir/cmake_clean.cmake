file(REMOVE_RECURSE
  "CMakeFiles/inband_scenario.dir/scenario/backlogged_rig.cc.o"
  "CMakeFiles/inband_scenario.dir/scenario/backlogged_rig.cc.o.d"
  "CMakeFiles/inband_scenario.dir/scenario/cluster_rig.cc.o"
  "CMakeFiles/inband_scenario.dir/scenario/cluster_rig.cc.o.d"
  "CMakeFiles/inband_scenario.dir/scenario/metrics.cc.o"
  "CMakeFiles/inband_scenario.dir/scenario/metrics.cc.o.d"
  "libinband_scenario.a"
  "libinband_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inband_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
