file(REMOVE_RECURSE
  "libinband_scenario.a"
)
