file(REMOVE_RECURSE
  "CMakeFiles/inband_core.dir/core/alpha_shift_controller.cc.o"
  "CMakeFiles/inband_core.dir/core/alpha_shift_controller.cc.o.d"
  "CMakeFiles/inband_core.dir/core/ensemble_timeout.cc.o"
  "CMakeFiles/inband_core.dir/core/ensemble_timeout.cc.o.d"
  "CMakeFiles/inband_core.dir/core/fixed_timeout.cc.o"
  "CMakeFiles/inband_core.dir/core/fixed_timeout.cc.o.d"
  "CMakeFiles/inband_core.dir/core/flow_state_table.cc.o"
  "CMakeFiles/inband_core.dir/core/flow_state_table.cc.o.d"
  "CMakeFiles/inband_core.dir/core/handshake_rtt.cc.o"
  "CMakeFiles/inband_core.dir/core/handshake_rtt.cc.o.d"
  "CMakeFiles/inband_core.dir/core/inband_lb_policy.cc.o"
  "CMakeFiles/inband_core.dir/core/inband_lb_policy.cc.o.d"
  "CMakeFiles/inband_core.dir/core/server_latency_tracker.cc.o"
  "CMakeFiles/inband_core.dir/core/server_latency_tracker.cc.o.d"
  "libinband_core.a"
  "libinband_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inband_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
