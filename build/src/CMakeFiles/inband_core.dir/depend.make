# Empty dependencies file for inband_core.
# This may be replaced when dependencies are built.
