file(REMOVE_RECURSE
  "libinband_core.a"
)
