
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alpha_shift_controller.cc" "src/CMakeFiles/inband_core.dir/core/alpha_shift_controller.cc.o" "gcc" "src/CMakeFiles/inband_core.dir/core/alpha_shift_controller.cc.o.d"
  "/root/repo/src/core/ensemble_timeout.cc" "src/CMakeFiles/inband_core.dir/core/ensemble_timeout.cc.o" "gcc" "src/CMakeFiles/inband_core.dir/core/ensemble_timeout.cc.o.d"
  "/root/repo/src/core/fixed_timeout.cc" "src/CMakeFiles/inband_core.dir/core/fixed_timeout.cc.o" "gcc" "src/CMakeFiles/inband_core.dir/core/fixed_timeout.cc.o.d"
  "/root/repo/src/core/flow_state_table.cc" "src/CMakeFiles/inband_core.dir/core/flow_state_table.cc.o" "gcc" "src/CMakeFiles/inband_core.dir/core/flow_state_table.cc.o.d"
  "/root/repo/src/core/handshake_rtt.cc" "src/CMakeFiles/inband_core.dir/core/handshake_rtt.cc.o" "gcc" "src/CMakeFiles/inband_core.dir/core/handshake_rtt.cc.o.d"
  "/root/repo/src/core/inband_lb_policy.cc" "src/CMakeFiles/inband_core.dir/core/inband_lb_policy.cc.o" "gcc" "src/CMakeFiles/inband_core.dir/core/inband_lb_policy.cc.o.d"
  "/root/repo/src/core/server_latency_tracker.cc" "src/CMakeFiles/inband_core.dir/core/server_latency_tracker.cc.o" "gcc" "src/CMakeFiles/inband_core.dir/core/server_latency_tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/inband_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
