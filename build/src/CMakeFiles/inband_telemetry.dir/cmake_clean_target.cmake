file(REMOVE_RECURSE
  "libinband_telemetry.a"
)
