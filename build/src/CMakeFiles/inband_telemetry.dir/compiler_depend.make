# Empty compiler generated dependencies file for inband_telemetry.
# This may be replaced when dependencies are built.
