
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/counters.cc" "src/CMakeFiles/inband_telemetry.dir/telemetry/counters.cc.o" "gcc" "src/CMakeFiles/inband_telemetry.dir/telemetry/counters.cc.o.d"
  "/root/repo/src/telemetry/histogram.cc" "src/CMakeFiles/inband_telemetry.dir/telemetry/histogram.cc.o" "gcc" "src/CMakeFiles/inband_telemetry.dir/telemetry/histogram.cc.o.d"
  "/root/repo/src/telemetry/sliding_window.cc" "src/CMakeFiles/inband_telemetry.dir/telemetry/sliding_window.cc.o" "gcc" "src/CMakeFiles/inband_telemetry.dir/telemetry/sliding_window.cc.o.d"
  "/root/repo/src/telemetry/time_series.cc" "src/CMakeFiles/inband_telemetry.dir/telemetry/time_series.cc.o" "gcc" "src/CMakeFiles/inband_telemetry.dir/telemetry/time_series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/inband_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
