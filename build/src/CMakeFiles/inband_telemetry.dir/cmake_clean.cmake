file(REMOVE_RECURSE
  "CMakeFiles/inband_telemetry.dir/telemetry/counters.cc.o"
  "CMakeFiles/inband_telemetry.dir/telemetry/counters.cc.o.d"
  "CMakeFiles/inband_telemetry.dir/telemetry/histogram.cc.o"
  "CMakeFiles/inband_telemetry.dir/telemetry/histogram.cc.o.d"
  "CMakeFiles/inband_telemetry.dir/telemetry/sliding_window.cc.o"
  "CMakeFiles/inband_telemetry.dir/telemetry/sliding_window.cc.o.d"
  "CMakeFiles/inband_telemetry.dir/telemetry/time_series.cc.o"
  "CMakeFiles/inband_telemetry.dir/telemetry/time_series.cc.o.d"
  "libinband_telemetry.a"
  "libinband_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inband_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
