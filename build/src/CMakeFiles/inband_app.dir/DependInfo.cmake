
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/bulk_flow.cc" "src/CMakeFiles/inband_app.dir/app/bulk_flow.cc.o" "gcc" "src/CMakeFiles/inband_app.dir/app/bulk_flow.cc.o.d"
  "/root/repo/src/app/kv_client.cc" "src/CMakeFiles/inband_app.dir/app/kv_client.cc.o" "gcc" "src/CMakeFiles/inband_app.dir/app/kv_client.cc.o.d"
  "/root/repo/src/app/kv_server.cc" "src/CMakeFiles/inband_app.dir/app/kv_server.cc.o" "gcc" "src/CMakeFiles/inband_app.dir/app/kv_server.cc.o.d"
  "/root/repo/src/app/message.cc" "src/CMakeFiles/inband_app.dir/app/message.cc.o" "gcc" "src/CMakeFiles/inband_app.dir/app/message.cc.o.d"
  "/root/repo/src/app/variability.cc" "src/CMakeFiles/inband_app.dir/app/variability.cc.o" "gcc" "src/CMakeFiles/inband_app.dir/app/variability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/inband_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
