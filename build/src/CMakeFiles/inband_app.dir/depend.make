# Empty dependencies file for inband_app.
# This may be replaced when dependencies are built.
