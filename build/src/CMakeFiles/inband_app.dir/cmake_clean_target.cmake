file(REMOVE_RECURSE
  "libinband_app.a"
)
