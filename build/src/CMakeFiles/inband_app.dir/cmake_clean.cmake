file(REMOVE_RECURSE
  "CMakeFiles/inband_app.dir/app/bulk_flow.cc.o"
  "CMakeFiles/inband_app.dir/app/bulk_flow.cc.o.d"
  "CMakeFiles/inband_app.dir/app/kv_client.cc.o"
  "CMakeFiles/inband_app.dir/app/kv_client.cc.o.d"
  "CMakeFiles/inband_app.dir/app/kv_server.cc.o"
  "CMakeFiles/inband_app.dir/app/kv_server.cc.o.d"
  "CMakeFiles/inband_app.dir/app/message.cc.o"
  "CMakeFiles/inband_app.dir/app/message.cc.o.d"
  "CMakeFiles/inband_app.dir/app/variability.cc.o"
  "CMakeFiles/inband_app.dir/app/variability.cc.o.d"
  "libinband_app.a"
  "libinband_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inband_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
