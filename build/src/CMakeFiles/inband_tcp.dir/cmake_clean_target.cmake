file(REMOVE_RECURSE
  "libinband_tcp.a"
)
