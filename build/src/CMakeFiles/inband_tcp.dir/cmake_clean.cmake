file(REMOVE_RECURSE
  "CMakeFiles/inband_tcp.dir/tcp/connection.cc.o"
  "CMakeFiles/inband_tcp.dir/tcp/connection.cc.o.d"
  "CMakeFiles/inband_tcp.dir/tcp/recv_buffer.cc.o"
  "CMakeFiles/inband_tcp.dir/tcp/recv_buffer.cc.o.d"
  "CMakeFiles/inband_tcp.dir/tcp/send_buffer.cc.o"
  "CMakeFiles/inband_tcp.dir/tcp/send_buffer.cc.o.d"
  "CMakeFiles/inband_tcp.dir/tcp/stack.cc.o"
  "CMakeFiles/inband_tcp.dir/tcp/stack.cc.o.d"
  "libinband_tcp.a"
  "libinband_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inband_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
