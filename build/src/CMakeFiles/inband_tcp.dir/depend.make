# Empty dependencies file for inband_tcp.
# This may be replaced when dependencies are built.
