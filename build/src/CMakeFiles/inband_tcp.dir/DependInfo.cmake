
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/connection.cc" "src/CMakeFiles/inband_tcp.dir/tcp/connection.cc.o" "gcc" "src/CMakeFiles/inband_tcp.dir/tcp/connection.cc.o.d"
  "/root/repo/src/tcp/recv_buffer.cc" "src/CMakeFiles/inband_tcp.dir/tcp/recv_buffer.cc.o" "gcc" "src/CMakeFiles/inband_tcp.dir/tcp/recv_buffer.cc.o.d"
  "/root/repo/src/tcp/send_buffer.cc" "src/CMakeFiles/inband_tcp.dir/tcp/send_buffer.cc.o" "gcc" "src/CMakeFiles/inband_tcp.dir/tcp/send_buffer.cc.o.d"
  "/root/repo/src/tcp/stack.cc" "src/CMakeFiles/inband_tcp.dir/tcp/stack.cc.o" "gcc" "src/CMakeFiles/inband_tcp.dir/tcp/stack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/inband_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
