
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/address.cc" "src/CMakeFiles/inband_net.dir/net/address.cc.o" "gcc" "src/CMakeFiles/inband_net.dir/net/address.cc.o.d"
  "/root/repo/src/net/link.cc" "src/CMakeFiles/inband_net.dir/net/link.cc.o" "gcc" "src/CMakeFiles/inband_net.dir/net/link.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/inband_net.dir/net/network.cc.o" "gcc" "src/CMakeFiles/inband_net.dir/net/network.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/CMakeFiles/inband_net.dir/net/packet.cc.o" "gcc" "src/CMakeFiles/inband_net.dir/net/packet.cc.o.d"
  "/root/repo/src/net/trace.cc" "src/CMakeFiles/inband_net.dir/net/trace.cc.o" "gcc" "src/CMakeFiles/inband_net.dir/net/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/inband_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
