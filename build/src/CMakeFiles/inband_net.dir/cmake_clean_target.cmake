file(REMOVE_RECURSE
  "libinband_net.a"
)
