# Empty compiler generated dependencies file for inband_net.
# This may be replaced when dependencies are built.
