file(REMOVE_RECURSE
  "CMakeFiles/inband_net.dir/net/address.cc.o"
  "CMakeFiles/inband_net.dir/net/address.cc.o.d"
  "CMakeFiles/inband_net.dir/net/link.cc.o"
  "CMakeFiles/inband_net.dir/net/link.cc.o.d"
  "CMakeFiles/inband_net.dir/net/network.cc.o"
  "CMakeFiles/inband_net.dir/net/network.cc.o.d"
  "CMakeFiles/inband_net.dir/net/packet.cc.o"
  "CMakeFiles/inband_net.dir/net/packet.cc.o.d"
  "CMakeFiles/inband_net.dir/net/trace.cc.o"
  "CMakeFiles/inband_net.dir/net/trace.cc.o.d"
  "libinband_net.a"
  "libinband_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inband_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
