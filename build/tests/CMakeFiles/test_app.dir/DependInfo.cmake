
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_app.cc" "tests/CMakeFiles/test_app.dir/test_app.cc.o" "gcc" "tests/CMakeFiles/test_app.dir/test_app.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/inband_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/inband_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
