# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_telemetry[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_app[1]_include.cmake")
include("/root/repo/build/tests/test_lb[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
