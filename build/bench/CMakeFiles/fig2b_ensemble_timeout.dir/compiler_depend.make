# Empty compiler generated dependencies file for fig2b_ensemble_timeout.
# This may be replaced when dependencies are built.
