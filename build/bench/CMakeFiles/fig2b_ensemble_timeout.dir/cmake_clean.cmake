file(REMOVE_RECURSE
  "CMakeFiles/fig2b_ensemble_timeout.dir/fig2b_ensemble_timeout.cc.o"
  "CMakeFiles/fig2b_ensemble_timeout.dir/fig2b_ensemble_timeout.cc.o.d"
  "fig2b_ensemble_timeout"
  "fig2b_ensemble_timeout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_ensemble_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
