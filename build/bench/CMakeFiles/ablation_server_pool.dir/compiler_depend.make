# Empty compiler generated dependencies file for ablation_server_pool.
# This may be replaced when dependencies are built.
