file(REMOVE_RECURSE
  "CMakeFiles/ablation_server_pool.dir/ablation_server_pool.cc.o"
  "CMakeFiles/ablation_server_pool.dir/ablation_server_pool.cc.o.d"
  "ablation_server_pool"
  "ablation_server_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_server_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
