# Empty compiler generated dependencies file for ablation_table_update.
# This may be replaced when dependencies are built.
