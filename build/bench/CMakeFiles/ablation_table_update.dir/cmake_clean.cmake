file(REMOVE_RECURSE
  "CMakeFiles/ablation_table_update.dir/ablation_table_update.cc.o"
  "CMakeFiles/ablation_table_update.dir/ablation_table_update.cc.o.d"
  "ablation_table_update"
  "ablation_table_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_table_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
