file(REMOVE_RECURSE
  "CMakeFiles/ablation_epoch_alpha.dir/ablation_epoch_alpha.cc.o"
  "CMakeFiles/ablation_epoch_alpha.dir/ablation_epoch_alpha.cc.o.d"
  "ablation_epoch_alpha"
  "ablation_epoch_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_epoch_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
