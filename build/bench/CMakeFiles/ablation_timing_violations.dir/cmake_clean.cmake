file(REMOVE_RECURSE
  "CMakeFiles/ablation_timing_violations.dir/ablation_timing_violations.cc.o"
  "CMakeFiles/ablation_timing_violations.dir/ablation_timing_violations.cc.o.d"
  "ablation_timing_violations"
  "ablation_timing_violations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_timing_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
