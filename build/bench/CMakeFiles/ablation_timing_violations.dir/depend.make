# Empty dependencies file for ablation_timing_violations.
# This may be replaced when dependencies are built.
