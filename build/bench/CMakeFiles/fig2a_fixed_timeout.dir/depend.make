# Empty dependencies file for fig2a_fixed_timeout.
# This may be replaced when dependencies are built.
