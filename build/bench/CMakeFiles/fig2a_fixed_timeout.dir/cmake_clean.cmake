file(REMOVE_RECURSE
  "CMakeFiles/fig2a_fixed_timeout.dir/fig2a_fixed_timeout.cc.o"
  "CMakeFiles/fig2a_fixed_timeout.dir/fig2a_fixed_timeout.cc.o.d"
  "fig2a_fixed_timeout"
  "fig2a_fixed_timeout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_fixed_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
