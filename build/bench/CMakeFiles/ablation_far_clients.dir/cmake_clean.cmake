file(REMOVE_RECURSE
  "CMakeFiles/ablation_far_clients.dir/ablation_far_clients.cc.o"
  "CMakeFiles/ablation_far_clients.dir/ablation_far_clients.cc.o.d"
  "ablation_far_clients"
  "ablation_far_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_far_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
