# Empty dependencies file for ablation_far_clients.
# This may be replaced when dependencies are built.
