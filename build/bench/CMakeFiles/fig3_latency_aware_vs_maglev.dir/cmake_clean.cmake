file(REMOVE_RECURSE
  "CMakeFiles/fig3_latency_aware_vs_maglev.dir/fig3_latency_aware_vs_maglev.cc.o"
  "CMakeFiles/fig3_latency_aware_vs_maglev.dir/fig3_latency_aware_vs_maglev.cc.o.d"
  "fig3_latency_aware_vs_maglev"
  "fig3_latency_aware_vs_maglev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_latency_aware_vs_maglev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
