# Empty compiler generated dependencies file for fig3_latency_aware_vs_maglev.
# This may be replaced when dependencies are built.
