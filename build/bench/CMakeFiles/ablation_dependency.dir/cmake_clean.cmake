file(REMOVE_RECURSE
  "CMakeFiles/ablation_dependency.dir/ablation_dependency.cc.o"
  "CMakeFiles/ablation_dependency.dir/ablation_dependency.cc.o.d"
  "ablation_dependency"
  "ablation_dependency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dependency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
