# Empty dependencies file for ablation_dependency.
# This may be replaced when dependencies are built.
