// shardlint — whole-program shard-ownership linter.
//
//   shardlint [--json] [--partition=json] [--check-partition=FILE]
//             [--list-rules] <file-or-dir>...
//
// --partition=json prints the state -> domain partition map instead of the
// findings report (exit 0 unless inputs were unreadable, so the committed
// map can be regenerated while annotations are still being iterated).
// --check-partition=FILE renders the findings report, then additionally
// requires FILE to match the freshly computed partition byte-for-byte —
// the ctest gate runs this against the committed map.
//
// Exit codes: 0 = clean (waived findings allowed), 1 = unwaived findings,
// partition mismatch or unreadable inputs, 2 = usage error. See
// tools/detlint/README.md and DESIGN.md §9.2 for the ownership taxonomy and
// the INBAND_SHARD_* annotation contract (src/util/shard.h).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "shardlint.h"

namespace {
constexpr char kUsage[] =
    "usage: shardlint [--json] [--partition=json] [--check-partition=FILE] "
    "[--list-rules] <file-or-dir>...\n";
}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool partition = false;
  std::string check_partition;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--partition=json") {
      partition = true;
    } else if (arg.rfind("--check-partition=", 0) == 0) {
      check_partition = arg.substr(18);
      if (check_partition.empty()) {
        std::cerr << "shardlint: --check-partition needs a file\n";
        return 2;
      }
    } else if (arg == "--list-rules") {
      for (const std::string& r : detlint::shard_rule_names()) {
        std::cout << r << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "shardlint: unknown option: " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  const detlint::ShardReport report = detlint::scan_shard(paths);
  if (partition) {
    for (const std::string& e : report.errors) {
      std::cerr << "shardlint: error: " << e << "\n";
    }
    std::cout << report.partition_json;
    return report.errors.empty() ? 0 : 1;
  }
  int code = json ? detlint::render_shard_json(report, std::cout)
                  : detlint::render_shard_text(report, std::cout);
  if (!check_partition.empty()) {
    std::ifstream in(check_partition, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in) {
      std::cerr << "shardlint: cannot read partition file: "
                << check_partition << "\n";
      code = 1;
    } else if (buf.str() != report.partition_json) {
      std::cerr << "shardlint: partition map " << check_partition
                << " is stale; regenerate with --partition=json\n";
      code = 1;
    }
  }
  return code;
}
