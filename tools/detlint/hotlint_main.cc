// hotlint — call-graph-aware hot-path / shard-safety linter.
//
//   hotlint [--json] [--callgraph=dot|json] [--list-rules] <file-or-dir>...
//
// Exit codes: 0 = clean (waived findings allowed), 1 = unwaived findings or
// unreadable inputs, 2 = usage error. See tools/detlint/README.md and
// DESIGN.md §9 for the rule taxonomy and the INBAND_HOT / INBAND_COLD_OK
// annotation contract (src/util/hotpath.h).
#include <iostream>
#include <string>
#include <vector>

#include "hotlint.h"

namespace {
constexpr char kUsage[] =
    "usage: hotlint [--json] [--callgraph=dot|json] [--list-rules] "
    "<file-or-dir>...\n";
}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool callgraph = false;
  detlint::CallgraphFormat format = detlint::CallgraphFormat::kDot;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--callgraph=", 0) == 0) {
      const std::string fmt = arg.substr(12);
      if (fmt == "dot") {
        format = detlint::CallgraphFormat::kDot;
      } else if (fmt == "json") {
        format = detlint::CallgraphFormat::kJson;
      } else {
        std::cerr << "hotlint: unknown callgraph format: " << fmt << "\n";
        return 2;
      }
      callgraph = true;
    } else if (arg == "--list-rules") {
      for (const std::string& r : detlint::hot_rule_names()) {
        std::cout << r << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "hotlint: unknown option: " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  if (callgraph) {
    return detlint::dump_callgraph_paths(paths, format, std::cout);
  }
  const detlint::HotReport report = detlint::scan_hot(paths);
  return json ? detlint::render_hot_json(report, std::cout)
              : detlint::render_hot_text(report, std::cout);
}
