#include "lexer.h"

#include <cctype>

namespace detlint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character operators detlint's patterns care about. Longest match
// first; anything not listed lexes as a single character.
constexpr std::string_view kMultiOps[] = {
    "...", "->*", "<<=", ">>=", "<=>", "::", "->", "==", "!=", "<=",
    ">=",  "&&",  "||",  "<<",  ">>", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  "++",  "--",
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_{src} {}

  LexResult run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        directive();
        continue;
      }
      at_line_start_ = false;
      if (c == '"') {
        string_lit();
        continue;
      }
      if (c == '\'') {
        char_lit();
        continue;
      }
      if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
        number();
        continue;
      }
      if (is_ident_start(c)) {
        identifier();
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void emit(TokenKind kind, std::string text, int line) {
    out_.tokens.push_back({kind, std::move(text), line});
  }

  void count_newlines(std::string_view chunk) {
    for (const char c : chunk) {
      if (c == '\n') ++line_;
    }
  }

  void line_comment() {
    const int start_line = line_;
    pos_ += 2;
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    out_.comments.push_back(
        {start_line, std::string(src_.substr(begin, pos_ - begin))});
  }

  void block_comment() {
    const int start_line = line_;
    pos_ += 2;
    const std::size_t begin = pos_;
    while (pos_ < src_.size() &&
           !(src_[pos_] == '*' && peek(1) == '/')) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    out_.comments.push_back(
        {start_line, std::string(src_.substr(begin, pos_ - begin))});
    if (pos_ < src_.size()) pos_ += 2;  // closing */
  }

  // Consumes a whole preprocessor line, honoring backslash continuations.
  // Comments inside directives still register (a waiver above a #define
  // should not vanish), which the line-comment/block-comment scan inside
  // handles. Quoted #include targets are recorded for header harvesting.
  void directive() {
    std::size_t p = pos_ + 1;  // past '#'
    while (p < src_.size() && (src_[p] == ' ' || src_[p] == '\t')) ++p;
    if (src_.substr(p, 7) == "include") {
      p += 7;
      while (p < src_.size() && (src_[p] == ' ' || src_[p] == '\t')) ++p;
      if (p < src_.size() && src_[p] == '"') {
        const std::size_t begin = p + 1;
        const std::size_t end = src_.find('"', begin);
        if (end != std::string_view::npos) {
          out_.includes.push_back(std::string(src_.substr(begin, end - begin)));
        }
      }
    }
    consume_directive_tail();
  }

  void consume_directive_tail() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        // A continuation keeps the directive going onto the next line.
        std::size_t back = pos_;
        bool continued = false;
        while (back > 0) {
          const char p = src_[back - 1];
          if (p == '\\') {
            continued = true;
            break;
          }
          if (p == ' ' || p == '\t' || p == '\r') {
            --back;
            continue;
          }
          break;
        }
        ++line_;
        ++pos_;
        if (!continued) {
          at_line_start_ = true;
          return;
        }
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      ++pos_;
    }
  }

  void string_lit() {
    // Raw string: the just-emitted token is an adjacent identifier ending in
    // R (R, uR, u8R, LR). Pop it and scan R"delim( ... )delim".
    if (!out_.tokens.empty()) {
      const Token& prev = out_.tokens.back();
      if (prev.kind == TokenKind::kIdent && prev.text.size() <= 3 &&
          prev.text.back() == 'R' && prev_end_ == pos_) {
        out_.tokens.pop_back();
        raw_string();
        return;
      }
    }
    const int start_line = line_;
    ++pos_;
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    emit(TokenKind::kString, std::string(src_.substr(begin, pos_ - begin)),
         start_line);
    if (pos_ < src_.size()) ++pos_;  // closing quote
  }

  void raw_string() {
    const int start_line = line_;
    ++pos_;  // opening quote
    const std::size_t delim_begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '(') ++pos_;
    const std::string closer =
        ")" + std::string(src_.substr(delim_begin, pos_ - delim_begin)) + "\"";
    if (pos_ < src_.size()) ++pos_;  // opening paren
    const std::size_t begin = pos_;
    const std::size_t end = src_.find(closer, pos_);
    const std::size_t stop = end == std::string_view::npos ? src_.size() : end;
    count_newlines(src_.substr(begin, stop - begin));
    emit(TokenKind::kString, std::string(src_.substr(begin, stop - begin)),
         start_line);
    pos_ = stop == src_.size() ? stop : stop + closer.size();
  }

  void char_lit() {
    const int start_line = line_;
    ++pos_;
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    emit(TokenKind::kCharLit, std::string(src_.substr(begin, pos_ - begin)),
         start_line);
    if (pos_ < src_.size()) ++pos_;
  }

  // pp-number, close enough: digits, idents chars, digit separators, '.'
  // and exponent signs after e/E/p/P.
  void number() {
    const std::size_t begin = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (is_ident_char(c) || c == '.') {
        ++pos_;
        continue;
      }
      if (c == '\'' && is_ident_char(peek(1)) && pos_ > begin &&
          is_ident_char(src_[pos_ - 1])) {
        ++pos_;  // digit separator
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char p = src_[pos_ - 1];
        if (p == 'e' || p == 'E' || p == 'p' || p == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    emit(TokenKind::kNumber, std::string(src_.substr(begin, pos_ - begin)),
         line_);
    prev_end_ = pos_;
  }

  void identifier() {
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
    emit(TokenKind::kIdent, std::string(src_.substr(begin, pos_ - begin)),
         line_);
    prev_end_ = pos_;
  }

  void punct() {
    for (const std::string_view op : kMultiOps) {
      if (src_.substr(pos_, op.size()) == op) {
        emit(TokenKind::kPunct, std::string(op), line_);
        pos_ += op.size();
        prev_end_ = pos_;
        return;
      }
    }
    emit(TokenKind::kPunct, std::string(1, src_[pos_]), line_);
    ++pos_;
    prev_end_ = pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t prev_end_ = 0;  // end offset of the last ident/number token
  int line_ = 1;
  bool at_line_start_ = true;
  LexResult out_;
};

}  // namespace

LexResult lex(std::string_view source) { return Lexer(source).run(); }

bool is_float_literal(const Token& tok) {
  if (tok.kind != TokenKind::kNumber) return false;
  const std::string& t = tok.text;
  const bool hex = t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X');
  if (hex) {
    // Hex floats carry a p/P exponent; plain hex integers never do.
    return t.find('p') != std::string::npos || t.find('P') != std::string::npos;
  }
  if (t.find('.') != std::string::npos) return true;
  if (t.find('e') != std::string::npos || t.find('E') != std::string::npos) {
    return true;
  }
  const char last = t.back();
  return last == 'f' || last == 'F';
}

}  // namespace detlint
