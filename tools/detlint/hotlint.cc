#include "hotlint.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <tuple>
#include <utility>

#include "callgraph.h"
#include "lint_io.h"
#include "program_graph.h"
#include "waivers.h"

namespace detlint {
namespace {

bool is_punct(const Token& t, std::string_view p) {
  return t.kind == TokenKind::kPunct && t.text == p;
}

const std::set<std::string>& alloc_fns() {
  static const std::set<std::string> s = {"malloc",       "calloc", "realloc",
                                          "aligned_alloc", "strdup", "free"};
  return s;
}
const std::set<std::string>& alloc_makers() {
  static const std::set<std::string> s = {"make_shared", "make_unique",
                                          "allocate_shared"};
  return s;
}
const std::set<std::string>& growth_members() {
  static const std::set<std::string> s = {
      "push_back", "emplace_back", "push_front", "emplace_front",
      "emplace",   "insert",       "insert_or_assign", "try_emplace",
      "resize",    "reserve",      "rehash",     "append", "assign"};
  return s;
}
const std::set<std::string>& string_types() {
  static const std::set<std::string> s = {"stringstream", "ostringstream",
                                          "istringstream"};
  return s;
}
const std::set<std::string>& io_fns() {
  static const std::set<std::string> s = {
      "printf", "fprintf", "sprintf", "snprintf", "puts",   "fputs",
      "putchar", "fwrite",  "fread",   "fopen",    "fclose", "getline",
      "system"};
  return s;
}
const std::set<std::string>& io_idents() {
  static const std::set<std::string> s = {"cout",    "cerr",    "clog",
                                          "endl",    "ofstream", "ifstream",
                                          "fstream"};
  return s;
}
const std::set<std::string>& block_types() {
  static const std::set<std::string> s = {
      "mutex",       "timed_mutex", "recursive_mutex", "shared_mutex",
      "lock_guard",  "unique_lock", "scoped_lock",     "shared_lock",
      "condition_variable", "condition_variable_any"};
  return s;
}
const std::set<std::string>& block_fns() {
  static const std::set<std::string> s = {"sleep_for", "sleep_until",
                                          "usleep",    "nanosleep", "sleep"};
  return s;
}
const std::set<std::string>& block_members() {
  static const std::set<std::string> s = {"lock", "unlock", "wait"};
  return s;
}

// Per-file analyzer state layered over the shared graph: hotlint's waivers
// and accumulated findings, parallel to g.files.
struct HotFileState {
  std::vector<Waiver> waivers;
  std::vector<Finding> findings;
};

// Runs the hazard rules over one function body. Emitted findings carry no
// chain (the caller attaches it). Unreachable functions are probed with the
// same routine so the waivers covering their hazards register as used.
void scan_body(GraphFile& fd, const GraphNode& n, std::vector<Finding>& out) {
  const std::vector<Token>& toks = fd.lexed.tokens;
  const auto add = [&](std::size_t tok, const std::string& rule,
                       std::string message) {
    Finding f{rule, fd.path, toks[tok].line, std::move(message), false, {}, {}};
    if (rule.compare(0, 4, "hot-") == 0) {
      if (fd.log_lines.count(f.line) > 0) return;  // guarded-log exemption
      // Of the regions covering the hazard, the innermost (latest-starting)
      // one supplies the justification: a nested INBAND_COLD_OK refines its
      // enclosing region's reason rather than being shadowed by it.
      ColdRegion* innermost = nullptr;
      for (ColdRegion& r : fd.structure.cold_regions) {
        if (cold_region_covers(r, tok) &&
            (innermost == nullptr || r.begin > innermost->begin)) {
          innermost = &r;
        }
      }
      if (innermost != nullptr) {
        f.waived = true;
        f.waiver_reason = innermost->reason;
        innermost->used = true;
      }
    }
    out.push_back(std::move(f));
  };
  const std::string fn = display_name(n.def);

  for (std::size_t i = n.def.body_begin;
       i < n.def.body_end && i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdent) continue;
    const std::string& w = t.text;
    const bool has_next = i + 1 < toks.size();
    const bool call_like = has_next && is_punct(toks[i + 1], "(");
    const bool member =
        i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));

    // Placement new (`new (buf) T{...}`) constructs into caller-provided
    // storage and never touches the heap; an explicit `operator new(n)`
    // call does, and is distinguished by the preceding `operator` token.
    const bool placement =
        w == "new" && has_next && is_punct(toks[i + 1], "(") &&
        !(i > 0 && toks[i - 1].kind == TokenKind::kIdent &&
          toks[i - 1].text == "operator");
    if ((w == "new" && !placement) || w == "delete") {
      add(i, "hot-alloc", "operator " + w + " in hot function " + fn);
    } else if (!member && call_like && alloc_fns().count(w) > 0) {
      add(i, "hot-alloc", w + "() in hot function " + fn);
    } else if (alloc_makers().count(w) > 0 && has_next &&
               (call_like || is_punct(toks[i + 1], "<"))) {
      add(i, "hot-alloc", "std::" + w + " in hot function " + fn);
    } else if (w == "function" && has_next && is_punct(toks[i + 1], "<")) {
      add(i, "hot-stdfunc",
          "std::function construction in hot function " + fn +
              " (captures beyond the SBO budget allocate)");
    } else if (member && call_like && growth_members().count(w) > 0) {
      add(i, "hot-growth",
          "growth-capable container op ." + w + "() in hot function " + fn);
    } else if (fd.maps.count(w) > 0 && has_next && is_punct(toks[i + 1], "[")) {
      add(i, "hot-growth", "operator[] on map-like '" + w +
                               "' may insert, in hot function " + fn);
    } else if (w == "string" && has_next &&
               (toks[i + 1].kind == TokenKind::kIdent ||
                is_punct(toks[i + 1], "(") || is_punct(toks[i + 1], "{"))) {
      add(i, "hot-string", "std::string construction in hot function " + fn);
    } else if ((w == "to_string" && call_like) || string_types().count(w) > 0) {
      add(i, "hot-string",
          (w == "to_string" ? "std::to_string" : "std::" + w) +
              " in hot function " + fn);
    } else if (w == "throw") {
      add(i, "hot-throw", "throw in hot function " + fn);
    } else if ((!member && call_like && io_fns().count(w) > 0) ||
               io_idents().count(w) > 0) {
      add(i, "hot-io", "I/O ('" + w + "') in hot function " + fn);
    } else if (block_types().count(w) > 0 ||
               (call_like && !member && block_fns().count(w) > 0) ||
               (call_like && member && block_members().count(w) > 0)) {
      add(i, "hot-block",
          "lock/blocking primitive ('" + w + "') in hot function " + fn);
    } else if (w == "static") {
      if (!(has_next && toks[i + 1].kind == TokenKind::kIdent &&
            (toks[i + 1].text == "const" || toks[i + 1].text == "constexpr" ||
             toks[i + 1].text == "constinit"))) {
        // shard-*: deliberately not waivable by a cold region.
        Finding f{"shard-static", fd.path, t.line,
                  "mutable function-local static in " + fn + " is shared "
                  "across shards", false, {}, {}};
        out.push_back(std::move(f));
      }
    } else if (fd.globals.count(w) > 0 && !member) {
      Finding f{"shard-global", fd.path, t.line,
                "touches mutable namespace-scope state '" + w + "' in " + fn,
                false, {}, {}};
      out.push_back(std::move(f));
    }
  }
}

HotReport finish_report(ProgramGraph&& g, std::vector<std::string> errors) {
  HotReport report;
  report.errors = std::move(errors);
  report.functions = g.nodes.size();
  report.edges = g.edge_count;

  std::vector<HotFileState> state(g.files.size());
  for (std::size_t fi = 0; fi < g.files.size(); ++fi) {
    GraphFile& fd = g.files[fi];
    HotFileState& st = state[fi];
    st.waivers = collect_comment_waivers(fd.lexed.comments, "hotlint:allow",
                                         fd.path, hot_rule_names(),
                                         st.findings);
    for (const int line : fd.structure.bad_cold_lines) {
      st.findings.push_back({"bad-waiver", fd.path, line,
                             "INBAND_COLD_OK is missing a justification",
                             false, {}, {}});
    }
  }

  std::vector<int> seeds;
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (g.nodes[i].hot) seeds.push_back(static_cast<int>(i));
  }
  report.roots = seeds.size();
  std::vector<char> reachable;
  std::vector<int> parent;
  bfs_reach(g, seeds, reachable, parent);
  for (const char r : reachable) report.reachable += r ? 1 : 0;

  // Hazards. Reachable functions produce real findings (with chains);
  // unreachable ones are probed so the waivers sitting on their hazards
  // still count as used instead of warning.
  for (std::size_t id = 0; id < g.nodes.size(); ++id) {
    const GraphNode& n = g.nodes[id];
    GraphFile& fd = g.files[static_cast<std::size_t>(n.def.file)];
    HotFileState& st = state[static_cast<std::size_t>(n.def.file)];
    std::vector<Finding> found;
    scan_body(fd, n, found);
    if (reachable[id]) {
      const std::vector<std::string> chain =
          build_chain(g, parent, static_cast<int>(id));
      for (Finding& f : found) {
        f.chain = chain;
        st.findings.push_back(std::move(f));
      }
    } else {
      // Probe: let comment waivers match and be marked used, then drop.
      apply_comment_waivers(st.waivers, found);
    }
  }

  for (std::size_t fi = 0; fi < g.files.size(); ++fi) {
    GraphFile& fd = g.files[fi];
    HotFileState& st = state[fi];
    report.files_scanned.push_back(fd.path);
    apply_comment_waivers(st.waivers, st.findings);
    for (Finding& f : st.findings) report.findings.push_back(std::move(f));
    for (UnusedWaiver& u : collect_unused_waivers(st.waivers)) {
      report.unused_waivers.push_back(std::move(u));
      report.unused_waiver_files.push_back(fd.path);
    }
    for (const ColdRegion& r : fd.structure.cold_regions) {
      if (r.used) continue;
      report.unused_waivers.push_back({r.line, "INBAND_COLD_OK"});
      report.unused_waiver_files.push_back(fd.path);
    }
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return report;
}

}  // namespace

std::size_t HotReport::unwaived() const {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (!f.waived) ++n;
  }
  return n;
}

std::size_t HotReport::waived() const { return findings.size() - unwaived(); }

const std::vector<std::string>& hot_rule_names() {
  static const std::vector<std::string> names = {
      "hot-alloc", "hot-stdfunc", "hot-growth",   "hot-string",
      "hot-throw", "hot-io",      "hot-block",    "shard-global",
      "shard-static", "bad-waiver"};
  return names;
}

HotReport analyze_hot(std::vector<HotInput> inputs) {
  return finish_report(build_program_graph(std::move(inputs)), {});
}

HotReport scan_hot(const std::vector<std::string>& paths) {
  std::vector<std::string> errors;
  std::vector<HotInput> inputs = discover_sources(paths, errors);
  return finish_report(build_program_graph(std::move(inputs)),
                       std::move(errors));
}

int render_hot_text(const HotReport& report, std::ostream& os) {
  write_report_text(os, "hotlint", report.errors, report.findings,
                    report.unused_waivers, report.unused_waiver_files);
  os << "hotlint: " << report.files_scanned.size() << " files, "
     << report.functions << " functions, " << report.roots << " hot roots, "
     << report.reachable << " reachable, " << report.unwaived()
     << " finding(s), " << report.waived() << " waived\n";
  return report.unwaived() == 0 && report.errors.empty() ? 0 : 1;
}

int render_hot_json(const HotReport& report, std::ostream& os) {
  os << "{\n  \"version\": 1,\n";
  os << "  \"files_scanned\": " << report.files_scanned.size() << ",\n";
  os << "  \"graph\": {\"functions\": " << report.functions
     << ", \"roots\": " << report.roots << ", \"edges\": " << report.edges
     << ", \"reachable\": " << report.reachable << "},\n";
  write_findings_json(os, report.findings, /*with_chain=*/true);
  os << ",\n";
  write_unused_waivers_json(os, report.unused_waivers,
                            report.unused_waiver_files);
  os << ",\n";
  write_errors_json(os, report.errors);
  os << ",\n";
  write_counts_json(os, report.unwaived(), report.waived(),
                    report.unused_waivers.size());
  os << "\n}\n";
  return report.unwaived() == 0 && report.errors.empty() ? 0 : 1;
}

void dump_callgraph(std::vector<HotInput> inputs, CallgraphFormat format,
                    std::ostream& os) {
  const ProgramGraph g = build_program_graph(std::move(inputs));
  std::vector<int> seeds;
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (g.nodes[i].hot) seeds.push_back(static_cast<int>(i));
  }
  std::vector<char> reachable;
  std::vector<int> parent;
  bfs_reach(g, seeds, reachable, parent);
  // Edges deduped by (caller, callee); the first call line wins.
  std::map<std::pair<int, int>, int> edges;
  for (std::size_t id = 0; id < g.nodes.size(); ++id) {
    for (const GraphEdge& e : g.nodes[id].edges) {
      edges.emplace(std::make_pair(static_cast<int>(id), e.target), e.line);
    }
  }
  if (format == CallgraphFormat::kDot) {
    os << "digraph hotlint {\n";
    for (std::size_t i = 0; i < g.nodes.size(); ++i) {
      const GraphNode& n = g.nodes[i];
      os << "  \"" << display_name(n.def) << "\"";
      if (n.hot) {
        os << " [shape=box, style=bold]";
      } else if (!reachable[i]) {
        os << " [style=dotted]";
      }
      os << ";\n";
    }
    for (const auto& [edge, line] : edges) {
      os << "  \"" << display_name(g.nodes[static_cast<std::size_t>(edge.first)].def) << "\" -> \""
         << display_name(g.nodes[static_cast<std::size_t>(edge.second)].def) << "\";\n";
    }
    os << "}\n";
    return;
  }
  os << "{\n  \"functions\": [";
  bool first = true;
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    const GraphNode& n = g.nodes[i];
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"name\": \"" << json_escape(display_name(n.def))
       << "\", \"file\": \"" << json_escape(g.files[static_cast<std::size_t>(n.def.file)].path)
       << "\", \"line\": " << n.def.line
       << ", \"hot\": " << (n.hot ? "true" : "false")
       << ", \"reachable\": " << (reachable[i] ? "true" : "false") << "}";
  }
  os << "\n  ],\n  \"edges\": [";
  first = true;
  for (const auto& [edge, line] : edges) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"caller\": \"" << json_escape(display_name(g.nodes[static_cast<std::size_t>(edge.first)].def))
       << "\", \"callee\": \""
       << json_escape(display_name(g.nodes[static_cast<std::size_t>(edge.second)].def))
       << "\", \"line\": " << line << "}";
  }
  os << "\n  ]\n}\n";
}

int dump_callgraph_paths(const std::vector<std::string>& paths,
                         CallgraphFormat format, std::ostream& os) {
  std::vector<std::string> errors;
  std::vector<HotInput> inputs = discover_sources(paths, errors);
  dump_callgraph(std::move(inputs), format, os);
  return errors.empty() ? 0 : 1;
}

}  // namespace detlint
