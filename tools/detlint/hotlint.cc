#include "hotlint.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "callgraph.h"
#include "waivers.h"

namespace detlint {
namespace {

namespace fs = std::filesystem;

bool is_punct(const Token& t, std::string_view p) {
  return t.kind == TokenKind::kPunct && t.text == p;
}

const std::set<std::string>& alloc_fns() {
  static const std::set<std::string> s = {"malloc",       "calloc", "realloc",
                                          "aligned_alloc", "strdup", "free"};
  return s;
}
const std::set<std::string>& alloc_makers() {
  static const std::set<std::string> s = {"make_shared", "make_unique",
                                          "allocate_shared"};
  return s;
}
const std::set<std::string>& growth_members() {
  static const std::set<std::string> s = {
      "push_back", "emplace_back", "push_front", "emplace_front",
      "emplace",   "insert",       "insert_or_assign", "try_emplace",
      "resize",    "reserve",      "rehash",     "append", "assign"};
  return s;
}
const std::set<std::string>& string_types() {
  static const std::set<std::string> s = {"stringstream", "ostringstream",
                                          "istringstream"};
  return s;
}
const std::set<std::string>& io_fns() {
  static const std::set<std::string> s = {
      "printf", "fprintf", "sprintf", "snprintf", "puts",   "fputs",
      "putchar", "fwrite",  "fread",   "fopen",    "fclose", "getline",
      "system"};
  return s;
}
const std::set<std::string>& io_idents() {
  static const std::set<std::string> s = {"cout",    "cerr",    "clog",
                                          "endl",    "ofstream", "ifstream",
                                          "fstream"};
  return s;
}
const std::set<std::string>& block_types() {
  static const std::set<std::string> s = {
      "mutex",       "timed_mutex", "recursive_mutex", "shared_mutex",
      "lock_guard",  "unique_lock", "scoped_lock",     "shared_lock",
      "condition_variable", "condition_variable_any"};
  return s;
}
const std::set<std::string>& block_fns() {
  static const std::set<std::string> s = {"sleep_for", "sleep_until",
                                          "usleep",    "nanosleep", "sleep"};
  return s;
}
const std::set<std::string>& block_members() {
  static const std::set<std::string> s = {"lock", "unlock", "wait"};
  return s;
}

// An identifier spelled LOG_<UPPER> marks a level-guarded logging macro;
// hot-* findings and call edges on its line are suppressed (the macro
// compiles the expression out below the active level).
bool is_log_macro(const std::string& name) {
  if (name.size() < 5 || name.compare(0, 4, "LOG_") != 0) return false;
  for (std::size_t i = 4; i < name.size(); ++i) {
    const char c = name[i];
    if (!(c >= 'A' && c <= 'Z') && !(c >= '0' && c <= '9') && c != '_') {
      return false;
    }
  }
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct FileData {
  std::string path;
  LexResult lexed;
  FileStructure structure;
  std::vector<Waiver> waivers;
  std::vector<Finding> findings;  // this file's findings, pre-sort
  std::set<int> log_lines;        // lines carrying a LOG_* macro
  std::set<std::string> globals;  // effective: own + included files'
  std::set<std::string> maps;
};

struct Node {
  FunctionDef def;
  std::vector<CallSite> calls;
  std::vector<std::pair<int, int>> edges;  // (target node, call line)
  bool hot = false;
  bool reachable = false;
  int parent = -1;  // BFS tree edge, for root->hazard chains
};

struct Graph {
  std::vector<FileData> files;
  std::vector<Node> nodes;
  std::size_t edge_count = 0;
};

// True when a cold region covers the token, excluding the marker's own
// INBAND_COLD_OK("...") tokens so a region does not justify itself.
bool region_covers(const ColdRegion& r, std::size_t token) {
  return token > r.begin + 3 && token <= r.end;
}

Graph build_graph(std::vector<HotInput>&& inputs) {
  Graph g;
  std::sort(inputs.begin(), inputs.end(),
            [](const HotInput& a, const HotInput& b) { return a.path < b.path; });
  inputs.erase(std::unique(inputs.begin(), inputs.end(),
                           [](const HotInput& a, const HotInput& b) {
                             return a.path == b.path;
                           }),
               inputs.end());

  for (const HotInput& in : inputs) {
    FileData fd;
    fd.path = in.path;
    fd.lexed = lex(in.source);
    fd.structure = analyze_structure(fd.lexed, static_cast<int>(g.files.size()));
    fd.waivers = collect_comment_waivers(fd.lexed.comments, "hotlint:allow",
                                         fd.path, hot_rule_names(),
                                         fd.findings);
    for (const int line : fd.structure.bad_cold_lines) {
      fd.findings.push_back({"bad-waiver", fd.path, line,
                             "INBAND_COLD_OK is missing a justification",
                             false, {}, {}});
    }
    for (const Token& t : fd.lexed.tokens) {
      if (t.kind == TokenKind::kIdent && is_log_macro(t.text)) {
        fd.log_lines.insert(t.line);
      }
    }
    fd.globals.insert(fd.structure.decls.mutable_globals.begin(),
                      fd.structure.decls.mutable_globals.end());
    fd.maps.insert(fd.structure.decls.map_names.begin(),
                   fd.structure.decls.map_names.end());
    g.files.push_back(std::move(fd));
  }

  // Resolve quoted includes against the scanned set by path suffix, and
  // union the included files' shard-relevant declarations: a .cc touching a
  // global or a map declared in its header must still be caught.
  for (FileData& fd : g.files) {
    for (const std::string& inc : fd.lexed.includes) {
      const std::string suffix = "/" + inc;
      for (const FileData& other : g.files) {
        if (other.path != inc &&
            (other.path.size() <= suffix.size() ||
             other.path.compare(other.path.size() - suffix.size(),
                                suffix.size(), suffix) != 0)) {
          continue;
        }
        fd.globals.insert(other.structure.decls.mutable_globals.begin(),
                          other.structure.decls.mutable_globals.end());
        fd.maps.insert(other.structure.decls.map_names.begin(),
                       other.structure.decls.map_names.end());
        break;
      }
    }
  }

  // Global node list + name indices.
  std::map<std::string, std::vector<int>> by_name;
  std::map<std::string, std::vector<int>> by_qualified;
  std::set<std::string> hot_names;
  for (std::size_t fi = 0; fi < g.files.size(); ++fi) {
    FileData& fd = g.files[fi];
    for (FunctionDef& def : fd.structure.functions) {
      Node n;
      n.def = def;
      n.calls = find_calls(fd.lexed, n.def);
      const int id = static_cast<int>(g.nodes.size());
      by_name[n.def.name].push_back(id);
      if (!n.def.qualifier.empty()) {
        by_qualified[n.def.qualifier + "::" + n.def.name].push_back(id);
      }
      g.nodes.push_back(std::move(n));
    }
    hot_names.insert(fd.structure.hot_names.begin(),
                     fd.structure.hot_names.end());
  }

  // Edges. A cold region cuts outgoing edges (the slow path it justifies
  // may call whatever it likes); LOG_* lines are exempt wholesale.
  for (Node& n : g.nodes) {
    FileData& fd = g.files[static_cast<std::size_t>(n.def.file)];
    for (const CallSite& cs : n.calls) {
      if (cs.callee == "INBAND_COLD_OK" || cs.callee == "INBAND_HOT") continue;
      bool cold = false;
      for (ColdRegion& r : fd.structure.cold_regions) {
        if (region_covers(r, cs.token)) {
          r.used = true;
          cold = true;
        }
      }
      if (cold) continue;
      if (fd.log_lines.count(cs.line) > 0) continue;
      if (cs.qualifier == "std") continue;
      const std::vector<int>* targets = nullptr;
      if (!cs.qualifier.empty()) {
        const auto it = by_qualified.find(cs.qualifier + "::" + cs.callee);
        if (it != by_qualified.end()) targets = &it->second;
      }
      if (targets == nullptr) {
        const auto it = by_name.find(cs.callee);
        if (it != by_name.end()) targets = &it->second;
      }
      if (targets == nullptr) continue;
      for (const int t : *targets) {
        n.edges.emplace_back(t, cs.line);
        ++g.edge_count;
      }
    }
    if (hot_names.count(n.def.name) > 0) n.hot = true;
  }

  // BFS from the hot roots, recording the tree parent for chains. Node ids
  // are already in sorted (file, token) order, so iteration is
  // deterministic.
  std::deque<int> queue;
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (g.nodes[i].hot && !g.nodes[i].reachable) {
      g.nodes[i].reachable = true;
      queue.push_back(static_cast<int>(i));
    }
  }
  while (!queue.empty()) {
    const std::size_t id = static_cast<std::size_t>(queue.front());
    queue.pop_front();
    for (const auto& [target, line] : g.nodes[id].edges) {
      if (g.nodes[static_cast<std::size_t>(target)].reachable) continue;
      g.nodes[static_cast<std::size_t>(target)].reachable = true;
      g.nodes[static_cast<std::size_t>(target)].parent = static_cast<int>(id);
      queue.push_back(target);
    }
  }
  return g;
}

std::string chain_entry(const Graph& g, const Node& n) {
  return display_name(n.def) + " (" + g.files[static_cast<std::size_t>(n.def.file)].path + ":" +
         std::to_string(n.def.line) + ")";
}

std::vector<std::string> build_chain(const Graph& g, int id) {
  std::vector<std::string> chain;
  for (int cur = id; cur != -1; cur = g.nodes[static_cast<std::size_t>(cur)].parent) {
    chain.push_back(chain_entry(g, g.nodes[static_cast<std::size_t>(cur)]));
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

// Runs the hazard rules over one function body. Emitted findings carry no
// chain (the caller attaches it). `probe` mode is used for unreachable
// functions: hazards are matched only so the waivers that would cover them
// register as used, and the findings are then discarded.
void scan_body(FileData& fd, const Node& n, std::vector<Finding>& out) {
  const std::vector<Token>& toks = fd.lexed.tokens;
  const auto add = [&](std::size_t tok, const std::string& rule,
                       std::string message) {
    Finding f{rule, fd.path, toks[tok].line, std::move(message), false, {}, {}};
    if (rule.compare(0, 4, "hot-") == 0) {
      if (fd.log_lines.count(f.line) > 0) return;  // guarded-log exemption
      for (ColdRegion& r : fd.structure.cold_regions) {
        if (region_covers(r, tok)) {
          f.waived = true;
          f.waiver_reason = r.reason;
          r.used = true;
          break;
        }
      }
    }
    out.push_back(std::move(f));
  };
  const std::string fn = display_name(n.def);

  for (std::size_t i = n.def.body_begin;
       i < n.def.body_end && i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdent) continue;
    const std::string& w = t.text;
    const bool has_next = i + 1 < toks.size();
    const bool call_like = has_next && is_punct(toks[i + 1], "(");
    const bool member =
        i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));

    // Placement new (`new (buf) T{...}`) constructs into caller-provided
    // storage and never touches the heap; an explicit `operator new(n)`
    // call does, and is distinguished by the preceding `operator` token.
    const bool placement =
        w == "new" && has_next && is_punct(toks[i + 1], "(") &&
        !(i > 0 && toks[i - 1].kind == TokenKind::kIdent &&
          toks[i - 1].text == "operator");
    if ((w == "new" && !placement) || w == "delete") {
      add(i, "hot-alloc", "operator " + w + " in hot function " + fn);
    } else if (!member && call_like && alloc_fns().count(w) > 0) {
      add(i, "hot-alloc", w + "() in hot function " + fn);
    } else if (alloc_makers().count(w) > 0 && has_next &&
               (call_like || is_punct(toks[i + 1], "<"))) {
      add(i, "hot-alloc", "std::" + w + " in hot function " + fn);
    } else if (w == "function" && has_next && is_punct(toks[i + 1], "<")) {
      add(i, "hot-stdfunc",
          "std::function construction in hot function " + fn +
              " (captures beyond the SBO budget allocate)");
    } else if (member && call_like && growth_members().count(w) > 0) {
      add(i, "hot-growth",
          "growth-capable container op ." + w + "() in hot function " + fn);
    } else if (fd.maps.count(w) > 0 && has_next && is_punct(toks[i + 1], "[")) {
      add(i, "hot-growth", "operator[] on map-like '" + w +
                               "' may insert, in hot function " + fn);
    } else if (w == "string" && has_next &&
               (toks[i + 1].kind == TokenKind::kIdent ||
                is_punct(toks[i + 1], "(") || is_punct(toks[i + 1], "{"))) {
      add(i, "hot-string", "std::string construction in hot function " + fn);
    } else if ((w == "to_string" && call_like) || string_types().count(w) > 0) {
      add(i, "hot-string",
          (w == "to_string" ? "std::to_string" : "std::" + w) +
              " in hot function " + fn);
    } else if (w == "throw") {
      add(i, "hot-throw", "throw in hot function " + fn);
    } else if ((!member && call_like && io_fns().count(w) > 0) ||
               io_idents().count(w) > 0) {
      add(i, "hot-io", "I/O ('" + w + "') in hot function " + fn);
    } else if (block_types().count(w) > 0 ||
               (call_like && !member && block_fns().count(w) > 0) ||
               (call_like && member && block_members().count(w) > 0)) {
      add(i, "hot-block",
          "lock/blocking primitive ('" + w + "') in hot function " + fn);
    } else if (w == "static") {
      if (!(has_next && toks[i + 1].kind == TokenKind::kIdent &&
            (toks[i + 1].text == "const" || toks[i + 1].text == "constexpr" ||
             toks[i + 1].text == "constinit"))) {
        // shard-*: deliberately not waivable by a cold region.
        Finding f{"shard-static", fd.path, t.line,
                  "mutable function-local static in " + fn + " is shared "
                  "across shards", false, {}, {}};
        out.push_back(std::move(f));
      }
    } else if (fd.globals.count(w) > 0 && !member) {
      Finding f{"shard-global", fd.path, t.line,
                "touches mutable namespace-scope state '" + w + "' in " + fn,
                false, {}, {}};
      out.push_back(std::move(f));
    }
  }
}

HotReport finish_report(Graph&& g, std::vector<std::string> errors) {
  HotReport report;
  report.errors = std::move(errors);
  report.functions = g.nodes.size();
  report.edges = g.edge_count;
  for (const Node& n : g.nodes) {
    report.roots += n.hot ? 1 : 0;
    report.reachable += n.reachable ? 1 : 0;
  }

  // Hazards. Reachable functions produce real findings (with chains);
  // unreachable ones are probed so the waivers sitting on their hazards
  // still count as used instead of warning.
  for (std::size_t id = 0; id < g.nodes.size(); ++id) {
    const Node& n = g.nodes[id];
    FileData& fd = g.files[static_cast<std::size_t>(n.def.file)];
    std::vector<Finding> found;
    scan_body(fd, n, found);
    if (n.reachable) {
      const std::vector<std::string> chain =
          build_chain(g, static_cast<int>(id));
      for (Finding& f : found) {
        f.chain = chain;
        fd.findings.push_back(std::move(f));
      }
    } else {
      // Probe: let comment waivers match and be marked used, then drop.
      apply_comment_waivers(fd.waivers, found);
    }
  }

  for (FileData& fd : g.files) {
    report.files_scanned.push_back(fd.path);
    apply_comment_waivers(fd.waivers, fd.findings);
    for (Finding& f : fd.findings) report.findings.push_back(std::move(f));
    for (UnusedWaiver& u : collect_unused_waivers(fd.waivers)) {
      report.unused_waivers.push_back(std::move(u));
      report.unused_waiver_files.push_back(fd.path);
    }
    for (const ColdRegion& r : fd.structure.cold_regions) {
      if (r.used) continue;
      report.unused_waivers.push_back({r.line, "INBAND_COLD_OK"});
      report.unused_waiver_files.push_back(fd.path);
    }
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return report;
}

std::vector<HotInput> discover(const std::vector<std::string>& paths,
                               std::vector<std::string>& errors) {
  const std::set<std::string> kExtensions = {".h",  ".hh",  ".hpp",
                                             ".cc", ".cpp", ".cxx"};
  std::vector<fs::path> files;
  for (const std::string& arg : paths) {
    std::error_code ec;
    const fs::path p{arg};
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) &&
            kExtensions.count(it->path().extension().string()) > 0) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      errors.push_back("cannot read path: " + arg);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  std::vector<HotInput> inputs;
  for (const fs::path& file : files) {
    std::ifstream in{file, std::ios::binary};
    if (!in) {
      errors.push_back("cannot open file: " + file.string());
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    inputs.push_back({file.generic_string(), buf.str()});
  }
  return inputs;
}

}  // namespace

std::size_t HotReport::unwaived() const {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (!f.waived) ++n;
  }
  return n;
}

std::size_t HotReport::waived() const { return findings.size() - unwaived(); }

const std::vector<std::string>& hot_rule_names() {
  static const std::vector<std::string> names = {
      "hot-alloc", "hot-stdfunc", "hot-growth",   "hot-string",
      "hot-throw", "hot-io",      "hot-block",    "shard-global",
      "shard-static", "bad-waiver"};
  return names;
}

HotReport analyze_hot(std::vector<HotInput> inputs) {
  return finish_report(build_graph(std::move(inputs)), {});
}

HotReport scan_hot(const std::vector<std::string>& paths) {
  std::vector<std::string> errors;
  std::vector<HotInput> inputs = discover(paths, errors);
  return finish_report(build_graph(std::move(inputs)), std::move(errors));
}

int render_hot_text(const HotReport& report, std::ostream& os) {
  for (const std::string& err : report.errors) {
    os << "hotlint: error: " << err << "\n";
  }
  for (const Finding& f : report.findings) {
    if (f.waived) continue;
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
    if (!f.chain.empty()) {
      os << "    reached via:";
      for (std::size_t i = 0; i < f.chain.size(); ++i) {
        os << (i == 0 ? " " : " -> ") << f.chain[i];
      }
      os << "\n";
    }
  }
  for (const Finding& f : report.findings) {
    if (!f.waived) continue;
    os << f.file << ":" << f.line << ": waived [" << f.rule
       << "]: " << f.waiver_reason << "\n";
  }
  for (std::size_t i = 0; i < report.unused_waivers.size(); ++i) {
    os << report.unused_waiver_files[i] << ":" << report.unused_waivers[i].line
       << ": warning: unused waiver (" << report.unused_waivers[i].rules
       << ")\n";
  }
  os << "hotlint: " << report.files_scanned.size() << " files, "
     << report.functions << " functions, " << report.roots << " hot roots, "
     << report.reachable << " reachable, " << report.unwaived()
     << " finding(s), " << report.waived() << " waived\n";
  return report.unwaived() == 0 && report.errors.empty() ? 0 : 1;
}

int render_hot_json(const HotReport& report, std::ostream& os) {
  os << "{\n  \"version\": 1,\n";
  os << "  \"files_scanned\": " << report.files_scanned.size() << ",\n";
  os << "  \"graph\": {\"functions\": " << report.functions
     << ", \"roots\": " << report.roots << ", \"edges\": " << report.edges
     << ", \"reachable\": " << report.reachable << "},\n";
  os << "  \"findings\": [";
  bool first = true;
  for (const Finding& f : report.findings) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"file\": \"" << json_escape(f.file) << "\", \"line\": "
       << f.line << ", \"rule\": \"" << json_escape(f.rule)
       << "\", \"waived\": " << (f.waived ? "true" : "false")
       << ", \"message\": \"" << json_escape(f.message) << "\""
       << ", \"waiver_reason\": \"" << json_escape(f.waiver_reason) << "\""
       << ", \"chain\": [";
    for (std::size_t i = 0; i < f.chain.size(); ++i) {
      os << (i == 0 ? "" : ", ") << "\"" << json_escape(f.chain[i]) << "\"";
    }
    os << "]}";
  }
  os << "\n  ],\n";
  os << "  \"unused_waivers\": [";
  first = true;
  for (std::size_t i = 0; i < report.unused_waivers.size(); ++i) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"file\": \"" << json_escape(report.unused_waiver_files[i])
       << "\", \"line\": " << report.unused_waivers[i].line
       << ", \"rules\": \"" << json_escape(report.unused_waivers[i].rules)
       << "\"}";
  }
  os << "\n  ],\n";
  os << "  \"errors\": [";
  first = true;
  for (const std::string& err : report.errors) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    \"" << json_escape(err) << "\"";
  }
  os << "\n  ],\n";
  os << "  \"counts\": {\"unwaived\": " << report.unwaived()
     << ", \"waived\": " << report.waived()
     << ", \"unused_waivers\": " << report.unused_waivers.size() << "}\n";
  os << "}\n";
  return report.unwaived() == 0 && report.errors.empty() ? 0 : 1;
}

void dump_callgraph(std::vector<HotInput> inputs, CallgraphFormat format,
                    std::ostream& os) {
  const Graph g = build_graph(std::move(inputs));
  // Edges deduped by (caller, callee); the first call line wins.
  std::map<std::pair<int, int>, int> edges;
  for (std::size_t id = 0; id < g.nodes.size(); ++id) {
    for (const auto& [target, line] : g.nodes[id].edges) {
      edges.emplace(std::make_pair(static_cast<int>(id), target), line);
    }
  }
  if (format == CallgraphFormat::kDot) {
    os << "digraph hotlint {\n";
    for (const Node& n : g.nodes) {
      os << "  \"" << display_name(n.def) << "\"";
      if (n.hot) {
        os << " [shape=box, style=bold]";
      } else if (!n.reachable) {
        os << " [style=dotted]";
      }
      os << ";\n";
    }
    for (const auto& [edge, line] : edges) {
      os << "  \"" << display_name(g.nodes[static_cast<std::size_t>(edge.first)].def) << "\" -> \""
         << display_name(g.nodes[static_cast<std::size_t>(edge.second)].def) << "\";\n";
    }
    os << "}\n";
    return;
  }
  os << "{\n  \"functions\": [";
  bool first = true;
  for (const Node& n : g.nodes) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"name\": \"" << json_escape(display_name(n.def))
       << "\", \"file\": \"" << json_escape(g.files[static_cast<std::size_t>(n.def.file)].path)
       << "\", \"line\": " << n.def.line
       << ", \"hot\": " << (n.hot ? "true" : "false")
       << ", \"reachable\": " << (n.reachable ? "true" : "false") << "}";
  }
  os << "\n  ],\n  \"edges\": [";
  first = true;
  for (const auto& [edge, line] : edges) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"caller\": \"" << json_escape(display_name(g.nodes[static_cast<std::size_t>(edge.first)].def))
       << "\", \"callee\": \""
       << json_escape(display_name(g.nodes[static_cast<std::size_t>(edge.second)].def))
       << "\", \"line\": " << line << "}";
  }
  os << "\n  ]\n}\n";
}

int dump_callgraph_paths(const std::vector<std::string>& paths,
                         CallgraphFormat format, std::ostream& os) {
  std::vector<std::string> errors;
  std::vector<HotInput> inputs = discover(paths, errors);
  dump_callgraph(std::move(inputs), format, os);
  return errors.empty() ? 0 : 1;
}

}  // namespace detlint
