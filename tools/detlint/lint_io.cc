#include "lint_io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

namespace detlint {
namespace {

namespace fs = std::filesystem;

const std::set<std::string>& extensions() {
  static const std::set<std::string> s = {".h",  ".hh",  ".hpp",
                                          ".cc", ".cpp", ".cxx"};
  return s;
}

}  // namespace

std::vector<SourceInput> discover_sources(
    const std::vector<std::string>& paths, std::vector<std::string>& errors,
    std::vector<fs::path>* dir_roots) {
  std::vector<fs::path> files;
  for (const std::string& arg : paths) {
    std::error_code ec;
    const fs::path p{arg};
    if (fs::is_directory(p, ec)) {
      if (dir_roots != nullptr) {
        dir_roots->push_back(p);
        // Headers are included as "subsystem/file.h" rooted one level above
        // the scanned tree (e.g. `detlint src` with `#include "lb/..."`).
        if (p.has_parent_path()) dir_roots->push_back(p.parent_path());
      }
      for (auto it = fs::recursive_directory_iterator(p, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) &&
            extensions().count(it->path().extension().string()) > 0) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      errors.push_back("cannot read path: " + arg);
    }
  }
  // Directory iteration order is filesystem-dependent; the linters' own
  // output must not be.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  std::vector<SourceInput> inputs;
  for (const fs::path& file : files) {
    std::ifstream in{file, std::ios::binary};
    if (!in) {
      errors.push_back("cannot open file: " + file.string());
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    inputs.push_back({file.generic_string(), buf.str()});
  }
  return inputs;
}

bool path_matches_include(const std::string& path, const std::string& inc) {
  if (path == inc) return true;
  const std::string suffix = "/" + inc;
  return path.size() > suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_findings_json(std::ostream& os, const std::vector<Finding>& findings,
                         bool with_chain) {
  os << "  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"file\": \"" << json_escape(f.file) << "\", \"line\": "
       << f.line << ", \"rule\": \"" << json_escape(f.rule)
       << "\", \"waived\": " << (f.waived ? "true" : "false")
       << ", \"message\": \"" << json_escape(f.message) << "\""
       << ", \"waiver_reason\": \"" << json_escape(f.waiver_reason) << "\"";
    if (with_chain) {
      os << ", \"chain\": [";
      for (std::size_t i = 0; i < f.chain.size(); ++i) {
        os << (i == 0 ? "" : ", ") << "\"" << json_escape(f.chain[i]) << "\"";
      }
      os << "]";
    }
    os << "}";
  }
  os << "\n  ]";
}

void write_unused_waivers_json(std::ostream& os,
                               const std::vector<UnusedWaiver>& unused,
                               const std::vector<std::string>& files) {
  os << "  \"unused_waivers\": [";
  bool first = true;
  for (std::size_t i = 0; i < unused.size(); ++i) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"file\": \"" << json_escape(files[i])
       << "\", \"line\": " << unused[i].line << ", \"rules\": \""
       << json_escape(unused[i].rules) << "\"}";
  }
  os << "\n  ]";
}

void write_errors_json(std::ostream& os,
                       const std::vector<std::string>& errors) {
  os << "  \"errors\": [";
  bool first = true;
  for (const std::string& err : errors) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    \"" << json_escape(err) << "\"";
  }
  os << "\n  ]";
}

void write_counts_json(std::ostream& os, std::size_t unwaived,
                       std::size_t waived, std::size_t unused) {
  os << "  \"counts\": {\"unwaived\": " << unwaived << ", \"waived\": "
     << waived << ", \"unused_waivers\": " << unused << "}";
}

void write_report_text(std::ostream& os, const std::string& tool,
                       const std::vector<std::string>& errors,
                       const std::vector<Finding>& findings,
                       const std::vector<UnusedWaiver>& unused,
                       const std::vector<std::string>& unused_files) {
  for (const std::string& err : errors) {
    os << tool << ": error: " << err << "\n";
  }
  for (const Finding& f : findings) {
    if (f.waived) continue;
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
    if (!f.chain.empty()) {
      os << "    reached via:";
      for (std::size_t i = 0; i < f.chain.size(); ++i) {
        os << (i == 0 ? " " : " -> ") << f.chain[i];
      }
      os << "\n";
    }
  }
  for (const Finding& f : findings) {
    if (!f.waived) continue;
    os << f.file << ":" << f.line << ": waived [" << f.rule
       << "]: " << f.waiver_reason << "\n";
  }
  for (std::size_t i = 0; i < unused.size(); ++i) {
    os << unused_files[i] << ":" << unused[i].line
       << ": warning: unused waiver (" << unused[i].rules << ")\n";
  }
}

}  // namespace detlint
