#include "rules.h"

#include <algorithm>
#include <cstddef>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "waivers.h"

namespace detlint {
namespace {

const std::set<std::string> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

// Ordered / sequence container spellings: a local declaration with one of
// these shadows an imported unordered name of the same spelling (e.g. a
// file's own `std::map<...> links_` vs. a header's unordered `links_`).
const std::set<std::string> kOrderedContainers = {
    "map", "set", "multimap", "multiset", "vector",
    "deque", "list", "array", "span", "flat_map", "flat_set"};

const std::set<std::string> kBeginCalls = {"begin", "cbegin", "rbegin",
                                           "crbegin"};

// Containers whose pointer-element instantiations make comparator-less
// sorting a pointer-order hazard.
const std::set<std::string> kSequenceContainers = {"vector", "deque", "list"};

// Integer targets of a pointer reinterpret_cast that typically feed a hash
// or a digest.
const std::set<std::string> kPtrIntTargets = {"uintptr_t", "intptr_t",
                                              "size_t", "uint64_t"};

// Identifiers that are wall-clock / entropy sources wherever they appear.
const std::set<std::string> kClockIdents = {
    "system_clock",   "steady_clock", "high_resolution_clock",
    "random_device",  "gettimeofday", "clock_gettime",
    "timespec_get",   "localtime",    "gmtime",
    "mt19937",        "mt19937_64",   "default_random_engine"};

// std::-qualified calls that are hazards (bare `time`/`clock` are too
// common as identifiers to flag unqualified except in specific call forms).
const std::set<std::string> kStdClockCalls = {"rand", "srand", "time",
                                              "clock"};

bool is_punct(const Token& t, std::string_view p) {
  return t.kind == TokenKind::kPunct && t.text == p;
}
bool is_ident(const Token& t, std::string_view name) {
  return t.kind == TokenKind::kIdent && t.text == name;
}

class Analyzer {
 public:
  Analyzer(const std::string& display_path, std::string_view source,
           bool control_path, const HarvestedDecls* imported)
      : path_{display_path},
        control_path_{control_path},
        imported_{imported},
        lexed_{lex(source)},
        toks_{lexed_.tokens} {}

  FileReport run() {
    collect_waivers();
    collect_decls();
    merge_imported();
    propagate_auto_aliases();
    rule_unordered_iter();
    rule_pointer_order();
    rule_wall_clock();
    if (control_path_) rule_float_eq();
    apply_waivers();
    finalize();
    return std::move(report_);
  }

  HarvestedDecls harvest() {
    collect_decls();
    HarvestedDecls out;
    out.unordered.assign(unordered_names_.begin(), unordered_names_.end());
    out.ordered_overrides.assign(ordered_names_.begin(),
                                 ordered_names_.end());
    out.pointer_containers.assign(pointer_container_names_.begin(),
                                  pointer_container_names_.end());
    out.floats.assign(float_names_.begin(), float_names_.end());
    return out;
  }

 private:
  const Token& tok(std::size_t i) const { return toks_[i]; }
  std::size_t size() const { return toks_.size(); }

  void add(std::string rule, int line, std::string message) {
    report_.findings.push_back(
        {std::move(rule), path_, line, std::move(message), false, {}, {}});
  }

  // --- waivers (shared engine, waivers.h) -----------------------------------

  void collect_waivers() {
    waivers_ = collect_comment_waivers(lexed_.comments, "detlint:allow",
                                       path_, rule_names(), report_.findings);
  }

  void apply_waivers() {
    apply_comment_waivers(waivers_, report_.findings);
    for (UnusedWaiver& u : collect_unused_waivers(waivers_)) {
      report_.unused_waivers.push_back(std::move(u));
    }
  }

  void finalize() {
    std::sort(report_.findings.begin(), report_.findings.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.line, a.rule, a.message) <
                       std::tie(b.line, b.rule, b.message);
              });
  }

  // --- declaration harvesting ----------------------------------------------

  // Skips a balanced <...> starting at `i` (toks_[i] must be '<'); returns
  // the index just past the matching '>'. Treats '>>' as two closes.
  std::size_t skip_template_args(std::size_t i) const {
    int depth = 0;
    while (i < size()) {
      const Token& t = tok(i);
      if (is_punct(t, "<")) {
        ++depth;
      } else if (is_punct(t, ">")) {
        --depth;
      } else if (is_punct(t, ">>")) {
        depth -= 2;
      } else if (is_punct(t, ";") || is_punct(t, "{")) {
        return i;  // malformed; bail without consuming the statement
      }
      ++i;
      if (depth <= 0) return i;
    }
    return i;
  }

  // After a container type (and its template args), records the declared
  // variable names into `out`: handles `T a;`, `T a, b;`, `T a{...};`,
  // `T a = ...;`, `T* p;`, `T& r;`.
  void harvest_declarators(std::size_t i, std::set<std::string>& out) {
    while (i < size() &&
           (is_punct(tok(i), "*") || is_punct(tok(i), "&") ||
            is_punct(tok(i), "&&") || is_ident(tok(i), "const"))) {
      ++i;
    }
    while (i < size() && tok(i).kind == TokenKind::kIdent) {
      out.insert(tok(i).text);
      ++i;
      if (i < size() && is_punct(tok(i), ",")) {
        ++i;
        continue;
      }
      break;
    }
  }

  void collect_decls() {
    collect_unordered_names();
    collect_ordered_overrides();
    collect_pointer_container_names();
    collect_float_names();
  }

  void merge_imported() {
    if (imported_ == nullptr) return;
    for (const std::string& n : imported_->unordered) {
      if (ordered_names_.count(n) == 0) unordered_names_.insert(n);
    }
    for (const std::string& n : imported_->pointer_containers) {
      pointer_container_names_.insert(n);
    }
    for (const std::string& n : imported_->floats) float_names_.insert(n);
  }

  void collect_ordered_overrides() {
    for (std::size_t i = 0; i < size(); ++i) {
      if (tok(i).kind != TokenKind::kIdent ||
          kOrderedContainers.count(tok(i).text) == 0) {
        continue;
      }
      if (i + 1 >= size() || !is_punct(tok(i + 1), "<")) continue;
      harvest_declarators(skip_template_args(i + 1), ordered_names_);
    }
  }

  void collect_unordered_names() {
    // Type aliases naming an unordered container: `using X = ...unordered_...;`
    for (std::size_t i = 0; i + 2 < size(); ++i) {
      if (!is_ident(tok(i), "using") || tok(i + 1).kind != TokenKind::kIdent ||
          !is_punct(tok(i + 2), "=")) {
        continue;
      }
      for (std::size_t j = i + 3; j < size() && !is_punct(tok(j), ";"); ++j) {
        if (tok(j).kind == TokenKind::kIdent &&
            kUnorderedContainers.count(tok(j).text) > 0) {
          unordered_types_.insert(tok(i + 1).text);
          break;
        }
      }
    }
    // Declarations: `std::unordered_map<...> name[, name2];` and alias uses.
    for (std::size_t i = 0; i < size(); ++i) {
      const Token& t = tok(i);
      if (t.kind != TokenKind::kIdent) continue;
      const bool is_container = kUnorderedContainers.count(t.text) > 0;
      const bool is_alias = unordered_types_.count(t.text) > 0;
      if (!is_container && !is_alias) continue;
      std::size_t j = i + 1;
      if (j < size() && is_punct(tok(j), "<")) j = skip_template_args(j);
      if (is_container && j == i + 1) continue;  // bare mention, not a decl
      harvest_declarators(j, unordered_names_);
    }
  }

  // Reference aliases: `auto& x = <expr over tracked names>;` tracks x,
  // unless the initializer calls a free function (then x holds a derived
  // value, e.g. a sorted snapshot, not the container itself). Iterates to a
  // fixpoint so chained aliases resolve. Runs after merge_imported so
  // aliases of header-declared members resolve too.
  void propagate_auto_aliases() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i + 2 < size(); ++i) {
        if (!is_ident(tok(i), "auto")) continue;
        std::size_t j = i + 1;
        while (j < size() &&
               (is_punct(tok(j), "&") || is_punct(tok(j), "*") ||
                is_punct(tok(j), "&&"))) {
          ++j;
        }
        if (j + 1 >= size() || tok(j).kind != TokenKind::kIdent ||
            !is_punct(tok(j + 1), "=")) {
          continue;
        }
        const std::string& name = tok(j).text;
        if (unordered_names_.count(name) > 0) continue;
        bool tracked = false;
        bool free_call = false;
        for (std::size_t k = j + 2; k < size() && !is_punct(tok(k), ";");
             ++k) {
          if (tok(k).kind == TokenKind::kIdent) {
            if (unordered_names_.count(tok(k).text) > 0) tracked = true;
            if (k + 1 < size() && is_punct(tok(k + 1), "(") &&
                !(k > 0 && (is_punct(tok(k - 1), ".") ||
                            is_punct(tok(k - 1), "->")))) {
              free_call = true;
            }
          }
        }
        if (tracked && !free_call) {
          unordered_names_.insert(name);
          changed = true;
        }
      }
    }
  }

  void collect_pointer_container_names() {
    for (std::size_t i = 0; i < size(); ++i) {
      if (tok(i).kind != TokenKind::kIdent ||
          kSequenceContainers.count(tok(i).text) == 0) {
        continue;
      }
      if (i + 1 >= size() || !is_punct(tok(i + 1), "<")) continue;
      const std::size_t past = skip_template_args(i + 1);
      // Pointer element type: a '*' directly before the closing '>'.
      if (past < 2 || !(is_punct(tok(past - 1), ">") ||
                        is_punct(tok(past - 1), ">>"))) {
        continue;
      }
      if (!is_punct(tok(past - 2), "*")) continue;
      harvest_declarators(past, pointer_container_names_);
    }
  }

  void collect_float_names() {
    for (std::size_t i = 0; i + 1 < size(); ++i) {
      if (!is_ident(tok(i), "double") && !is_ident(tok(i), "float")) continue;
      std::size_t j = i + 1;
      // `double* p` aliases, `double& r` params.
      while (j < size() &&
             (is_punct(tok(j), "&") || is_punct(tok(j), "const"))) {
        ++j;
      }
      if (j < size() && tok(j).kind == TokenKind::kIdent) {
        float_names_.insert(tok(j).text);
      }
    }
  }

  // --- rule passes ----------------------------------------------------------

  void rule_unordered_iter() {
    for (std::size_t i = 0; i < size(); ++i) {
      // Range-for whose range expression mentions a tracked container.
      if (is_ident(tok(i), "for") && i + 1 < size() &&
          is_punct(tok(i + 1), "(")) {
        int depth = 0;
        std::size_t colon = 0;
        std::size_t close = 0;
        for (std::size_t j = i + 1; j < size(); ++j) {
          if (is_punct(tok(j), "(")) ++depth;
          if (is_punct(tok(j), ")")) {
            --depth;
            if (depth == 0) {
              close = j;
              break;
            }
          }
          if (depth == 1 && colon == 0 && is_punct(tok(j), ":")) colon = j;
        }
        if (colon != 0 && close != 0) {
          // A tracked name nested one paren level deeper than the range
          // expression is a call argument — the loop iterates the call's
          // result (e.g. the sorted_entries() snapshot), not the container.
          int expr_depth = 1;
          for (std::size_t j = colon + 1; j < close; ++j) {
            if (is_punct(tok(j), "(")) ++expr_depth;
            if (is_punct(tok(j), ")")) --expr_depth;
            if (expr_depth == 1 && tok(j).kind == TokenKind::kIdent &&
                unordered_names_.count(tok(j).text) > 0) {
              add("unordered-iter", tok(i).line,
                  "range-for over unordered container '" + tok(j).text +
                      "' (iteration order is not deterministic)");
              break;
            }
          }
        }
      }
      // member.begin()/cbegin()/rbegin() on a tracked container.
      if (tok(i).kind == TokenKind::kIdent &&
          unordered_names_.count(tok(i).text) > 0 && i + 3 < size() &&
          (is_punct(tok(i + 1), ".") || is_punct(tok(i + 1), "->")) &&
          tok(i + 2).kind == TokenKind::kIdent &&
          kBeginCalls.count(tok(i + 2).text) > 0 &&
          is_punct(tok(i + 3), "(")) {
        add("unordered-iter", tok(i).line,
            "iterator over unordered container '" + tok(i).text + "' via ." +
                tok(i + 2).text + "()");
      }
      // std::begin(tracked) / begin(tracked).
      if (tok(i).kind == TokenKind::kIdent &&
          kBeginCalls.count(tok(i).text) > 0 && i + 2 < size() &&
          is_punct(tok(i + 1), "(") && tok(i + 2).kind == TokenKind::kIdent &&
          unordered_names_.count(tok(i + 2).text) > 0) {
        add("unordered-iter", tok(i).line,
            "iterator over unordered container '" + tok(i + 2).text +
                "' via " + tok(i).text + "()");
      }
    }
  }

  void rule_pointer_order() {
    for (std::size_t i = 0; i < size(); ++i) {
      // Comparator-less sort touching a pointer-element container.
      if (is_ident(tok(i), "sort") && i + 1 < size() &&
          is_punct(tok(i + 1), "(")) {
        int depth = 0;
        std::size_t commas = 0;
        bool ptr_container = false;
        std::size_t j = i + 1;
        for (; j < size(); ++j) {
          if (is_punct(tok(j), "(")) ++depth;
          if (is_punct(tok(j), ")")) {
            --depth;
            if (depth == 0) break;
          }
          if (depth == 1 && is_punct(tok(j), ",")) ++commas;
          if (tok(j).kind == TokenKind::kIdent &&
              pointer_container_names_.count(tok(j).text) > 0) {
            ptr_container = true;
          }
        }
        if (ptr_container && commas < 2) {
          add("pointer-order", tok(i).line,
              "sort of pointer elements without a key comparator (pointer "
              "order varies run to run)");
        }
      }
      // std::hash<T*>.
      if (is_ident(tok(i), "hash") && i + 1 < size() &&
          is_punct(tok(i + 1), "<")) {
        const std::size_t past = skip_template_args(i + 1);
        if (past >= 2 && is_punct(tok(past - 1), ">") &&
            is_punct(tok(past - 2), "*")) {
          add("pointer-order", tok(i).line,
              "std::hash over a pointer type (hashes the address)");
        }
      }
      // reinterpret_cast<integer>(ptr).
      if (is_ident(tok(i), "reinterpret_cast") && i + 1 < size() &&
          is_punct(tok(i + 1), "<")) {
        const std::size_t past = skip_template_args(i + 1);
        for (std::size_t j = i + 2; j + 1 < past; ++j) {
          if (tok(j).kind == TokenKind::kIdent &&
              kPtrIntTargets.count(tok(j).text) > 0) {
            add("pointer-order", tok(i).line,
                "pointer reinterpreted as integer '" + tok(j).text +
                    "' (address values are not reproducible)");
            break;
          }
        }
      }
    }
  }

  void rule_wall_clock() {
    for (std::size_t i = 0; i < size(); ++i) {
      if (tok(i).kind != TokenKind::kIdent) continue;
      const std::string& t = tok(i).text;
      if (kClockIdents.count(t) > 0) {
        add("wall-clock", tok(i).line,
            "wall-clock/entropy API '" + t +
                "' (simulation must use Simulator time / seeded Rng)");
        continue;
      }
      const bool std_qualified =
          i >= 2 && is_punct(tok(i - 1), "::") && is_ident(tok(i - 2), "std");
      if (std_qualified && kStdClockCalls.count(t) > 0) {
        add("wall-clock", tok(i).line,
            "wall-clock/entropy API 'std::" + t + "'");
        continue;
      }
      // Unqualified call forms that are unambiguous: rand(), srand(x),
      // time(nullptr|NULL|0), clock().
      if (i + 1 < size() && is_punct(tok(i + 1), "(")) {
        if ((t == "rand" || t == "clock") && i + 2 < size() &&
            is_punct(tok(i + 2), ")")) {
          add("wall-clock", tok(i).line,
              "wall-clock/entropy API '" + t + "()'");
        } else if (t == "srand") {
          add("wall-clock", tok(i).line, "wall-clock/entropy API 'srand'");
        } else if (t == "time" && i + 2 < size() &&
                   (is_ident(tok(i + 2), "nullptr") ||
                    is_ident(tok(i + 2), "NULL") ||
                    (tok(i + 2).kind == TokenKind::kNumber &&
                     tok(i + 2).text == "0"))) {
          add("wall-clock", tok(i).line,
              "wall-clock/entropy API 'time(" + tok(i + 2).text + ")'");
        }
      }
    }
  }

  void rule_float_eq() {
    for (std::size_t i = 1; i + 1 < size(); ++i) {
      if (!is_punct(tok(i), "==") && !is_punct(tok(i), "!=")) continue;
      const Token& lhs = tok(i - 1);
      const Token& rhs = tok(i + 1);
      if (is_ident(lhs, "operator")) continue;  // operator==/!= declaration
      const bool lhs_float =
          is_float_literal(lhs) || (lhs.kind == TokenKind::kIdent &&
                                    float_names_.count(lhs.text) > 0);
      const bool rhs_float =
          is_float_literal(rhs) || (rhs.kind == TokenKind::kIdent &&
                                    float_names_.count(rhs.text) > 0);
      if (lhs_float || rhs_float) {
        add("float-eq", tok(i).line,
            "floating-point " + tok(i).text +
                " comparison in a control path (use an epsilon or integer "
                "state)");
      }
    }
  }

  std::string path_;
  bool control_path_;
  const HarvestedDecls* imported_;
  LexResult lexed_;
  const std::vector<Token>& toks_;
  std::set<std::string> unordered_types_;
  std::set<std::string> unordered_names_;
  std::set<std::string> ordered_names_;
  std::set<std::string> pointer_container_names_;
  std::set<std::string> float_names_;
  std::vector<Waiver> waivers_;
  FileReport report_;
};

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "unordered-iter", "pointer-order", "wall-clock", "float-eq",
      "bad-waiver"};
  return kNames;
}

HarvestedDecls harvest_decls(std::string_view source) {
  return Analyzer("", source, false, nullptr).harvest();
}

FileReport analyze_source(const std::string& display_path,
                          std::string_view source, bool control_path,
                          const HarvestedDecls* imported) {
  return Analyzer(display_path, source, control_path, imported).run();
}

}  // namespace detlint
