// Shard-state harvest: class-level mutable-state inventory for shardlint.
//
// shardlint's pass 1b (callgraph.h is 1a). A lexical scope scanner walks the
// token stream, recognizes class/struct/union definitions with an optional
// INBAND_SHARD_* annotation (util/shard.h) immediately preceding the class
// keyword, and inventories each class's data members: name, constness,
// staticness, pointer/reference declarators, and the identifiers spelling
// the member's type (for RNG-engine detection and pointee-class resolution).
//
// The member heuristics mirror the global-variable heuristics in
// callgraph.cc: a class-scope statement ending in ';' is a data member
// unless it contains a '(' before any '=' (method declarations, function
// pointers) or spells `operator`. Function bodies — free or inline member —
// are skipped wholesale, so function-local classes are invisible by design.
#pragma once

#include <string>
#include <vector>

#include "lexer.h"

namespace detlint {

enum class ShardAnnotation {
  kNone,         // unannotated
  kLocal,        // INBAND_SHARD_LOCAL(domain)
  kSharedConst,  // INBAND_SHARD_SHARED_CONST
  kChannel,      // INBAND_SHARD_CHANNEL
};

struct ShardMember {
  std::string name;
  int line = 0;
  int file = -1;
  bool is_static = false;
  bool is_const = false;  // const/constexpr and not mutable
  bool is_ptr = false;    // a '*' anywhere in the declaration
  bool is_ref = false;    // a '&' anywhere in the declaration
  // Every identifier in the declaration other than the member name and
  // storage/cv keywords, in order: "std", "vector", "KvServer" for
  // `std::vector<KvServer*> v_;`.
  std::vector<std::string> type_idents;
};

struct ShardClass {
  std::string name;
  int line = 0;
  int file = -1;
  ShardAnnotation annotation = ShardAnnotation::kNone;
  std::string domain;  // INBAND_SHARD_LOCAL argument; empty otherwise
  std::vector<ShardMember> members;
};

// All named class/struct/union definitions in one file, in token order.
// Anonymous aggregates are skipped; nested classes are separate entries.
std::vector<ShardClass> harvest_shard_classes(const LexResult& lexed,
                                              int file);

}  // namespace detlint
