#include "shardlint.h"

#include <algorithm>
#include <deque>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "callgraph.h"
#include "program_graph.h"
#include "shardstate.h"
#include "waivers.h"

namespace detlint {
namespace {

bool is_punct(const Token& t, std::string_view p) {
  return t.kind == TokenKind::kPunct && t.text == p;
}

// RNG-engine type spellings: a mutable member of one of these types is a
// random stream whose draw order must stay within one owner.
const std::set<std::string>& rng_types() {
  static const std::set<std::string> s = {
      "Rng", "mt19937", "mt19937_64", "minstd_rand", "default_random_engine",
      "ranlux24", "ranlux48", "knuth_b"};
  return s;
}

// Integral spellings that make a member eligible for the sequence rule.
const std::set<std::string>& integral_types() {
  static const std::set<std::string> s = {
      "int",      "unsigned", "long",     "short",    "size_t",
      "int8_t",   "int16_t",  "int32_t",  "int64_t",  "uint8_t",
      "uint16_t", "uint32_t", "uint64_t", "SimTime",  "ptrdiff_t"};
  return s;
}

// Owning smart pointers transfer state into the holder's domain; only raw
// pointer/reference members alias another domain's state.
const std::set<std::string>& owning_ptrs() {
  static const std::set<std::string> s = {"unique_ptr", "shared_ptr"};
  return s;
}

bool is_owner_class(const ShardClass& c) {
  return c.annotation == ShardAnnotation::kLocal && c.domain == "owner";
}
bool is_named_local(const ShardClass& c) {
  return c.annotation == ShardAnnotation::kLocal && c.domain != "owner";
}

bool is_rng_member(const ShardMember& m) {
  if (m.is_const || m.is_ptr || m.is_ref) return false;
  for (const std::string& t : m.type_idents) {
    if (rng_types().count(t) > 0) return true;
  }
  return false;
}

bool is_seq_member(const ShardMember& m) {
  if (m.is_const || m.is_ptr || m.is_ref) return false;
  bool integral = false;
  for (const std::string& t : m.type_idents) {
    if (integral_types().count(t) > 0) integral = true;
  }
  if (!integral) return false;
  return m.name.compare(0, 5, "next_") == 0 ||
         m.name.find("seq") != std::string::npos ||
         m.name.find("counter") != std::string::npos;
}

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (const std::string& s : v) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out;
}

std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t i,
                          std::string_view open, std::string_view close) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], open)) {
      ++depth;
    } else if (is_punct(toks[i], close)) {
      if (--depth == 0) return i + 1;
    }
  }
  return toks.size();
}

std::size_t skip_template_args(const std::vector<Token>& toks,
                               std::size_t i) {
  int depth = 0;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (is_punct(t, "<")) {
      ++depth;
    } else if (is_punct(t, ">")) {
      --depth;
    } else if (is_punct(t, ">>")) {
      depth -= 2;
    } else if (is_punct(t, ";") || is_punct(t, "{")) {
      return i;
    }
    ++i;
    if (depth <= 0) return i;
  }
  return i;
}

// Per-domain reachability: the BFS tree for chain reconstruction plus the
// classes whose methods the walk visited.
struct DomainWalk {
  std::vector<char> reach;
  std::vector<int> parent;
};

ShardReport finish_report(ProgramGraph&& g, std::vector<std::string> errors) {
  ShardReport report;
  report.errors = std::move(errors);

  // Merged class registry across the program. Duplicate names (same class
  // harvested from several files would need a redefinition; in practice
  // same-named locals in different .cc files) merge: the first definition
  // wins for identity, the first annotation wins, members append.
  std::map<std::string, ShardClass> registry;
  for (std::size_t fi = 0; fi < g.files.size(); ++fi) {
    for (ShardClass& c :
         harvest_shard_classes(g.files[fi].lexed, static_cast<int>(fi))) {
      auto it = registry.find(c.name);
      if (it == registry.end()) {
        registry.emplace(c.name, std::move(c));
        continue;
      }
      ShardClass& r = it->second;
      if (r.annotation == ShardAnnotation::kNone &&
          c.annotation != ShardAnnotation::kNone) {
        r.annotation = c.annotation;
        r.domain = c.domain;
      }
      r.members.insert(r.members.end(),
                       std::make_move_iterator(c.members.begin()),
                       std::make_move_iterator(c.members.end()));
    }
  }
  report.classes = registry.size();
  std::set<std::string> named_domains;
  for (const auto& [name, c] : registry) {
    if (c.annotation != ShardAnnotation::kNone) ++report.annotated;
    if (is_named_local(c)) named_domains.insert(c.domain);
  }
  report.domains = named_domains.size();

  const auto lookup = [&](const std::string& name) -> const ShardClass* {
    if (name.empty()) return nullptr;
    const auto it = registry.find(name);
    return it == registry.end() ? nullptr : &it->second;
  };

  // Hot roots grouped by ownership domain. `owner`, channel and
  // shared-const roots seed no walk of their own (their state is exempt and
  // whatever they reach belongs to the calling/receiving domain);
  // unannotated and free roots get a "?" pseudo-domain each, which makes
  // everything they share with a real domain visibly multi-domain.
  std::map<std::string, std::vector<int>> domain_seeds;
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (!g.nodes[i].hot) continue;
    ++report.roots;
    const GraphNode& n = g.nodes[i];
    const ShardClass* c = lookup(n.def.qualifier);
    std::string d;
    if (c == nullptr) {
      d = "?" + display_name(n.def);
    } else if (is_named_local(*c)) {
      d = c->domain;
    } else if (c->annotation == ShardAnnotation::kNone) {
      d = "?" + n.def.qualifier;
    } else {
      continue;  // owner / channel / shared-const root
    }
    domain_seeds[d].push_back(static_cast<int>(i));
  }

  // Per-domain walks. touched[class][domain] = first visited node of that
  // class (for the chain); reached_any additionally covers owner classes
  // for the static-member rule.
  std::map<std::string, DomainWalk> walks;
  std::map<std::string, std::map<std::string, int>> touched;
  std::set<std::string> reached_any;
  for (const auto& [d, seeds] : domain_seeds) {
    DomainWalk w;
    w.reach.assign(g.nodes.size(), 0);
    w.parent.assign(g.nodes.size(), -1);
    std::deque<int> queue;
    for (const int s : seeds) {
      if (w.reach[static_cast<std::size_t>(s)]) continue;
      w.reach[static_cast<std::size_t>(s)] = 1;
      queue.push_back(s);
    }
    while (!queue.empty()) {
      const int id = queue.front();
      queue.pop_front();
      const GraphNode& n = g.nodes[static_cast<std::size_t>(id)];
      const ShardClass* cn = lookup(n.def.qualifier);
      if (cn != nullptr) {
        // Channel boundary: record nothing (its state is the sanctioned
        // crossing) and cut the walk — what the channel hands on is the
        // receiving domain's state, covered by that domain's own roots.
        if (cn->annotation == ShardAnnotation::kChannel) continue;
        if (cn->annotation == ShardAnnotation::kSharedConst) continue;
        reached_any.insert(cn->name);
        if (!is_owner_class(*cn)) {
          touched[cn->name].emplace(d, id);
        }
      }
      for (const GraphEdge& e : n.edges) {
        const GraphNode& tn = g.nodes[static_cast<std::size_t>(e.target)];
        if (!e.qualified) {
          // Member and bare calls resolve by name only; at a declared
          // foreign-domain boundary the annotation is trusted over the
          // lexical match. Only explicitly qualified `Cls::fn(` calls are
          // precise enough evidence to cross domains.
          const ShardClass* ct = lookup(tn.def.qualifier);
          if (ct != nullptr && is_named_local(*ct) && ct->domain != d) {
            continue;
          }
        }
        auto& seen = w.reach[static_cast<std::size_t>(e.target)];
        if (seen) continue;
        seen = 1;
        w.parent[static_cast<std::size_t>(e.target)] = id;
        queue.push_back(e.target);
      }
    }
    walks.emplace(d, std::move(w));
  }

  // Findings, grouped per file for the waiver pass.
  std::vector<std::vector<Finding>> per_file(g.files.size());
  const auto add = [&](int file, int line, const std::string& rule,
                       std::string message, std::vector<std::string> chain) {
    per_file[static_cast<std::size_t>(file)].push_back(
        {rule, g.files[static_cast<std::size_t>(file)].path, line,
         std::move(message), false, {}, std::move(chain)});
  };
  const auto chain_for = [&](const std::string& cls,
                             const std::string& d) -> std::vector<std::string> {
    const auto tit = touched.find(cls);
    if (tit == touched.end()) return {};
    const auto dit = tit->second.find(d);
    if (dit == tit->second.end()) return {};
    return build_chain(g, walks.at(d).parent, dit->second);
  };

  for (const auto& [name, c] : registry) {
    if (c.annotation == ShardAnnotation::kChannel ||
        c.annotation == ShardAnnotation::kSharedConst) {
      continue;
    }
    std::vector<std::string> doms;
    const auto tit = touched.find(name);
    if (tit != touched.end()) {
      for (const auto& [d, id] : tit->second) doms.push_back(d);
    }

    // Decl-form escape: a raw pointer/reference member aliasing another
    // named local domain's class. Path-independent — the alias is the
    // hazard whether or not a walk crosses it yet.
    if (is_named_local(c)) {
      for (const ShardMember& m : c.members) {
        if (!m.is_ptr && !m.is_ref) continue;
        bool owning = false;
        for (const std::string& t : m.type_idents) {
          if (owning_ptrs().count(t) > 0) owning = true;
        }
        if (owning) continue;
        for (const std::string& t : m.type_idents) {
          const ShardClass* o = lookup(t);
          if (o != nullptr && is_named_local(*o) && o->domain != c.domain) {
            add(m.file, m.line, "shard-escape",
                "member '" + m.name + "' of '" + name + "' (domain " +
                    c.domain + ") aliases '" + t + "' state of domain " +
                    o->domain + "; cross-domain access must go through an "
                    "INBAND_SHARD_CHANNEL class",
                chain_for(name, doms.empty() ? "" : doms.front()));
            break;
          }
        }
      }
      // Reach-form escape: another domain's walk touched this class.
      for (const std::string& d : doms) {
        if (d == c.domain) continue;
        add(c.file, c.line, "shard-escape",
            "'" + name + "' (domain " + c.domain +
                ") state is reached from domain '" + d + "'",
            chain_for(name, d));
      }
    }

    bool member_finding = false;
    if (doms.size() >= 2) {
      for (const ShardMember& m : c.members) {
        if (is_rng_member(m)) {
          add(m.file, m.line, "shard-rng",
              "RNG member '" + m.name + "' of '" + name +
                  "' is reachable from domains (" + join(doms) +
                  "); draw interleaving would depend on cross-domain timing",
              chain_for(name, doms.front()));
          member_finding = true;
        } else if (is_seq_member(m)) {
          add(m.file, m.line, "shard-seq",
              "sequence member '" + m.name + "' of '" + name +
                  "' is reachable from domains (" + join(doms) +
                  "); allocation order would depend on cross-domain timing",
              chain_for(name, doms.front()));
          member_finding = true;
        }
      }
    }

    if (c.annotation == ShardAnnotation::kNone && doms.size() >= 2 &&
        !member_finding) {
      bool mutable_member = false;
      for (const ShardMember& m : c.members) {
        if (!m.is_const && !m.is_static) mutable_member = true;
      }
      if (mutable_member) {
        add(c.file, c.line, "unannotated-shared",
            "'" + name + "' has mutable state reached from domains (" +
                join(doms) + ") but no INBAND_SHARD_* annotation",
            chain_for(name, doms.front()));
      }
    }

    // Mutable static data members are process-wide state regardless of the
    // class's own annotation; flagged once the class is on any hot path.
    if (reached_any.count(name) > 0) {
      for (const ShardMember& m : c.members) {
        if (!m.is_static || m.is_const) continue;
        add(m.file, m.line, "unannotated-shared",
            "mutable static member '" + m.name + "' of '" + name +
                "' is process-wide shared state",
            doms.empty() ? std::vector<std::string>{}
                         : chain_for(name, doms.front()));
      }
    }
  }

  // Arg-pass RNG coupling: inside a method of Q, a member call on another
  // object with an RNG member of Q in the argument list hands Q's stream
  // across an object boundary (the pre-refactor injector bug). Path-
  // independent: the coupling exists however the method is reached.
  for (const GraphNode& n : g.nodes) {
    const ShardClass* cq = lookup(n.def.qualifier);
    if (cq == nullptr || cq->annotation == ShardAnnotation::kChannel) continue;
    std::set<std::string> rng_members;
    for (const ShardMember& m : cq->members) {
      if (is_rng_member(m)) rng_members.insert(m.name);
    }
    if (rng_members.empty()) continue;
    const GraphFile& fd = g.files[static_cast<std::size_t>(n.def.file)];
    const std::vector<Token>& toks = fd.lexed.tokens;
    for (const CallSite& cs : n.calls) {
      if (!cs.member_call || cs.token < 2) continue;
      const Token& recv = toks[cs.token - 2];
      if (recv.kind != TokenKind::kIdent || recv.text == "this" ||
          rng_members.count(recv.text) > 0) {
        continue;
      }
      std::size_t open = cs.token + 1;
      if (open < toks.size() && is_punct(toks[open], "<")) {
        open = skip_template_args(toks, open);
      }
      if (open >= toks.size() || !is_punct(toks[open], "(")) continue;
      const std::size_t past = skip_balanced(toks, open, "(", ")");
      for (std::size_t k = open + 1; k + 1 < past; ++k) {
        if (toks[k].kind == TokenKind::kIdent &&
            rng_members.count(toks[k].text) > 0) {
          add(n.def.file, cs.line, "shard-rng",
              "RNG member '" + toks[k].text + "' of '" + n.def.qualifier +
                  "' passed into '" + recv.text + "." + cs.callee +
                  "(...)'; streams must stay with their owner — seed the "
                  "callee its own stream instead",
              {});
          break;
        }
      }
    }
  }

  // Waivers per file, then merge and sort.
  for (std::size_t fi = 0; fi < g.files.size(); ++fi) {
    GraphFile& fd = g.files[fi];
    report.files_scanned.push_back(fd.path);
    std::vector<Waiver> waivers =
        collect_comment_waivers(fd.lexed.comments, "shardlint:allow", fd.path,
                                shard_rule_names(), per_file[fi]);
    apply_comment_waivers(waivers, per_file[fi]);
    for (Finding& f : per_file[fi]) report.findings.push_back(std::move(f));
    for (UnusedWaiver& u : collect_unused_waivers(waivers)) {
      report.unused_waivers.push_back(std::move(u));
      report.unused_waiver_files.push_back(fd.path);
    }
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });

  // Partition map: class names only (no paths, no lines) so the committed
  // copy is stable under file moves and line churn.
  std::ostringstream ps;
  ps << "{\n  \"version\": 1,\n  \"domains\": {";
  std::map<std::string, std::vector<std::string>> by_domain;
  std::vector<std::string> owners;
  std::vector<std::string> channels;
  std::vector<std::string> shared_const;
  std::vector<std::string> unannotated;
  for (const auto& [name, c] : registry) {
    switch (c.annotation) {
      case ShardAnnotation::kLocal:
        (c.domain == "owner" ? owners : by_domain[c.domain]).push_back(name);
        break;
      case ShardAnnotation::kChannel:
        channels.push_back(name);
        break;
      case ShardAnnotation::kSharedConst:
        shared_const.push_back(name);
        break;
      case ShardAnnotation::kNone: {
        bool mutable_member = false;
        for (const ShardMember& m : c.members) {
          if (!m.is_const) mutable_member = true;
        }
        if (mutable_member) unannotated.push_back(name);
        break;
      }
    }
  }
  const auto name_list = [](std::ostream& os,
                            const std::vector<std::string>& names) {
    os << "[";
    for (std::size_t i = 0; i < names.size(); ++i) {
      os << (i == 0 ? "" : ", ") << "\"" << json_escape(names[i]) << "\"";
    }
    os << "]";
  };
  bool first = true;
  for (const auto& [d, names] : by_domain) {
    ps << (first ? "\n" : ",\n") << "    \"" << json_escape(d) << "\": ";
    name_list(ps, names);
    first = false;
  }
  ps << (first ? "" : "\n  ") << "},\n  \"owner\": ";
  name_list(ps, owners);
  ps << ",\n  \"channels\": ";
  name_list(ps, channels);
  ps << ",\n  \"shared_const\": ";
  name_list(ps, shared_const);
  ps << ",\n  \"unannotated\": ";
  name_list(ps, unannotated);
  ps << ",\n  \"reach\": {";
  first = true;
  for (const auto& [cls, doms] : touched) {
    std::vector<std::string> ds;
    for (const auto& [d, id] : doms) ds.push_back(d);
    ps << (first ? "\n" : ",\n") << "    \"" << json_escape(cls) << "\": ";
    name_list(ps, ds);
    first = false;
  }
  ps << (first ? "" : "\n  ") << "}\n}\n";
  report.partition_json = ps.str();
  return report;
}

}  // namespace

std::size_t ShardReport::unwaived() const {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (!f.waived) ++n;
  }
  return n;
}

std::size_t ShardReport::waived() const {
  return findings.size() - unwaived();
}

const std::vector<std::string>& shard_rule_names() {
  static const std::vector<std::string> names = {
      "shard-escape", "shard-rng", "shard-seq", "unannotated-shared",
      "bad-waiver"};
  return names;
}

ShardReport analyze_shard(std::vector<SourceInput> inputs) {
  return finish_report(build_program_graph(std::move(inputs)), {});
}

ShardReport scan_shard(const std::vector<std::string>& paths) {
  std::vector<std::string> errors;
  std::vector<SourceInput> inputs = discover_sources(paths, errors);
  return finish_report(build_program_graph(std::move(inputs)),
                       std::move(errors));
}

int render_shard_text(const ShardReport& report, std::ostream& os) {
  write_report_text(os, "shardlint", report.errors, report.findings,
                    report.unused_waivers, report.unused_waiver_files);
  os << "shardlint: " << report.files_scanned.size() << " files, "
     << report.classes << " classes (" << report.annotated << " annotated), "
     << report.roots << " hot roots, " << report.domains << " domains, "
     << report.unwaived() << " finding(s), " << report.waived()
     << " waived\n";
  return report.unwaived() == 0 && report.errors.empty() ? 0 : 1;
}

int render_shard_json(const ShardReport& report, std::ostream& os) {
  os << "{\n  \"version\": 1,\n";
  os << "  \"files_scanned\": " << report.files_scanned.size() << ",\n";
  os << "  \"ownership\": {\"classes\": " << report.classes
     << ", \"annotated\": " << report.annotated
     << ", \"roots\": " << report.roots
     << ", \"domains\": " << report.domains << "},\n";
  write_findings_json(os, report.findings, /*with_chain=*/true);
  os << ",\n";
  write_unused_waivers_json(os, report.unused_waivers,
                            report.unused_waiver_files);
  os << ",\n";
  write_errors_json(os, report.errors);
  os << ",\n";
  write_counts_json(os, report.unwaived(), report.waived(),
                    report.unused_waivers.size());
  os << "\n}\n";
  return report.unwaived() == 0 && report.errors.empty() ? 0 : 1;
}

}  // namespace detlint
