#include "scanner.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <tuple>

#include "lint_io.h"

namespace detlint {
namespace {

namespace fs = std::filesystem;

bool control_path(const fs::path& p) {
  for (const auto& part : p) {
    if (part == "lb" || part == "core") return true;
  }
  return false;
}

}  // namespace

std::size_t ScanReport::unwaived() const {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (!f.waived) ++n;
  }
  return n;
}

std::size_t ScanReport::waived() const { return findings.size() - unwaived(); }

ScanReport scan(const std::vector<std::string>& paths) {
  ScanReport report;
  std::vector<fs::path> include_roots;
  const std::vector<SourceInput> inputs =
      discover_sources(paths, report.errors, &include_roots);

  // Declarations from directly-included project headers, cached per header.
  std::map<std::string, HarvestedDecls> harvest_cache;
  const auto harvest_of = [&](const fs::path& header) -> const HarvestedDecls* {
    const std::string key = header.lexically_normal().generic_string();
    const auto it = harvest_cache.find(key);
    if (it != harvest_cache.end()) return &it->second;
    std::ifstream in{header, std::ios::binary};
    if (!in) return nullptr;
    std::ostringstream buf;
    buf << in.rdbuf();
    return &harvest_cache.emplace(key, harvest_decls(buf.str())).first->second;
  };

  for (const SourceInput& input : inputs) {
    const fs::path file{input.path};
    report.files_scanned.push_back(input.path);

    // Resolve quoted includes one level deep against the scan roots and the
    // including file's own directory, and union their declarations.
    HarvestedDecls imported;
    for (const std::string& inc : lex(input.source).includes) {
      std::vector<fs::path> candidates;
      candidates.push_back(file.parent_path() / inc);
      for (const fs::path& root : include_roots) candidates.push_back(root / inc);
      for (const fs::path& cand : candidates) {
        std::error_code ec;
        if (!fs::is_regular_file(cand, ec)) continue;
        if (const HarvestedDecls* h = harvest_of(cand)) {
          imported.unordered.insert(imported.unordered.end(),
                                    h->unordered.begin(), h->unordered.end());
          imported.pointer_containers.insert(
              imported.pointer_containers.end(),
              h->pointer_containers.begin(), h->pointer_containers.end());
          imported.floats.insert(imported.floats.end(), h->floats.begin(),
                                 h->floats.end());
        }
        break;
      }
    }

    FileReport fr =
        analyze_source(input.path, input.source, control_path(file), &imported);
    for (Finding& f : fr.findings) report.findings.push_back(std::move(f));
    for (UnusedWaiver& w : fr.unused_waivers) {
      report.unused_waivers.push_back(std::move(w));
      report.unused_waiver_files.push_back(input.path);
    }
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return report;
}

int render_text(const ScanReport& report, std::ostream& os) {
  write_report_text(os, "detlint", report.errors, report.findings,
                    report.unused_waivers, report.unused_waiver_files);
  os << "detlint: " << report.files_scanned.size() << " files, "
     << report.unwaived() << " finding(s), " << report.waived()
     << " waived\n";
  return report.unwaived() == 0 && report.errors.empty() ? 0 : 1;
}

int render_json(const ScanReport& report, std::ostream& os) {
  os << "{\n  \"version\": 1,\n";
  os << "  \"files_scanned\": " << report.files_scanned.size() << ",\n";
  write_findings_json(os, report.findings, /*with_chain=*/false);
  os << ",\n";
  write_unused_waivers_json(os, report.unused_waivers,
                            report.unused_waiver_files);
  os << ",\n";
  write_errors_json(os, report.errors);
  os << ",\n";
  write_counts_json(os, report.unwaived(), report.waived(),
                    report.unused_waivers.size());
  os << "\n}\n";
  return report.unwaived() == 0 && report.errors.empty() ? 0 : 1;
}

}  // namespace detlint
