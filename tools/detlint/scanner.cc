#include "scanner.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>

namespace detlint {
namespace {

namespace fs = std::filesystem;

const std::set<std::string> kExtensions = {".h",  ".hh",  ".hpp",
                                           ".cc", ".cpp", ".cxx"};

bool control_path(const fs::path& p) {
  for (const auto& part : p) {
    if (part == "lb" || part == "core") return true;
  }
  return false;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::size_t ScanReport::unwaived() const {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (!f.waived) ++n;
  }
  return n;
}

std::size_t ScanReport::waived() const { return findings.size() - unwaived(); }

ScanReport scan(const std::vector<std::string>& paths) {
  ScanReport report;
  std::vector<fs::path> files;
  std::vector<fs::path> include_roots;
  for (const std::string& arg : paths) {
    std::error_code ec;
    const fs::path p{arg};
    if (fs::is_directory(p, ec)) {
      include_roots.push_back(p);
      // Headers are included as "subsystem/file.h" rooted one level above
      // the scanned tree (e.g. `detlint src` with `#include "lb/..."`).
      if (p.has_parent_path()) include_roots.push_back(p.parent_path());
      for (auto it = fs::recursive_directory_iterator(p, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) &&
            kExtensions.count(it->path().extension().string()) > 0) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      report.errors.push_back("cannot read path: " + arg);
    }
  }
  // Directory iteration order is filesystem-dependent; the linter's own
  // output must not be.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Declarations from directly-included project headers, cached per header.
  std::map<std::string, HarvestedDecls> harvest_cache;
  const auto harvest_of = [&](const fs::path& header) -> const HarvestedDecls* {
    const std::string key = header.lexically_normal().generic_string();
    const auto it = harvest_cache.find(key);
    if (it != harvest_cache.end()) return &it->second;
    std::ifstream in{header, std::ios::binary};
    if (!in) return nullptr;
    std::ostringstream buf;
    buf << in.rdbuf();
    return &harvest_cache.emplace(key, harvest_decls(buf.str())).first->second;
  };

  for (const fs::path& file : files) {
    std::ifstream in{file, std::ios::binary};
    if (!in) {
      report.errors.push_back("cannot open file: " + file.string());
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string source = buf.str();
    const std::string display = file.generic_string();
    report.files_scanned.push_back(display);

    // Resolve quoted includes one level deep against the scan roots and the
    // including file's own directory, and union their declarations.
    HarvestedDecls imported;
    for (const std::string& inc : lex(source).includes) {
      std::vector<fs::path> candidates;
      candidates.push_back(file.parent_path() / inc);
      for (const fs::path& root : include_roots) candidates.push_back(root / inc);
      for (const fs::path& cand : candidates) {
        std::error_code ec;
        if (!fs::is_regular_file(cand, ec)) continue;
        if (const HarvestedDecls* h = harvest_of(cand)) {
          imported.unordered.insert(imported.unordered.end(),
                                    h->unordered.begin(), h->unordered.end());
          imported.pointer_containers.insert(
              imported.pointer_containers.end(),
              h->pointer_containers.begin(), h->pointer_containers.end());
          imported.floats.insert(imported.floats.end(), h->floats.begin(),
                                 h->floats.end());
        }
        break;
      }
    }

    FileReport fr =
        analyze_source(display, source, control_path(file), &imported);
    for (Finding& f : fr.findings) report.findings.push_back(std::move(f));
    for (UnusedWaiver& w : fr.unused_waivers) {
      report.unused_waivers.push_back(std::move(w));
      report.unused_waiver_files.push_back(display);
    }
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return report;
}

int render_text(const ScanReport& report, std::ostream& os) {
  for (const std::string& err : report.errors) {
    os << "detlint: error: " << err << "\n";
  }
  for (const Finding& f : report.findings) {
    if (f.waived) continue;
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
  }
  for (const Finding& f : report.findings) {
    if (!f.waived) continue;
    os << f.file << ":" << f.line << ": waived [" << f.rule
       << "]: " << f.waiver_reason << "\n";
  }
  for (std::size_t i = 0; i < report.unused_waivers.size(); ++i) {
    os << report.unused_waiver_files[i] << ":" << report.unused_waivers[i].line
       << ": warning: unused waiver (" << report.unused_waivers[i].rules
       << ")\n";
  }
  os << "detlint: " << report.files_scanned.size() << " files, "
     << report.unwaived() << " finding(s), " << report.waived()
     << " waived\n";
  return report.unwaived() == 0 && report.errors.empty() ? 0 : 1;
}

int render_json(const ScanReport& report, std::ostream& os) {
  os << "{\n  \"version\": 1,\n";
  os << "  \"files_scanned\": " << report.files_scanned.size() << ",\n";
  os << "  \"findings\": [";
  bool first = true;
  for (const Finding& f : report.findings) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"file\": \"" << json_escape(f.file) << "\", \"line\": "
       << f.line << ", \"rule\": \"" << json_escape(f.rule)
       << "\", \"waived\": " << (f.waived ? "true" : "false")
       << ", \"message\": \"" << json_escape(f.message) << "\""
       << ", \"waiver_reason\": \"" << json_escape(f.waiver_reason) << "\"}";
  }
  os << "\n  ],\n";
  os << "  \"unused_waivers\": [";
  first = true;
  for (std::size_t i = 0; i < report.unused_waivers.size(); ++i) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"file\": \"" << json_escape(report.unused_waiver_files[i])
       << "\", \"line\": " << report.unused_waivers[i].line
       << ", \"rules\": \"" << json_escape(report.unused_waivers[i].rules)
       << "\"}";
  }
  os << "\n  ],\n";
  os << "  \"errors\": [";
  first = true;
  for (const std::string& err : report.errors) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    \"" << json_escape(err) << "\"";
  }
  os << "\n  ],\n";
  os << "  \"counts\": {\"unwaived\": " << report.unwaived()
     << ", \"waived\": " << report.waived()
     << ", \"unused_waivers\": " << report.unused_waivers.size() << "}\n";
  os << "}\n";
  return report.unwaived() == 0 && report.errors.empty() ? 0 : 1;
}

}  // namespace detlint
