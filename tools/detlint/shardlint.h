// shardlint: whole-program shard-ownership analyzer.
//
// The third analyzer in the detlint family. Pass 1 reuses callgraph.h's
// function/call harvest plus shardstate.h's class-member inventory; pass 2
// walks the call graph from each INBAND_HOT root *per ownership domain*
// (util/shard.h annotations assign classes to domains) and classifies every
// piece of reachable mutable state:
//
//   shard-escape       state declared INBAND_SHARD_LOCAL(d1) aliased by a
//                      raw pointer/reference member of a different local
//                      domain, or reached from another domain's hot roots
//   shard-rng          an RNG-engine member reachable from two or more
//                      domains (stream sharing destroys per-shard replay),
//                      or an RNG member passed into another object's method
//   shard-seq          a sequence/counter member reachable from two or more
//                      domains (allocation order would depend on cross-
//                      shard interleaving)
//   unannotated-shared mutable state with no INBAND_SHARD_* annotation
//                      reached from two or more domains, and mutable static
//                      data members (process-wide state) anywhere reachable
//
// Domain walk semantics: `owner`-annotated classes are domain-transparent
// (instance-scoped engines — their state belongs to whoever owns them);
// INBAND_SHARD_SHARED_CONST classes are trusted and skipped; reachability
// never expands *out of* an INBAND_SHARD_CHANNEL class (the sanctioned
// crossing hands work to the receiving domain, whose own roots cover it),
// and channel/owner hot roots seed no walk of their own. Member and bare
// unqualified call edges into a class declared INBAND_SHARD_LOCAL of a
// *different* named domain are cut: lexical name-matched dispatch
// over-approximates, so declared domain boundaries are trusted there,
// while explicitly qualified `Cls::fn(` calls still propagate across them.
//
// Waivers: `// shardlint:allow(<rule>): <reason>` with the detlint
// mandatory-justification mechanics (waivers.h).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "lint_io.h"
#include "rules.h"

namespace detlint {

struct ShardReport {
  std::vector<Finding> findings;           // across all files, sorted
  std::vector<std::string> files_scanned;  // sorted display paths
  std::vector<UnusedWaiver> unused_waivers;
  std::vector<std::string> unused_waiver_files;  // parallel to unused_waivers
  std::vector<std::string> errors;
  // Ownership statistics, echoed into the JSON report.
  std::size_t classes = 0;
  std::size_t annotated = 0;
  std::size_t roots = 0;
  std::size_t domains = 0;  // named local domains, `owner` excluded
  // The machine-readable state -> domain partition map (schema in
  // README.md). Path-independent and deterministic: class names only,
  // sorted, so the committed copy survives file moves.
  std::string partition_json;

  std::size_t unwaived() const;
  std::size_t waived() const;
};

// All shardlint rule names, for CLI validation and --list-rules.
const std::vector<std::string>& shard_rule_names();

// Analyzes a set of files as one program (same input contract as hotlint:
// sorted path order, quoted includes resolve against the set by suffix).
ShardReport analyze_shard(std::vector<SourceInput> inputs);

// Discovery (lint_io) + analyze_shard.
ShardReport scan_shard(const std::vector<std::string>& paths);

// Human-readable report with root->state call chains. Returns the process
// exit code: 0 when no unwaived findings and no errors, 1 otherwise.
int render_shard_text(const ShardReport& report, std::ostream& os);

// Machine-readable JSON: detlint's schema plus per-finding "chain" arrays
// and a top-level "ownership" object with the statistics above.
int render_shard_json(const ShardReport& report, std::ostream& os);

}  // namespace detlint
