// Minimal C++ tokenizer for detlint.
//
// detlint's rules are lexical: they match token patterns, not an AST. The
// lexer therefore only needs to be right about the things that would corrupt
// a token stream — comments, string/char literals (including raw strings and
// digit separators), and preprocessor directives — and to preserve line
// numbers so findings and waivers anchor correctly. Comments are not tokens;
// they are collected separately because waivers
// (`// detlint:allow(<rule>): <reason>`) live in them.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace detlint {

enum class TokenKind {
  kIdent,    // identifiers and keywords
  kNumber,   // pp-number: integers, floats, hex, digit separators
  kString,   // "..." and R"(...)" (text excludes quotes)
  kCharLit,  // '...'
  kPunct,    // operators/punctuation, longest-match for multi-char ops
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;  // 1-based
};

struct Comment {
  int line;          // 1-based line the comment starts on
  std::string text;  // contents without the // or /* */ markers
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  // Targets of `#include "..."` directives (quoted form only), in order.
  // detlint harvests member declarations from directly-included project
  // headers so hazards in a .cc over members declared in its .h resolve.
  std::vector<std::string> includes;
};

// Tokenizes `source`. Never fails: unterminated literals are closed at EOF,
// unknown bytes become single-char punctuation. Preprocessor directives are
// consumed wholesale (honoring line continuations) and produce no tokens —
// detlint's rules target code, not macros, and `#include <...>` would
// otherwise read as comparison operators.
LexResult lex(std::string_view source);

// True when the number token spells a floating-point literal (has a decimal
// point, a decimal exponent, a hex-float exponent, or an f/F suffix).
bool is_float_literal(const Token& tok);

}  // namespace detlint
