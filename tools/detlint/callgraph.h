// Approximate intra-project call graph over detlint's token stream.
//
// hotlint's pass 1. Everything here is lexical: function definitions are
// recognized by signature shape (identifier, balanced parameter list,
// optional const/noexcept/trailing-return/ctor-init-list, then `{`), with a
// namespace/class scope stack supplying the qualifier for in-class method
// bodies. Call sites are `name(` occurrences inside a body; member calls
// (`x.f(` / `x->f(`) resolve by name against every same-named definition,
// which doubles as the virtual-dispatch approximation — a call through an
// interface fans out to each implementation of that method name.
//
// Explicit operator calls (`x.operator+(y)`, `operator<<(os, v)`,
// `f.operator()(a)`) compose the callee name across the operator tokens,
// and template member/qualified dispatch (`x.f<T>(...)`, `Cls::f<T>(...)`)
// skips the argument list to find the call paren.
//
// Known blind spots (documented in DESIGN.md §9): calls through
// std::function or other type-erased callables (the *construction* is
// flagged by hotlint's hot-stdfunc rule instead), destructor edges, bare
// free calls with explicit template arguments (`f<int>(...)` — the
// member/qualified forms resolve, the bare form would be ambiguous with
// comparisons), and implicit operator invocations (`a + b`, `f(x)` through
// a functor object). Preprocessor conditionals that unbalance braces degrade the
// scan for that file only.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.h"

namespace detlint {

// A function definition discovered in one file's token stream.
struct FunctionDef {
  std::string name;       // unqualified name ("transmit")
  std::string qualifier;  // "Link" for Link::transmit / in-class methods
  int file = -1;          // index into the caller's file list
  int line = 0;
  std::size_t body_begin = 0;  // token index just past the opening '{'
  std::size_t body_end = 0;    // token index of the closing '}'
};

// "Qualifier::name" or "name".
std::string display_name(const FunctionDef& def);

// A call site inside a function body.
struct CallSite {
  std::string callee;      // unqualified callee name
  std::string qualifier;   // "Cls" for Cls::fn(...); empty otherwise
  bool member_call = false;  // recv.fn( / recv->fn(
  int line = 0;
  std::size_t token = 0;   // index of the callee identifier
};

// A justified cold region: INBAND_COLD_OK("reason") covers the rest of its
// enclosing brace block (util/hotpath.h).
struct ColdRegion {
  std::size_t begin = 0;  // token index of the marker
  std::size_t end = 0;    // token index of the enclosing block's '}'
  int line = 0;
  std::string reason;
  bool used = false;
};

// Declarations a file exports to the analysis of files including it:
// mutable namespace-scope variables (shard-safety) and names declared with
// map-like types (operator[]-insert detection).
struct StructuralDecls {
  std::vector<std::string> mutable_globals;
  std::vector<std::string> map_names;
};

// Everything pass 1 extracts from one file.
struct FileStructure {
  std::vector<FunctionDef> functions;   // in token order
  std::vector<std::string> hot_names;   // names marked INBAND_HOT
  std::vector<ColdRegion> cold_regions;
  std::vector<int> bad_cold_lines;      // INBAND_COLD_OK without a reason
  StructuralDecls decls;
};

FileStructure analyze_structure(const LexResult& lexed, int file);

// Call sites within [def.body_begin, def.body_end).
std::vector<CallSite> find_calls(const LexResult& lexed,
                                 const FunctionDef& def);

}  // namespace detlint
