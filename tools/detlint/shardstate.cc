#include "shardstate.h"

#include <set>

namespace detlint {
namespace {

bool is_punct(const Token& t, std::string_view p) {
  return t.kind == TokenKind::kPunct && t.text == p;
}

// Storage-class / cv / declarator keywords excluded from type_idents.
const std::set<std::string> kMemberKeywords = {
    "static", "const",    "constexpr", "constinit", "mutable",
    "inline", "volatile", "thread_local",
};

std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t i,
                          std::string_view open, std::string_view close) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], open)) {
      ++depth;
    } else if (is_punct(toks[i], close)) {
      if (--depth == 0) return i + 1;
    }
  }
  return toks.size();
}

std::size_t skip_template_args(const std::vector<Token>& toks,
                               std::size_t i) {
  int depth = 0;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (is_punct(t, "<")) {
      ++depth;
    } else if (is_punct(t, ">")) {
      --depth;
    } else if (is_punct(t, ">>")) {
      depth -= 2;
    } else if (is_punct(t, ";") || is_punct(t, "{")) {
      return i;
    }
    ++i;
    if (depth <= 0) return i;
  }
  return i;
}

class ShardStateScanner {
 public:
  ShardStateScanner(const LexResult& lexed, int file)
      : toks_{lexed.tokens}, file_{file} {}

  std::vector<ShardClass> run() {
    scan();
    return std::move(out_);
  }

 private:
  // -1 in class_stack_ marks a namespace scope or an anonymous/ignored
  // class; otherwise the index of the ShardClass collecting members.
  bool in_named_class() const {
    return !class_stack_.empty() && class_stack_.back() >= 0;
  }

  // Reads the INBAND_SHARD_* annotation, if any, out of the statement
  // tokens pending before a class keyword.
  void parse_annotation(ShardClass& cls) const {
    for (std::size_t k = 0; k < stmt_.size(); ++k) {
      const Token& t = *stmt_[k];
      if (t.kind != TokenKind::kIdent) continue;
      if (t.text == "INBAND_SHARD_SHARED_CONST") {
        cls.annotation = ShardAnnotation::kSharedConst;
        return;
      }
      if (t.text == "INBAND_SHARD_CHANNEL") {
        cls.annotation = ShardAnnotation::kChannel;
        return;
      }
      if (t.text == "INBAND_SHARD_LOCAL" && k + 2 < stmt_.size() &&
          is_punct(*stmt_[k + 1], "(") &&
          stmt_[k + 2]->kind == TokenKind::kIdent) {
        cls.annotation = ShardAnnotation::kLocal;
        cls.domain = stmt_[k + 2]->text;
        return;
      }
    }
  }

  // Classifies the class-scope statement pending at a ';' as a data member.
  void flush_member() {
    if (stmt_.empty() || !in_named_class()) {
      stmt_.clear();
      return;
    }
    ShardMember m;
    m.file = file_;
    std::size_t first_eq = stmt_.size();
    for (std::size_t k = 0; k < stmt_.size(); ++k) {
      if (is_punct(*stmt_[k], "=")) {
        first_eq = k;
        break;
      }
    }
    bool rejected = false;
    std::size_t idents = 0;
    for (std::size_t k = 0; k < stmt_.size(); ++k) {
      const Token& t = *stmt_[k];
      if (is_punct(t, "(") && k < first_eq) rejected = true;  // method decl
      if (t.kind != TokenKind::kIdent) continue;
      ++idents;
      if (t.text == "operator") rejected = true;
      if (t.text == "static") m.is_static = true;
      if (t.text == "const" || t.text == "constexpr") m.is_const = true;
      if (t.text == "mutable") m.is_const = false;
    }
    if (rejected || idents < 2) {
      stmt_.clear();
      return;
    }
    // Member name: last identifier before '=' / '[' (arrays) / ':'
    // (bitfields); declarator punctuation before it marks ptr/ref.
    const Token* name = nullptr;
    for (std::size_t k = 0; k < stmt_.size(); ++k) {
      const Token& t = *stmt_[k];
      if (is_punct(t, "=") || is_punct(t, "[") || is_punct(t, ":")) break;
      if (t.kind == TokenKind::kIdent) name = &t;
      if (is_punct(t, "*")) m.is_ptr = true;
      if (is_punct(t, "&") || is_punct(t, "&&")) m.is_ref = true;
    }
    if (name == nullptr) {
      stmt_.clear();
      return;
    }
    m.name = name->text;
    m.line = name->line;
    for (std::size_t k = 0; k < stmt_.size(); ++k) {
      const Token& t = *stmt_[k];
      if (&t == name) break;
      if (t.kind == TokenKind::kIdent && kMemberKeywords.count(t.text) == 0) {
        m.type_idents.push_back(t.text);
      }
    }
    out_[static_cast<std::size_t>(class_stack_.back())].members.push_back(
        std::move(m));
    stmt_.clear();
  }

  void scan() {
    std::size_t i = 0;
    while (i < toks_.size()) {
      const Token& t = toks_[i];
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "{") {
          // '(' in the pending statement => a function body (skipped
          // wholesale); otherwise a braced initializer, skipped with the
          // statement kept for the member flush at the following ';'.
          bool has_paren = false;
          for (const Token* s : stmt_) {
            if (is_punct(*s, "(")) has_paren = true;
          }
          if (has_paren) stmt_.clear();
          i = skip_balanced(toks_, i, "{", "}");
          continue;
        }
        if (t.text == "}") {
          stmt_.clear();
          if (!class_stack_.empty()) class_stack_.pop_back();
          ++i;
          continue;
        }
        if (t.text == ";") {
          flush_member();
          ++i;
          continue;
        }
        stmt_.push_back(&t);
        ++i;
        continue;
      }
      if (t.kind != TokenKind::kIdent) {
        stmt_.push_back(&t);
        ++i;
        continue;
      }
      const std::string& w = t.text;
      if (w == "namespace") {
        stmt_.clear();
        std::size_t j = i + 1;
        while (j < toks_.size() && !is_punct(toks_[j], "{") &&
               !is_punct(toks_[j], ";") && !is_punct(toks_[j], "=")) {
          ++j;
        }
        if (j < toks_.size() && is_punct(toks_[j], "{")) {
          class_stack_.push_back(-1);
          i = j + 1;
        } else {
          i = j < toks_.size() ? j + 1 : j;
        }
        continue;
      }
      if (w == "class" || w == "struct" || w == "union") {
        ShardClass cls;
        cls.file = file_;
        cls.line = t.line;
        parse_annotation(cls);
        stmt_.clear();
        std::size_t j = i + 1;
        while (j < toks_.size() && !is_punct(toks_[j], "{") &&
               !is_punct(toks_[j], ";") && !is_punct(toks_[j], "(")) {
          if (is_punct(toks_[j], "<")) {
            j = skip_template_args(toks_, j);
            continue;
          }
          if (cls.name.empty() && toks_[j].kind == TokenKind::kIdent &&
              toks_[j].text != "final" && toks_[j].text != "alignas") {
            cls.name = toks_[j].text;
            cls.line = toks_[j].line;
          }
          ++j;
        }
        if (j < toks_.size() && is_punct(toks_[j], "{")) {
          if (cls.name.empty()) {
            class_stack_.push_back(-1);
          } else {
            class_stack_.push_back(static_cast<int>(out_.size()));
            out_.push_back(std::move(cls));
          }
          i = j + 1;
        } else {
          // Forward declaration / elaborated type / macro shape: no scope.
          i = j < toks_.size() ? j + 1 : j;
        }
        continue;
      }
      if (w == "enum") {
        stmt_.clear();
        std::size_t j = i + 1;
        while (j < toks_.size() && !is_punct(toks_[j], "{") &&
               !is_punct(toks_[j], ";")) {
          ++j;
        }
        i = j < toks_.size() && is_punct(toks_[j], "{")
                ? skip_balanced(toks_, j, "{", "}")
                : (j < toks_.size() ? j + 1 : j);
        continue;
      }
      if (w == "using" || w == "typedef" || w == "friend") {
        stmt_.clear();
        while (i < toks_.size() && !is_punct(toks_[i], ";")) ++i;
        if (i < toks_.size()) ++i;
        continue;
      }
      if (w == "template") {
        stmt_.clear();
        i = i + 1 < toks_.size() && is_punct(toks_[i + 1], "<")
                ? skip_template_args(toks_, i + 1)
                : i + 1;
        continue;
      }
      if ((w == "public" || w == "private" || w == "protected") &&
          i + 1 < toks_.size() && is_punct(toks_[i + 1], ":")) {
        stmt_.clear();
        i += 2;
        continue;
      }
      stmt_.push_back(&t);
      ++i;
      continue;
    }
  }

  const std::vector<Token>& toks_;
  int file_;
  std::vector<int> class_stack_;
  std::vector<const Token*> stmt_;
  std::vector<ShardClass> out_;
};

}  // namespace

std::vector<ShardClass> harvest_shard_classes(const LexResult& lexed,
                                              int file) {
  return ShardStateScanner(lexed, file).run();
}

}  // namespace detlint
