// File discovery, rule dispatch, and report rendering for detlint.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "rules.h"

namespace detlint {

struct ScanReport {
  std::vector<Finding> findings;             // across all files, sorted
  std::vector<std::string> files_scanned;    // sorted display paths
  std::vector<UnusedWaiver> unused_waivers;  // with .rules, anchored per file
  std::vector<std::string> unused_waiver_files;  // parallel to unused_waivers
  std::vector<std::string> errors;           // unreadable paths etc.

  std::size_t unwaived() const;
  std::size_t waived() const;
};

// Scans every C++ source file (.h .hh .hpp .cc .cpp .cxx) under `paths`
// (files or directories, recursed). Files are processed in sorted path order
// so the report itself is deterministic. The float-eq rule is enabled for
// files with an `lb` or `core` path component.
ScanReport scan(const std::vector<std::string>& paths);

// Human-readable report. Returns the process exit code: 0 when no unwaived
// findings, 1 otherwise.
int render_text(const ScanReport& report, std::ostream& os);

// Machine-readable JSON report (schema documented in README.md). Same exit
// code contract as render_text.
int render_json(const ScanReport& report, std::ostream& os);

}  // namespace detlint
