// detlint rule engine: determinism-hazard patterns over a token stream.
//
// Four rule classes (DESIGN.md §9 "Determinism hazard taxonomy"):
//
//   unordered-iter  iteration over std::unordered_{map,set,multimap,multiset}
//                   (range-for, .begin()/.cbegin() family, std::begin). The
//                   rule over-approximates on purpose: a lexical pass cannot
//                   prove a loop body order-independent, so *every* iteration
//                   of an unordered container must either go through the
//                   blessed sorted-snapshot helpers (util/sorted_view.h) or
//                   carry a justified waiver.
//   pointer-order   pointer values used as ordering or digest inputs:
//                   comparator-less sort of pointer-element containers,
//                   std::hash over pointer types, reinterpret_cast of a
//                   pointer to an integer type.
//   wall-clock      wall-clock / entropy APIs (system_clock, steady_clock,
//                   time(nullptr), std::rand, random_device, ...) anywhere in
//                   scanned code; simulation code must take time from the
//                   Simulator and randomness from seeded Rng engines.
//   float-eq        floating-point ==/!= in control paths (applied to files
//                   under lb/ and core/ only).
//
// Waivers: `// detlint:allow(<rule>[,<rule>...]): <reason>` on the finding's
// line or the line directly above waives matching findings. The reason is
// mandatory; a detlint:allow marker that does not parse or lacks a reason is
// itself a finding (`bad-waiver`) and cannot be waived.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lexer.h"

namespace detlint {

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
  bool waived = false;
  std::string waiver_reason;
  // hotlint only: call chain root -> function containing the hazard, each
  // entry "Qualified::name (file:line)". Empty for detlint findings.
  std::vector<std::string> chain;
};

struct UnusedWaiver {
  int line = 0;
  std::string rules;
};

struct FileReport {
  std::vector<Finding> findings;
  std::vector<UnusedWaiver> unused_waivers;
};

// All rule names, for CLI validation and --list-rules.
const std::vector<std::string>& rule_names();

// Declarations harvested from one file, importable into the analysis of
// files that #include it.
struct HarvestedDecls {
  std::vector<std::string> unordered;           // unordered-container names
  std::vector<std::string> ordered_overrides;   // names with ordered types
  std::vector<std::string> pointer_containers;  // vector<T*>-style names
  std::vector<std::string> floats;              // double/float names
};

// Harvests declarations only (no findings). Used by the scanner to resolve
// members declared in a directly-included header but used in a .cc.
HarvestedDecls harvest_decls(std::string_view source);

// Analyzes one file's source. `display_path` is echoed into findings;
// `control_path` enables the float-eq rule (lb/ and core/ files);
// `imported` carries declarations harvested from directly-included project
// headers (may be null). A name locally declared with an ordered container
// type shadows an imported unordered name of the same spelling.
FileReport analyze_source(const std::string& display_path,
                          std::string_view source, bool control_path,
                          const HarvestedDecls* imported = nullptr);

}  // namespace detlint
