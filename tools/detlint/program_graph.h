// Whole-program call-graph assembly over callgraph.h's per-file harvest.
//
// Shared by the path-aware analyzers (hotlint, shardlint): lexes every
// input, runs the pass-1 structure scan, unions shard-relevant declarations
// from quoted includes resolved against the scanned set, builds the global
// node list with name/qualified indices, and links call sites to definitions
// (qualified lookup first, name-only fallback; member calls fan out to every
// same-named method). Cold regions cut outgoing edges and are marked used
// when they do; LOG_* macro lines contribute no edges.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "callgraph.h"
#include "lint_io.h"

namespace detlint {

struct GraphFile {
  std::string path;
  LexResult lexed;
  FileStructure structure;
  std::set<int> log_lines;        // lines carrying a LOG_* macro
  std::set<std::string> globals;  // effective: own + included files'
  std::set<std::string> maps;
};

struct GraphEdge {
  int target = -1;
  int line = 0;
  // True when the edge comes from a receiver call (`x.f(` / `x->f(`).
  bool member_call = false;
  // True when the call site named its target precisely (`Cls::fn(`).
  // Member and bare unqualified calls resolve by name only and may
  // over-approximate dispatch; shardlint cuts those imprecise edges at
  // declared ownership-domain boundaries and trusts only qualified calls
  // to cross them.
  bool qualified = false;
};

struct GraphNode {
  FunctionDef def;
  std::vector<CallSite> calls;
  std::vector<GraphEdge> edges;
  bool hot = false;
};

struct ProgramGraph {
  std::vector<GraphFile> files;
  std::vector<GraphNode> nodes;
  std::size_t edge_count = 0;
};

// An identifier spelled LOG_<UPPER> marks a level-guarded logging macro;
// hazards and call edges on its line are suppressed (the macro compiles the
// expression out below the active level).
bool is_log_macro(const std::string& name);

// True when a cold region covers the token, excluding the marker's own
// INBAND_COLD_OK("...") tokens so a region does not justify itself.
bool cold_region_covers(const ColdRegion& r, std::size_t token);

// Inputs are deduped and processed in sorted path order regardless of the
// order given, so node ids (and with them every report) are deterministic.
ProgramGraph build_program_graph(std::vector<SourceInput> inputs);

// BFS over the graph from `seeds`, filling `reachable` and the BFS tree
// `parent` (-1 for seeds and unreached nodes). Vectors are sized to the
// node count by the call.
void bfs_reach(const ProgramGraph& g, const std::vector<int>& seeds,
               std::vector<char>& reachable, std::vector<int>& parent);

// "Qualified::name (file:line)" for one node.
std::string chain_entry(const ProgramGraph& g, const GraphNode& n);

// Root -> ... -> node chain along the BFS tree recorded in `parent`.
std::vector<std::string> build_chain(const ProgramGraph& g,
                                     const std::vector<int>& parent, int id);

}  // namespace detlint
