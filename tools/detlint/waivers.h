// Shared comment-waiver engine for detlint and hotlint.
//
// Both analyzers use the same mandatory-justification mechanics:
//
//   // <marker>(<rule>[,<rule>...]): <reason>
//
// on the finding's line or the line directly above waives matching findings.
// The reason is non-optional; a marker that does not parse, lacks a reason,
// or names an unknown rule is itself a `bad-waiver` finding and cannot be
// waived. Waivers that cover nothing surface as unused-waiver warnings so
// stale justifications rot visibly. detlint uses marker `detlint:allow`;
// hotlint uses `hotlint:allow`.
#pragma once

#include <string>
#include <vector>

#include "lexer.h"
#include "rules.h"  // Finding, UnusedWaiver

namespace detlint {

struct Waiver {
  int line = 0;
  std::vector<std::string> rules;
  std::string reason;
  bool used = false;
};

// Parses `<marker>(...)` waivers out of a file's comments. Malformed
// markers append `bad-waiver` findings (anchored at `display_path`) to
// `bad`; `known_rules` validates the rule list.
std::vector<Waiver> collect_comment_waivers(
    const std::vector<Comment>& comments, const std::string& marker,
    const std::string& display_path,
    const std::vector<std::string>& known_rules, std::vector<Finding>& bad);

// Waives findings sitting on a waiver's line or the line directly below it
// whose rule the waiver names. `bad-waiver` findings are never waived.
// Matching waivers are marked used.
void apply_comment_waivers(std::vector<Waiver>& waivers,
                           std::vector<Finding>& findings);

// Waivers that covered nothing, with their rule lists comma-joined.
std::vector<UnusedWaiver> collect_unused_waivers(
    const std::vector<Waiver>& waivers);

}  // namespace detlint
