#include "waivers.h"

#include <algorithm>

namespace detlint {
namespace {

std::string trim(std::string s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::vector<Waiver> collect_comment_waivers(
    const std::vector<Comment>& comments, const std::string& marker,
    const std::string& display_path,
    const std::vector<std::string>& known_rules, std::vector<Finding>& bad) {
  std::vector<Waiver> out;
  const auto add_bad = [&](int line, std::string message) {
    bad.push_back({"bad-waiver", display_path, line, std::move(message), false,
                   {}, {}});
  };
  for (const Comment& c : comments) {
    const std::size_t at = c.text.find(marker);
    if (at == std::string::npos) continue;
    // Parse <marker>(<rules>): <reason> by hand; a marker that does not
    // parse is a finding, not silently ignored.
    const std::size_t open = c.text.find('(', at + marker.size());
    const std::size_t close =
        open == std::string::npos ? std::string::npos : c.text.find(')', open);
    const std::size_t colon =
        close == std::string::npos ? std::string::npos
                                   : c.text.find(':', close);
    if (open == std::string::npos || close == std::string::npos ||
        colon == std::string::npos) {
      add_bad(c.line, "malformed waiver; expected " + marker +
                          "(<rule>): <reason>");
      continue;
    }
    const std::string reason = trim(c.text.substr(colon + 1));
    if (reason.empty()) {
      add_bad(c.line, "waiver is missing a justification");
      continue;
    }
    Waiver w;
    w.line = c.line;
    w.reason = reason;
    std::string rules = c.text.substr(open + 1, close - open - 1);
    std::size_t start = 0;
    while (start <= rules.size()) {
      const std::size_t comma = rules.find(',', start);
      const std::string name = trim(rules.substr(
          start,
          comma == std::string::npos ? std::string::npos : comma - start));
      if (!name.empty()) w.rules.push_back(name);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    bool ok = !w.rules.empty();
    for (const std::string& r : w.rules) {
      ok = ok && std::find(known_rules.begin(), known_rules.end(), r) !=
                     known_rules.end();
    }
    if (!ok) {
      add_bad(c.line, "waiver names an unknown rule: " + rules);
      continue;
    }
    out.push_back(std::move(w));
  }
  return out;
}

void apply_comment_waivers(std::vector<Waiver>& waivers,
                           std::vector<Finding>& findings) {
  for (Finding& f : findings) {
    if (f.rule == "bad-waiver" || f.waived) continue;
    for (Waiver& w : waivers) {
      const bool near = w.line == f.line || w.line == f.line - 1;
      const bool covers =
          std::find(w.rules.begin(), w.rules.end(), f.rule) != w.rules.end();
      if (near && covers) {
        f.waived = true;
        f.waiver_reason = w.reason;
        w.used = true;
        break;
      }
    }
  }
}

std::vector<UnusedWaiver> collect_unused_waivers(
    const std::vector<Waiver>& waivers) {
  std::vector<UnusedWaiver> out;
  for (const Waiver& w : waivers) {
    if (w.used) continue;
    std::string joined;
    for (const std::string& r : w.rules) {
      if (!joined.empty()) joined += ",";
      joined += r;
    }
    out.push_back({w.line, joined});
  }
  return out;
}

}  // namespace detlint
