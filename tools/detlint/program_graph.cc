#include "program_graph.h"

#include <algorithm>
#include <deque>
#include <map>

namespace detlint {

bool is_log_macro(const std::string& name) {
  if (name.size() < 5 || name.compare(0, 4, "LOG_") != 0) return false;
  for (std::size_t i = 4; i < name.size(); ++i) {
    const char c = name[i];
    if (!(c >= 'A' && c <= 'Z') && !(c >= '0' && c <= '9') && c != '_') {
      return false;
    }
  }
  return true;
}

bool cold_region_covers(const ColdRegion& r, std::size_t token) {
  return token > r.begin + 3 && token <= r.end;
}

ProgramGraph build_program_graph(std::vector<SourceInput> inputs) {
  ProgramGraph g;
  std::sort(inputs.begin(), inputs.end(),
            [](const SourceInput& a, const SourceInput& b) {
              return a.path < b.path;
            });
  inputs.erase(std::unique(inputs.begin(), inputs.end(),
                           [](const SourceInput& a, const SourceInput& b) {
                             return a.path == b.path;
                           }),
               inputs.end());

  for (const SourceInput& in : inputs) {
    GraphFile fd;
    fd.path = in.path;
    fd.lexed = lex(in.source);
    fd.structure = analyze_structure(fd.lexed, static_cast<int>(g.files.size()));
    for (const Token& t : fd.lexed.tokens) {
      if (t.kind == TokenKind::kIdent && is_log_macro(t.text)) {
        fd.log_lines.insert(t.line);
      }
    }
    fd.globals.insert(fd.structure.decls.mutable_globals.begin(),
                      fd.structure.decls.mutable_globals.end());
    fd.maps.insert(fd.structure.decls.map_names.begin(),
                   fd.structure.decls.map_names.end());
    g.files.push_back(std::move(fd));
  }

  // Resolve quoted includes against the scanned set by path suffix, and
  // union the included files' shard-relevant declarations: a .cc touching a
  // global or a map declared in its header must still be caught.
  for (GraphFile& fd : g.files) {
    for (const std::string& inc : fd.lexed.includes) {
      for (const GraphFile& other : g.files) {
        if (!path_matches_include(other.path, inc)) continue;
        fd.globals.insert(other.structure.decls.mutable_globals.begin(),
                          other.structure.decls.mutable_globals.end());
        fd.maps.insert(other.structure.decls.map_names.begin(),
                       other.structure.decls.map_names.end());
        break;
      }
    }
  }

  // Global node list + name indices.
  std::map<std::string, std::vector<int>> by_name;
  std::map<std::string, std::vector<int>> by_qualified;
  std::set<std::string> hot_names;
  for (std::size_t fi = 0; fi < g.files.size(); ++fi) {
    GraphFile& fd = g.files[fi];
    for (FunctionDef& def : fd.structure.functions) {
      GraphNode n;
      n.def = def;
      n.calls = find_calls(fd.lexed, n.def);
      const int id = static_cast<int>(g.nodes.size());
      by_name[n.def.name].push_back(id);
      if (!n.def.qualifier.empty()) {
        by_qualified[n.def.qualifier + "::" + n.def.name].push_back(id);
      }
      g.nodes.push_back(std::move(n));
    }
    hot_names.insert(fd.structure.hot_names.begin(),
                     fd.structure.hot_names.end());
  }

  // Edges. A cold region cuts outgoing edges (the slow path it justifies
  // may call whatever it likes); LOG_* lines are exempt wholesale.
  for (GraphNode& n : g.nodes) {
    GraphFile& fd = g.files[static_cast<std::size_t>(n.def.file)];
    for (const CallSite& cs : n.calls) {
      if (cs.callee == "INBAND_COLD_OK" || cs.callee == "INBAND_HOT") continue;
      bool cold = false;
      for (ColdRegion& r : fd.structure.cold_regions) {
        if (cold_region_covers(r, cs.token)) {
          r.used = true;
          cold = true;
        }
      }
      if (cold) continue;
      if (fd.log_lines.count(cs.line) > 0) continue;
      if (cs.qualifier == "std") continue;
      const std::vector<int>* targets = nullptr;
      if (!cs.qualifier.empty()) {
        const auto it = by_qualified.find(cs.qualifier + "::" + cs.callee);
        if (it != by_qualified.end()) targets = &it->second;
      }
      if (targets == nullptr) {
        const auto it = by_name.find(cs.callee);
        if (it != by_name.end()) targets = &it->second;
      }
      if (targets == nullptr) continue;
      for (const int t : *targets) {
        n.edges.push_back({t, cs.line, cs.member_call, !cs.qualifier.empty()});
        ++g.edge_count;
      }
    }
    if (hot_names.count(n.def.name) > 0) n.hot = true;
  }
  return g;
}

void bfs_reach(const ProgramGraph& g, const std::vector<int>& seeds,
               std::vector<char>& reachable, std::vector<int>& parent) {
  reachable.assign(g.nodes.size(), 0);
  parent.assign(g.nodes.size(), -1);
  std::deque<int> queue;
  for (const int s : seeds) {
    if (reachable[static_cast<std::size_t>(s)]) continue;
    reachable[static_cast<std::size_t>(s)] = 1;
    queue.push_back(s);
  }
  while (!queue.empty()) {
    const int id = queue.front();
    queue.pop_front();
    for (const GraphEdge& e : g.nodes[static_cast<std::size_t>(id)].edges) {
      auto& seen = reachable[static_cast<std::size_t>(e.target)];
      if (seen) continue;
      seen = 1;
      parent[static_cast<std::size_t>(e.target)] = id;
      queue.push_back(e.target);
    }
  }
}

std::string chain_entry(const ProgramGraph& g, const GraphNode& n) {
  return display_name(n.def) + " (" +
         g.files[static_cast<std::size_t>(n.def.file)].path + ":" +
         std::to_string(n.def.line) + ")";
}

std::vector<std::string> build_chain(const ProgramGraph& g,
                                     const std::vector<int>& parent, int id) {
  std::vector<std::string> chain;
  for (int cur = id; cur != -1; cur = parent[static_cast<std::size_t>(cur)]) {
    chain.push_back(chain_entry(g, g.nodes[static_cast<std::size_t>(cur)]));
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

}  // namespace detlint
