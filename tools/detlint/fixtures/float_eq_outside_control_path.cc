// Fixture: float ==/!= OUTSIDE lb/ and core/ path components — the
// float-eq rule is scoped to control paths and must stay quiet here.
bool bench_tolerance(double measured, double expected) {
  return measured == expected;  // no finding: not a control path
}
