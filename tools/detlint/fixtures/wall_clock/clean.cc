// Fixture: deterministic time and randomness — no findings. Mirrors the
// project idiom: time comes from the Simulator, randomness from seeded
// counter-based engines.
#include <cstdint>

using SimTime = std::int64_t;

struct Simulator {
  SimTime now() const { return t_; }
  SimTime t_ = 0;
};

struct Rng {
  explicit Rng(std::uint64_t seed) : state_{seed} {}
  std::uint64_t operator()() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return state_;
  }
  std::uint64_t state_;
};

// Identifiers merely *containing* hazard substrings must not trip the rule.
struct timer_config {
  SimTime timeout = 0;
  int clock_domain = 0;  // plain member, not clock()
};

SimTime sample(Simulator& sim, Rng& rng) {
  return sim.now() + static_cast<SimTime>(rng() % 1000);
}
