// Fixture: a waived wall-clock finding — wall time is legitimate in
// operator tooling that reports real elapsed time, outside any replayed
// state.
#include <chrono>

double harness_elapsed_seconds(
    std::chrono::steady_clock::time_point start) {  // detlint:allow(wall-clock): harness wall-time report; never enters simulated state or digests
  // detlint:allow(wall-clock): harness wall-time report; never enters simulated state or digests
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}
