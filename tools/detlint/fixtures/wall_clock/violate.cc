// Fixture: wall-clock / entropy true positives.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

long now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())  // violation
      .count();
}

long mono_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // violation
}

int roll() {
  return std::rand() % 6;  // violation
}

unsigned reseed() {
  std::random_device rd;  // violation
  return rd();
}

long stamp() {
  return static_cast<long>(time(nullptr));  // violation
}
