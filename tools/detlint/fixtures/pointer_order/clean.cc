// Fixture: pointer containers ordered by value-based keys — no findings.
#include <algorithm>
#include <cstdint>
#include <vector>

struct Backend {
  int id;
};

// Sorting pointers *by a field of the pointee* is the sanctioned pattern.
void sort_backends(std::vector<Backend*>& pool) {
  std::sort(pool.begin(), pool.end(),
            [](const Backend* a, const Backend* b) { return a->id < b->id; });
}

// Value elements sort fine without a comparator.
void sort_ids(std::vector<std::uint64_t>& ids) {
  std::sort(ids.begin(), ids.end());
}
