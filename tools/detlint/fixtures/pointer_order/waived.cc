// Fixture: a waived pointer-order finding (e.g. a debug-only allocation
// tracer whose output never reaches digests or the wire).
#include <cstdint>

struct Digest {
  void mix(std::uint64_t) {}
};

void trace_alloc(Digest& d, const void* p) {
  // detlint:allow(pointer-order): debug-only allocation tracer; output never feeds digests or packet order
  d.mix(reinterpret_cast<std::uintptr_t>(p));
}
