// Fixture: pointer-order true positives — addresses used as ordering or
// digest inputs.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

struct Backend {
  int id;
};

struct Digest {
  void mix(std::uint64_t) {}
};

// Comparator-less sort of pointer elements: address order.
void sort_backends(std::vector<Backend*>& pool) {
  std::sort(pool.begin(), pool.end());  // violation: pointer sort
}

// Hashing an address into a digest.
void digest_backend(Digest& d, const Backend* b) {
  d.mix(reinterpret_cast<std::uintptr_t>(b));  // violation: address digest
}

// std::hash over a pointer type hashes the address.
std::size_t hash_backend(const Backend* b) {
  return std::hash<const Backend*>{}(b);  // violation: pointer hash
}
