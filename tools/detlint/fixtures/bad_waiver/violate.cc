// Fixture: waiver-hygiene true positives — waiver markers that do not
// parse, lack a reason, or name unknown rules are findings themselves
// (`bad-waiver`), and a waiver that suppresses nothing is reported unused.
#include <cstdint>
#include <unordered_map>

struct T {
  std::unordered_map<std::uint64_t, int> m_;

  std::uint64_t broken_waivers() const {
    std::uint64_t n = 0;
    // detlint:allow(unordered-iter)
    for (const auto& [k, v] : m_) n += static_cast<std::uint64_t>(v);
    // detlint:allow(unordered-iter):
    for (const auto& [k, v] : m_) n += static_cast<std::uint64_t>(v);
    // detlint:allow(no-such-rule): reason text
    for (const auto& [k, v] : m_) n += static_cast<std::uint64_t>(v);
    return n;
  }

  // An unused waiver: nothing on this or the next line violates anything.
  // detlint:allow(wall-clock): stale justification left behind
  std::size_t size() const { return m_.size(); }
};
