// Fixture (control path — under lb/): a waived float-eq finding.
bool guard_disabled(double guard) {
  // detlint:allow(float-eq): 0.0 is the explicit "disabled" sentinel, assigned only from the same literal
  return guard == 0.0;
}
