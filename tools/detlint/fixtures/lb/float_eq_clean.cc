// Fixture (control path — under lb/): float comparisons done right, and
// integer comparisons that must not trip the rule.
#include <cmath>
#include <cstdint>

bool close_enough(double a, double b) {
  return std::abs(a - b) < 1e-9;  // epsilon compare
}

bool threshold_crossed(double score, double limit) {
  return score > limit;  // ordering comparisons are fine
}

bool same_count(std::uint64_t lhs, std::uint64_t rhs) {
  return lhs == rhs;  // integer equality is fine
}

// operator== declarations are not comparisons.
struct BackendId {
  int v;
  friend bool operator==(const BackendId&, const BackendId&) = default;
};
