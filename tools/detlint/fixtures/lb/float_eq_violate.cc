// Fixture (control path — under lb/): floating-point equality true
// positives.
struct Score {
  double value = 0.0;
};

bool same_score(const Score& a, const Score& b) {
  return a.value == b.value;  // violation: exact double compare
}

bool is_unset(double weight) {
  return weight == -1.0;  // violation: literal compare
}

bool drifted(float ewma, float target) {
  return ewma != target;  // violation: float !=
}
