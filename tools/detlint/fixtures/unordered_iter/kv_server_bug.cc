// Fixture: replica of the PR 2 KvServer::abort_all_connections bug, found
// by hand back then — detlint must catch it mechanically. The connection set
// is keyed on heap pointers; aborting while iterating it puts RSTs on the
// wire in pointer order, which varies run to run (ASLR, allocation history),
// so crash runs were not replayable. The shipped fix snapshots the set and
// sorts by flow key (util/sorted_view.h + FlowKey::operator<=>).
#include <algorithm>
#include <unordered_set>
#include <vector>

struct Conn {
  unsigned key;
  void abort() {}
};

struct KvServerReplica {
  std::unordered_set<Conn*> open_conns_;

  // The original bug: abort order = hash-bucket order of pointer keys.
  void abort_all_connections() {
    for (auto* conn : open_conns_) {  // unordered-iter: the PR 2 bug
      conn->abort();
    }
  }

  // A tempting half-fix that is still wrong: snapshotting, then sorting the
  // raw pointers — the order is now stable within a run but still tracks
  // allocation addresses across runs.
  void abort_all_sorted_by_pointer() {
    std::vector<Conn*> conns{open_conns_.begin(), open_conns_.end()};
    std::sort(conns.begin(), conns.end());  // pointer-order: address sort
    for (auto* conn : conns) conn->abort();
  }
};
