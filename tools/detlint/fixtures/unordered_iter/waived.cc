// Fixture: unordered iterations carrying justified waivers — findings are
// produced but marked waived, so the file passes.
#include <cstdint>
#include <unordered_map>

struct Counters {
  std::unordered_map<std::uint64_t, std::uint64_t> hits_;

  // Commutative accumulation: the total is independent of visit order.
  std::uint64_t total() const {
    std::uint64_t sum = 0;
    // detlint:allow(unordered-iter): commutative sum; order-independent
    for (const auto& [k, v] : hits_) sum += v;
    return sum;
  }

  // Same-line waiver form.
  bool any_nonzero() const {
    for (const auto& [k, v] : hits_) {  // detlint:allow(unordered-iter): existence test; order-independent
      if (v != 0) return true;
    }
    return false;
  }
};
