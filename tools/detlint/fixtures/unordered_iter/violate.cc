// Fixture: every construct here is an unordered-iter true positive.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

struct Digest {
  void mix(std::uint64_t) {}
};

struct Table {
  std::unordered_map<std::uint64_t, int> map_;
  std::unordered_set<std::uint64_t> ids_;

  // Range-for over an unordered map: emission order follows bucket order.
  std::uint64_t emit_all(Digest& d) const {
    std::uint64_t n = 0;
    for (const auto& [k, v] : map_) {  // line 18: violation
      d.mix(k);
      n += static_cast<std::uint64_t>(v);
    }
    return n;
  }

  // Explicit iterator walk.
  int first_value() const {
    auto it = map_.begin();  // line 26: violation
    return it == map_.end() ? 0 : it->second;
  }

  // Alias of an unordered member picked by a ternary still iterates it.
  std::uint64_t sum_smaller(const std::unordered_set<std::uint64_t>& other) {
    const auto& small = ids_.size() < other.size() ? ids_ : other;
    std::uint64_t sum = 0;
    for (const std::uint64_t id : small) sum += id;  // line 34: violation
    return sum;
  }
};

// Type alias does not launder the container.
using FlowMap = std::unordered_map<std::uint64_t, double>;

double alias_total(const FlowMap& flows) {
  double total = 0;
  for (const auto& [k, v] : flows) total += v;  // line 44: violation
  return total;
}
