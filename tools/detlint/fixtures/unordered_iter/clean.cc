// Fixture: unordered containers used safely — no findings expected.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

// Modeled on util/sorted_view.h: template params are not tracked names.
template <typename Map>
std::vector<const typename Map::value_type*> snapshot(const Map& m) {
  std::vector<const typename Map::value_type*> out;
  out.reserve(m.size());
  for (const auto& entry : m) out.push_back(&entry);
  return out;
}

struct Table {
  std::unordered_map<std::uint64_t, int> map_;
  std::map<std::uint64_t, int> ordered_;

  // Point lookups never depend on bucket order.
  int get(std::uint64_t k) const {
    const auto it = map_.find(k);
    return it == map_.end() ? 0 : it->second;
  }

  // Iterating the snapshot helper's result, not the container.
  std::uint64_t sum_sorted() const {
    std::uint64_t n = 0;
    for (const auto* e : snapshot(map_)) {
      n += static_cast<std::uint64_t>(e->second);
    }
    return n;
  }

  // std::map iteration is ordered and fine.
  std::uint64_t sum_ordered() const {
    std::uint64_t n = 0;
    for (const auto& [k, v] : ordered_) n += static_cast<std::uint64_t>(v);
    return n;
  }

  std::size_t size() const { return map_.size(); }
};
