// Shard-seq and unannotated-shared. IdAllocator's next_flow_id_ is a
// monotonic counter reached from two domains — under parallel execution the
// ids handed out would depend on cross-shard interleaving. Scratch is plain
// mutable state shared without any INBAND_SHARD_* annotation. Registry's
// mutable static member is process-wide state no matter what the class
// itself is annotated.
struct IdAllocator {
  long next_flow_id_ = 0;
  long alloc() { return next_flow_id_++; }
};

struct Scratch {
  long v_ = 0;
  void set(long x) { v_ = x; }
};

struct Registry {
  static long live_count_;
  void note() { ++live_count_; }
};

INBAND_SHARD_LOCAL(lb) struct Lb {
  IdAllocator* ids_ = nullptr;
  Scratch* pad_ = nullptr;
  Registry reg_;
  INBAND_HOT void admit() {
    ids_->alloc();
    pad_->set(1);
    reg_.note();
  }
};

INBAND_SHARD_LOCAL(shard) struct Srv {
  IdAllocator* ids_ = nullptr;
  Scratch* pad_ = nullptr;
  INBAND_HOT void open() {
    ids_->alloc();
    pad_->set(2);
  }
};
