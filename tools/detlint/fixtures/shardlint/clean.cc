// Fully annotated, single-domain-per-state program: RNG streams, sequence
// counters and mutable members are fine as long as exactly one domain
// reaches them; owner classes are domain-transparent instance state and
// shared-const plans are trusted read-only. Exit 0, zero findings.
INBAND_SHARD_LOCAL(owner) struct Counter {
  long n_ = 0;
  void bump() { ++n_; }
};

INBAND_SHARD_SHARED_CONST struct Plan {
  long rate_ = 3;
};

INBAND_SHARD_LOCAL(shard) struct Server {
  Counter stats_;
  Rng rng_;
  long next_req_seq_ = 0;
  const Plan* plan_ = nullptr;
  INBAND_HOT long serve() {
    stats_.bump();
    ++next_req_seq_;
    return static_cast<long>(rng_.next_u64() % 128);
  }
};

INBAND_SHARD_LOCAL(lb) struct Balancer {
  Counter stats_;
  long next_pick_seq_ = 0;
  INBAND_HOT int pick() {
    stats_.bump();
    return static_cast<int>(++next_pick_seq_ % 4);
  }
};
