// Shard-escape, both forms. Decl-form: Director (domain lb) holds a raw
// pointer to ServerState (domain shard) — an alias that lets lb-side code
// mutate shard-owned state without going through a channel. Reach-form: the
// explicitly qualified ServerState::account(...) call drags the lb walk into
// shard-owned methods.
INBAND_SHARD_LOCAL(shard) struct ServerState {
  long inflight_ = 0;
  void account(long delta) { inflight_ += delta; }
};

INBAND_SHARD_LOCAL(lb) struct Director {
  ServerState* shortcut_ = nullptr;
  INBAND_HOT void route() { shortcut_->ServerState::account(1); }
};
