// Waiver mechanics: one justified waiver on a real shard-seq finding
// (accepted), one waiver naming a rule that does not exist, one missing its
// justification, and one valid waiver matching nothing (reported unused).
// The two malformed waivers are unwaivable bad-waiver findings: exit 1.
struct EpochCounter {
  // shardlint:allow(shard-seq): epoch counter is reconciled at the barrier
  long next_epoch_seq_ = 0;
  long alloc() { return next_epoch_seq_++; }
};

struct Shared {
  // shardlint:allow(shard-warp): no such rule
  long v_ = 0;
  // shardlint:allow(shard-rng)
  void set(long x) { v_ = x; }
};

INBAND_SHARD_LOCAL(lb) struct A {
  EpochCounter* epochs_ = nullptr;
  Shared* s_ = nullptr;
  // shardlint:allow(shard-escape): nothing on this line escapes anywhere
  INBAND_HOT void f() {
    epochs_->alloc();
    s_->set(1);
  }
};

INBAND_SHARD_LOCAL(shard) struct B {
  EpochCounter* epochs_ = nullptr;
  Shared* s_ = nullptr;
  INBAND_HOT void g() {
    epochs_->alloc();
    s_->set(2);
  }
};
