// Clean cross-domain communication: Mailbox is the sanctioned
// INBAND_SHARD_CHANNEL crossing, so both domains may call into it — its own
// state is the handoff buffer, and the walk is cut at the boundary rather
// than merging the two domains. Exit 0, zero findings.
INBAND_SHARD_CHANNEL struct Mailbox {
  long pending_ = 0;
  void post(long m) { pending_ += m; }
  long take() {
    long m = pending_;
    pending_ = 0;
    return m;
  }
};

INBAND_SHARD_LOCAL(lb) struct Router {
  Mailbox* box_ = nullptr;
  INBAND_HOT void forward() { box_->post(1); }
};

INBAND_SHARD_LOCAL(shard) struct Server {
  Mailbox* box_ = nullptr;
  long handled_ = 0;
  INBAND_HOT void drain() { handled_ += box_->take(); }
};
