// Shard-rng, both forms. SharedNoise is one RNG stream drawn from by both
// the lb and shard walks: the interleaving of draws — and with it every
// digest — would depend on cross-shard timing. Worker::handle additionally
// replays the pre-refactor injector bug: it passes its own rng_ member into
// another object's method, handing the stream across an object boundary
// (the callee should be seeded its own stream instead).
struct SharedNoise {
  Rng rng_;
  double draw() { return rng_.uniform(); }
};

INBAND_SHARD_LOCAL(lb) struct Balancer {
  SharedNoise* noise_ = nullptr;
  INBAND_HOT int pick() { return noise_->draw() > 0.5 ? 1 : 0; }
};

struct Injector {
  long extra_time(long base, Rng& rng) { return base + rng.next_u64() % 8; }
};

INBAND_SHARD_LOCAL(shard) struct Worker {
  SharedNoise* noise_ = nullptr;
  Rng rng_;
  Injector inj_;
  INBAND_HOT long handle(long base) {
    double jitter = noise_->draw();
    return base + inj_.extra_time(base, rng_) + static_cast<long>(jitter);
  }
};
