// Shard-safety violations: a hot function touching mutable namespace-scope
// state, and a mutable function-local static. Either one makes a shard's
// behavior depend on its siblings, breaking parallel determinism.
#include <cstdint>

std::uint64_t g_packets_seen = 0;

INBAND_HOT void count_packet(int shard) {
  static int last_shard = -1;
  last_shard = shard;
  ++g_packets_seen;
}
