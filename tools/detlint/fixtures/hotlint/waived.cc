// Every hazard here carries a justified allow-comment waiver, including the
// shard-global (which only the comment form can excuse). hotlint must exit
// 0 and count them all as waived.
#include <vector>

long g_epoch = 0;

class Admission {
 public:
  INBAND_HOT void admit(int flow) {
    // hotlint:allow(hot-growth): flow admission, bounded by the eviction cap
    flows_.push_back(flow);
    // hotlint:allow(shard-global): epoch counter is read-mostly and fenced
    ++g_epoch;
  }

 private:
  std::vector<int> flows_;
};
