// Waiver hygiene: an unknown rule name and a reason-less waiver are both
// bad-waiver findings; a waiver that matches nothing is reported unused.
#include <vector>

class Sink {
 public:
  INBAND_HOT void push(int v) {
    // hotlint:allow(hot-warp): no such rule
    buf_.push_back(v);
  }

  int idle() const {
    // hotlint:allow(hot-alloc): nothing here allocates, so this never fires
    return 0;
  }

 private:
  std::vector<int> buf_;
};
