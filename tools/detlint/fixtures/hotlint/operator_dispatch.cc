// Operator-overload and template-member dispatch: the hot root is itself an
// operator() (a Maglev-style functor), and every hazard below is reached
// only through call forms that need name composition or template-argument
// skipping to resolve — x.operator+(y), operator<<(s, v), f.operator()(k),
// x.f<T>(...). A scanner that stops at plain `name(` sees none of them.
struct Accum {
  long total_ = 0;
  Accum operator+(const Accum& o) {
    auto* scratch = new long{total_ + o.total_};
    total_ = *scratch;
    delete scratch;
    return *this;
  }
};

struct Sink {
  long n_ = 0;
};

Sink& operator<<(Sink& s, long v) {
  auto* slot = new long{v};
  s.n_ += *slot;
  delete slot;
  return s;
}

struct Table {
  template <typename K>
  long lookup(K k) {
    auto* probe = new long{static_cast<long>(k)};
    long out = *probe;
    delete probe;
    return out;
  }
};

struct Picker {
  Accum acc_;
  Table table_;
  INBAND_HOT long operator()(long k) {
    Accum one;
    acc_.operator+(one);
    Sink s;
    operator<<(s, k);
    return table_.lookup<long>(k);
  }
};
