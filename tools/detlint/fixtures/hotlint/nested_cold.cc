// Nested INBAND_COLD_OK regions: the innermost covering region must supply
// the waiver reason for each hazard (and both markers count as used). The
// outer region covers the rebuild allocation; the inner block narrows the
// justification for the diagnostics-only allocation. Exit 0, two waived.
struct Cache {
  int limit_ = 0;
  INBAND_HOT int get(int k) {
    if (k < limit_) return k;
    INBAND_COLD_OK("miss path: rebuild is off the per-packet path");
    {
      INBAND_COLD_OK("diagnostics snapshot, miss path only");
      auto* snap = new int{k};
      delete snap;
    }
    auto* table = new int[8];
    delete[] table;
    return 0;
  }
};
