// A hazard-free hot path: fixed-size ring indexing, placement new into
// caller-provided storage, and a level-guarded LOG_ macro line. hotlint
// must stay silent.
struct Slot {
  alignas(8) unsigned char buf[32];
};

INBAND_HOT int enqueue(Slot* ring, unsigned mask, unsigned head, int value) {
  Slot& s = ring[head & mask];
  auto* v = new (s.buf) int{value};
  LOG_TRACE() << "enqueued " << value;
  return *v;
}
