// INBAND_COLD_OK guard: allocations on a declared-cold branch of a hot
// function are waived, and calls made inside the cold region do not pull
// their callees into the reachable set. hotlint must report zero unwaived
// findings here.
#include <vector>

void build_report(std::vector<int>& out) {
  out.push_back(1);  // would be hot-growth if this function were reachable
}

class Table {
 public:
  INBAND_HOT int lookup(int key) {
    if (key >= 0 && static_cast<unsigned>(key) < size_) return slots_[key];
    INBAND_COLD_OK("miss path: rebuilds the table, off the per-packet path");
    auto* fresh = new int[64];
    delete[] slots_;
    slots_ = fresh;
    size_ = 64;
    std::vector<int> scratch;
    build_report(scratch);
    return 0;
  }

 private:
  int* slots_ = nullptr;
  unsigned size_ = 0;
};
