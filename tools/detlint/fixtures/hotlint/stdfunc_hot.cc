// Replica of the pre-slab event queue (PR 4 rewrote it): type-erased
// std::function handlers stored in a node-based map, with a fresh heap
// node allocated on every push. hotlint must flag the std::function
// construction, the growth-capable emplace, and the raw allocation —
// all on the hot push path.
#include <cstdint>
#include <functional>
#include <map>

using SimTime = long long;
using EventId = unsigned long long;

class LegacyQueue {
 public:
  INBAND_HOT EventId push(SimTime t, void (*raw)(void*), void* arg) {
    const EventId id = next_id_++;
    std::function<void()> fn = [raw, arg] { raw(arg); };
    handlers_.emplace(id, fn);
    times_[id] = t;
    auto* node = new EventId{id};
    delete node;
    return id;
  }

 private:
  EventId next_id_ = 1;
  std::map<EventId, std::function<void()>> handlers_;
  std::map<EventId, SimTime> times_;
};
