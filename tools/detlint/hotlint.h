// hotlint: call-graph-aware hot-path and shard-safety analyzer.
//
// detlint's sibling. Pass 1 (callgraph.h) extracts function definitions,
// call sites, INBAND_HOT marks, INBAND_COLD_OK regions, and shard-relevant
// declarations from the token stream. Pass 2 walks the approximate call
// graph from the hot roots and reports hazards only in reachable code:
//
//   hot-alloc    operator new/delete, malloc family, make_shared /
//                make_unique / allocate_shared on a hot path
//   hot-stdfunc  std::function construction (type-erased callable setup
//                allocates for captures beyond the SBO budget)
//   hot-growth   growth-capable container ops (push_back, insert, resize,
//                ...) and operator[] on map-like names (may insert)
//   hot-string   std::string construction, std::to_string, stringstreams
//   hot-throw    throw expressions (unwinding is unbounded work)
//   hot-io       stdio/iostream/file I/O and system(); level-guarded LOG_*
//                macro lines are exempt
//   hot-block    mutexes, lock guards, condition variables, sleeps
//   shard-global use of mutable namespace-scope state (breaks shard
//                independence and, with it, parallel determinism)
//   shard-static mutable function-local statics
//
// Waivers: hot-* findings are waived by an INBAND_COLD_OK("reason") region
// (util/hotpath.h) covering the hazard, or by a
// `// hotlint:allow(<rule>): <reason>` comment on the finding's line or the
// line above. shard-* findings require the comment form — cold regions
// excuse slow-path work, not shared state. Reasons are mandatory; malformed
// or reason-less waivers are `bad-waiver` findings.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "lint_io.h"
#include "rules.h"

namespace detlint {

// One file to analyze: display path plus its full source text.
using HotInput = SourceInput;

struct HotReport {
  std::vector<Finding> findings;             // across all files, sorted
  std::vector<std::string> files_scanned;    // sorted display paths
  std::vector<UnusedWaiver> unused_waivers;
  std::vector<std::string> unused_waiver_files;  // parallel to unused_waivers
  std::vector<std::string> errors;
  // Graph statistics, echoed into the JSON report.
  std::size_t functions = 0;
  std::size_t roots = 0;
  std::size_t edges = 0;
  std::size_t reachable = 0;

  std::size_t unwaived() const;
  std::size_t waived() const;
};

// All hotlint rule names, for CLI validation and --list-rules.
const std::vector<std::string>& hot_rule_names();

// Analyzes a set of files as one program: the call graph spans all of them,
// and quoted includes resolve against the set by path suffix. Inputs are
// processed in sorted path order regardless of the order given.
HotReport analyze_hot(std::vector<HotInput> inputs);

// Discovers C++ sources under `paths` (same extension set and ordering
// rules as detlint's scanner) and analyzes them.
HotReport scan_hot(const std::vector<std::string>& paths);

// Human-readable report with root->hazard call chains. Returns the process
// exit code: 0 when no unwaived findings and no errors, 1 otherwise.
int render_hot_text(const HotReport& report, std::ostream& os);

// Machine-readable JSON (schema in README.md): detlint's schema plus a
// per-finding "chain" array and a top-level "graph" object.
int render_hot_json(const HotReport& report, std::ostream& os);

enum class CallgraphFormat { kDot, kJson };

// Writes the pass-1 call graph (every function and resolved edge, hot roots
// and reachability marked) without running the hazard rules.
void dump_callgraph(std::vector<HotInput> inputs, CallgraphFormat format,
                    std::ostream& os);

// Discovery + dump_callgraph. Returns 0, or 1 when discovery failed.
int dump_callgraph_paths(const std::vector<std::string>& paths,
                         CallgraphFormat format, std::ostream& os);

}  // namespace detlint
