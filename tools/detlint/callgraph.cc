#include "callgraph.h"

#include <set>

namespace detlint {
namespace {

bool is_punct(const Token& t, std::string_view p) {
  return t.kind == TokenKind::kPunct && t.text == p;
}
bool is_ident(const Token& t, std::string_view name) {
  return t.kind == TokenKind::kIdent && t.text == name;
}

// Identifiers that can precede '(' without being a callable or function
// name. Type keywords are included: nothing definable is named `int`.
const std::set<std::string> kNotFunctionNames = {
    "if",       "for",      "while",    "switch",   "catch",
    "return",   "sizeof",   "alignof",  "decltype", "noexcept",
    "static_assert",        "alignas",  "typeid",   "throw",
    "case",     "goto",     "requires", "concept",  "new",
    "delete",   "void",     "int",      "bool",     "char",
    "short",    "long",     "float",    "double",   "unsigned",
    "signed",   "auto",     "co_await", "co_return", "co_yield",
    "defined",  "assert",
};

const std::set<std::string> kMapLikeContainers = {"map", "unordered_map",
                                                  "flat_map"};

// Keywords that disqualify a namespace-scope statement from being a mutable
// variable declaration.
const std::set<std::string> kGlobalStmtBans = {
    "const", "constexpr", "constinit", "operator", "static_assert",
    "concept", "requires", "return",
};

// Skips a balanced pair starting at `i` (toks[i] must be `open`); returns
// the index just past the matching close, or toks.size() when unbalanced.
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t i,
                          std::string_view open, std::string_view close) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], open)) {
      ++depth;
    } else if (is_punct(toks[i], close)) {
      if (--depth == 0) return i + 1;
    }
  }
  return toks.size();
}

// Skips a balanced <...> starting at `i` (toks[i] must be '<'); returns the
// index just past the matching '>'. '>>' closes two. Bails at ';'/'{' so a
// stray comparison cannot eat the rest of the file.
std::size_t skip_template_args(const std::vector<Token>& toks,
                               std::size_t i) {
  int depth = 0;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (is_punct(t, "<")) {
      ++depth;
    } else if (is_punct(t, ">")) {
      --depth;
    } else if (is_punct(t, ">>")) {
      depth -= 2;
    } else if (is_punct(t, ";") || is_punct(t, "{")) {
      return i;
    }
    ++i;
    if (depth <= 0) return i;
  }
  return i;
}

// Starting at an opening '(' of a parameter list, matches the remainder of
// a function-definition signature: params, cv/ref/noexcept/override/final,
// optional trailing return type, optional ctor init list. Returns the token
// index of the body's '{', or 0 when this is not a definition.
std::size_t match_signature(const std::vector<Token>& toks,
                            std::size_t open) {
  std::size_t j = skip_balanced(toks, open, "(", ")");
  while (j < toks.size()) {
    const Token& t = toks[j];
    if (is_ident(t, "const") || is_ident(t, "override") ||
        is_ident(t, "final") || is_ident(t, "mutable") ||
        is_punct(t, "&") || is_punct(t, "&&")) {
      ++j;
      continue;
    }
    if (is_ident(t, "noexcept")) {
      ++j;
      if (j < toks.size() && is_punct(toks[j], "(")) {
        j = skip_balanced(toks, j, "(", ")");
      }
      continue;
    }
    if (is_punct(t, "->")) {  // trailing return type
      ++j;
      while (j < toks.size() && !is_punct(toks[j], "{") &&
             !is_punct(toks[j], ";") && !is_punct(toks[j], "=") &&
             !is_punct(toks[j], ":")) {
        if (is_punct(toks[j], "<")) {
          j = skip_template_args(toks, j);
          continue;
        }
        ++j;
      }
      continue;
    }
    break;
  }
  if (j >= toks.size()) return 0;
  if (is_punct(toks[j], "{")) return j;
  if (!is_punct(toks[j], ":")) return 0;  // declaration / = default / ...
  // Ctor init list: `ident(args)` or `ident{args}` members, comma-separated.
  ++j;
  while (j < toks.size()) {
    while (j < toks.size() &&
           (toks[j].kind == TokenKind::kIdent || is_punct(toks[j], "::"))) {
      ++j;
    }
    if (j < toks.size() && is_punct(toks[j], "<")) {
      j = skip_template_args(toks, j);
    }
    if (j >= toks.size()) return 0;
    if (is_punct(toks[j], "(")) {
      j = skip_balanced(toks, j, "(", ")");
    } else if (is_punct(toks[j], "{")) {
      j = skip_balanced(toks, j, "{", "}");
    } else {
      return 0;
    }
    if (j < toks.size() && is_punct(toks[j], ",")) {
      ++j;
      continue;
    }
    break;
  }
  if (j < toks.size() && is_punct(toks[j], "{")) return j;
  return 0;
}

class StructureScanner {
 public:
  StructureScanner(const LexResult& lexed, int file)
      : toks_{lexed.tokens}, file_{file} {}

  FileStructure run() {
    scan();
    collect_hot_marks();
    collect_cold_regions();
    collect_map_names();
    std::set<std::string> dedup{globals_.begin(), globals_.end()};
    out_.decls.mutable_globals.assign(dedup.begin(), dedup.end());
    return std::move(out_);
  }

 private:
  enum ScopeKind { kNamespace, kClass };

  bool in_class_scope() const {
    for (const ScopeKind k : scopes_) {
      if (k == kClass) return true;
    }
    return false;
  }

  // Classifies the namespace-scope statement accumulated in `stmt_` as a
  // mutable variable declaration (or not) and records the declared name.
  // `upto_brace` is true when the statement ends at a braced initializer
  // rather than ';'.
  void flush_stmt(bool upto_brace) {
    if (stmt_.empty() || in_class_scope()) {
      stmt_.clear();
      return;
    }
    bool banned = false;
    std::size_t idents = 0;
    for (const Token* t : stmt_) {
      if (t->kind == TokenKind::kPunct &&
          (t->text == "(" || t->text == ")")) {
        banned = true;  // function decl / pointer-to-function / macro call
      }
      if (t->kind == TokenKind::kIdent) {
        ++idents;
        if (kGlobalStmtBans.count(t->text) > 0) banned = true;
      }
    }
    if (banned || idents < 2) {
      stmt_.clear();
      return;
    }
    // Declared name: last identifier before '=' / '[' (or before the brace
    // when `upto_brace`), else the last identifier in the statement.
    const Token* name = nullptr;
    for (const Token* t : stmt_) {
      if (t->kind == TokenKind::kPunct &&
          (t->text == "=" || t->text == "[")) {
        break;
      }
      if (t->kind == TokenKind::kIdent) name = t;
    }
    (void)upto_brace;
    if (name != nullptr && kNotFunctionNames.count(name->text) == 0) {
      globals_.push_back(name->text);
    }
    stmt_.clear();
  }

  void scan() {
    std::size_t i = 0;
    while (i < toks_.size()) {
      const Token& t = toks_[i];
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "{") {
          // Braced initializer of a namespace-scope variable, or an
          // unclassified brace (global lambda, macro body): skipped
          // wholesale either way.
          flush_stmt(true);
          i = skip_balanced(toks_, i, "{", "}");
          continue;
        }
        if (t.text == "}") {
          stmt_.clear();
          if (!scopes_.empty()) {
            scopes_.pop_back();
            class_names_.pop_back();
          }
          ++i;
          continue;
        }
        if (t.text == ";") {
          flush_stmt(false);
          ++i;
          continue;
        }
        stmt_.push_back(&t);
        ++i;
        continue;
      }
      if (t.kind != TokenKind::kIdent) {
        stmt_.push_back(&t);
        ++i;
        continue;
      }
      const std::string& w = t.text;
      if (w == "namespace") {
        stmt_.clear();
        std::size_t j = i + 1;
        while (j < toks_.size() && !is_punct(toks_[j], "{") &&
               !is_punct(toks_[j], ";") && !is_punct(toks_[j], "=")) {
          ++j;
        }
        if (j < toks_.size() && is_punct(toks_[j], "{")) {
          scopes_.push_back(kNamespace);
          class_names_.push_back("");
          i = j + 1;
        } else {
          i = j < toks_.size() ? j + 1 : j;
        }
        continue;
      }
      if (w == "class" || w == "struct" || w == "union") {
        stmt_.clear();
        std::string name;
        std::size_t j = i + 1;
        while (j < toks_.size() && !is_punct(toks_[j], "{") &&
               !is_punct(toks_[j], ";") && !is_punct(toks_[j], "(")) {
          if (is_punct(toks_[j], "<")) {
            j = skip_template_args(toks_, j);
            continue;
          }
          if (name.empty() && toks_[j].kind == TokenKind::kIdent &&
              toks_[j].text != "final" && toks_[j].text != "alignas") {
            name = toks_[j].text;
          }
          ++j;
        }
        if (j < toks_.size() && is_punct(toks_[j], "{")) {
          scopes_.push_back(kClass);
          class_names_.push_back(name);
          i = j + 1;
        } else {
          i = j < toks_.size() ? j + 1 : j;
        }
        continue;
      }
      if (w == "enum") {
        stmt_.clear();
        std::size_t j = i + 1;
        while (j < toks_.size() && !is_punct(toks_[j], "{") &&
               !is_punct(toks_[j], ";")) {
          ++j;
        }
        i = j < toks_.size() && is_punct(toks_[j], "{")
                ? skip_balanced(toks_, j, "{", "}")
                : (j < toks_.size() ? j + 1 : j);
        continue;
      }
      if (w == "using" || w == "typedef" || w == "friend") {
        stmt_.clear();
        while (i < toks_.size() && !is_punct(toks_[i], ";")) ++i;
        if (i < toks_.size()) ++i;
        continue;
      }
      if (w == "template") {
        stmt_.clear();
        i = i + 1 < toks_.size() && is_punct(toks_[i + 1], "<")
                ? skip_template_args(toks_, i + 1)
                : i + 1;
        continue;
      }
      if (w == "extern" && i + 2 < toks_.size() &&
          toks_[i + 1].kind == TokenKind::kString &&
          is_punct(toks_[i + 2], "{")) {
        stmt_.clear();
        scopes_.push_back(kNamespace);
        class_names_.push_back("");
        i += 3;
        continue;
      }
      // `operator<op>` definitions: compose the name across the operator
      // tokens so the body is recognized and skipped like any other.
      if (w == "operator") {
        std::string op;
        std::size_t j = i + 1;
        while (j < toks_.size() && !is_punct(toks_[j], "(") &&
               !is_punct(toks_[j], ";") && !is_punct(toks_[j], "{")) {
          op += toks_[j].text;
          ++j;
        }
        if (j < toks_.size() && is_punct(toks_[j], "(") && op.empty() &&
            j + 2 < toks_.size() && is_punct(toks_[j + 1], ")") &&
            is_punct(toks_[j + 2], "(")) {
          op = "()";  // operator()(...)
          j += 2;
        }
        if (j < toks_.size() && is_punct(toks_[j], "(")) {
          if (try_function(i, "operator" + op, j)) continue;
        }
        stmt_.clear();
        i = j;
        continue;
      }
      if (i + 1 < toks_.size() && is_punct(toks_[i + 1], "(") &&
          kNotFunctionNames.count(w) == 0) {
        if (try_function(i, w, i + 1)) continue;
        // Not a definition (a declaration, macro invocation, or variable
        // with direct-init): poison the pending statement so it is not
        // misread as a mutable global, then move on.
        stmt_.push_back(&t);
        i += 1;
        continue;
      }
      stmt_.push_back(&t);
      ++i;
      continue;
    }
  }

  // Attempts to record a function definition whose name token is at
  // `name_tok` and whose parameter '(' is at `open`. On success advances
  // i past the body via the return-value contract (caller `continue`s) and
  // returns true.
  bool try_function(std::size_t& i, const std::string& name,
                    std::size_t open) {
    const std::size_t body = match_signature(toks_, open);
    if (body == 0) return false;
    FunctionDef def;
    def.name = name;
    def.file = file_;
    def.line = toks_[i].line;
    if (i >= 2 && is_punct(toks_[i - 1], "::") &&
        toks_[i - 2].kind == TokenKind::kIdent) {
      def.qualifier = toks_[i - 2].text;
    } else if (!class_names_.empty() && !class_names_.back().empty()) {
      def.qualifier = class_names_.back();
    }
    def.body_begin = body + 1;
    const std::size_t past = skip_balanced(toks_, body, "{", "}");
    def.body_end = past == 0 ? toks_.size() : past - 1;
    out_.functions.push_back(std::move(def));
    stmt_.clear();
    i = past;
    return true;
  }

  void collect_hot_marks() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (!is_ident(toks_[i], "INBAND_HOT")) continue;
      // The annotated function: first `name(` after the marker, before the
      // declaration ends. `operator<op>` names are composed across the
      // operator tokens so an INBAND_HOT call operator roots as
      // "operator()" (the definition's name), not as "operator".
      for (std::size_t j = i + 1;
           j < toks_.size() && j < i + 64 && !is_punct(toks_[j], ";"); ++j) {
        if (toks_[j].kind != TokenKind::kIdent ||
            kNotFunctionNames.count(toks_[j].text) > 0) {
          continue;
        }
        if (toks_[j].text == "operator") {
          std::string op;
          std::size_t k = j + 1;
          while (k < toks_.size() && !is_punct(toks_[k], "(") &&
                 !is_punct(toks_[k], ";") && !is_punct(toks_[k], "{")) {
            op += toks_[k].text;
            ++k;
          }
          if (k < toks_.size() && is_punct(toks_[k], "(") && op.empty() &&
              k + 2 < toks_.size() && is_punct(toks_[k + 1], ")") &&
              is_punct(toks_[k + 2], "(")) {
            op = "()";
          }
          if (k < toks_.size() && is_punct(toks_[k], "(") && !op.empty()) {
            out_.hot_names.push_back("operator" + op);
            break;
          }
          continue;
        }
        if (j + 1 < toks_.size() && is_punct(toks_[j + 1], "(")) {
          out_.hot_names.push_back(toks_[j].text);
          break;
        }
      }
    }
  }

  void collect_cold_regions() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (!is_ident(toks_[i], "INBAND_COLD_OK")) continue;
      if (!(i + 2 < toks_.size() && is_punct(toks_[i + 1], "(") &&
            toks_[i + 2].kind == TokenKind::kString &&
            !toks_[i + 2].text.empty())) {
        out_.bad_cold_lines.push_back(toks_[i].line);
        continue;
      }
      ColdRegion region;
      region.begin = i;
      region.line = toks_[i].line;
      region.reason = toks_[i + 2].text;
      // The region runs to the end of the enclosing brace block.
      int depth = 0;
      std::size_t j = i;
      for (; j < toks_.size(); ++j) {
        if (is_punct(toks_[j], "{")) ++depth;
        if (is_punct(toks_[j], "}")) {
          if (depth == 0) break;
          --depth;
        }
      }
      region.end = j;
      out_.cold_regions.push_back(std::move(region));
    }
  }

  void collect_map_names() {
    std::set<std::string> names;
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (toks_[i].kind != TokenKind::kIdent ||
          kMapLikeContainers.count(toks_[i].text) == 0 ||
          !is_punct(toks_[i + 1], "<")) {
        continue;
      }
      std::size_t j = skip_template_args(toks_, i + 1);
      while (j < toks_.size() &&
             (is_punct(toks_[j], "*") || is_punct(toks_[j], "&") ||
              is_ident(toks_[j], "const"))) {
        ++j;
      }
      while (j < toks_.size() && toks_[j].kind == TokenKind::kIdent) {
        names.insert(toks_[j].text);
        ++j;
        if (j < toks_.size() && is_punct(toks_[j], ",")) {
          ++j;
          continue;
        }
        break;
      }
    }
    out_.decls.map_names.assign(names.begin(), names.end());
  }

  const std::vector<Token>& toks_;
  int file_;
  std::vector<ScopeKind> scopes_;
  std::vector<std::string> class_names_;  // parallel to scopes_
  std::vector<const Token*> stmt_;        // pending namespace-scope statement
  std::vector<std::string> globals_;
  FileStructure out_;
};

}  // namespace

std::string display_name(const FunctionDef& def) {
  return def.qualifier.empty() ? def.name : def.qualifier + "::" + def.name;
}

FileStructure analyze_structure(const LexResult& lexed, int file) {
  return StructureScanner(lexed, file).run();
}

std::vector<CallSite> find_calls(const LexResult& lexed,
                                 const FunctionDef& def) {
  const std::vector<Token>& toks = lexed.tokens;
  std::vector<CallSite> out;
  for (std::size_t i = def.body_begin;
       i < def.body_end && i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdent || kNotFunctionNames.count(t.text) > 0) {
      continue;
    }
    const bool member =
        i >= 1 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
    std::string qualifier;
    if (!member && i >= 2 && is_punct(toks[i - 1], "::") &&
        toks[i - 2].kind == TokenKind::kIdent) {
      qualifier = toks[i - 2].text;
    }
    std::string callee = t.text;
    if (t.text == "operator") {
      // Explicit operator calls — `x.operator+(y)`, `operator<<(os, v)`,
      // `f.operator()(a)` — compose the callee across the operator tokens
      // the same way the definition scan does, so they resolve to the
      // matching operator definitions.
      std::string op;
      std::size_t j = i + 1;
      while (j < toks.size() && !is_punct(toks[j], "(") &&
             !is_punct(toks[j], ";") && !is_punct(toks[j], "{") &&
             !is_punct(toks[j], "}")) {
        op += toks[j].text;
        ++j;
      }
      if (j >= toks.size() || !is_punct(toks[j], "(")) continue;
      if (op.empty()) {
        if (j + 2 < toks.size() && is_punct(toks[j + 1], ")") &&
            is_punct(toks[j + 2], "(")) {
          op = "()";  // x.operator()(args)
        } else {
          continue;  // an operator() definition's own signature, not a call
        }
      }
      callee = "operator" + op;
    } else if (is_punct(toks[i + 1], "<") && (member || !qualifier.empty())) {
      // Template member/qualified dispatch: `x.f<T>(...)`, `Cls::f<T>(...)`.
      // Only the member/qualified forms are accepted — a bare `a < b`
      // comparison would otherwise masquerade as a template call.
      const std::size_t past = skip_template_args(toks, i + 1);
      if (!(past > i + 2 && past < toks.size() && is_punct(toks[past], "(") &&
            (is_punct(toks[past - 1], ">") ||
             is_punct(toks[past - 1], ">>")))) {
        continue;
      }
    } else if (!is_punct(toks[i + 1], "(")) {
      continue;
    }
    CallSite cs;
    cs.callee = std::move(callee);
    cs.line = t.line;
    cs.token = i;
    cs.member_call = member;
    if (!member) cs.qualifier = std::move(qualifier);
    out.push_back(std::move(cs));
  }
  return out;
}

}  // namespace detlint
