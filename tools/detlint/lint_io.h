// Shared I/O plumbing for the detlint analyzer family (detlint, hotlint,
// shardlint): source-file discovery with the common extension set, quoted-
// include resolution (both the filesystem flavour detlint's scanner uses and
// the scanned-set suffix flavour the whole-program analyzers use), and the
// JSON fragments every report renderer emits. Factored here so the third
// analyzer does not copy the second copy.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "rules.h"  // Finding, UnusedWaiver

namespace detlint {

// One source file handed to a whole-program analyzer: display path plus the
// full source text.
struct SourceInput {
  std::string path;
  std::string source;
};

// Discovers C++ sources (.h .hh .hpp .cc .cpp .cxx) under `paths` (files or
// directories, recursed), reads them, and returns them keyed by
// generic_string path. Unreadable paths append to `errors`. Results are in
// sorted path order so every downstream report is deterministic. When
// `dir_roots` is non-null, each directory argument (and its parent, the
// "subsystem/file.h" include root) is appended to it.
std::vector<SourceInput> discover_sources(
    const std::vector<std::string>& paths, std::vector<std::string>& errors,
    std::vector<std::filesystem::path>* dir_roots = nullptr);

// True when `path` refers to the quoted include `inc`: an exact match or a
// "/"-boundary suffix match ("src/net/link.h" includes "net/link.h").
bool path_matches_include(const std::string& path, const std::string& inc);

// JSON string escaping shared by every renderer.
std::string json_escape(const std::string& s);

// The shared report fragments. Each writes a complete `"key": value` JSON
// member (no trailing comma). `with_chain` adds the per-finding "chain"
// array used by the call-graph analyzers.
void write_findings_json(std::ostream& os, const std::vector<Finding>& findings,
                         bool with_chain);
void write_unused_waivers_json(std::ostream& os,
                               const std::vector<UnusedWaiver>& unused,
                               const std::vector<std::string>& files);
void write_errors_json(std::ostream& os,
                       const std::vector<std::string>& errors);
void write_counts_json(std::ostream& os, std::size_t unwaived,
                       std::size_t waived, std::size_t unused);

// The shared text-report body: errors, unwaived findings (with chains when
// present), waived findings, unused-waiver warnings. `tool` prefixes error
// lines ("detlint: error: ...").
void write_report_text(std::ostream& os, const std::string& tool,
                       const std::vector<std::string>& errors,
                       const std::vector<Finding>& findings,
                       const std::vector<UnusedWaiver>& unused,
                       const std::vector<std::string>& unused_files);

}  // namespace detlint
