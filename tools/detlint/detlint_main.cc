// detlint — determinism-hazard linter for the in-band LB reproduction.
//
//   detlint [--json] [--list-rules] <file-or-dir>...
//
// Exit codes: 0 = clean (waived findings allowed), 1 = unwaived findings or
// unreadable inputs, 2 = usage error. See tools/detlint/README.md and
// DESIGN.md §9 for the rule taxonomy and waiver policy.
#include <iostream>
#include <string>
#include <vector>

#include "scanner.h"

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const std::string& r : detlint::rule_names()) {
        std::cout << r << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: detlint [--json] [--list-rules] <file-or-dir>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "detlint: unknown option: " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: detlint [--json] [--list-rules] <file-or-dir>...\n";
    return 2;
  }
  const detlint::ScanReport report = detlint::scan(paths);
  return json ? detlint::render_json(report, std::cout)
              : detlint::render_text(report, std::cout);
}
