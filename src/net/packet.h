// The simulated packet.
//
// A TCP-ish segment: flow key, 32-bit sequence/ack numbers (with wraparound,
// as on the wire), flags, advertised window, timestamp option, and a payload
// *length* rather than payload bytes. Application messages ride along as
// shared_ptrs annotated with the stream offset at which they end, so the
// receiver's TCP can deliver a message object exactly when its final byte
// arrives in order — message content never teleports around the simulated
// network.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/flow.h"
#include "util/time.h"

namespace inband {

// Base class for application payload objects carried inside packets.
struct AppPayload {
  virtual ~AppPayload() = default;
};

// A message whose final byte lies within this segment's payload.
// `end_offset` is an absolute 64-bit stream offset (one past the last byte).
struct MessageRef {
  std::uint64_t end_offset = 0;
  std::shared_ptr<const AppPayload> payload;
};

namespace tcpflag {
inline constexpr std::uint8_t kSyn = 1 << 0;
inline constexpr std::uint8_t kAck = 1 << 1;
inline constexpr std::uint8_t kFin = 1 << 2;
inline constexpr std::uint8_t kRst = 1 << 3;
inline constexpr std::uint8_t kPsh = 1 << 4;
}  // namespace tcpflag

struct Packet {
  FlowKey flow;
  std::uint32_t seq = 0;        // sequence number of the first payload byte
  std::uint32_t ack = 0;        // cumulative ack (valid when kAck set)
  std::uint32_t wnd = 0;        // advertised receive window, bytes
  std::uint8_t flags = 0;
  std::uint32_t payload_len = 0;

  // TCP timestamp option (always on in this model).
  SimTime ts_val = kNoTime;  // sender clock at transmission
  SimTime ts_ecr = kNoTime;  // echoed peer timestamp

  // Application message boundaries inside this segment (sender-ordered).
  std::vector<MessageRef> msgs;

  // Bookkeeping stamped by Network::send().
  std::uint64_t pkt_id = 0;
  SimTime sent_at = kNoTime;

  bool has(std::uint8_t flag) const { return (flags & flag) != 0; }

  // Bytes on the wire: IPv4 (20) + TCP with timestamp option (32) + payload.
  std::uint32_t wire_size() const { return 52 + payload_len; }

  // Sequence space this segment occupies (SYN and FIN consume one each).
  std::uint32_t seq_len() const {
    return payload_len + (has(tcpflag::kSyn) ? 1u : 0u) +
           (has(tcpflag::kFin) ? 1u : 0u);
  }
};

std::string format_packet(const Packet& p);

}  // namespace inband
