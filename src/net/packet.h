// The simulated packet.
//
// A TCP-ish segment: flow key, 32-bit sequence/ack numbers (with wraparound,
// as on the wire), flags, advertised window, timestamp option, and a payload
// *length* rather than payload bytes. Application messages ride along as
// shared_ptrs annotated with the stream offset at which they end, so the
// receiver's TCP can deliver a message object exactly when its final byte
// arrives in order — message content never teleports around the simulated
// network.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>

#include "net/flow.h"
#include "util/hotpath.h"
#include "util/shard.h"
#include "util/time.h"

namespace inband {

// Base class for application payload objects carried inside packets.
struct AppPayload {
  virtual ~AppPayload() = default;

  // Deep copy with fresh ownership, required when a packet crosses a shard
  // boundary (net/shard_channel.h): the clone must share no control block or
  // pooled storage with the original, because the original's teardown stays
  // on the producing shard's thread. Payload types that never cross shards
  // may keep the default; the boundary asserts on it.
  virtual std::shared_ptr<const AppPayload> clone_detached() const {
    return nullptr;
  }
};

// A message whose final byte lies within this segment's payload.
// `end_offset` is an absolute 64-bit stream offset (one past the last byte).
struct MessageRef {
  std::uint64_t end_offset = 0;
  std::shared_ptr<const AppPayload> payload;
};

// Message container with inline storage for the common case.
//
// Rig packets carry zero or one message boundary (a pipelined request or a
// response each fit in a single MSS); a std::vector here was the largest
// per-packet heap allocation in the fig-3 rig. Two refs live inline; longer
// lists (deep retransmission ranges) spill to a heap array. Only `push_msg`
// ever allocates, and only past the inline capacity.
INBAND_SHARD_LOCAL(owner)
class MsgList {
 public:
  static constexpr std::uint32_t kInline = 2;

  MsgList() = default;
  MsgList(std::initializer_list<MessageRef> init) {
    for (const MessageRef& m : init) push_msg(m);
  }
  MsgList(const MsgList& other) { copy_from(other); }
  MsgList(MsgList&& other) noexcept { move_from(std::move(other)); }
  MsgList& operator=(const MsgList& other) {
    if (this != &other) {
      clear();
      copy_from(other);
    }
    return *this;
  }
  MsgList& operator=(MsgList&& other) noexcept {
    if (this != &other) {
      clear();
      move_from(std::move(other));
    }
    return *this;
  }
  ~MsgList() { clear(); }

  void push_msg(MessageRef m) {
    if (heap_ == nullptr) {
      if (size_ < kInline) {
        inline_[size_++] = std::move(m);
        return;
      }
      INBAND_COLD_OK("spill past inline capacity: rig packets carry <=2 msgs");
      spill(2 * kInline);
    } else if (size_ == heap_cap_) {
      INBAND_COLD_OK("heap regrowth only beyond inline capacity");
      spill(2 * heap_cap_);
    }
    heap_[size_++] = std::move(m);
  }

  void clear() {
    if (heap_ != nullptr) {
      INBAND_COLD_OK("heap branch exists only after a >2-message spill");
      delete[] heap_;
      heap_ = nullptr;
      heap_cap_ = 0;
    } else {
      for (std::uint32_t i = 0; i < size_; ++i) inline_[i] = MessageRef{};
    }
    size_ = 0;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const MessageRef* begin() const { return data(); }
  const MessageRef* end() const { return data() + size_; }
  const MessageRef& operator[](std::size_t i) const { return data()[i]; }
  const MessageRef& front() const { return data()[0]; }
  const MessageRef& back() const { return data()[size_ - 1]; }

 private:
  const MessageRef* data() const { return heap_ != nullptr ? heap_ : inline_; }

  void spill(std::uint32_t new_cap) {
    MessageRef* grown = new MessageRef[new_cap];
    MessageRef* old = heap_ != nullptr ? heap_ : inline_;
    for (std::uint32_t i = 0; i < size_; ++i) grown[i] = std::move(old[i]);
    delete[] heap_;
    heap_ = grown;
    heap_cap_ = new_cap;
  }

  void copy_from(const MsgList& other) {
    for (const MessageRef& m : other) push_msg(m);
  }

  void move_from(MsgList&& other) noexcept {
    size_ = other.size_;
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      heap_cap_ = other.heap_cap_;
      other.heap_ = nullptr;
      other.heap_cap_ = 0;
    } else {
      for (std::uint32_t i = 0; i < size_; ++i) {
        inline_[i] = std::move(other.inline_[i]);
      }
    }
    other.size_ = 0;
  }

  std::uint32_t size_ = 0;
  std::uint32_t heap_cap_ = 0;
  MessageRef* heap_ = nullptr;  // null while the list fits inline
  MessageRef inline_[kInline];
};

namespace tcpflag {
inline constexpr std::uint8_t kSyn = 1 << 0;
inline constexpr std::uint8_t kAck = 1 << 1;
inline constexpr std::uint8_t kFin = 1 << 2;
inline constexpr std::uint8_t kRst = 1 << 3;
inline constexpr std::uint8_t kPsh = 1 << 4;
}  // namespace tcpflag

INBAND_SHARD_LOCAL(owner)
struct Packet {
  FlowKey flow;
  std::uint32_t seq = 0;        // sequence number of the first payload byte
  std::uint32_t ack = 0;        // cumulative ack (valid when kAck set)
  std::uint32_t wnd = 0;        // advertised receive window, bytes
  std::uint8_t flags = 0;
  std::uint32_t payload_len = 0;

  // TCP timestamp option (always on in this model).
  SimTime ts_val = kNoTime;  // sender clock at transmission
  SimTime ts_ecr = kNoTime;  // echoed peer timestamp

  // Application message boundaries inside this segment (sender-ordered).
  MsgList msgs;

  // Bookkeeping stamped by Network::send().
  std::uint64_t pkt_id = 0;
  SimTime sent_at = kNoTime;

  bool has(std::uint8_t flag) const { return (flags & flag) != 0; }

  // Bytes on the wire: IPv4 (20) + TCP with timestamp option (32) + payload.
  std::uint32_t wire_size() const { return 52 + payload_len; }

  // Sequence space this segment occupies (SYN and FIN consume one each).
  std::uint32_t seq_len() const {
    return payload_len + (has(tcpflag::kSyn) ? 1u : 0u) +
           (has(tcpflag::kFin) ? 1u : 0u);
  }
};

std::string format_packet(const Packet& p);

// Field-by-field copy whose message refs are deep clones with fresh
// ownership (AppPayload::clone_detached). The cross-shard ingress uses this
// instead of Packet's implicit copy, whose MsgList copy would share
// refcounted state across the shard boundary: the consumer's copy could then
// be the last ref to die, running a pooled deleter on the wrong thread.
// Asserts if a carried payload type does not implement clone_detached().
Packet detach_packet_copy(const Packet& src);

}  // namespace inband
