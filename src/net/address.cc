#include "net/address.h"

#include <cstdio>

namespace inband {

std::string format_ipv4(Ipv4 addr) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xff,
                (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
  return buf;
}

std::string format_endpoint(const Endpoint& ep) {
  return format_ipv4(ep.addr) + ":" + std::to_string(ep.port);
}

}  // namespace inband
