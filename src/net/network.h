// Network fabric: hosts wired together by directed point-to-point links.
//
// Routing is a single hop: send(from, to, pkt) looks up the (from, to) link
// and delivers to the host attached at `to`. The delivery address is
// deliberately independent of the packet's flow key — that is how an L4 LB
// forwards a client→VIP packet to a chosen backend without rewriting the
// flow (the server accepts traffic for the VIP, as under real direct server
// return), and how the server's response travels straight back to the client
// without ever crossing the LB.
//
// Topology is fixed after setup; sending over a missing link is a programming
// error and asserts.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace inband {

class Host;

class Network {
 public:
  explicit Network(Simulator& sim) : sim_{sim} {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator& sim() { return sim_; }

  // Registers the host under its address (must be unique).
  void attach(Host& host);

  // Creates a directed link from `from` to `to`.
  Link& add_link(Ipv4 from, Ipv4 to, const LinkParams& params);

  // Creates both directions with the same parameters.
  void add_duplex_link(Ipv4 a, Ipv4 b, const LinkParams& params) {
    add_link(a, b, params);
    add_link(b, a, params);
  }

  // Link accessor for runtime tweaks (delay injection); asserts if missing.
  Link& link(Ipv4 from, Ipv4 to);
  bool has_link(Ipv4 from, Ipv4 to) const;

  // Stamps pkt_id / sent_at and transmits. Returns false on queue drop.
  bool send(Ipv4 from, Ipv4 to, Packet pkt);

  // Observation hook invoked for every packet handed to a link (after
  // stamping, before delivery). Used by the trace recorder.
  using SendHook =
      std::function<void(const Packet&, Ipv4 from, Ipv4 to)>;
  void set_send_hook(SendHook hook) { send_hook_ = std::move(hook); }

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }

 private:
  static std::uint64_t key(Ipv4 from, Ipv4 to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  Simulator& sim_;
  std::unordered_map<Ipv4, Host*> hosts_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Link>> links_;
  SendHook send_hook_;
  std::uint64_t next_pkt_id_ = 1;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_dropped_ = 0;
};

// A node attached to the network. Subclasses implement handle_packet();
// outbound traffic goes through send() / send_to().
class Host : public PacketSink {
 public:
  Host(Simulator& sim, Network& net, Ipv4 addr, std::string name);
  ~Host() override = default;

  Ipv4 addr() const { return addr_; }
  const std::string& name() const { return name_; }
  Simulator& sim() { return sim_; }
  Network& network() { return net_; }

  // Sends toward the packet's flow destination (the normal endpoint case).
  bool send(Packet pkt) { return net_.send(addr_, pkt.flow.dst.addr, std::move(pkt)); }

  // Sends toward an explicit next hop regardless of the flow key (the LB
  // forwarding case).
  bool send_to(Ipv4 to, Packet pkt) { return net_.send(addr_, to, std::move(pkt)); }

 private:
  Simulator& sim_;
  Network& net_;
  Ipv4 addr_;
  std::string name_;
};

}  // namespace inband
