// Network fabric: hosts wired together by directed point-to-point links.
//
// Routing is a single hop: send(from, to, pkt) looks up the (from, to) link
// and delivers to the host attached at `to`. The delivery address is
// deliberately independent of the packet's flow key — that is how an L4 LB
// forwards a client→VIP packet to a chosen backend without rewriting the
// flow (the server accepts traffic for the VIP, as under real direct server
// return), and how the server's response travels straight back to the client
// without ever crossing the LB.
//
// The data plane is batch-oriented: producers fill a PacketBatch of pooled
// buffers (Network owns the PacketPool) and hand the whole batch to
// send_batch(), which stamps, observes, intercepts, and clocks every element
// with one virtual dispatch per layer instead of one per packet — BESS's
// ProcessBatch module model applied to the sim/net boundary. The scalar
// send() forms remain for control-plane and legacy callers.
//
// Topology is fixed after setup; sending over a missing link is a programming
// error and asserts.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "net/link.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/simulator.h"
#include "util/hotpath.h"
#include "util/shard.h"

namespace inband {

class Host;

// Fate of a packet decided by a SendInterceptor before the link sees it.
// `drop` loses the packet silently (the sender cannot tell — recovery is the
// transport's problem). `hold` delays handing the packet to the link; packets
// sent later with a smaller hold overtake it, which is how the fault layer
// produces genuine reordering past the link's FIFO guarantee. A
// `duplicate_hold != kNoTime` additionally transmits a second copy of the
// packet after that hold.
struct SendVerdict {
  bool drop = false;
  SimTime hold = 0;
  SimTime duplicate_hold = kNoTime;
};

// Element-wise verdicts for one batch; slot i decides batch[i]'s fate.
struct BatchVerdict {
  SendVerdict v[PacketBatch::kCapacity];
};

// In-band interposition point for fault injection: consulted once per send
// after pkt_id/sent_at stamping and the observer, so every layer sees the
// packet exactly once regardless of its fate.
//
// Batch sends consult on_send_batch() — one virtual call per batch. The
// default unrolls to on_send() element-wise; overriders must decide elements
// strictly in index order, because decision order is RNG-draw order and
// therefore part of the reproducibility contract.
class SendInterceptor {
 public:
  virtual ~SendInterceptor() = default;
  virtual SendVerdict on_send(const Packet& pkt, Ipv4 from, Ipv4 to) = 0;
  virtual void on_send_batch(const PacketBatch& batch, Ipv4 from, Ipv4 to,
                             BatchVerdict& out);
};

// Passive observation point: sees every packet handed to the fabric (after
// stamping, before interception), in send order. The trace recorder is the
// canonical implementation. Symmetric with SendInterceptor — an interface,
// not a std::function, so installing one costs no type-erased storage and
// the hot path stays allocation-free.
class PacketObserver {
 public:
  virtual ~PacketObserver() = default;
  virtual void on_packet(const Packet& pkt, Ipv4 from, Ipv4 to) = 0;
};

// Escape hatch for cross-shard traffic (sim/parallel.h): consulted when a
// send finds no (from, to) link. Returning true means the egress owns the
// packet's onward journey — the packet was stamped and observed normally and
// the egress copied what it needs (the local PacketRef still recycles
// locally). Returning false falls through to the missing-link assertion, so
// a typo'd address stays a programming error. The fault interceptor is
// deliberately NOT consulted for egressed packets: cross-shard trunks are
// the synchronization boundary, not a faultable link (DESIGN.md).
class RemoteEgress {
 public:
  virtual ~RemoteEgress() = default;
  virtual bool forward(const Packet& pkt, Ipv4 from, Ipv4 to) = 0;
};

// One-stop counters for the fabric: send/drop totals, batch shape, and the
// packet pool's occupancy statistics.
struct NetStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_dropped = 0;  // queue (admission) drops
  std::uint64_t batches = 0;          // send_batch() calls
  std::uint64_t batch_packets = 0;    // packets that arrived via send_batch()
  std::uint64_t max_batch = 0;        // largest batch seen
  std::uint64_t remote_packets = 0;   // handed to the remote egress
  PacketPool::Stats pool;
};

INBAND_SHARD_CHANNEL
class Network {
 public:
  explicit Network(Simulator& sim) : sim_{sim} {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator& sim() { return sim_; }

  // The fabric's packet-buffer pool. Producers acquire slots here, fill them
  // in place, and the slots recycle when the last PacketRef dies.
  PacketPool& pool() { return pool_; }

  // Registers the host under its address (must be unique).
  void attach(Host& host);

  // Creates a directed link from `from` to `to`.
  Link& add_link(Ipv4 from, Ipv4 to, const LinkParams& params);

  // Creates both directions with the same parameters.
  void add_duplex_link(Ipv4 a, Ipv4 b, const LinkParams& params) {
    add_link(a, b, params);
    add_link(b, a, params);
  }

  // Link accessor for runtime tweaks (delay injection); asserts if missing.
  Link& link(Ipv4 from, Ipv4 to);
  bool has_link(Ipv4 from, Ipv4 to) const;

  // Stamps pkt_id / sent_at on every element, runs the observer and the
  // interceptor (one on_send_batch call), and clocks the survivors onto the
  // (from, to) link in index order. Consumes the batch (empty on return).
  // Returns the number of packets not dropped at the queue.
  INBAND_HOT std::uint32_t send_batch(Ipv4 from, Ipv4 to, PacketBatch& batch);

  // Scalar forms: stamp and transmit one packet. Return false on queue drop.
  // The by-value overload copies into a pooled slot first.
  INBAND_HOT bool send(Ipv4 from, Ipv4 to, PacketRef pkt);
  bool send(Ipv4 from, Ipv4 to, Packet pkt);

  // Installs (or clears, with nullptr) the passive observer. Borrowed: it
  // must outlive the network or be cleared first.
  void set_observer(PacketObserver* observer) { observer_ = observer; }
  PacketObserver* observer() const { return observer_; }

  // Installs (or clears, with nullptr) the fault-injection interceptor. The
  // interceptor is borrowed and must outlive the network or be cleared first.
  void set_interceptor(SendInterceptor* interceptor) {
    interceptor_ = interceptor;
  }

  // Installs (or clears, with nullptr) the cross-shard egress. Borrowed.
  void set_remote_egress(RemoteEgress* egress) { remote_ = egress; }

  // Host lookup by address; nullptr when nothing is attached there. The
  // cross-shard ingress uses this to deliver into the local topology.
  Host* host_at(Ipv4 addr) const {
    const auto it = hosts_.find(addr);
    return it == hosts_.end() ? nullptr : it->second;
  }

  NetStats stats() const {
    NetStats s;
    s.packets_sent = packets_sent_;
    s.packets_dropped = packets_dropped_;
    s.batches = batches_;
    s.batch_packets = batch_packets_;
    s.max_batch = max_batch_;
    s.remote_packets = remote_packets_;
    s.pool = pool_.stats();
    return s;
  }

 private:
  static std::uint64_t key(Ipv4 from, Ipv4 to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  // Applies one verdict to a stamped packet: drop, clone-and-hold, hold, or
  // clock onto the link now. Returns false only on a queue drop.
  INBAND_HOT bool dispatch(Link& link, Host& dst, PacketRef pkt,
                           const SendVerdict& verdict);

  // Transmits `pkt` on `link` toward `dst` after `hold` of simulated time.
  void transmit_held(Link& link, Host& dst, PacketRef pkt, SimTime hold);

  // Stamp-and-egress paths for destinations with no local link.
  std::uint32_t remote_send_batch(Ipv4 from, Ipv4 to, PacketBatch& batch);
  bool remote_send(Ipv4 from, Ipv4 to, PacketRef pkt);

  Simulator& sim_;
  PacketPool pool_;
  std::unordered_map<Ipv4, Host*> hosts_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Link>> links_;
  PacketObserver* observer_ = nullptr;
  SendInterceptor* interceptor_ = nullptr;
  RemoteEgress* remote_ = nullptr;
  std::uint64_t next_pkt_id_ = 1;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batch_packets_ = 0;
  std::uint64_t max_batch_ = 0;
  std::uint64_t remote_packets_ = 0;
};

// A node attached to the network. Subclasses implement handle_batch() (or
// legacy handle_packet()); outbound traffic goes through send() / send_to() /
// send_batch(). A mixin, not an entity: a Host instance lives in whatever
// domain its derived class does (TcpHost and KvServer in `shard`,
// LoadBalancer in `lb`), hence `owner`.
INBAND_SHARD_LOCAL(owner)
class Host : public PacketSink {
 public:
  Host(Simulator& sim, Network& net, Ipv4 addr, std::string name);
  ~Host() override = default;

  Ipv4 addr() const { return addr_; }
  const std::string& name() const { return name_; }
  Simulator& sim() { return sim_; }
  Network& network() { return net_; }

  // Sends toward the packet's flow destination (the normal endpoint case).
  INBAND_HOT bool send(PacketRef pkt) {
    const Ipv4 to = pkt->flow.dst.addr;
    return net_.send(addr_, to, std::move(pkt));
  }
  bool send(Packet pkt) {
    return net_.send(addr_, pkt.flow.dst.addr, std::move(pkt));
  }

  // Sends toward an explicit next hop regardless of the flow key (the LB
  // forwarding case).
  INBAND_HOT bool send_to(Ipv4 to, PacketRef pkt) {
    return net_.send(addr_, to, std::move(pkt));
  }
  bool send_to(Ipv4 to, Packet pkt) {
    return net_.send(addr_, to, std::move(pkt));
  }

  // Sends a whole batch toward one next hop; see Network::send_batch.
  INBAND_HOT std::uint32_t send_batch(Ipv4 to, PacketBatch& batch) {
    return net_.send_batch(addr_, to, batch);
  }

 private:
  Simulator& sim_;
  Network& net_;
  Ipv4 addr_;
  std::string name_;
};

}  // namespace inband
