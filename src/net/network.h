// Network fabric: hosts wired together by directed point-to-point links.
//
// Routing is a single hop: send(from, to, pkt) looks up the (from, to) link
// and delivers to the host attached at `to`. The delivery address is
// deliberately independent of the packet's flow key — that is how an L4 LB
// forwards a client→VIP packet to a chosen backend without rewriting the
// flow (the server accepts traffic for the VIP, as under real direct server
// return), and how the server's response travels straight back to the client
// without ever crossing the LB.
//
// Topology is fixed after setup; sending over a missing link is a programming
// error and asserts.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "util/hotpath.h"
#include "util/shard.h"

namespace inband {

class Host;

// Fate of a packet decided by a SendInterceptor before the link sees it.
// `drop` loses the packet silently (the sender cannot tell — recovery is the
// transport's problem). `hold` delays handing the packet to the link; packets
// sent later with a smaller hold overtake it, which is how the fault layer
// produces genuine reordering past the link's FIFO guarantee. A
// `duplicate_hold != kNoTime` additionally transmits a second copy of the
// packet after that hold.
struct SendVerdict {
  bool drop = false;
  SimTime hold = 0;
  SimTime duplicate_hold = kNoTime;
};

// In-band interposition point for fault injection: consulted once per
// Network::send() after pkt_id/sent_at stamping and the trace hook, so every
// observer sees the packet exactly once regardless of its fate.
class SendInterceptor {
 public:
  virtual ~SendInterceptor() = default;
  virtual SendVerdict on_send(const Packet& pkt, Ipv4 from, Ipv4 to) = 0;
};

INBAND_SHARD_CHANNEL
class Network {
 public:
  explicit Network(Simulator& sim) : sim_{sim} {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator& sim() { return sim_; }

  // Registers the host under its address (must be unique).
  void attach(Host& host);

  // Creates a directed link from `from` to `to`.
  Link& add_link(Ipv4 from, Ipv4 to, const LinkParams& params);

  // Creates both directions with the same parameters.
  void add_duplex_link(Ipv4 a, Ipv4 b, const LinkParams& params) {
    add_link(a, b, params);
    add_link(b, a, params);
  }

  // Link accessor for runtime tweaks (delay injection); asserts if missing.
  Link& link(Ipv4 from, Ipv4 to);
  bool has_link(Ipv4 from, Ipv4 to) const;

  // Stamps pkt_id / sent_at and transmits. Returns false on queue drop.
  INBAND_HOT bool send(Ipv4 from, Ipv4 to, Packet pkt);

  // Observation hook invoked for every packet handed to a link (after
  // stamping, before delivery). Used by the trace recorder.
  using SendHook =
      std::function<void(const Packet&, Ipv4 from, Ipv4 to)>;
  void set_send_hook(SendHook hook) { send_hook_ = std::move(hook); }

  // Installs (or clears, with nullptr) the fault-injection interceptor. The
  // interceptor is borrowed and must outlive the network or be cleared first.
  void set_interceptor(SendInterceptor* interceptor) {
    interceptor_ = interceptor;
  }

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }

 private:
  static std::uint64_t key(Ipv4 from, Ipv4 to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  // Transmits `pkt` on `link` toward `dst` after `hold` of simulated time.
  void transmit_held(Link& link, Host& dst, Packet pkt, SimTime hold);

  Simulator& sim_;
  std::unordered_map<Ipv4, Host*> hosts_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Link>> links_;
  SendHook send_hook_;
  SendInterceptor* interceptor_ = nullptr;
  std::uint64_t next_pkt_id_ = 1;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_dropped_ = 0;
};

// A node attached to the network. Subclasses implement handle_packet();
// outbound traffic goes through send() / send_to(). A mixin, not an entity:
// a Host instance lives in whatever domain its derived class does (TcpHost
// and KvServer in `shard`, LoadBalancer in `lb`), hence `owner`.
INBAND_SHARD_LOCAL(owner)
class Host : public PacketSink {
 public:
  Host(Simulator& sim, Network& net, Ipv4 addr, std::string name);
  ~Host() override = default;

  Ipv4 addr() const { return addr_; }
  const std::string& name() const { return name_; }
  Simulator& sim() { return sim_; }
  Network& network() { return net_; }

  // Sends toward the packet's flow destination (the normal endpoint case).
  bool send(Packet pkt) { return net_.send(addr_, pkt.flow.dst.addr, std::move(pkt)); }

  // Sends toward an explicit next hop regardless of the flow key (the LB
  // forwarding case).
  bool send_to(Ipv4 to, Packet pkt) { return net_.send(addr_, to, std::move(pkt)); }

 private:
  Simulator& sim_;
  Network& net_;
  Ipv4 addr_;
  std::string name_;
};

}  // namespace inband
