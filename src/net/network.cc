#include "net/network.h"

#include "util/assert.h"
#include "util/logging.h"

namespace inband {

Host::Host(Simulator& sim, Network& net, Ipv4 addr, std::string name)
    : sim_{sim}, net_{net}, addr_{addr}, name_{std::move(name)} {
  net_.attach(*this);
}

void Network::attach(Host& host) {
  const auto [it, inserted] = hosts_.emplace(host.addr(), &host);
  (void)it;
  INBAND_ASSERT(inserted, "duplicate host address");
}

Link& Network::add_link(Ipv4 from, Ipv4 to, const LinkParams& params) {
  INBAND_ASSERT(from != to, "self-link");
  auto link = std::make_unique<Link>(sim_, params);
  auto& ref = *link;
  const auto [it, inserted] = links_.emplace(key(from, to), std::move(link));
  (void)it;
  INBAND_ASSERT(inserted, "duplicate link");
  return ref;
}

bool Network::has_link(Ipv4 from, Ipv4 to) const {
  return links_.find(key(from, to)) != links_.end();
}

Link& Network::link(Ipv4 from, Ipv4 to) {
  const auto it = links_.find(key(from, to));
  INBAND_ASSERT(it != links_.end(), "no such link");
  return *it->second;
}

bool Network::send(Ipv4 from, Ipv4 to, Packet pkt) {
  const auto lit = links_.find(key(from, to));
  INBAND_ASSERT(lit != links_.end(), "sending over a missing link");
  const auto hit = hosts_.find(to);
  INBAND_ASSERT(hit != hosts_.end(), "no host attached at destination");

  pkt.pkt_id = next_pkt_id_++;
  pkt.sent_at = sim_.now();
  if (send_hook_) send_hook_(pkt, from, to);

  ++packets_sent_;
  if (interceptor_ != nullptr) {
    const SendVerdict verdict = interceptor_->on_send(pkt, from, to);
    if (verdict.drop) {
      // Lost in the network: the sender saw a successful send and recovery
      // is the transport's problem, so this is `true`, unlike a queue drop.
      return true;
    }
    if (verdict.duplicate_hold != kNoTime) {
      transmit_held(*lit->second, *hit->second, pkt, verdict.duplicate_hold);
    }
    if (verdict.hold > 0) {
      transmit_held(*lit->second, *hit->second, std::move(pkt), verdict.hold);
      return true;
    }
  }
  if (!lit->second->transmit(std::move(pkt), *hit->second)) {
    ++packets_dropped_;
    return false;
  }
  return true;
}

void Network::transmit_held(Link& link, Host& dst, Packet pkt, SimTime hold) {
  INBAND_ASSERT(hold >= 0);
  auto release = [this, &link, &dst, p = std::move(pkt)]() mutable {
    if (!link.transmit(std::move(p), dst)) ++packets_dropped_;
  };
  static_assert(EventCallback::fits_inline<decltype(release)>());
  sim_.schedule_after(hold, std::move(release));
}

}  // namespace inband
