#include "net/network.h"

#include "util/assert.h"
#include "util/logging.h"

namespace inband {

void SendInterceptor::on_send_batch(const PacketBatch& batch, Ipv4 from,
                                    Ipv4 to, BatchVerdict& out) {
  // Default shim: element-wise scalar verdicts, strictly in index order.
  for (std::uint32_t i = 0; i < batch.size(); ++i) {
    out.v[i] = on_send(*batch[i], from, to);
  }
}

Host::Host(Simulator& sim, Network& net, Ipv4 addr, std::string name)
    : sim_{sim}, net_{net}, addr_{addr}, name_{std::move(name)} {
  net_.attach(*this);
}

void Network::attach(Host& host) {
  const auto [it, inserted] = hosts_.emplace(host.addr(), &host);
  (void)it;
  INBAND_ASSERT(inserted, "duplicate host address");
}

Link& Network::add_link(Ipv4 from, Ipv4 to, const LinkParams& params) {
  INBAND_ASSERT(from != to, "self-link");
  auto link = std::make_unique<Link>(sim_, params);
  auto& ref = *link;
  const auto [it, inserted] = links_.emplace(key(from, to), std::move(link));
  (void)it;
  INBAND_ASSERT(inserted, "duplicate link");
  return ref;
}

bool Network::has_link(Ipv4 from, Ipv4 to) const {
  return links_.find(key(from, to)) != links_.end();
}

Link& Network::link(Ipv4 from, Ipv4 to) {
  const auto it = links_.find(key(from, to));
  INBAND_ASSERT(it != links_.end(), "no such link");
  return *it->second;
}

bool Network::dispatch(Link& link, Host& dst, PacketRef pkt,
                       const SendVerdict& verdict) {
  if (verdict.drop) {
    // Lost in the network: the sender saw a successful send and recovery
    // is the transport's problem, so this is `true`, unlike a queue drop.
    // The ref dies here and the slot recycles.
    return true;
  }
  if (verdict.duplicate_hold != kNoTime) {
    PacketRef dup = pool_.acquire();
    *dup = *pkt;  // pooled clone — the duplicate no longer heap-copies
    transmit_held(link, dst, std::move(dup), verdict.duplicate_hold);
  }
  if (verdict.hold > 0) {
    transmit_held(link, dst, std::move(pkt), verdict.hold);
    return true;
  }
  if (!link.transmit(std::move(pkt), dst)) {
    ++packets_dropped_;
    return false;
  }
  return true;
}

std::uint32_t Network::send_batch(Ipv4 from, Ipv4 to, PacketBatch& batch) {
  if (batch.empty()) return 0;
  const auto lit = links_.find(key(from, to));
  if (lit == links_.end()) return remote_send_batch(from, to, batch);
  const auto hit = hosts_.find(to);
  INBAND_ASSERT(hit != hosts_.end(), "no host attached at destination");

  const SimTime now = sim_.now();
  const std::uint32_t n = batch.size();
  for (std::uint32_t i = 0; i < n; ++i) {
    Packet& p = *batch[i];
    p.pkt_id = next_pkt_id_++;
    p.sent_at = now;
    if (observer_ != nullptr) observer_->on_packet(p, from, to);
  }
  packets_sent_ += n;
  ++batches_;
  batch_packets_ += n;
  if (n > max_batch_) max_batch_ = n;

  BatchVerdict verdicts;
  if (interceptor_ != nullptr) {
    interceptor_->on_send_batch(batch, from, to, verdicts);
  }
  std::uint32_t accepted = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (dispatch(*lit->second, *hit->second, batch.take(i), verdicts.v[i])) {
      ++accepted;
    }
  }
  batch.clear();
  return accepted;
}

bool Network::send(Ipv4 from, Ipv4 to, PacketRef pkt) {
  const auto lit = links_.find(key(from, to));
  if (lit == links_.end()) return remote_send(from, to, std::move(pkt));
  const auto hit = hosts_.find(to);
  INBAND_ASSERT(hit != hosts_.end(), "no host attached at destination");

  Packet& p = *pkt;
  p.pkt_id = next_pkt_id_++;
  p.sent_at = sim_.now();
  if (observer_ != nullptr) observer_->on_packet(p, from, to);

  ++packets_sent_;
  SendVerdict verdict;
  if (interceptor_ != nullptr) verdict = interceptor_->on_send(p, from, to);
  return dispatch(*lit->second, *hit->second, std::move(pkt), verdict);
}

bool Network::send(Ipv4 from, Ipv4 to, Packet pkt) {
  PacketRef ref = pool_.acquire();
  *ref = std::move(pkt);
  return send(from, to, std::move(ref));
}

// No (from, to) link: either the destination lives on another shard and the
// egress takes the packet, or it is the old programming error. Stamping and
// observation match the local paths so a packet's lifecycle is identical on
// both sides of the boundary; the fault interceptor is skipped by design
// (see RemoteEgress). The local refs recycle here — the egress copied.
std::uint32_t Network::remote_send_batch(Ipv4 from, Ipv4 to,
                                         PacketBatch& batch) {
  INBAND_ASSERT(remote_ != nullptr, "sending over a missing link");
  const SimTime now = sim_.now();
  const std::uint32_t n = batch.size();
  for (std::uint32_t i = 0; i < n; ++i) {
    Packet& p = *batch[i];
    p.pkt_id = next_pkt_id_++;
    p.sent_at = now;
    if (observer_ != nullptr) observer_->on_packet(p, from, to);
    const bool taken = remote_->forward(p, from, to);
    INBAND_ASSERT(taken, "sending over a missing link (egress refused)");
  }
  packets_sent_ += n;
  ++batches_;
  batch_packets_ += n;
  if (n > max_batch_) max_batch_ = n;
  remote_packets_ += n;
  batch.clear();
  return n;
}

bool Network::remote_send(Ipv4 from, Ipv4 to, PacketRef pkt) {
  INBAND_ASSERT(remote_ != nullptr, "sending over a missing link");
  Packet& p = *pkt;
  p.pkt_id = next_pkt_id_++;
  p.sent_at = sim_.now();
  if (observer_ != nullptr) observer_->on_packet(p, from, to);
  ++packets_sent_;
  ++remote_packets_;
  const bool taken = remote_->forward(p, from, to);
  INBAND_ASSERT(taken, "sending over a missing link (egress refused)");
  return true;
}

void Network::transmit_held(Link& link, Host& dst, PacketRef pkt,
                            SimTime hold) {
  INBAND_ASSERT(hold >= 0);
  struct Release {
    Network* net;
    Link* link;
    Host* dst;
    PacketRef p;
    void operator()() {
      if (!link->transmit(std::move(p), *dst)) ++net->packets_dropped_;
    }
  };
  Release release{this, &link, &dst, std::move(pkt)};
  static_assert(EventCallback::fits_inline<Release>());
  sim_.schedule_after(hold, std::move(release));
}

}  // namespace inband
