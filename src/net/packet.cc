#include "net/packet.h"

#include <sstream>

namespace inband {

std::string format_flow(const FlowKey& f) {
  return format_endpoint(f.src) + ">" + format_endpoint(f.dst);
}

std::string format_packet(const Packet& p) {
  std::ostringstream os;
  os << format_flow(p.flow) << " [";
  if (p.has(tcpflag::kSyn)) os << 'S';
  if (p.has(tcpflag::kFin)) os << 'F';
  if (p.has(tcpflag::kRst)) os << 'R';
  if (p.has(tcpflag::kAck)) os << '.';
  if (p.has(tcpflag::kPsh)) os << 'P';
  os << "] seq=" << p.seq;
  if (p.has(tcpflag::kAck)) os << " ack=" << p.ack;
  os << " len=" << p.payload_len << " wnd=" << p.wnd;
  return os.str();
}

}  // namespace inband
