#include "net/packet.h"

#include <sstream>

#include "util/assert.h"

namespace inband {

std::string format_flow(const FlowKey& f) {
  return format_endpoint(f.src) + ">" + format_endpoint(f.dst);
}

std::string format_packet(const Packet& p) {
  std::ostringstream os;
  os << format_flow(p.flow) << " [";
  if (p.has(tcpflag::kSyn)) os << 'S';
  if (p.has(tcpflag::kFin)) os << 'F';
  if (p.has(tcpflag::kRst)) os << 'R';
  if (p.has(tcpflag::kAck)) os << '.';
  if (p.has(tcpflag::kPsh)) os << 'P';
  os << "] seq=" << p.seq;
  if (p.has(tcpflag::kAck)) os << " ack=" << p.ack;
  os << " len=" << p.payload_len << " wnd=" << p.wnd;
  return os.str();
}

Packet detach_packet_copy(const Packet& src) {
  Packet out;
  out.flow = src.flow;
  out.seq = src.seq;
  out.ack = src.ack;
  out.wnd = src.wnd;
  out.flags = src.flags;
  out.payload_len = src.payload_len;
  out.ts_val = src.ts_val;
  out.ts_ecr = src.ts_ecr;
  out.pkt_id = src.pkt_id;
  out.sent_at = src.sent_at;
  for (const MessageRef& m : src.msgs) {
    std::shared_ptr<const AppPayload> clone;
    if (m.payload != nullptr) {
      clone = m.payload->clone_detached();
      INBAND_ASSERT(clone != nullptr,
                    "payload type cannot cross shards: clone_detached() "
                    "is not implemented");
    }
    out.msgs.push_msg(MessageRef{m.end_offset, std::move(clone)});
  }
  return out;
}

}  // namespace inband
