#include "net/packet_pool.h"

namespace inband {

PacketPool::~PacketPool() {
  State& s = *state_;
  if (s.stats.outstanding == 0) {
    delete state_;
  } else {
    // Refs still live (e.g. delivery events pending when a scenario tears
    // down). The last one to release frees the state — slots stay valid
    // until then.
    s.orphaned = true;
  }
  state_ = nullptr;
}

PacketPool::Stats PacketPool::stats() const { return state_->stats; }

void PacketPool::State::grow() {
  chunks.push_back(std::make_unique<Packet[]>(kChunkPackets));
  Packet* chunk = chunks.back().get();
  free_list.reserve(stats.slots + kChunkPackets);
  // Newest slots go to the back of the LIFO free list, so the pool prefers
  // recently-released (cache-warm) buffers and the first chunk's slots keep
  // getting reused under steady load.
  for (std::uint32_t i = 0; i < kChunkPackets; ++i) {
    free_list.push_back(&chunk[kChunkPackets - 1 - i]);
  }
  stats.slots += kChunkPackets;
}

}  // namespace inband
