// Pooled packet buffers and fixed-capacity packet batches.
//
// The data plane's unit of work is a PacketBatch of PacketRef handles drawn
// from a slab PacketPool — BESS's PacketBatch/snb pool structure, recycled
// the way PR 4's event queue recycles callback slots. A Packet is ~140 bytes;
// moving it by value through every virtual send/deliver hop was the dominant
// memcpy of the simulated fabric. A PacketRef is two words: producers fill
// the pooled slot once, every later layer (network, fault interceptor, link,
// sink) passes the handle.
//
// Lifetime: slots never move (chunked slabs), and the pool's internal state
// is kept alive by outstanding refs. Delivery events holding PacketRefs may
// outlive the Network that owns the pool (ClusterRig destroys the simulator
// last); a ref released after the pool's destruction frees the orphaned
// state when the last one goes. Same orphan-safe shape as util/shared_pool.h,
// but with an intrusive count instead of shared_ptr so acquire/release touch
// no refcounted control blocks.
#pragma once

#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "util/assert.h"
#include "util/hotpath.h"
#include "util/shard.h"

namespace inband {

class PacketRef;

// Slab pool of Packet slots. Owned by the Network fabric: pooled buffers are
// channel state, handed to a shard when a batch is delivered and returned to
// the channel when the refs die (see DESIGN.md on the shardlint partition).
INBAND_SHARD_CHANNEL
class PacketPool {
 public:
  static constexpr std::uint32_t kChunkPackets = 256;

  struct Stats {
    std::uint64_t acquired = 0;   // total acquire() calls
    std::uint64_t released = 0;   // refs returned to the free list
    std::uint64_t slots = 0;      // slots ever created (capacity)
    std::uint64_t outstanding = 0;
    std::uint64_t high_water = 0;  // max simultaneously outstanding
  };

  PacketPool() : state_{new State} {}
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;
  ~PacketPool();

  INBAND_HOT PacketRef acquire();

  Stats stats() const;

 private:
  friend class PacketRef;

  // Channel state like the pool itself: refs from any shard release into it.
  INBAND_SHARD_CHANNEL
  struct State {
    std::vector<std::unique_ptr<Packet[]>> chunks;
    std::vector<Packet*> free_list;
    Stats stats;
    bool orphaned = false;  // pool destroyed; last ref deletes the state

    void grow();

    INBAND_HOT void release(Packet* pkt) {
      pkt->msgs.clear();  // drop payload refs at release, not at reuse
      // hotlint:allow(hot-growth): capacity reserved in grow(), never exceeded
      free_list.push_back(pkt);
      ++stats.released;
      --stats.outstanding;
      if (orphaned && stats.outstanding == 0) {
        // hotlint:allow(hot-alloc): orphan teardown, once at pool destruction
        delete this;
      }
    }
  };

  State* state_;
};

// Move-only handle to one pooled Packet slot. Releasing the handle (reset,
// destruction) recycles the slot.
INBAND_SHARD_LOCAL(owner)
class PacketRef {
 public:
  PacketRef() = default;
  PacketRef(PacketRef&& other) noexcept
      : state_{other.state_}, pkt_{other.pkt_} {
    other.state_ = nullptr;
    other.pkt_ = nullptr;
  }
  PacketRef& operator=(PacketRef&& other) noexcept {
    if (this != &other) {
      reset();
      state_ = other.state_;
      pkt_ = other.pkt_;
      other.state_ = nullptr;
      other.pkt_ = nullptr;
    }
    return *this;
  }
  PacketRef(const PacketRef&) = delete;
  PacketRef& operator=(const PacketRef&) = delete;
  ~PacketRef() { reset(); }

  explicit operator bool() const { return pkt_ != nullptr; }
  Packet& operator*() const {
    INBAND_DCHECK(pkt_ != nullptr);
    return *pkt_;
  }
  Packet* operator->() const {
    INBAND_DCHECK(pkt_ != nullptr);
    return pkt_;
  }

  INBAND_HOT void reset() {
    if (pkt_ != nullptr) {
      state_->release(pkt_);
      state_ = nullptr;
      pkt_ = nullptr;
    }
  }

 private:
  friend class PacketPool;
  PacketRef(PacketPool::State* state, Packet* pkt)
      : state_{state}, pkt_{pkt} {}

  PacketPool::State* state_ = nullptr;
  Packet* pkt_ = nullptr;
};

inline PacketRef PacketPool::acquire() {
  State& s = *state_;
  if (s.free_list.empty()) {
    INBAND_COLD_OK("slab growth: amortized over the pool's lifetime");
    s.grow();
  }
  Packet* pkt = s.free_list.back();
  s.free_list.pop_back();
  *pkt = Packet{};  // slot was released with msgs cleared; resets the PODs
  ++s.stats.acquired;
  ++s.stats.outstanding;
  if (s.stats.outstanding > s.stats.high_water) {
    s.stats.high_water = s.stats.outstanding;
  }
  return PacketRef{state_, pkt};
}

// Fixed-capacity batch of PacketRefs — the unit handed across the sim/net
// boundary. Construction writes one word (the size); ref storage is raw and
// only [0, size) slots are live, so building a singleton batch on the
// delivery path costs no 32-slot initialization.
INBAND_SHARD_LOCAL(owner)
class PacketBatch {
 public:
  static constexpr std::uint32_t kCapacity = 32;

  PacketBatch() = default;
  PacketBatch(PacketBatch&& other) noexcept {
    for (std::uint32_t i = 0; i < other.size_; ++i) {
      new (slot(i)) PacketRef{std::move(other[i])};
    }
    size_ = other.size_;
    other.destroy_all();
  }
  PacketBatch& operator=(PacketBatch&& other) noexcept {
    if (this != &other) {
      clear();
      for (std::uint32_t i = 0; i < other.size_; ++i) {
        new (slot(i)) PacketRef{std::move(other[i])};
      }
      size_ = other.size_;
      other.destroy_all();
    }
    return *this;
  }
  PacketBatch(const PacketBatch&) = delete;
  PacketBatch& operator=(const PacketBatch&) = delete;
  ~PacketBatch() { destroy_all(); }

  std::uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == kCapacity; }

  INBAND_HOT void push(PacketRef&& ref) {
    INBAND_DCHECK(size_ < kCapacity);
    new (slot(size_)) PacketRef{std::move(ref)};
    ++size_;
  }

  PacketRef& operator[](std::uint32_t i) {
    INBAND_DCHECK(i < size_);
    return *std::launder(reinterpret_cast<PacketRef*>(slot(i)));
  }
  const PacketRef& operator[](std::uint32_t i) const {
    INBAND_DCHECK(i < size_);
    return *std::launder(reinterpret_cast<const PacketRef*>(slot(i)));
  }

  // Moves element i out (its slot stays, empty, until clear()).
  INBAND_HOT PacketRef take(std::uint32_t i) { return std::move((*this)[i]); }

  // Releases every remaining ref and empties the batch.
  void clear() { destroy_all(); }

 private:
  unsigned char* slot(std::uint32_t i) {
    return storage_ + i * sizeof(PacketRef);
  }
  const unsigned char* slot(std::uint32_t i) const {
    return storage_ + i * sizeof(PacketRef);
  }
  void destroy_all() {
    for (std::uint32_t i = 0; i < size_; ++i) (*this)[i].~PacketRef();
    size_ = 0;
  }

  std::uint32_t size_ = 0;
  alignas(PacketRef) unsigned char storage_[kCapacity * sizeof(PacketRef)];
};

}  // namespace inband
