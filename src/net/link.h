// Point-to-point directed link.
//
// Models serialization delay (bandwidth), propagation delay, a bounded
// drop-tail FIFO queue, and an injectable extra delay that experiments can
// change at runtime — that knob is exactly how the Fig. 3 experiment inflates
// the LB→server path by 1 ms mid-run.
//
// The queue is "virtual": instead of buffering packets, the link tracks the
// time at which its transmitter frees up. A packet arriving when the backlog
// already exceeds the configured queue size is dropped. This is the standard
// allocation-free fluid-queue model and is exact for FIFO drop-tail.
#pragma once

#include <cstdint>

#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/simulator.h"
#include "util/hotpath.h"
#include "util/rng.h"
#include "util/shard.h"
#include "util/time.h"

namespace inband {

// Destination abstraction: anything that can accept delivered packets.
//
// handle_batch() is the data plane's native entry point; handle_packet() is
// the legacy scalar form. A sink must override at least one: the default
// handle_batch() unbatches into handle_packet() (so existing sinks keep
// working unchanged), and the default handle_packet() asserts.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void handle_batch(PacketBatch&& batch);
  virtual void handle_packet(Packet pkt);
};

struct LinkParams {
  std::uint64_t bandwidth_bps = 10'000'000'000;  // 10 Gb/s
  SimTime prop_delay = us(10);
  std::uint64_t queue_bytes = 0;  // 0 => unbounded queue

  // Per-packet delay jitter (log-normal with the given median/sigma; 0
  // disables). Models the kernel/NIC scheduling and cross-traffic queueing
  // noise every real path has — the noise that makes timeout selection
  // nontrivial in the first place (paper §3). Delivery order stays FIFO.
  SimTime jitter_median = 0;
  double jitter_sigma = 0.0;
  std::uint64_t jitter_seed = 0x7177e6;
};

INBAND_SHARD_LOCAL(shard)
class Link {
 public:
  Link(Simulator& sim, LinkParams params);

  // Transmits `pkt` toward `dst`. Returns false if the packet was dropped by
  // the queue. Delivery is scheduled on the simulator: the pooled form
  // delivers through dst.handle_batch() (a singleton batch), the by-value
  // form through dst.handle_packet(). Both share the same clock-in logic, so
  // a mixed workload sees one FIFO.
  INBAND_HOT bool transmit(PacketRef pkt, PacketSink& dst);
  INBAND_HOT bool transmit(Packet pkt, PacketSink& dst);

  // Runtime-adjustable additional one-way delay (>= 0); applied to packets
  // transmitted after the change.
  void set_extra_delay(SimTime d);
  SimTime extra_delay() const { return extra_delay_; }

  const LinkParams& params() const { return params_; }

  // Serialization time for a packet of `bytes` on this link.
  SimTime serialization_delay(std::uint64_t bytes) const;

  // Current transmit backlog (ns of queued serialization work).
  SimTime backlog(SimTime now) const;

  std::uint64_t tx_packets() const { return tx_packets_; }
  std::uint64_t tx_bytes() const { return tx_bytes_; }
  std::uint64_t drops() const { return drops_; }

 private:
  // Runs queue admission + transmit/propagation timing for one packet of
  // `wire_bytes`. Returns the delivery time, or kNoTime on a queue drop.
  INBAND_HOT SimTime admit(std::uint64_t wire_bytes);

  Simulator& sim_;
  LinkParams params_;
  Rng jitter_rng_;
  SimTime extra_delay_ = 0;
  SimTime busy_until_ = 0;
  SimTime last_delivery_ = 0;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace inband
