#include "net/link.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace inband {

void PacketSink::handle_batch(PacketBatch&& batch) {
  // Compatibility shim: unbatch into the scalar entry point. Each packet is
  // moved out of its pooled slot (one copy — the price of not migrating).
  for (std::uint32_t i = 0; i < batch.size(); ++i) {
    PacketRef ref = batch.take(i);
    Packet pkt = std::move(*ref);
    ref.reset();
    handle_packet(std::move(pkt));
  }
}

void PacketSink::handle_packet(Packet /*pkt*/) {
  INBAND_ASSERT(false,
                "PacketSink overrides neither handle_batch nor handle_packet");
}

Link::Link(Simulator& sim, LinkParams params)
    : sim_{sim}, params_{params}, jitter_rng_{params.jitter_seed} {
  INBAND_ASSERT(params_.bandwidth_bps > 0);
  INBAND_ASSERT(params_.prop_delay >= 0);
  INBAND_ASSERT(params_.jitter_median >= 0);
  INBAND_ASSERT(params_.jitter_sigma >= 0.0);
}

SimTime Link::serialization_delay(std::uint64_t bytes) const {
  // ns = bytes * 8 * 1e9 / bps, rounded up so zero-cost packets cannot exist.
  const auto num = static_cast<__uint128_t>(bytes) * 8u * 1'000'000'000u;
  const auto d = static_cast<SimTime>(
      (num + params_.bandwidth_bps - 1) / params_.bandwidth_bps);
  return std::max<SimTime>(d, 1);
}

SimTime Link::backlog(SimTime now) const {
  return busy_until_ > now ? busy_until_ - now : 0;
}

void Link::set_extra_delay(SimTime d) {
  INBAND_ASSERT(d >= 0);
  extra_delay_ = d;
}

SimTime Link::admit(std::uint64_t wire_bytes) {
  const SimTime now = sim_.now();
  if (params_.queue_bytes != 0) {
    const SimTime queue_limit = serialization_delay(params_.queue_bytes);
    if (backlog(now) > queue_limit) {
      ++drops_;
      return kNoTime;
    }
  }
  const SimTime start = std::max(now, busy_until_);
  const SimTime done = start + serialization_delay(wire_bytes);
  busy_until_ = done;
  ++tx_packets_;
  tx_bytes_ += wire_bytes;
  SimTime deliver_at = done + params_.prop_delay + extra_delay_;
  if (params_.jitter_median > 0 && params_.jitter_sigma > 0.0) {
    deliver_at += static_cast<SimTime>(jitter_rng_.lognormal_median(
        static_cast<double>(params_.jitter_median), params_.jitter_sigma));
  }
  // FIFO: jitter may not reorder packets on the wire.
  deliver_at = std::max(deliver_at, last_delivery_ + 1);
  last_delivery_ = deliver_at;
  return deliver_at;
}

bool Link::transmit(PacketRef pkt, PacketSink& dst) {
  const SimTime deliver_at = admit(pkt->wire_size());
  if (deliver_at == kNoTime) return false;  // ref dies here: slot recycles
  struct Deliver {
    PacketSink* dst;
    PacketRef p;
    void operator()() {
      PacketBatch batch;
      batch.push(std::move(p));
      dst->handle_batch(std::move(batch));
    }
  };
  Deliver deliver{&dst, std::move(pkt)};
  // The per-packet event must live inline in the event pool; delivery state
  // that outgrows the callback's small buffer would put an allocation back
  // on every simulated hop. The pooled handle is two words — far under the
  // limit the by-value Packet used to push against.
  static_assert(EventCallback::fits_inline<Deliver>());
  sim_.schedule_at(deliver_at, std::move(deliver));
  return true;
}

bool Link::transmit(Packet pkt, PacketSink& dst) {
  const SimTime deliver_at = admit(pkt.wire_size());
  if (deliver_at == kNoTime) return false;
  auto deliver = [&dst, p = std::move(pkt)]() mutable {
    dst.handle_packet(std::move(p));
  };
  static_assert(EventCallback::fits_inline<decltype(deliver)>());
  sim_.schedule_at(deliver_at, std::move(deliver));
  return true;
}

}  // namespace inband
