#include "net/trace.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"

namespace inband {

TraceRecorder::TraceRecorder(Network& net, std::optional<Ipv4> vantage)
    : net_{net}, vantage_{vantage} {
  net_.set_observer(this);
}

TraceRecorder::~TraceRecorder() {
  if (net_.observer() == this) net_.set_observer(nullptr);
}

void TraceRecorder::on_packet(const Packet& pkt, Ipv4 from, Ipv4 to) {
  if (vantage_ && *vantage_ != from && *vantage_ != to) return;
  // hotlint:allow(hot-growth): opt-in trace capture, one row per packet
  rows_.push_back({pkt.sent_at, from, to, pkt.flow, pkt.seq, pkt.ack,
                   pkt.flags, pkt.payload_len});
}

void TraceRecorder::save_csv(const std::string& path) const {
  CsvWriter csv{path};
  csv.header("t_ns", "hop_from", "hop_to", "src_addr", "src_port", "dst_addr",
             "dst_port", "proto", "seq", "ack", "flags", "payload_len");
  for (const auto& r : rows_) {
    csv.row(r.t, r.hop_from, r.hop_to, r.flow.src.addr, r.flow.src.port,
            r.flow.dst.addr, r.flow.dst.port,
            static_cast<unsigned>(r.flow.proto), r.seq, r.ack,
            static_cast<unsigned>(r.flags), r.payload_len);
  }
}

std::vector<TraceRow> TraceRecorder::load_csv(const std::string& path) {
  std::ifstream in{path};
  if (!in.is_open()) throw std::runtime_error("cannot open trace: " + path);
  std::vector<TraceRow> rows;
  std::string line;
  bool first = true;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (first) {  // header
      first = false;
      continue;
    }
    if (line.empty()) continue;
    std::istringstream ls{line};
    std::string field;
    std::vector<std::uint64_t> v;
    while (std::getline(ls, field, ',')) {
      try {
        v.push_back(std::stoull(field));
      } catch (const std::exception&) {
        throw std::runtime_error("bad trace field at line " +
                                 std::to_string(lineno) + ": " + field);
      }
    }
    if (v.size() != 12) {
      throw std::runtime_error("bad trace row at line " +
                               std::to_string(lineno));
    }
    TraceRow r;
    r.t = static_cast<SimTime>(v[0]);
    r.hop_from = static_cast<Ipv4>(v[1]);
    r.hop_to = static_cast<Ipv4>(v[2]);
    r.flow.src = {static_cast<Ipv4>(v[3]), static_cast<std::uint16_t>(v[4])};
    r.flow.dst = {static_cast<Ipv4>(v[5]), static_cast<std::uint16_t>(v[6])};
    r.flow.proto = static_cast<IpProto>(v[7]);
    r.seq = static_cast<std::uint32_t>(v[8]);
    r.ack = static_cast<std::uint32_t>(v[9]);
    r.flags = static_cast<std::uint8_t>(v[10]);
    r.payload_len = static_cast<std::uint32_t>(v[11]);
    rows.push_back(r);
  }
  return rows;
}

}  // namespace inband
