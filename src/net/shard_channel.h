// Cross-shard packet channel: SPSC transport plus conservative horizon.
//
// One ShardChannel is one directed cross-shard trunk (source shard ->
// destination shard) with a fixed positive latency L, the protocol's
// lookahead (sim/parallel.h). It satisfies shardlint's CHANNEL contract the
// same way Network and FaultLayer do — it is the explicit hand-off point
// between two ownership domains, and nothing else mutable is shared
// (DESIGN.md cross-references shardlint §9.2).
//
// Producer side (source shard's worker):
//   * push(now, from, to, pkt) files a delivery at now + L. Per-channel
//     deliver times are monotone because `now` is and L is fixed — the queue
//     is FIFO in delivery order, so the head is always the channel minimum.
//   * announce(frontier) raises the horizon word to frontier + L (monotone),
//     *after* any pushes from the same slice — release order matters and is
//     provided by the atomic store. It also reclaims consumed slots:
//     producer-side destruction, because the payloads hold shard-local
//     resources (pooled shared_ptrs) whose teardown must stay on the owning
//     thread (util/spsc_queue.h).
//
// Consumer side (destination shard's worker):
//   * lower_bound() is the conservative bound: the head's deliver time when
//     a message is visible, else the announced horizon. The horizon is
//     loaded (acquire) *before* peeking — the release/acquire pair
//     guarantees that if the load observed announce(F), every push before
//     that announce is visible to the peek, so an empty queue really means
//     "nothing below the horizon".
//   * take_detached() deep-copies the head packet with fresh message
//     ownership (AppPayload::clone_detached) and consumes the slot. The
//     consumer never copies or destroys the producer's shared_ptrs.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

#include "net/packet.h"
#include "util/assert.h"
#include "util/shard.h"
#include "util/spsc_queue.h"
#include "util/time.h"

namespace inband {

// Frontier ceiling for finished shards: far beyond any simulated end time,
// with headroom so adding a link latency cannot overflow SimTime.
inline constexpr SimTime kFrontierMax =
    std::numeric_limits<SimTime>::max() / 4;

// One packet in flight between shards. `to` is the delivery address on the
// destination shard (VIP or host); `from` is kept for tracing.
struct CrossPacket {
  SimTime deliver_at = kNoTime;
  Ipv4 from = 0;
  Ipv4 to = 0;
  Packet pkt;
};

INBAND_SHARD_CHANNEL
class ShardChannel {
 public:
  ShardChannel(std::uint32_t id, SimTime latency) : id_{id}, latency_{latency} {
    INBAND_ASSERT(latency > 0,
                  "cross-shard links need positive latency: the lookahead "
                  "is what makes conservative progress possible");
  }
  ShardChannel(const ShardChannel&) = delete;
  ShardChannel& operator=(const ShardChannel&) = delete;

  std::uint32_t id() const { return id_; }
  SimTime latency() const { return latency_; }

  // --- producer side (source shard) ---

  void push(SimTime now, Ipv4 from, Ipv4 to, const Packet& pkt) {
    const SimTime deliver_at = now + latency_;
    INBAND_ASSERT(deliver_at >= horizon_.load(std::memory_order_relaxed),
                  "cross-shard send below the announced horizon");
    q_.push(CrossPacket{deliver_at, from, to, pkt});
  }

  void announce(SimTime frontier) {
    INBAND_ASSERT(frontier <= kFrontierMax);
    const SimTime h = frontier + latency_;
    if (h > horizon_.load(std::memory_order_relaxed)) {
      horizon_.store(h, std::memory_order_release);
    }
    q_.reclaim();
  }

  std::uint64_t pushed() const { return q_.pushed(); }

  // --- consumer side (destination shard) ---

  // Earliest time at which this channel can still deliver anything the
  // consumer has not yet taken.
  SimTime lower_bound() {
    const SimTime h = horizon_.load(std::memory_order_acquire);
    const CrossPacket* head = q_.peek();  // peek AFTER the horizon load
    return head != nullptr ? head->deliver_at : h;
  }

  const CrossPacket* peek() { return q_.peek(); }

  // Detached deep copy of the head packet (fresh message ownership; see
  // net/packet.h detach_packet_copy); consumes the slot. The producer-owned
  // original is destroyed later, by the producer, in announce()'s reclaim.
  Packet take_detached(SimTime* deliver_at, Ipv4* from, Ipv4* to);

  std::uint64_t consumed_count() const { return q_.consumed(); }

 private:
  const std::uint32_t id_;
  const SimTime latency_;
  std::atomic<SimTime> horizon_{0};
  SpscQueue<CrossPacket> q_;
};

}  // namespace inband
