// Packet trace recording and offline replay.
//
// TraceRecorder observes Network's send path and keeps one row per packet.
// Traces can be saved to CSV and reloaded, which lets the estimators run
// offline over captured traffic (see examples/trace_analysis.cc) — the same
// way one would run them over a pcap from a production LB.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/packet.h"
#include "util/shard.h"

namespace inband {

struct TraceRow {
  SimTime t = 0;  // transmission timestamp
  Ipv4 hop_from = 0;
  Ipv4 hop_to = 0;
  FlowKey flow;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint32_t payload_len = 0;
};

INBAND_SHARD_LOCAL(owner)
class TraceRecorder : public PacketObserver {
 public:
  // Starts recording on `net`. Optionally filter to packets observed
  // departing from or arriving at `vantage` (e.g. record only what an LB
  // forwards). Replaces any previously installed observer; deregisters
  // itself on destruction (if still installed).
  explicit TraceRecorder(Network& net,
                         std::optional<Ipv4> vantage = std::nullopt);
  ~TraceRecorder() override;

  void on_packet(const Packet& pkt, Ipv4 from, Ipv4 to) override;

  const std::vector<TraceRow>& rows() const { return rows_; }
  void clear() { rows_.clear(); }

  void save_csv(const std::string& path) const;

  // Parses a file produced by save_csv. Throws std::runtime_error on
  // malformed input.
  static std::vector<TraceRow> load_csv(const std::string& path);

 private:
  Network& net_;
  std::optional<Ipv4> vantage_;
  std::vector<TraceRow> rows_;
};

}  // namespace inband
