#include "net/shard_channel.h"

namespace inband {

Packet ShardChannel::take_detached(SimTime* deliver_at, Ipv4* from,
                                   Ipv4* to) {
  const CrossPacket* head = q_.peek();
  INBAND_ASSERT(head != nullptr, "take_detached on empty channel");
  if (deliver_at != nullptr) *deliver_at = head->deliver_at;
  if (from != nullptr) *from = head->from;
  if (to != nullptr) *to = head->to;
  Packet out = detach_packet_copy(head->pkt);
  q_.consume();
  return out;
}

}  // namespace inband
