// Network addressing: IPv4 addresses and (address, port) endpoints.
#pragma once

#include <cstdint>
#include <string>

namespace inband {

// IPv4 address in host byte order (the simulator never serializes headers,
// so there is no wire byte order to respect).
using Ipv4 = std::uint32_t;

constexpr Ipv4 make_ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                         std::uint8_t d) {
  return (static_cast<Ipv4>(a) << 24) | (static_cast<Ipv4>(b) << 16) |
         (static_cast<Ipv4>(c) << 8) | static_cast<Ipv4>(d);
}

std::string format_ipv4(Ipv4 addr);

struct Endpoint {
  Ipv4 addr = 0;
  std::uint16_t port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
  // Total order by (addr, port): the value-based tie-breaker deterministic
  // snapshots of flow-keyed tables sort with (never pointer identity).
  friend auto operator<=>(const Endpoint&, const Endpoint&) = default;
};

std::string format_endpoint(const Endpoint& ep);

}  // namespace inband
