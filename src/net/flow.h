// Connection 5-tuple identification.
//
// FlowKey is the identifier an L4 load balancer keys everything on: the
// conntrack table, the per-flow estimator state, and TCP demultiplexing.
// Hashing mixes all tuple fields through splitmix64 — cheap, and good enough
// that Maglev slot selection and conntrack bucketing are unbiased in tests.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/address.h"
#include "util/rng.h"
#include "util/shard.h"

namespace inband {

enum class IpProto : std::uint8_t { kTcp = 6, kUdp = 17 };

INBAND_SHARD_LOCAL(owner)
struct FlowKey {
  Endpoint src;
  Endpoint dst;
  IpProto proto = IpProto::kTcp;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
  // Total order by (src, dst, proto). Flow-keyed tables are unordered for
  // speed; whenever their contents must be visited in a reproducible order
  // (audits, crash-abort sweeps), this ordering is the sort key — see
  // util/sorted_view.h and DESIGN.md §9.
  friend auto operator<=>(const FlowKey&, const FlowKey&) = default;

  // The same connection seen from the opposite direction.
  FlowKey reversed() const { return FlowKey{dst, src, proto}; }
};

inline std::uint64_t hash_flow(const FlowKey& f, std::uint64_t seed = 0) {
  std::uint64_t h = seed;
  h = splitmix64(h ^ (static_cast<std::uint64_t>(f.src.addr) << 16 |
                      f.src.port));
  h = splitmix64(h ^ (static_cast<std::uint64_t>(f.dst.addr) << 16 |
                      f.dst.port));
  h = splitmix64(h ^ static_cast<std::uint64_t>(f.proto));
  return h;
}

std::string format_flow(const FlowKey& f);

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& f) const noexcept {
    return static_cast<std::size_t>(hash_flow(f));
  }
};

}  // namespace inband
