#include "app/kv_server.h"

#include <algorithm>

#include "util/assert.h"
#include "util/logging.h"
#include "util/sorted_view.h"

namespace inband {

KvServer::KvServer(TcpHost& host, KvServerConfig config)
    : host_{host},
      config_{config},
      rng_{splitmix64(config.seed ^ 0x5e57e5ULL)} {
  INBAND_ASSERT(config_.workers > 0);
  host_.stack().listen(config_.port,
                       [this](TcpConnection& conn) { on_accept(conn); });
}

void KvServer::add_injector(std::unique_ptr<VariabilityInjector> injector) {
  INBAND_ASSERT(injector != nullptr);
  // Each injector gets its own stream, keyed by the server seed and the
  // attachment index. Injectors drawing from the server's stream would make
  // one entity's draw history depend on another's call pattern — exactly the
  // cross-entity coupling a per-shard digest cannot tolerate.
  injector->seed_stream(
      splitmix64(config_.seed ^ (0x16a3ec7ULL + injectors_.size())));
  injectors_.push_back(std::move(injector));
}

void KvServer::abort_all_connections() {
  queue_.clear();
  // abort() triggers on_closed, which erases from open_conns_; iterate a
  // snapshot. Sort it by flow key: the set is keyed on heap pointers, and
  // the abort order fixes the order RSTs hit the wire — iterating in pointer
  // order would make crash runs irreproducible.
  const std::vector<TcpConnection*> conns = sorted_values(
      open_conns_, [](const TcpConnection* a, const TcpConnection* b) {
        return a->key() < b->key();
      });
  for (auto* conn : conns) conn->abort();
}

void KvServer::on_accept(TcpConnection& conn) {
  open_conns_.insert(&conn);
  conn.callbacks().on_message =
      [this](TcpConnection& c, std::shared_ptr<const AppPayload> payload) {
        auto req = std::dynamic_pointer_cast<const KvMessage>(payload);
        INBAND_ASSERT(req != nullptr, "non-KV payload at KV server");
        INBAND_ASSERT(req->kind == KvKind::kRequest);
        on_request(c, std::move(req));
      };
  conn.callbacks().on_peer_close = [](TcpConnection& c) { c.close(); };
  conn.callbacks().on_closed = [this](TcpConnection& c, bool /*reset*/) {
    open_conns_.erase(&c);
  };
}

void KvServer::on_request(TcpConnection& conn,
                          std::shared_ptr<const KvMessage> request) {
  Pending work{&conn, std::move(request)};
  if (busy_workers_ < config_.workers) {
    start_processing(std::move(work));
  } else {
    queue_.push(std::move(work));
    max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
  }
}

SimTime KvServer::service_time(const KvMessage& request) {
  const SimTime base =
      request.op == KvOp::kGet ? config_.get_base : config_.set_base;
  const SimTime copy = request.op == KvOp::kSet
                           ? config_.per_byte * request.value_len
                           : 0;
  SimTime svc = base + copy;
  if (config_.service_sigma > 0.0) {
    svc = static_cast<SimTime>(rng_.lognormal_median(
        static_cast<double>(svc), config_.service_sigma));
  }
  const SimTime now = host_.sim().now();
  for (auto& inj : injectors_) {
    svc += inj->extra_service_time(now, base + copy);
  }
  return std::max<SimTime>(svc, 1);
}

void KvServer::account_busy(SimTime now, int delta) {
  busy_integral_ns_ += static_cast<double>(busy_workers_) *
                       static_cast<double>(now - busy_last_change_);
  busy_last_change_ = now;
  busy_workers_ += delta;
  INBAND_DCHECK(busy_workers_ >= 0 && busy_workers_ <= config_.workers);
}

double KvServer::busy_worker_seconds(SimTime now) const {
  return (busy_integral_ns_ + static_cast<double>(busy_workers_) *
                                  static_cast<double>(now - busy_last_change_)) /
         1e9;
}

void KvServer::start_processing(Pending work) {
  const SimTime now = host_.sim().now();
  SimTime start_at = now;
  for (auto& inj : injectors_) {
    start_at = std::max(start_at, inj->frozen_until(now));
  }
  const SimTime svc = service_time(*work.request);
  account_busy(now, +1);
  host_.sim().schedule_at(start_at + svc,
                          [this, w = std::move(work)]() mutable {
                            finish(std::move(w));
                          });
}

void KvServer::finish(Pending work) {
  const SimTime now = host_.sim().now();
  account_busy(now, -1);

  const KvMessage& req = *work.request;
  bool hit = false;
  std::uint32_t value_len = 0;
  if (req.op == KvOp::kSet) {
    // hotlint:allow(hot-growth): KV write; keyspace bounded by the workload
    store_[req.key] = req.value_len;
    ++sets_;
  } else {
    const auto it = store_.find(req.key);
    hit = it != store_.end();
    if (hit) {
      value_len = it->second;
      ++hits_;
    }
    ++gets_;
  }
  ++requests_served_;

  // The connection may have died while the request was in service.
  if (open_conns_.find(work.conn) != open_conns_.end() &&
      work.conn->can_send()) {
    auto resp = msg_pool_.make();
    fill_kv_response(*resp, req, hit, value_len);
    const std::uint32_t wire = kv_response_wire_size(*resp);
    work.conn->send_message(std::move(resp), wire);
  }

  if (!queue_.empty() && busy_workers_ < config_.workers) {
    Pending next = std::move(queue_.front());
    queue_.pop();
    // Dead connections may sit in the queue; drop their work.
    while (open_conns_.find(next.conn) == open_conns_.end()) {
      if (queue_.empty()) return;
      next = std::move(queue_.front());
      queue_.pop();
    }
    start_processing(std::move(next));
  }
}

}  // namespace inband
