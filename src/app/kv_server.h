// memcached-flavoured key-value server model.
//
// Serves GET/SET over the TCP model with a bounded worker pool: up to
// `workers` requests are processed concurrently; the rest queue FIFO, so
// latency rises with load exactly the way a thread-per-worker cache does.
// Per-request service time is
//     base(op) + per_byte * value_len, jittered log-normally,
// plus whatever the attached VariabilityInjectors contribute (§2.2).
//
// Under direct server return the server answers straight to the client; in
// the simulation that falls out naturally because responses are routed by
// the flow's destination address, which never points at the LB.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "app/message.h"
#include "app/variability.h"
#include "tcp/stack.h"
#include "util/hotpath.h"
#include "util/ring_buffer.h"
#include "util/rng.h"
#include "util/shard.h"
#include "util/shared_pool.h"

namespace inband {

struct KvServerConfig {
  std::uint16_t port = 11211;
  int workers = 4;
  SimTime get_base = us(15);
  SimTime set_base = us(20);
  SimTime per_byte = 0;           // ns per value byte (copy cost)
  double service_sigma = 0.05;    // log-normal jitter of the base cost
  std::uint64_t seed = 1;
};

INBAND_SHARD_LOCAL(shard)
class KvServer {
 public:
  KvServer(TcpHost& host, KvServerConfig config);
  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  // Injectors apply in attachment order. The server takes ownership.
  void add_injector(std::unique_ptr<VariabilityInjector> injector);

  // Crash simulation: RSTs every open connection and drops queued work.
  // The listener stays up (as after a process restart under a supervisor).
  void abort_all_connections();

  // --- stats ---
  std::uint64_t requests_served() const { return requests_served_; }
  std::uint64_t gets() const { return gets_; }
  std::uint64_t sets() const { return sets_; }
  std::uint64_t hits() const { return hits_; }
  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t max_queue_depth() const { return max_queue_depth_; }
  int busy_workers() const { return busy_workers_; }
  std::size_t store_size() const { return store_.size(); }
  std::size_t open_connections() const { return open_conns_.size(); }
  // Integral of busy workers over time, for utilization reporting.
  double busy_worker_seconds(SimTime now) const;

  const KvServerConfig& config() const { return config_; }

 private:
  struct Pending {
    TcpConnection* conn;
    std::shared_ptr<const KvMessage> request;
  };

  void on_accept(TcpConnection& conn);
  INBAND_HOT void on_request(TcpConnection& conn,
                             std::shared_ptr<const KvMessage> request);
  void start_processing(Pending work);
  INBAND_HOT void finish(Pending work);
  SimTime service_time(const KvMessage& request);
  void account_busy(SimTime now, int delta);

  TcpHost& host_;
  KvServerConfig config_;
  Rng rng_;
  SharedPool<KvMessage> msg_pool_;  // recycles response objects
  std::vector<std::unique_ptr<VariabilityInjector>> injectors_;
  std::unordered_map<std::uint64_t, std::uint32_t> store_;  // key -> size
  std::unordered_set<TcpConnection*> open_conns_;
  RingBuffer<Pending> queue_;  // overload FIFO, slots recycled in place
  int busy_workers_ = 0;

  std::uint64_t requests_served_ = 0;
  std::uint64_t gets_ = 0;
  std::uint64_t sets_ = 0;
  std::uint64_t hits_ = 0;
  std::size_t max_queue_depth_ = 0;
  double busy_integral_ns_ = 0.0;
  SimTime busy_last_change_ = 0;
};

}  // namespace inband
