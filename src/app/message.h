// Key-value wire protocol (memcached-flavoured).
//
// Requests and responses are KvMessage payloads carried through the TCP
// model. Wire sizes approximate memcached's text protocol: a fixed header
// plus the value bytes for SETs and GET hits. The response echoes the
// request id and creation timestamp so the client can compute end-to-end
// latency without a lookup table.
#pragma once

#include <cstdint>
#include <memory>

#include "net/packet.h"
#include "util/time.h"

namespace inband {

enum class KvOp : std::uint8_t { kGet, kSet };
enum class KvKind : std::uint8_t { kRequest, kResponse };

struct KvMessage final : AppPayload {
  KvKind kind = KvKind::kRequest;
  KvOp op = KvOp::kGet;
  std::uint64_t id = 0;
  std::uint64_t key = 0;
  std::uint32_t value_len = 0;  // SET request / GET-hit response value bytes
  bool hit = false;             // GET response only
  SimTime created_at = kNoTime;  // stamped at the client on request creation

  // KV messages cross shard boundaries (remote clients in the sharded rig);
  // the clone is a plain heap copy, deliberately NOT pool-backed — the copy
  // is owned by the receiving shard, whose pools it does not belong to.
  std::shared_ptr<const AppPayload> clone_detached() const override {
    return std::make_shared<KvMessage>(*this);
  }
};

// Header sizes loosely modelled on memcached's text protocol framing.
inline constexpr std::uint32_t kKvRequestHeader = 40;
inline constexpr std::uint32_t kKvResponseHeader = 32;

std::uint32_t kv_request_wire_size(KvOp op, std::uint32_t value_len);
std::uint32_t kv_response_wire_size(const KvMessage& response);

// Fills `out` with the response to `req` (store effects are applied by the
// server). Split out so pooled allocation (util/shared_pool.h) can reuse it.
void fill_kv_response(KvMessage& out, const KvMessage& req, bool hit,
                      std::uint32_t value_len);

// Builds the response to `req` with a fresh heap allocation.
std::shared_ptr<KvMessage> make_kv_response(const KvMessage& req, bool hit,
                                            std::uint32_t value_len);

}  // namespace inband
