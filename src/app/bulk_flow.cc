#include "app/bulk_flow.h"

#include "util/assert.h"

namespace inband {

BulkSender::BulkSender(TcpHost& host, Endpoint remote, TcpConfig config)
    : host_{host}, remote_{remote}, config_{config} {}

void BulkSender::start() {
  INBAND_ASSERT(conn_ == nullptr, "start() called twice");
  conn_ = host_.stack().connect(remote_, config_);
  auto& cb = conn_->callbacks();
  cb.on_established = [this](TcpConnection&) { top_up(); };
  cb.on_rtt_sample = [this](TcpConnection&, SimTime rtt) {
    ++rtt_samples_;
    if (recorder_) recorder_(host_.sim().now(), rtt);
  };
  cb.on_closed = [this](TcpConnection&, bool) { conn_ = nullptr; };
  conn_->open();
}

void BulkSender::top_up() {
  // Payload bytes are pure counters in the model, so "backlogged" is cheap:
  // queue a practically infinite amount up front.
  conn_->send_bytes(1ULL << 42);
}

void BulkSender::stop() {
  if (conn_ != nullptr && conn_->can_send()) conn_->abort();
}

std::uint64_t BulkSender::bytes_acked() const {
  return conn_ == nullptr ? 0 : conn_->snd_una();
}

BulkSink::BulkSink(TcpHost& host, std::uint16_t port) {
  host.stack().listen(port, [this](TcpConnection& conn) {
    conn.callbacks().on_data = [this](TcpConnection&, std::uint64_t n) {
      bytes_received_ += n;
    };
    conn.callbacks().on_peer_close = [](TcpConnection& c) { c.close(); };
  });
}

}  // namespace inband
