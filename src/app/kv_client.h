// memtier-style workload generator.
//
// Mirrors the behaviour of memtier_benchmark the paper drives its evaluation
// with: C parallel TCP connections to the service VIP, each pipelining up to
// P outstanding requests, a GET/SET mix, and periodic connection churn —
// after `requests_per_conn` responses a connection closes and a fresh one is
// opened (new ephemeral port ⇒ new flow ⇒ the LB makes a fresh routing
// decision with whatever it has learned). Pipelining means each response
// re-opens quota for the next request: the next request is a
// causally-triggered transmission.
//
// Every completed request is reported to the recorder callback with its
// ground-truth end-to-end latency measured at the client.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "app/message.h"
#include "tcp/stack.h"
#include "util/hotpath.h"
#include "util/rng.h"
#include "util/shard.h"
#include "util/shared_pool.h"

namespace inband {

struct KvClientConfig {
  Endpoint server;            // the VIP
  int connections = 4;
  int pipeline = 4;           // max outstanding requests per connection
  double get_ratio = 0.5;
  std::uint64_t keyspace = 10'000;
  double zipf_s = 0.0;        // 0 => uniform keys
  std::uint32_t value_len = 128;
  std::uint64_t requests_per_conn = 100;  // churn period; 0 => never reconnect
  SimTime think_time = 0;     // delay between response and next request
  SimTime reconnect_delay = 0;
  std::uint64_t seed = 7;
};

// One completed request, as observed at the client.
struct RequestRecord {
  SimTime sent_at;
  SimTime latency;  // response received - request created
  KvOp op;
  bool hit;
  int conn_index;     // stable client-side connection slot
  FlowKey flow;       // the flow the request travelled on
};

INBAND_SHARD_LOCAL(shard)
class KvClient {
 public:
  using Recorder = std::function<void(const RequestRecord&)>;

  KvClient(TcpHost& host, KvClientConfig config);
  KvClient(const KvClient&) = delete;
  KvClient& operator=(const KvClient&) = delete;

  void set_recorder(Recorder recorder) { recorder_ = std::move(recorder); }

  // Opens all connections and begins issuing requests.
  void start();

  // Stops issuing; closes connections gracefully and stops reconnecting.
  void stop();

  bool running() const { return running_; }

  // --- stats ---
  std::uint64_t requests_sent() const { return requests_sent_; }
  std::uint64_t responses_received() const { return responses_received_; }
  std::uint64_t connections_opened() const { return connections_opened_; }
  std::uint64_t connection_failures() const { return connection_failures_; }

  const KvClientConfig& config() const { return config_; }

 private:
  struct ConnSlot {
    TcpConnection* conn = nullptr;
    std::uint64_t issued = 0;       // requests issued on current connection
    std::uint64_t completed = 0;    // responses received on current connection
    int outstanding = 0;
    EventId think_timer = kInvalidEventId;
  };

  void open_connection(int slot);
  void fill_pipeline(int slot);
  INBAND_HOT void issue_request(int slot);
  INBAND_HOT void on_response(int slot, const KvMessage& resp);
  void on_conn_closed(int slot, bool reset);

  TcpHost& host_;
  KvClientConfig config_;
  Rng rng_;
  SharedPool<KvMessage> msg_pool_;  // recycles request objects
  std::unique_ptr<ZipfDistribution> zipf_;  // null => uniform keys
  Recorder recorder_;
  std::vector<ConnSlot> slots_;
  bool running_ = false;
  std::uint64_t next_request_id_ = 1;

  std::uint64_t requests_sent_ = 0;
  std::uint64_t responses_received_ = 0;
  std::uint64_t connections_opened_ = 0;
  std::uint64_t connection_failures_ = 0;
};

}  // namespace inband
