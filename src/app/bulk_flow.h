// Backlogged flow-controlled TCP flow (the Fig. 2 rig traffic).
//
// BulkSender opens one connection with a fixed window and keeps the send
// buffer permanently backlogged, so the connection transmits a full window,
// stalls on the flow-control quota, and resumes when ACKs return — exactly
// the batch/pause pattern the estimators key on. The sender's own RTT
// samples (timestamp option) are the ground truth T_client series.
//
// BulkSink is the passive receiving application.
#pragma once

#include <cstdint>
#include <functional>

#include "tcp/stack.h"
#include "util/shard.h"
#include "util/time.h"

namespace inband {

INBAND_SHARD_LOCAL(shard)
class BulkSender {
 public:
  using RttRecorder = std::function<void(SimTime now, SimTime rtt)>;

  // `config` controls the window (cwnd_bytes = the flow-control quota).
  BulkSender(TcpHost& host, Endpoint remote, TcpConfig config);

  void set_rtt_recorder(RttRecorder recorder) {
    recorder_ = std::move(recorder);
  }

  void start();
  void stop();

  std::uint64_t bytes_acked() const;
  std::uint64_t rtt_samples() const { return rtt_samples_; }
  TcpConnection* connection() { return conn_; }

 private:
  void top_up();

  TcpHost& host_;
  Endpoint remote_;
  TcpConfig config_;
  TcpConnection* conn_ = nullptr;
  RttRecorder recorder_;
  std::uint64_t rtt_samples_ = 0;
};

INBAND_SHARD_LOCAL(shard)
class BulkSink {
 public:
  BulkSink(TcpHost& host, std::uint16_t port);

  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  std::uint64_t bytes_received_ = 0;
};

}  // namespace inband
