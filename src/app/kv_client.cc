#include "app/kv_client.h"

#include "util/assert.h"
#include "util/logging.h"

namespace inband {

KvClient::KvClient(TcpHost& host, KvClientConfig config)
    : host_{host},
      config_{config},
      rng_{splitmix64(config.seed ^ 0xc11e47ULL)} {
  INBAND_ASSERT(config_.connections > 0);
  INBAND_ASSERT(config_.pipeline > 0);
  INBAND_ASSERT(config_.keyspace > 0);
  INBAND_ASSERT(config_.get_ratio >= 0.0 && config_.get_ratio <= 1.0);
  if (config_.zipf_s > 0.0) {
    zipf_ = std::make_unique<ZipfDistribution>(config_.keyspace,
                                               config_.zipf_s);
  }
  slots_.resize(static_cast<std::size_t>(config_.connections));
}

void KvClient::start() {
  INBAND_ASSERT(!running_, "start() called twice");
  running_ = true;
  for (int i = 0; i < config_.connections; ++i) open_connection(i);
}

void KvClient::stop() {
  if (!running_) return;
  running_ = false;
  for (auto& slot : slots_) {
    if (slot.think_timer != kInvalidEventId) {
      host_.sim().cancel(slot.think_timer);
      slot.think_timer = kInvalidEventId;
    }
    if (slot.conn != nullptr && slot.conn->can_send()) {
      slot.conn->close();
    }
  }
}

void KvClient::open_connection(int slot_index) {
  auto& slot = slots_[static_cast<std::size_t>(slot_index)];
  INBAND_ASSERT(slot.conn == nullptr);
  slot.issued = 0;
  slot.completed = 0;
  slot.outstanding = 0;
  slot.conn = host_.stack().connect(config_.server);
  ++connections_opened_;

  auto& cb = slot.conn->callbacks();
  cb.on_established = [this, slot_index](TcpConnection&) {
    fill_pipeline(slot_index);
  };
  cb.on_message = [this, slot_index](TcpConnection&,
                                     std::shared_ptr<const AppPayload> p) {
    auto resp = std::dynamic_pointer_cast<const KvMessage>(p);
    INBAND_ASSERT(resp != nullptr, "non-KV payload at KV client");
    INBAND_ASSERT(resp->kind == KvKind::kResponse);
    on_response(slot_index, *resp);
  };
  cb.on_closed = [this, slot_index](TcpConnection&, bool reset) {
    on_conn_closed(slot_index, reset);
  };
  slot.conn->open();
}

void KvClient::fill_pipeline(int slot_index) {
  auto& slot = slots_[static_cast<std::size_t>(slot_index)];
  if (!running_ || slot.conn == nullptr || !slot.conn->can_send()) return;
  while (slot.outstanding < config_.pipeline &&
         (config_.requests_per_conn == 0 ||
          slot.issued < config_.requests_per_conn)) {
    issue_request(slot_index);
  }
}

void KvClient::issue_request(int slot_index) {
  auto& slot = slots_[static_cast<std::size_t>(slot_index)];
  auto req = msg_pool_.make();
  req->kind = KvKind::kRequest;
  req->op = rng_.bernoulli(config_.get_ratio) ? KvOp::kGet : KvOp::kSet;
  req->id = next_request_id_++;
  req->key = zipf_ ? (*zipf_)(rng_) - 1
                   : rng_.uniform_u64(0, config_.keyspace - 1);
  req->value_len = req->op == KvOp::kSet ? config_.value_len : 0;
  req->created_at = host_.sim().now();
  const std::uint32_t wire = kv_request_wire_size(req->op, req->value_len);
  ++slot.issued;
  ++slot.outstanding;
  ++requests_sent_;
  slot.conn->send_message(std::move(req), wire);
}

void KvClient::on_response(int slot_index, const KvMessage& resp) {
  auto& slot = slots_[static_cast<std::size_t>(slot_index)];
  INBAND_ASSERT(slot.outstanding > 0, "response without outstanding request");
  --slot.outstanding;
  ++slot.completed;
  ++responses_received_;

  const SimTime now = host_.sim().now();
  if (recorder_) {
    RequestRecord rec;
    rec.sent_at = resp.created_at;
    rec.latency = now - resp.created_at;
    rec.op = resp.op;
    rec.hit = resp.hit;
    rec.conn_index = slot_index;
    rec.flow = slot.conn->key();
    recorder_(rec);
  }

  if (!running_) return;

  // Churn: after requests_per_conn responses, recycle the connection. The
  // LB will see a fresh flow and make a fresh routing decision.
  if (config_.requests_per_conn != 0 &&
      slot.completed >= config_.requests_per_conn) {
    if (slot.conn->can_send()) slot.conn->close();
    return;  // reconnect happens in on_conn_closed
  }

  if (config_.think_time > 0) {
    if (slot.think_timer == kInvalidEventId) {
      slot.think_timer =
          host_.sim().schedule_after(config_.think_time, [this, slot_index] {
            slots_[static_cast<std::size_t>(slot_index)].think_timer =
                kInvalidEventId;
            fill_pipeline(slot_index);
          });
    }
  } else {
    // Immediate refill: the next request is causally triggered by this
    // response.
    fill_pipeline(slot_index);
  }
}

void KvClient::on_conn_closed(int slot_index, bool reset) {
  auto& slot = slots_[static_cast<std::size_t>(slot_index)];
  slot.conn = nullptr;
  if (reset) ++connection_failures_;
  if (!running_) return;
  const SimTime delay = config_.reconnect_delay;
  host_.sim().schedule_after(delay, [this, slot_index] {
    if (running_ &&
        slots_[static_cast<std::size_t>(slot_index)].conn == nullptr) {
      open_connection(slot_index);
    }
  });
}

}  // namespace inband
