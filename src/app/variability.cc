#include "app/variability.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace inband {

StepDelayInjector::StepDelayInjector(SimTime start, SimTime extra, SimTime end)
    : start_{start}, end_{end}, extra_{extra} {
  INBAND_ASSERT(extra >= 0);
  INBAND_ASSERT(end > start);
}

SimTime StepDelayInjector::extra_service_time(SimTime now, SimTime base) {
  (void)base;
  return (now >= start_ && now < end_) ? extra_ : 0;
}

GcPauseInjector::GcPauseInjector(SimTime period, SimTime pause, SimTime phase)
    : period_{period}, pause_{pause}, phase_{phase} {
  INBAND_ASSERT(period > 0);
  INBAND_ASSERT(pause > 0 && pause < period);
  INBAND_ASSERT(phase >= 0);
}

SimTime GcPauseInjector::frozen_until(SimTime now) {
  const SimTime shifted = now - phase_;
  if (shifted < 0) return 0;
  const SimTime into_cycle = shifted % period_;
  if (into_cycle < pause_) return now + (pause_ - into_cycle);
  return 0;
}

HeavyTailNoiseInjector::HeavyTailNoiseInjector(double probability,
                                               SimTime scale, double alpha,
                                               SimTime cap)
    : probability_{probability}, scale_{scale}, alpha_{alpha}, cap_{cap} {
  INBAND_ASSERT(probability >= 0.0 && probability <= 1.0);
  INBAND_ASSERT(scale > 0);
  INBAND_ASSERT(alpha > 0.0);
}

SimTime HeavyTailNoiseInjector::extra_service_time(SimTime now, SimTime base) {
  (void)now;
  (void)base;
  if (!rng_.bernoulli(probability_)) return 0;
  const double d = rng_.pareto(static_cast<double>(scale_), alpha_);
  return std::min(static_cast<SimTime>(d), cap_);
}

MarkovSlowdownInjector::MarkovSlowdownInjector(SimTime mean_normal,
                                               SimTime mean_slow,
                                               double factor,
                                               std::uint64_t seed)
    : mean_normal_{mean_normal},
      mean_slow_{mean_slow},
      factor_{factor} {
  INBAND_ASSERT(mean_normal > 0);
  INBAND_ASSERT(mean_slow > 0);
  INBAND_ASSERT(factor >= 1.0);
  seed_stream(seed);
}

void MarkovSlowdownInjector::advance_to(SimTime now) {
  if (!primed_) {
    primed_ = true;
    next_transition_ = static_cast<SimTime>(
        rng_.exponential(static_cast<double>(mean_normal_)));
  }
  while (next_transition_ <= now) {
    slow_ = !slow_;
    const SimTime mean = slow_ ? mean_slow_ : mean_normal_;
    next_transition_ += static_cast<SimTime>(
        rng_.exponential(static_cast<double>(mean)));
  }
}

bool MarkovSlowdownInjector::slow_at(SimTime now) {
  advance_to(now);
  return slow_;
}

SimTime MarkovSlowdownInjector::extra_service_time(SimTime now, SimTime base) {
  advance_to(now);
  if (!slow_) return 0;
  return static_cast<SimTime>(static_cast<double>(base) * (factor_ - 1.0));
}

}  // namespace inband
