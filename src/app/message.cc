#include "app/message.h"

namespace inband {

std::uint32_t kv_request_wire_size(KvOp op, std::uint32_t value_len) {
  return op == KvOp::kSet ? kKvRequestHeader + value_len : kKvRequestHeader;
}

std::uint32_t kv_response_wire_size(const KvMessage& response) {
  if (response.op == KvOp::kGet && response.hit) {
    return kKvResponseHeader + response.value_len;
  }
  return kKvResponseHeader;
}

std::shared_ptr<KvMessage> make_kv_response(const KvMessage& req, bool hit,
                                            std::uint32_t value_len) {
  auto resp = std::make_shared<KvMessage>();
  resp->kind = KvKind::kResponse;
  resp->op = req.op;
  resp->id = req.id;
  resp->key = req.key;
  resp->hit = hit;
  resp->value_len = value_len;
  resp->created_at = req.created_at;
  return resp;
}

}  // namespace inband
