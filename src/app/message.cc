#include "app/message.h"

namespace inband {

std::uint32_t kv_request_wire_size(KvOp op, std::uint32_t value_len) {
  return op == KvOp::kSet ? kKvRequestHeader + value_len : kKvRequestHeader;
}

std::uint32_t kv_response_wire_size(const KvMessage& response) {
  if (response.op == KvOp::kGet && response.hit) {
    return kKvResponseHeader + response.value_len;
  }
  return kKvResponseHeader;
}

void fill_kv_response(KvMessage& out, const KvMessage& req, bool hit,
                      std::uint32_t value_len) {
  out.kind = KvKind::kResponse;
  out.op = req.op;
  out.id = req.id;
  out.key = req.key;
  out.hit = hit;
  out.value_len = value_len;
  out.created_at = req.created_at;
}

std::shared_ptr<KvMessage> make_kv_response(const KvMessage& req, bool hit,
                                            std::uint32_t value_len) {
  auto resp = std::make_shared<KvMessage>();
  fill_kv_response(*resp, req, hit, value_len);
  return resp;
}

}  // namespace inband
