// Server performance-variability injectors (§2.2 of the paper).
//
// Request-processing latency at real servers regresses at 100µs–1ms time
// scales from preemptions, garbage collection, background compaction and
// noisy neighbours. Injectors model those regressions; a KvServer applies
// every attached injector to each request it processes.
//
// Two mechanisms:
//  * extra_service_time() — additive per-request inflation (scheduling
//    delays, noisy service times, slow phases);
//  * frozen_until() — a global stall: no worker may *start* a request before
//    the returned time (GC/compaction pauses freeze the whole process).
#pragma once

#include <memory>
#include <vector>

#include "util/rng.h"
#include "util/shard.h"
#include "util/time.h"

namespace inband {

INBAND_SHARD_LOCAL(owner)
class VariabilityInjector {
 public:
  virtual ~VariabilityInjector() = default;

  // Re-seeds this injector's private RNG stream. KvServer::add_injector
  // calls it with a stream derived from the server seed and the attachment
  // index; seed it manually when driving an injector outside a server.
  void seed_stream(std::uint64_t seed) { rng_.reseed(seed); }

  // Additional service time for a request whose base cost is `base`,
  // starting at `now`.
  virtual SimTime extra_service_time(SimTime now, SimTime base) {
    (void)now;
    (void)base;
    return 0;
  }

  // If the process is stalled at `now`, the time the stall ends; else <= now.
  virtual SimTime frozen_until(SimTime now) {
    (void)now;
    return 0;
  }

 protected:
  // Every injector draws from its own stream. Injectors that consumed their
  // server's stream made one entity's draw history depend on another's call
  // pattern — exactly the cross-entity coupling a per-shard digest cannot
  // tolerate.
  Rng rng_{0};
};

// Constant additive delay active during [start, end). The Fig. 3-style
// "server got slow at time t" switch.
INBAND_SHARD_LOCAL(owner)
class StepDelayInjector final : public VariabilityInjector {
 public:
  StepDelayInjector(SimTime start, SimTime extra,
                    SimTime end = sec(1'000'000));

  SimTime extra_service_time(SimTime now, SimTime base) override;

 private:
  SimTime start_;
  SimTime end_;
  SimTime extra_;
};

// Periodic full-process pauses: during [k*period, k*period + pause) no
// request may start. Models GC / compaction stalls.
INBAND_SHARD_LOCAL(owner)
class GcPauseInjector final : public VariabilityInjector {
 public:
  GcPauseInjector(SimTime period, SimTime pause, SimTime phase = 0);

  SimTime frozen_until(SimTime now) override;

 private:
  SimTime period_;
  SimTime pause_;
  SimTime phase_;
};

// Heavy-tailed additive noise: with probability p, add a Pareto-distributed
// delay (scale x_m, shape alpha). Models preemptions and interrupts.
INBAND_SHARD_LOCAL(owner)
class HeavyTailNoiseInjector final : public VariabilityInjector {
 public:
  HeavyTailNoiseInjector(double probability, SimTime scale, double alpha,
                         SimTime cap = ms(20));

  SimTime extra_service_time(SimTime now, SimTime base) override;

 private:
  double probability_;
  SimTime scale_;
  double alpha_;
  SimTime cap_;
};

// A downstream service shared by several frontend servers (§5(3) of the
// paper: "a server appears to be slow not because it is slow but [because]
// one of its downstream dependencies is slow"). Each frontend request that
// touches the dependency pays its base delay plus whatever inflation is
// currently injected into the dependency. Several servers holding injectors
// onto the *same* SharedDependency slow down together — the signature that
// distinguishes a dependency fault from a server fault.
INBAND_SHARD_CHANNEL
class SharedDependency {
 public:
  explicit SharedDependency(SimTime base_delay) : base_{base_delay} {}

  // Extra delay injected from `at` onward (e.g. the dependency degrades).
  void inject(SimTime at, SimTime extra) {
    inject_at_ = at;
    extra_ = extra;
  }

  SimTime delay_at(SimTime now) const {
    return base_ + (inject_at_ != kNoTime && now >= inject_at_ ? extra_ : 0);
  }

 private:
  SimTime base_;
  SimTime inject_at_ = kNoTime;
  SimTime extra_ = 0;
};

// Attaches a server to a SharedDependency: a fraction of requests call it
// and pay its current delay.
INBAND_SHARD_LOCAL(owner)
class DependencyInjector final : public VariabilityInjector {
 public:
  DependencyInjector(const SharedDependency& dep, double call_fraction)
      : dep_{dep}, call_fraction_{call_fraction} {}

  SimTime extra_service_time(SimTime now, SimTime base) override {
    (void)base;
    if (!rng_.bernoulli(call_fraction_)) return 0;
    return dep_.delay_at(now);
  }

 private:
  const SharedDependency& dep_;
  double call_fraction_;
};

// Two-state Markov slowdown: in the slow state, service time is multiplied
// by `factor`. Dwell times are exponential with the given means; transitions
// are evaluated lazily at request starts.
INBAND_SHARD_LOCAL(owner)
class MarkovSlowdownInjector final : public VariabilityInjector {
 public:
  MarkovSlowdownInjector(SimTime mean_normal, SimTime mean_slow,
                         double factor, std::uint64_t seed);

  SimTime extra_service_time(SimTime now, SimTime base) override;

  bool slow_at(SimTime now);

 private:
  void advance_to(SimTime now);

  SimTime mean_normal_;
  SimTime mean_slow_;
  double factor_;
  // The chain's first transition is drawn lazily so a seed_stream() call at
  // attach time (which replaces the constructor seed) governs every draw.
  bool primed_ = false;
  bool slow_ = false;
  SimTime next_transition_ = 0;
};

}  // namespace inband
