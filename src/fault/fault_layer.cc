#include "fault/fault_layer.h"

#include <string>

#include "check/invariant_auditor.h"
#include "check/state_digest.h"
#include "util/assert.h"
#include "util/logging.h"
#include "util/sorted_view.h"

namespace inband {

FaultLayer::FaultLayer(Simulator& sim, Network& net, FaultPlan plan,
                       std::vector<LinkRef> topology)
    : sim_{sim}, net_{net}, plan_{std::move(plan)} {
  plan_.validate();

  flaps_.reserve(plan_.flaps.size());
  for (const auto& spec : plan_.flaps) flaps_.push_back({spec, {}});

  for (const auto& ref : topology) {
    INBAND_ASSERT(ref.scope != LinkScope::kAll,
                  "topology entries need a concrete scope");
    INBAND_ASSERT(net_.has_link(ref.from, ref.to),
                  "fault topology names a missing link");
    const auto [it, inserted] = links_.emplace(link_key(ref.from, ref.to),
                                               LinkState{});
    INBAND_ASSERT(inserted, "duplicate link in fault topology");
    LinkState& state = it->second;
    state.ref = ref;
    for (const auto& spec : plan_.links) {
      if (matches(spec.scope, spec.index, ref)) state.specs.push_back(&spec);
    }
    for (std::size_t f = 0; f < flaps_.size(); ++f) {
      if (matches(flaps_[f].spec.scope, flaps_[f].spec.index, ref)) {
        state.flaps.push_back(f);
      }
    }
    // Per-link engine: the same plan seed faults the same packets on a link
    // regardless of what other links carry.
    state.rng.reseed(splitmix64(plan_.seed ^ link_key(ref.from, ref.to)));
  }

  for (std::size_t f = 0; f < flaps_.size(); ++f) {
    sim_.schedule_at(flaps_[f].spec.down_at,
                     [this, f] { flap_transition(f, /*down=*/true); });
    sim_.schedule_at(flaps_[f].spec.up_at,
                     [this, f] { flap_transition(f, /*down=*/false); });
  }

  net_.set_interceptor(this);
}

FaultLayer::~FaultLayer() { net_.set_interceptor(nullptr); }

void FaultLayer::record_link_event(FaultEvent::Kind kind,
                                   const LinkRef& ref) {
  // hotlint:allow(hot-growth): one record per injected fault, not per packet
  events_.push_back({kind, sim_.now(), ref.from, ref.to, ref.index});
}

void FaultLayer::record_server_event(FaultEvent::Kind kind, int server) {
  events_.push_back({kind, sim_.now(), 0, 0, server});
  switch (kind) {
    case FaultEvent::Kind::kServerStall:
      ++counters_.get("fault.server_stalls");
      break;
    case FaultEvent::Kind::kServerCrash:
      ++counters_.get("fault.server_crashes");
      break;
    case FaultEvent::Kind::kServerRestart:
      ++counters_.get("fault.server_restarts");
      break;
    default:
      INBAND_ASSERT(false, "not a server fault event");
  }
}

void FaultLayer::flap_transition(std::size_t flap_index, bool down) {
  FlapState& flap = flaps_[flap_index];
  if (down) {
    INBAND_ASSERT(flap.phase == FlapPhase::kPending, "flap already down");
    flap.phase = FlapPhase::kDown;
  } else {
    INBAND_ASSERT(flap.phase == FlapPhase::kDown, "flap not down");
    flap.phase = FlapPhase::kRestored;
  }
  ++counters_.get("fault.flap_transitions");
  for (auto& [key, link] : links_) {
    (void)key;
    for (const std::size_t f : link.flaps) {
      if (f != flap_index) continue;
      link.down_count += down ? 1 : -1;
      INBAND_DCHECK(link.down_count >= 0);
      record_link_event(down ? FaultEvent::Kind::kLinkDown
                             : FaultEvent::Kind::kLinkUp,
                        link.ref);
    }
  }
  LOG_INFO() << "fault: link flap " << (down ? "down" : "up") << " ("
             << link_scope_name(flap.spec.scope) << " index "
             << flap.spec.index << ")";
}

SendVerdict FaultLayer::on_send(const Packet& pkt, Ipv4 from, Ipv4 to) {
  const auto it = links_.find(link_key(from, to));
  if (it == links_.end()) return {};
  return decide(it->second, pkt);
}

void FaultLayer::on_send_batch(const PacketBatch& batch, Ipv4 from, Ipv4 to,
                               BatchVerdict& out) {
  const auto it = links_.find(link_key(from, to));  // one lookup per batch
  if (it == links_.end()) return;  // verdicts default to pass-through
  LinkState& link = it->second;
  for (std::uint32_t i = 0; i < batch.size(); ++i) {
    out.v[i] = decide(link, *batch[i]);
  }
}

SendVerdict FaultLayer::decide(LinkState& link, const Packet& pkt) {
  ++counters_.get("fault.decisions");

  if (link.down_count > 0) {
    ++counters_.get("fault.flap_drops");
    // hotlint:allow(hot-growth): one id per dropped packet, faults only
    dropped_ids_.insert(pkt.pkt_id);
    record_link_event(FaultEvent::Kind::kFlapDrop, link.ref);
    return {.drop = true};
  }

  const SimTime now = sim_.now();
  SendVerdict verdict;
  bool touched = false;
  for (const LinkFaultSpec* spec : link.specs) {
    if (now < spec->start || now >= spec->end) continue;
    if (spec->loss > 0.0 && link.rng.bernoulli(spec->loss)) {
      ++counters_.get("fault.loss");
      // hotlint:allow(hot-growth): one id per dropped packet, faults only
      dropped_ids_.insert(pkt.pkt_id);
      record_link_event(FaultEvent::Kind::kLoss, link.ref);
      return {.drop = true};
    }
    if (spec->duplicate > 0.0 && verdict.duplicate_hold == kNoTime &&
        link.rng.bernoulli(spec->duplicate)) {
      // The copy re-arrives within the reorder window — a late duplicate
      // stresses the estimators harder than a back-to-back one.
      verdict.duplicate_hold = static_cast<SimTime>(link.rng.uniform_u64(
          0, static_cast<std::uint64_t>(spec->reorder_hold_max)));
      ++counters_.get("fault.duplicates");
      touched = true;
      record_link_event(FaultEvent::Kind::kDuplicate, link.ref);
    }
    if (spec->reorder > 0.0 && link.rng.bernoulli(spec->reorder)) {
      verdict.hold += static_cast<SimTime>(link.rng.uniform_u64(
          static_cast<std::uint64_t>(spec->reorder_hold_min),
          static_cast<std::uint64_t>(spec->reorder_hold_max)));
      ++counters_.get("fault.reorders");
      touched = true;
      record_link_event(FaultEvent::Kind::kReorder, link.ref);
    }
    if (spec->jitter_max > 0) {
      const SimTime j = static_cast<SimTime>(link.rng.uniform_u64(
          0, static_cast<std::uint64_t>(spec->jitter_max)));
      if (j > 0) {
        verdict.hold += j;
        ++counters_.get("fault.jittered");
      }
    }
  }
  ++counters_.get("fault.passed");
  // hotlint:allow(hot-growth): one id per faulted-but-forwarded packet
  if (touched) touched_forwarded_ids_.insert(pkt.pkt_id);
  return verdict;
}

void FaultLayer::audit_invariants(AuditScope& scope) const {
  const std::uint64_t decisions = counters_.value("fault.decisions");
  const std::uint64_t drops = counters_.value("fault.loss") +
                              counters_.value("fault.flap_drops");
  scope.check(decisions == drops + counters_.value("fault.passed"),
              "decisions-partitioned",
              "decisions != drops + passed");
  scope.check(dropped_ids_.size() == drops, "dropped-ids-match-counters",
              "tracked dropped ids: " + std::to_string(dropped_ids_.size()) +
                  ", counted drops: " + std::to_string(drops));

  // A packet the layer dropped must never also have been forwarded: iterate
  // the smaller set against the larger. The sorted snapshot fixes which
  // offending pkt_id a failing audit names first.
  const auto& small = dropped_ids_.size() <= touched_forwarded_ids_.size()
                          ? dropped_ids_
                          : touched_forwarded_ids_;
  const auto& large = dropped_ids_.size() <= touched_forwarded_ids_.size()
                          ? touched_forwarded_ids_
                          : dropped_ids_;
  for (const std::uint64_t id : sorted_values(small)) {
    if (!scope.check(large.find(id) == large.end(),
                     "dropped-xor-delivered",
                     "pkt_id " + std::to_string(id) +
                         " both dropped and forwarded")) {
      break;
    }
  }

  // Flap state machines track the clock (<=/>= at the boundaries: the
  // transition event and an audit at the same instant run in FIFO order).
  const SimTime now = scope.now();
  for (std::size_t f = 0; f < flaps_.size(); ++f) {
    const FlapState& flap = flaps_[f];
    const std::string which = "flap " + std::to_string(f);
    switch (flap.phase) {
      case FlapPhase::kPending:
        scope.check(now <= flap.spec.down_at, "flap-phase-vs-clock",
                    which + " pending after down_at");
        break;
      case FlapPhase::kDown:
        scope.check(now >= flap.spec.down_at && now <= flap.spec.up_at,
                    "flap-phase-vs-clock", which + " down outside window");
        break;
      case FlapPhase::kRestored:
        scope.check(now >= flap.spec.up_at, "flap-phase-vs-clock",
                    which + " restored before up_at");
        break;
    }
  }
  for (const auto& [key, link] : links_) {
    (void)key;
    int down = 0;
    for (const std::size_t f : link.flaps) {
      down += flaps_[f].phase == FlapPhase::kDown ? 1 : 0;
    }
    scope.check(link.down_count == down, "down-count-matches-flap-phases");
  }

  // The executed timeline is appended in simulation order.
  for (std::size_t i = 1; i < events_.size(); ++i) {
    if (!scope.check(events_[i - 1].t <= events_[i].t,
                     "event-timeline-monotone",
                     "event " + std::to_string(i) + " out of order")) {
      break;
    }
  }
}

void FaultLayer::digest_state(StateDigest& digest) const {
  digest.mix(links_.size());
  for (const auto& [key, link] : links_) {
    digest.mix(key);
    for (const std::uint64_t w : link.rng.state()) digest.mix(w);
    digest.mix_u32(static_cast<std::uint32_t>(link.down_count));
  }
  digest.mix(flaps_.size());
  for (const auto& flap : flaps_) {
    digest.mix_u32(static_cast<std::uint32_t>(flap.phase));
  }
  for (const auto& [name, value] : counters_.snapshot()) {
    digest.mix_string(name);
    digest.mix(value);
  }
  digest.mix(events_.size());
  for (const auto& ev : events_) {
    digest.mix_u32(static_cast<std::uint32_t>(ev.kind));
    digest.mix_i64(ev.t);
    digest.mix_u32(ev.from);
    digest.mix_u32(ev.to);
    digest.mix_i64(ev.index);
  }
  UnorderedDigest dropped;
  // detlint:allow(unordered-iter): per-id hashes fold through the commutative UnorderedDigest combiner
  for (const std::uint64_t id : dropped_ids_) dropped.add(splitmix64(id));
  dropped.mix_into(digest);
  UnorderedDigest touched;
  // detlint:allow(unordered-iter): per-id hashes fold through the commutative UnorderedDigest combiner
  for (const std::uint64_t id : touched_forwarded_ids_) {
    touched.add(splitmix64(id));
  }
  touched.mix_into(digest);
}

void FaultLayer::corrupt_bookkeeping_for_test() {
  dropped_ids_.insert(0xdead);
  touched_forwarded_ids_.insert(0xdead);
}

}  // namespace inband
