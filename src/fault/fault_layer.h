// Deterministic fault-injection layer over the network fabric.
//
// A FaultLayer installs itself as the Network's SendInterceptor and decides
// the fate of every packet on the links a FaultPlan names: silent loss,
// duplication, reordering (implemented as a pre-link hold, so later packets
// genuinely overtake the held one past the link's FIFO guarantee), delay
// jitter, and scheduled link flaps. Server-side faults (stalls, freezes,
// crash/restart) are applied by fault/server_faults and report their events
// through this layer, so one object carries the complete executed fault
// timeline of a run.
//
// Every stochastic decision draws from a per-link xoshiro engine seeded from
// the plan seed and the directed link key — the whole fault schedule is a
// pure function of (plan, traffic), reproducible run to run and digestable
// by the determinism checker. Counters ("fault.*"), the FaultEvent record,
// an invariant audit (fault bookkeeping consistency, flap state machine
// validity) and a state digest make the layer observable by the same three
// correctness layers as every other subsystem (DESIGN.md §7–§8).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "fault/fault_plan.h"
#include "net/network.h"
#include "telemetry/counters.h"
#include "util/hotpath.h"
#include "util/rng.h"
#include "util/shard.h"

namespace inband {

class AuditScope;
class StateDigest;

INBAND_SHARD_CHANNEL
class FaultLayer final : public SendInterceptor {
 public:
  // One directed link of the owning rig's topology, tagged with the symbolic
  // scope and endpoint index that FaultPlan specs match against.
  struct LinkRef {
    Ipv4 from = 0;
    Ipv4 to = 0;
    LinkScope scope = LinkScope::kAll;
    int index = -1;
  };

  // Validates the plan, installs the layer as `net`'s interceptor and
  // schedules every flap transition on `sim`. `topology` lists the rig's
  // directed links; packets on links not listed pass through untouched.
  FaultLayer(Simulator& sim, Network& net, FaultPlan plan,
             std::vector<LinkRef> topology);
  ~FaultLayer() override;
  FaultLayer(const FaultLayer&) = delete;
  FaultLayer& operator=(const FaultLayer&) = delete;

  INBAND_HOT SendVerdict on_send(const Packet& pkt, Ipv4 from, Ipv4 to) override;

  // Batch form: one link lookup per batch, then element-wise decisions in
  // index order — the per-element RNG draw sequence is identical to calling
  // on_send() per packet, so digests are unchanged.
  INBAND_HOT void on_send_batch(const PacketBatch& batch, Ipv4 from, Ipv4 to,
                                BatchVerdict& out) override;

  const FaultPlan& plan() const { return plan_; }

  // Executed fault timeline, in simulation order.
  const std::vector<FaultEvent>& events() const { return events_; }

  // "fault.*" counters: loss, flap_drops, duplicates, reorders, jittered,
  // passed, decisions, flap_transitions, server_stalls/crashes/restarts.
  CounterSet& counters() { return counters_; }
  const CounterSet& counters() const { return counters_; }

  // Reporting entry for server-side faults (fault/server_faults.cc).
  void record_server_event(FaultEvent::Kind kind, int server);

  // Invariant audit: decision counters sum up, no packet both dropped and
  // forwarded, flap phases consistent with the clock and with each link's
  // down-count, event timeline monotone.
  void audit_invariants(AuditScope& scope) const;

  // Folds RNG engines, flap phases, counters, decision sets and the event
  // timeline into a determinism digest.
  void digest_state(StateDigest& digest) const;

  // Test-only: plants a packet id in both the dropped and forwarded sets so
  // negative tests can assert the auditor catches corrupt bookkeeping.
  void corrupt_bookkeeping_for_test();

 private:
  enum class FlapPhase { kPending, kDown, kRestored };

  struct FlapState {
    LinkFlapSpec spec;
    FlapPhase phase = FlapPhase::kPending;
  };

  // Per-link fault state: the plan specs that match this link, the flaps
  // that take it down, and the link's private RNG.
  struct LinkState {
    LinkRef ref;
    std::vector<const LinkFaultSpec*> specs;  // borrowed from plan_.links
    std::vector<std::size_t> flaps;           // indices into flaps_
    int down_count = 0;                       // matching flaps currently down
    Rng rng{0};
  };

  static std::uint64_t link_key(Ipv4 from, Ipv4 to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }
  static bool matches(LinkScope scope, int index, const LinkRef& ref) {
    return (scope == LinkScope::kAll || scope == ref.scope) &&
           (index < 0 || index == ref.index);
  }

  void flap_transition(std::size_t flap_index, bool down);
  void record_link_event(FaultEvent::Kind kind, const LinkRef& ref);

  // Per-packet fate on an already-resolved link (shared by both entry forms).
  INBAND_HOT SendVerdict decide(LinkState& link, const Packet& pkt);

  Simulator& sim_;
  Network& net_;
  FaultPlan plan_;
  // Keyed by directed link; std::map so iteration (digest) is deterministic.
  std::map<std::uint64_t, LinkState> links_;
  std::vector<FlapState> flaps_;
  std::vector<FaultEvent> events_;
  CounterSet counters_;
  // Decision bookkeeping for the "dropped xor delivered" audit. Only faulted
  // packets are tracked, so the sets stay proportional to the fault rate.
  std::unordered_set<std::uint64_t> dropped_ids_;
  std::unordered_set<std::uint64_t> touched_forwarded_ids_;
};

}  // namespace inband
