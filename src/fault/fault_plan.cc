#include "fault/fault_plan.h"

#include "util/assert.h"

namespace inband {

const char* link_scope_name(LinkScope scope) {
  switch (scope) {
    case LinkScope::kAll:
      return "all";
    case LinkScope::kClientToLb:
      return "client->lb";
    case LinkScope::kLbToServer:
      return "lb->server";
    case LinkScope::kServerToClient:
      return "server->client";
  }
  return "?";
}

const char* fault_event_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kLoss:
      return "loss";
    case FaultEvent::Kind::kDuplicate:
      return "duplicate";
    case FaultEvent::Kind::kReorder:
      return "reorder";
    case FaultEvent::Kind::kFlapDrop:
      return "flap-drop";
    case FaultEvent::Kind::kLinkDown:
      return "link-down";
    case FaultEvent::Kind::kLinkUp:
      return "link-up";
    case FaultEvent::Kind::kServerStall:
      return "server-stall";
    case FaultEvent::Kind::kServerCrash:
      return "server-crash";
    case FaultEvent::Kind::kServerRestart:
      return "server-restart";
  }
  return "?";
}

namespace {

bool valid_probability(double p) { return p >= 0.0 && p <= 1.0; }

}  // namespace

void FaultPlan::validate() const {
  for (const auto& spec : links) {
    INBAND_ASSERT(valid_probability(spec.loss), "loss out of [0,1]");
    INBAND_ASSERT(valid_probability(spec.duplicate), "duplicate out of [0,1]");
    INBAND_ASSERT(valid_probability(spec.reorder), "reorder out of [0,1]");
    INBAND_ASSERT(spec.reorder_hold_min >= 0 &&
                      spec.reorder_hold_max > spec.reorder_hold_min,
                  "reorder hold window must be ordered");
    INBAND_ASSERT(spec.jitter_max >= 0, "jitter_max must be >= 0");
    INBAND_ASSERT(spec.start >= 0 && spec.end > spec.start,
                  "fault window must be ordered");
  }
  for (const auto& flap : flaps) {
    INBAND_ASSERT(flap.down_at >= 0 && flap.up_at > flap.down_at,
                  "flap window must be ordered");
  }
  for (const auto& sf : servers) {
    INBAND_ASSERT(sf.server >= 0, "server index must be >= 0");
    INBAND_ASSERT(sf.at >= 0 && sf.until > sf.at,
                  "server fault window must be ordered");
  }
}

FaultPlan make_noise_plan(double loss, double reorder, double duplicate,
                          SimTime jitter_max, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  LinkFaultSpec spec;
  spec.scope = LinkScope::kAll;
  spec.loss = loss;
  spec.reorder = reorder;
  spec.duplicate = duplicate;
  spec.jitter_max = jitter_max;
  plan.links.push_back(spec);
  plan.validate();
  return plan;
}

}  // namespace inband
