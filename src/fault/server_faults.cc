#include "fault/server_faults.h"

#include <algorithm>
#include <memory>

#include "util/assert.h"
#include "util/logging.h"

namespace inband {

ScheduledFreezeInjector::ScheduledFreezeInjector(std::vector<Window> windows)
    : windows_{std::move(windows)} {
  for (const auto& w : windows_) {
    INBAND_ASSERT(w.start >= 0 && w.end > w.start,
                  "freeze window must be ordered");
  }
}

SimTime ScheduledFreezeInjector::frozen_until(SimTime now) {
  SimTime until = 0;
  for (const auto& w : windows_) {
    if (now >= w.start && now < w.end) until = std::max(until, w.end);
  }
  return until;
}

void apply_server_faults(const FaultPlan& plan, Simulator& sim,
                         FaultLayer& layer,
                         const std::vector<KvServer*>& servers) {
  // One freeze injector per server covering all its fault windows.
  std::vector<std::vector<ScheduledFreezeInjector::Window>> windows(
      servers.size());
  for (const auto& sf : plan.servers) {
    INBAND_ASSERT(static_cast<std::size_t>(sf.server) < servers.size(),
                  "server fault names a missing server");
    windows[static_cast<std::size_t>(sf.server)].push_back({sf.at, sf.until});

    const bool crash = sf.kind == ServerFaultSpec::Kind::kCrash;
    sim.schedule_at(sf.at, [&layer, &sim, crash, sf, servers] {
      if (crash) {
        servers[static_cast<std::size_t>(sf.server)]->abort_all_connections();
        layer.record_server_event(FaultEvent::Kind::kServerCrash, sf.server);
        LOG_INFO() << "fault: server" << sf.server << " crashed (restart at "
                   << format_duration(sf.until) << ")";
        sim.schedule_at(sf.until, [&layer, sf] {
          layer.record_server_event(FaultEvent::Kind::kServerRestart,
                                    sf.server);
        });
      } else {
        layer.record_server_event(FaultEvent::Kind::kServerStall, sf.server);
        LOG_INFO() << "fault: server" << sf.server << " stalled until "
                   << format_duration(sf.until);
      }
    });
  }
  for (std::size_t s = 0; s < servers.size(); ++s) {
    if (windows[s].empty()) continue;
    servers[s]->add_injector(
        std::make_unique<ScheduledFreezeInjector>(std::move(windows[s])));
  }
}

}  // namespace inband
