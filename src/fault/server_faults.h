// Server-side fault wiring: maps a FaultPlan's ServerFaultSpecs onto live
// KvServers.
//
// Stalls and the post-crash restart window reuse the server's
// VariabilityInjector mechanism (`frozen_until`): no request may *start*
// inside a frozen window, while in-flight requests complete — the same
// semantics as a GC pause, but on an explicit schedule instead of a period.
// A crash additionally resets every open connection and drops queued work at
// the instant it fires (KvServer::abort_all_connections); clients reconnect
// through the LB and the listener answers again once the freeze lifts.
//
// All executed events are reported through the owning FaultLayer so the
// fault timeline, counters and digest stay in one place.
#pragma once

#include <vector>

#include "app/kv_server.h"
#include "app/variability.h"
#include "fault/fault_layer.h"
#include "fault/fault_plan.h"
#include "sim/simulator.h"
#include "util/shard.h"

namespace inband {

// A process freeze on an explicit schedule: no request may start inside any
// [start, end) window. Windows may overlap; frozen_until returns the end of
// the latest window covering `now`.
INBAND_SHARD_LOCAL(owner)
class ScheduledFreezeInjector final : public VariabilityInjector {
 public:
  struct Window {
    SimTime start = 0;
    SimTime end = 0;
  };

  explicit ScheduledFreezeInjector(std::vector<Window> windows);

  SimTime frozen_until(SimTime now) override;

 private:
  std::vector<Window> windows_;
};

// Attaches `plan.servers` to the given servers (indexed by ServerFaultSpec::
// server; out-of-range indices assert): freeze injectors for every stall and
// crash window, plus scheduled crash/restart events on `sim`. Events are
// recorded into `layer`.
void apply_server_faults(const FaultPlan& plan, Simulator& sim,
                         FaultLayer& layer,
                         const std::vector<KvServer*>& servers);

}  // namespace inband
