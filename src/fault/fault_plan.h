// Deterministic fault-injection plans.
//
// A FaultPlan is pure configuration: which links of a rig topology get
// stochastic per-packet faults (loss, duplication, reordering, delay
// jitter), which links flap down and back up on a schedule, and which
// servers stall, freeze or crash. Plans are expressed against symbolic link
// scopes (client→LB, LB→server, server→client) so the same plan applies to
// any rig size; the rig maps scopes onto its concrete links when it builds
// the FaultLayer.
//
// Everything stochastic is driven by RNGs derived from `FaultPlan::seed`
// via splitmix64, one engine per link, so a (config seed, fault seed) pair
// pins the complete fault schedule: two runs with the same plan produce
// byte-identical fault decisions, and the determinism checker digests the
// fault layer like any other subsystem.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "net/address.h"
#include "util/shard.h"
#include "util/time.h"

namespace inband {

// End of simulated time, for "active until the end" fault windows.
inline constexpr SimTime kEndOfTime = std::numeric_limits<SimTime>::max();

// Which directed links of a rig topology a spec applies to. The rig decides
// what the scopes mean concretely (cluster rig: client→VIP, VIP→server,
// server→client; backlogged rig: sender→VIP, VIP→receiver, receiver→sender).
enum class LinkScope { kAll, kClientToLb, kLbToServer, kServerToClient };

const char* link_scope_name(LinkScope scope);

// Stochastic per-packet faults on every matching link, active during
// [start, end). Evaluation order per packet: loss, then duplication, then
// reordering, then jitter — a lost packet is never duplicated or held.
INBAND_SHARD_SHARED_CONST
struct LinkFaultSpec {
  LinkScope scope = LinkScope::kAll;
  // Restricts the spec to one endpoint index (the server index for
  // kLbToServer / kServerToClient, the client index for kClientToLb);
  // -1 matches every link in the scope.
  int index = -1;

  double loss = 0.0;       // P(packet silently dropped)
  double duplicate = 0.0;  // P(a second copy is transmitted)
  double reorder = 0.0;    // P(packet held so later packets overtake it)
  // Hold duration for a reordered packet, uniform in [min, max).
  SimTime reorder_hold_min = us(50);
  SimTime reorder_hold_max = us(500);
  // Per-packet delay jitter: every passing packet is held uniform in
  // [0, jitter_max). 0 disables. Unlike LinkParams::jitter_* this jitter is
  // applied *before* the link and is not FIFO-clamped, so large draws also
  // reorder.
  SimTime jitter_max = 0;

  SimTime start = 0;
  SimTime end = kEndOfTime;
};

// Scheduled link outage: every packet sent on a matching link during
// [down_at, up_at) is dropped. The flap state machine (kPending → kDown →
// kRestored) is audited by the fault layer.
INBAND_SHARD_SHARED_CONST
struct LinkFlapSpec {
  LinkScope scope = LinkScope::kAll;
  int index = -1;
  SimTime down_at = 0;
  SimTime up_at = 0;
};

// Server-side faults, applied by the rig to its KvServers.
//  * kStall  — no request may *start* during [at, until); in-flight requests
//    finish (a GC/compaction-style process freeze).
//  * kCrash  — at `at` every open connection is reset and queued work is
//    dropped (KvServer::abort_all_connections), then the process stays
//    frozen until `until` (the supervisor restart window); the listener
//    comes back with the restart.
INBAND_SHARD_SHARED_CONST
struct ServerFaultSpec {
  enum class Kind { kStall, kCrash };
  Kind kind = Kind::kStall;
  int server = 0;
  SimTime at = 0;
  SimTime until = 0;
};

INBAND_SHARD_SHARED_CONST
struct FaultPlan {
  std::vector<LinkFaultSpec> links;
  std::vector<LinkFlapSpec> flaps;
  std::vector<ServerFaultSpec> servers;
  // Root seed for every per-link fault RNG (independent of the rig seed, so
  // the same traffic can be replayed under a different fault schedule).
  std::uint64_t seed = 0xfa017;

  bool enabled() const {
    return !links.empty() || !flaps.empty() || !servers.empty();
  }

  // Asserts that probabilities are in [0,1] and every window is ordered.
  void validate() const;
};

// Convenience: uniform background noise on every link — the "1% loss +
// reordering + jitter" robustness configuration used by tests and benches.
FaultPlan make_noise_plan(double loss, double reorder, double duplicate,
                          SimTime jitter_max, std::uint64_t seed = 0xfa017);

// One fault the layer actually executed, timestamped for experiment reports
// (scenario::fault_events_in_window). Link events carry the directed link;
// server events carry the server index in `index`.
struct FaultEvent {
  enum class Kind {
    kLoss,
    kDuplicate,
    kReorder,
    kFlapDrop,
    kLinkDown,
    kLinkUp,
    kServerStall,
    kServerCrash,
    kServerRestart,
  };
  Kind kind{};
  SimTime t = 0;
  Ipv4 from = 0;
  Ipv4 to = 0;
  int index = -1;
};

const char* fault_event_name(FaultEvent::Kind kind);

}  // namespace inband
