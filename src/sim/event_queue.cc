#include "sim/event_queue.h"

#include "check/invariant_auditor.h"
#include "check/state_digest.h"
#include "util/assert.h"

namespace inband {

EventId EventQueue::push(SimTime t, std::function<void()> fn) {
  INBAND_ASSERT(fn != nullptr);
  const EventId id = next_id_++;
  heap_.push({t, id});
  handlers_.emplace(id, std::move(fn));
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto erased = handlers_.erase(id);
  if (erased == 0) return false;
  INBAND_ASSERT(live_ > 0);
  --live_;
  return true;
}

void EventQueue::drop_dead_heads() {
  while (!heap_.empty() && handlers_.find(heap_.top().id) == handlers_.end()) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() {
  drop_dead_heads();
  return heap_.empty() ? kNoTime : heap_.top().t;
}

EventQueue::Popped EventQueue::pop() {
  drop_dead_heads();
  INBAND_ASSERT(!heap_.empty(), "pop() on empty event queue");
  const HeapEntry head = heap_.top();
  heap_.pop();
  auto it = handlers_.find(head.id);
  INBAND_ASSERT(it != handlers_.end());
  Popped out{head.t, std::move(it->second)};
  handlers_.erase(it);
  --live_;
  INBAND_DCHECK(last_popped_ == kNoTime || head.t >= last_popped_,
                "event queue popped backwards in time");
  last_popped_ = head.t;
  return out;
}

void EventQueue::audit_invariants(AuditScope& scope) {
  scope.check(handlers_.size() == live_, "live-count-consistent",
              "handler map size != live counter");
  scope.check(heap_.size() >= live_, "heap-covers-live",
              "fewer heap entries than live events");
  scope.check(next_id_ >= 1 + live_, "id-counter-sane");
  const SimTime next = next_time();
  if (next != kNoTime && last_popped_ != kNoTime) {
    scope.check(next >= last_popped_, "time-monotonic",
                "next live event is earlier than the last popped event");
  }
}

void EventQueue::digest_state(StateDigest& digest) {
  digest.mix(next_id_);
  digest.mix(live_);
  digest.mix_i64(last_popped_);
  digest.mix_i64(next_time());
}

}  // namespace inband
