#include "sim/event_queue.h"

#include <algorithm>
#include <bit>

#include "check/invariant_auditor.h"
#include "check/state_digest.h"
#include "util/assert.h"

namespace inband {

namespace {

// First set bit at index >= from, or 64 when none.
inline unsigned next_bit(std::uint64_t bits, std::uint32_t from) {
  if (from >= 64) return 64;
  const std::uint64_t rest = bits >> from << from;
  return rest == 0 ? 64u : static_cast<unsigned>(std::countr_zero(rest));
}

}  // namespace

EventQueue::EventQueue() {
  for (auto& level : rings_) {
    for (auto& bucket : level) bucket.reserve(kBucketReserve);
  }
  far_keys_.reserve(kFarReserve);
  far_payload_.reserve(kFarReserve);
}

std::uint32_t EventQueue::alloc_slot_slow() {
  INBAND_COLD_OK("slab growth: one chunk per kSlotsPerChunk slots; steady "
                 "state recycles freed slots and never lands here");
  if (slot_count_ % kSlotsPerChunk == 0) {
    INBAND_ASSERT(slot_count_ < kNullSlot - kSlotsPerChunk,
                  "event pool exhausted");
    chunks_.push_back(std::make_unique<Slot[]>(kSlotsPerChunk));
  }
  return slot_count_++;
}

bool EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId) return false;
  const std::uint32_t index = slot_of(id);
  if (index >= slot_count_) return false;
  Slot& s = slot_ref(index);
  if (s.gen != gen_of(id) || !s.callback) return false;
  s.callback.reset();
  retire_handle(s);  // the wheel entry is now a tombstone, skipped at pop
  recycle_slot(index, s);
  INBAND_ASSERT(live_ > 0);
  --live_;
  // A cancelled event resident in the far heap stays behind as a tombstone
  // that advance_cursor() only reclaims when its 2^18-tick window rotates in,
  // so cancel-heavy far-timer workloads would otherwise retain heap entries
  // unboundedly. Every far tombstone originates from a cancel (entries enter
  // the heap live and are re-filed only while live), so once the cancels
  // since the last sweep could account for half the heap, rebuild it without
  // the dead entries — amortized O(log n) per cancel, and it bounds the heap
  // at 2x its live occupancy plus the reserve (asserted in test_sim.cc).
  if (++far_cancels_ >= kFarReserve && 2 * far_cancels_ >= far_keys_.size()) {
    compact_far();
  }
  return true;
}

void EventQueue::compact_far() {
  far_cancels_ = 0;
  std::size_t out = 0;
  for (std::size_t i = 0; i < far_keys_.size(); ++i) {
    const std::uint64_t p = far_payload_[i];
    if (slot_ref(static_cast<std::uint32_t>(p >> 32)).gen !=
        static_cast<std::uint32_t>(p)) {
      continue;  // tombstone
    }
    far_keys_[out] = far_keys_[i];
    far_payload_[out] = p;
    ++out;
  }
  // hotlint:allow(hot-growth): shrinks to the live prefix; capacity retained across compactions
  far_keys_.resize(out);
  // hotlint:allow(hot-growth): shrinks to the live prefix; capacity retained across compactions
  far_payload_.resize(out);
  if (out < 2) return;
  // Floyd heapify, in place and allocation-free (this runs inside the
  // steady-state cancel path, which tests/test_alloc.cc holds to exactly
  // zero heap allocations): sift every internal node down, co-moving the
  // payloads. Keys are unique ((time, seq) with a never-reused seq) and
  // far_pop() always takes the minimum, so the pop sequence depends only
  // on the key *set* — any valid heap layout pops bit-identically.
  for (std::size_t node = ((out - 2) >> 2) + 1; node-- > 0;) {
    const Key k = far_keys_[node];
    const std::uint64_t p = far_payload_[node];
    std::size_t i = node;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= out) break;
      std::size_t best = first;
      const std::size_t last = first + 4 < out ? first + 4 : out;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (far_keys_[c] < far_keys_[best]) best = c;
      }
      if (k < far_keys_[best]) break;
      far_keys_[i] = far_keys_[best];
      far_payload_[i] = far_payload_[best];
      i = best;
    }
    far_keys_[i] = k;
    far_payload_[i] = p;
  }
}

// Slow path of front_entry(): the active bucket is drained, so move the
// cursor forward — next occupied level-0 bucket in this epoch, else cascade
// the next occupied bucket of a higher level down, else re-anchor at the far
// heap. Each step only ever jumps to a bucket that holds the globally
// earliest pending entries, so pops stay in (time, seq) order.
EventQueue::WheelEntry* EventQueue::advance_cursor() {
  for (;;) {
    {
      std::vector<WheelEntry>& v = active_bucket();
      while (pos_ < v.size()) {
        WheelEntry& e = v[pos_];
        if (slot_ref(e.slot).gen == e.gen) return &e;
        ++pos_;  // tombstone
      }
      v.clear();  // keeps capacity: steady state stays allocation-free
      pos_ = 0;
    }
    const std::uint64_t w = static_cast<std::uint64_t>(wtime_);

    // Level 0: jump to the next occupied bucket of the current 2^12 epoch
    // and sort it (the only per-event ordering work the wheel ever does).
    const std::uint32_t s0 =
        static_cast<std::uint32_t>((w >> kL0Shift) & kWheelMask);
    if (const unsigned b = next_bit(occ_[0], s0 + 1); b < kWheelSlots) {
      occ_[0] &= ~(1ull << b);
      wtime_ = static_cast<SimTime>((w & ~((1ull << kL1Shift) - 1)) |
                                    (static_cast<std::uint64_t>(b) << kL0Shift));
      std::vector<WheelEntry>& bucket = active_bucket();
      std::sort(bucket.begin(), bucket.end(),
                [](const WheelEntry& a, const WheelEntry& c) {
                  return a.key < c.key;
                });
      continue;
    }
    INBAND_DCHECK(occ_[0] == 0, "stale level-0 occupancy behind the cursor");

    // Level 1: cascade the next occupied bucket of the current 2^18 epoch
    // down into level 0.
    const std::uint32_t s1 =
        static_cast<std::uint32_t>((w >> kL1Shift) & kWheelMask);
    if (const unsigned b = next_bit(occ_[1], s1 + 1); b < kWheelSlots) {
      occ_[1] &= ~(1ull << b);
      wtime_ = static_cast<SimTime>((w & ~((1ull << kFarShift) - 1)) |
                                    (static_cast<std::uint64_t>(b) << kL1Shift));
      cascade(rings_[1][b]);
      continue;
    }
    INBAND_DCHECK(occ_[1] == 0, "stale level-1 occupancy behind the cursor");

    // Far horizon: re-anchor the wheel at the earliest far event and pull
    // everything inside the new 2^18-tick window down into the rings.
    if (far_keys_.empty()) return nullptr;  // queue truly empty
    const std::uint64_t anchor =
        static_cast<std::uint64_t>(key_time(far_keys_.front())) & ~kWheelMask;
    INBAND_DCHECK(static_cast<SimTime>(anchor) >= wtime_,
                  "wheel cursor would move backwards");
    wtime_ = static_cast<SimTime>(anchor);
    const std::uint64_t horizon = anchor | ((1ull << kFarShift) - 1);
    while (!far_keys_.empty() &&
           static_cast<std::uint64_t>(key_time(far_keys_.front())) <= horizon) {
      const WheelEntry e = far_pop();
      if (slot_ref(e.slot).gen != e.gen) continue;  // cancelled while far
      place(e);
    }
  }
}

// Re-files one exhausted higher-level bucket's entries a level down (or into
// the active bucket / far heap via place()); tombstones are dropped here
// instead of being copied along.
void EventQueue::cascade(std::vector<WheelEntry>& bucket) {
  for (const WheelEntry& e : bucket) {
    if (slot_ref(e.slot).gen != e.gen) continue;
    place(e);
  }
  bucket.clear();
}

EventQueue::WheelEntry EventQueue::far_pop() {
  const std::uint64_t top = far_payload_.front();
  const WheelEntry out{far_keys_.front(), static_cast<std::uint32_t>(top >> 32),
                       static_cast<std::uint32_t>(top)};
  const Key lk = far_keys_.back();
  const std::uint64_t lp = far_payload_.back();
  far_keys_.pop_back();
  far_payload_.pop_back();
  const std::size_t n = far_keys_.size();
  if (n != 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      std::size_t best;
      if (first + 3 < n) {
        // Branchless min-of-4 tournament over the adjacent children.
        const std::size_t a =
            first + static_cast<std::size_t>(far_keys_[first + 1] <
                                             far_keys_[first]);
        const std::size_t c =
            first + 2 + static_cast<std::size_t>(far_keys_[first + 3] <
                                                 far_keys_[first + 2]);
        best = far_keys_[c] < far_keys_[a] ? c : a;
      } else {
        if (first >= n) break;
        best = first;
        for (std::size_t c = first + 1; c < n; ++c) {
          if (far_keys_[c] < far_keys_[best]) best = c;
        }
      }
      if (lk < far_keys_[best]) break;
      far_keys_[i] = far_keys_[best];
      far_payload_[i] = far_payload_[best];
      i = best;
    }
    far_keys_[i] = lk;
    far_payload_[i] = lp;
  }
  return out;
}

SimTime EventQueue::next_time() {
  WheelEntry* head = front_entry();
  return head == nullptr ? kNoTime : key_time(head->key);
}

EventQueue::Popped EventQueue::pop() {
  WheelEntry* head = front_entry();
  INBAND_ASSERT(head != nullptr, "pop() on empty event queue");
  const SimTime t = key_time(head->key);
  const std::uint32_t slot = head->slot;
  [[maybe_unused]] const std::uint32_t gen = head->gen;
  ++pos_;
  Slot& s = slot_ref(slot);
  INBAND_DCHECK(s.gen == gen && s.callback);
  Popped out{t, std::move(s.callback)};
  retire_handle(s);
  recycle_slot(slot, s);
  --live_;
  INBAND_DCHECK(last_popped_ == kNoTime || t >= last_popped_,
                "event queue popped backwards in time");
  last_popped_ = t;
  return out;
}

void EventQueue::audit_invariants(AuditScope& scope) {
  std::size_t occupied = 0;
  std::uint64_t free_count = 0;
  for (std::uint32_t i = 0; i < slot_count_; ++i) {
    if (slot_ref(i).callback) ++occupied;
  }
  for (std::uint32_t i = free_head_; i != kNullSlot;
       i = slot_ref(i).next_free) {
    ++free_count;
  }
  // An audit can run from inside a firing callback (the rig's periodic
  // audit is itself an event); that callback's slot is occupied but no
  // longer counted live.
  const std::size_t in_flight =
      firing_slot_ != kNullSlot && slot_ref(firing_slot_).callback ? 1 : 0;
  scope.check(occupied == live_ + in_flight, "live-count-consistent",
              "occupied pool slots != live counter");
  scope.check(occupied + free_count + retired_slots_ == slot_count_,
              "pool-slots-accounted",
              "live + free + retired slots != pool size");

  // Every live event has a pending wheel/heap entry (tombstones may add
  // more), and the occupancy bitmaps agree with the bucket vectors.
  std::size_t pending = far_keys_.size();
  bool occ_ok = true;
  const std::vector<WheelEntry>* active = &active_bucket();
  for (int level = 0; level < kWheelLevels; ++level) {
    for (std::uint32_t b = 0; b < kWheelSlots; ++b) {
      const std::vector<WheelEntry>& v = rings_[level][b];
      pending += v.size();
      const bool bit = (occ_[level] >> b) & 1u;
      if (&v == active) {
        if (bit) occ_ok = false;  // the active bucket is tracked by pos_
      } else if (bit != !v.empty()) {
        occ_ok = false;
      }
    }
  }
  INBAND_ASSERT(pos_ <= active->size());
  pending -= pos_;  // consumed prefix of the active bucket
  scope.check(pending >= live_, "wheel-covers-live",
              "fewer pending wheel entries than live events");
  scope.check(occ_ok, "wheel-occupancy-bitmap",
              "occupancy bitmap disagrees with bucket contents");
  scope.check(next_seq_ >= 1 + live_, "id-counter-sane");
  const SimTime next = next_time();
  if (next != kNoTime && last_popped_ != kNoTime) {
    scope.check(next >= last_popped_, "time-monotonic",
                "next live event is earlier than the last popped event");
  }
}

void EventQueue::digest_state(StateDigest& digest) {
  // Mixes the same quantities (in the same order) as the pre-pool
  // implementation: push counter, live count, last pop time, next event
  // time. Wheel geometry, bucket membership and slot generations are
  // storage artifacts and stay out, which is what keeps digests
  // bit-identical across the storage rework.
  digest.mix(next_seq_);
  digest.mix(live_);
  digest.mix_i64(last_popped_);
  digest.mix_i64(next_time());
}

}  // namespace inband
