#include "sim/event_queue.h"

#include "util/assert.h"

namespace inband {

EventId EventQueue::push(SimTime t, std::function<void()> fn) {
  INBAND_ASSERT(fn != nullptr);
  const EventId id = next_id_++;
  heap_.push({t, id});
  handlers_.emplace(id, std::move(fn));
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto erased = handlers_.erase(id);
  if (erased == 0) return false;
  INBAND_ASSERT(live_ > 0);
  --live_;
  return true;
}

void EventQueue::drop_dead_heads() {
  while (!heap_.empty() && handlers_.find(heap_.top().id) == handlers_.end()) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() {
  drop_dead_heads();
  return heap_.empty() ? kNoTime : heap_.top().t;
}

EventQueue::Popped EventQueue::pop() {
  drop_dead_heads();
  INBAND_ASSERT(!heap_.empty(), "pop() on empty event queue");
  const HeapEntry head = heap_.top();
  heap_.pop();
  auto it = handlers_.find(head.id);
  INBAND_ASSERT(it != handlers_.end());
  Popped out{head.t, std::move(it->second)};
  handlers_.erase(it);
  --live_;
  return out;
}

}  // namespace inband
