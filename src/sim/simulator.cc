#include "sim/simulator.h"

#include "check/invariant_auditor.h"
#include "check/state_digest.h"
#include "util/assert.h"
#include "util/logging.h"

namespace inband {

bool Simulator::step() {
  if (queue_.empty()) return false;
  // fire_next invokes the handler in its pool slot; the pre-hook commits the
  // clock before the handler runs so handlers observe now() == their time.
  queue_.fire_next([this](SimTime t) {
    INBAND_DCHECK(t >= now_);
    now_ = t;
  });
  ++executed_;
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  stopped_ = false;
  while (!stopped_) {
    const SimTime next = queue_.next_time();
    if (next == kNoTime || next > deadline) break;
    step();
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

void Simulator::audit_invariants(AuditScope& scope) {
  scope.check(now_ >= 0, "clock-nonnegative");
  const SimTime next = queue_.next_time();
  if (next != kNoTime) {
    scope.check(next >= now_, "no-event-in-the-past",
                "live event scheduled before now()");
  }
  queue_.audit_invariants(scope);
}

void Simulator::digest_state(StateDigest& digest) {
  digest.mix_i64(now_);
  digest.mix(executed_);
  queue_.digest_state(digest);
}

namespace {
SimTime sim_log_clock(const void* ctx) {
  return static_cast<const Simulator*>(ctx)->now();
}
}  // namespace

Simulator::LogClockGuard::LogClockGuard(const Simulator& sim) {
  set_log_clock(&sim_log_clock, &sim);
}

Simulator::LogClockGuard::~LogClockGuard() { set_log_clock(nullptr, nullptr); }

PeriodicTask::PeriodicTask(Simulator& sim, SimTime period,
                           std::function<void(SimTime)> fn)
    : sim_{sim}, period_{period}, fn_{std::move(fn)} {
  INBAND_ASSERT(period_ > 0);
  INBAND_ASSERT(fn_ != nullptr);
}

PeriodicTask::~PeriodicTask() { cancel(); }

void PeriodicTask::start(SimTime first_delay) {
  INBAND_ASSERT(!active(), "start() on a running PeriodicTask");
  event_ = sim_.schedule_after(first_delay, [this] { fire(); });
}

void PeriodicTask::cancel() {
  if (event_ != kInvalidEventId) {
    sim_.cancel(event_);
    event_ = kInvalidEventId;
  }
}

void PeriodicTask::fire() {
  // Reschedule before the callback so the callback may cancel us.
  event_ = sim_.schedule_after(period_, [this] { fire(); });
  fn_(sim_.now());
}

}  // namespace inband
