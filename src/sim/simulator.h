// Discrete-event simulator: clock + scheduler.
//
// Single-threaded by design: every model in this repository is driven from
// the one event loop, which is what makes runs bit-reproducible. Handlers may
// schedule and cancel further events freely (including at the current time;
// such events run after the current handler returns, in FIFO order).
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "util/assert.h"
#include "util/hotpath.h"
#include "util/shard.h"
#include "util/time.h"

namespace inband {

INBAND_SHARD_LOCAL(owner)
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules fn at absolute time t (>= now). Accepts any nullary callable;
  // the callback is stored erased in the event pool, without the per-event
  // heap allocation a std::function parameter would force.
  template <typename F>
  EventId schedule_at(SimTime t, F&& fn) {
    INBAND_ASSERT(t >= now_, "scheduling into the past");
    return queue_.push(t, std::forward<F>(fn));
  }

  // Schedules fn `delay` after now (delay >= 0).
  template <typename F>
  EventId schedule_after(SimTime delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  // Runs until the queue drains or stop() is called.
  void run();

  // Runs events with time <= deadline; afterwards now() == max(now, deadline)
  // unless stop() fired earlier.
  void run_until(SimTime deadline);

  // Executes exactly one event if any; returns false when the queue is empty.
  INBAND_HOT bool step();

  // Absolute time of the earliest pending event; kNoTime when none. Non-const
  // because inspecting the head may advance the wheel cursor.
  SimTime next_event_time() { return queue_.next_time(); }

  // Commits the clock to t (>= now) without running anything. The parallel
  // driver uses this to advance to a cross-shard delivery time or to the run
  // end; the caller guarantees no pending event lies in (now, t).
  void advance_to(SimTime t) {
    INBAND_ASSERT(t >= now_, "advancing the clock into the past");
    INBAND_DCHECK(queue_.next_time() == kNoTime || queue_.next_time() >= t,
                  "advance_to would skip a pending event");
    now_ = t;
  }

  // Makes run()/run_until() return after the current handler completes.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

  // Invariant audit: clock sanity plus the event queue's own invariants
  // (no live event scheduled in the simulator's past).
  void audit_invariants(AuditScope& scope);

  // Folds clock/scheduler state into a determinism digest.
  void digest_state(StateDigest& digest);

  // Installs this simulator's clock as the logging time prefix for the
  // duration of the returned guard.
  class LogClockGuard {
   public:
    explicit LogClockGuard(const Simulator& sim);
    ~LogClockGuard();
    LogClockGuard(const LogClockGuard&) = delete;
    LogClockGuard& operator=(const LogClockGuard&) = delete;
  };

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

// Repeating task helper: reschedules itself every `period` until cancelled
// or its owner is destroyed. The callback receives the firing time.
INBAND_SHARD_LOCAL(owner)
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, SimTime period,
               std::function<void(SimTime)> fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start(SimTime first_delay);
  void cancel();
  bool active() const { return event_ != kInvalidEventId; }

 private:
  void fire();

  Simulator& sim_;
  SimTime period_;
  std::function<void(SimTime)> fn_;
  EventId event_ = kInvalidEventId;
};

}  // namespace inband
