// Conservative parallel shard execution.
//
// The repository's answer to "one Release core does ~2.5M events/s": the
// simulated topology is partitioned into shards (one LB + its servers — the
// ownership partition shardlint proves and commits in
// tools/detlint/partition_src.json), each shard owns a full EventQueue/
// Simulator of its own, and shards synchronize with the classic
// Chandy–Misra–Bryant conservative-lookahead protocol over their cross-shard
// links:
//
//   * every directed cross-shard link is a ShardChannel (net/shard_channel.h)
//     with a fixed positive latency L — the lookahead;
//   * a shard's *frontier* F is a lower bound on the timestamp of anything it
//     may still emit: min(next local event, every in-channel's lower bound);
//   * after each advance it announces F + L on each out-channel (the null
//     message, folded into a monotone horizon word instead of a message);
//   * a shard may freely process all work strictly below
//     min over in-channels of (head deliver time, else announced horizon) —
//     nothing that could arrive later can be earlier than that.
//
// With every L > 0 the globally earliest unprocessed work is always safe at
// its shard, so the system never deadlocks (the standard CMB argument).
// Determinism does NOT come from the schedule — workers race freely — but
// from the per-shard merge rule in ShardedRig: each shard interleaves its
// local (time, seq) event order with its cross-arrival order by a fixed
// (time, cross-before-local, channel index, channel FIFO) rule, so the
// per-shard execution sequence, and therefore every per-shard digest, is a
// pure function of the inputs, bit-identical across worker counts and
// placements (swept in tests/test_parallel.cc, raced under TSan in CI).
//
// This header is topology-agnostic: a ShardProgram is any synchronous
// program with the advance/publish/done shape, and run_shard_programs() is
// the worker pool that drives a set of them to completion.
#pragma once

#include <cstdint>
#include <vector>

namespace inband {

// One shard's synchronous program, driven by run_shard_programs(). All three
// methods are called only by the single worker that owns the program;
// cross-thread communication happens inside them, through channels.
class ShardProgram {
 public:
  virtual ~ShardProgram() = default;

  // Processes everything currently safe under the shard's conservative
  // bound. Returns true if any event ran or delivery committed (the runner
  // yields when a full sweep makes no progress).
  virtual bool advance() = 0;

  // Announces the shard's current frontier on its out-channels. Called after
  // every advance(), including the one that completes the shard — the final
  // announcement is what releases conservatively blocked neighbors.
  virtual void publish() = 0;

  // True once the shard has committed its end time: no local event at or
  // before the end remains and no in-channel can deliver at or before it.
  // A done shard is never advanced again.
  virtual bool done() const = 0;
};

// Drives the programs to completion across `workers` OS threads with a
// static assignment (program order dealt round-robin). `sched_seed != 0`
// permutes the order first: placement must affect wall-clock only, never
// results, and the tests sweep seeds to prove it. With workers == 1 the
// programs run inline on the calling thread — the no-thread oracle path.
void run_shard_programs(const std::vector<ShardProgram*>& programs,
                        int workers, std::uint64_t sched_seed = 0);

}  // namespace inband
