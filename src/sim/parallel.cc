#include "sim/parallel.h"

#include <cstddef>
#include <thread>
#include <utility>

#include "util/assert.h"
#include "util/rng.h"

namespace inband {

namespace {

// One worker's loop: sweep the owned programs, advancing and publishing each
// live one, until all are done. A sweep with no progress anywhere means this
// worker is conservatively blocked on neighbors — yield rather than spin hot.
void worker_loop(const std::vector<ShardProgram*>& mine) {
  std::vector<char> finished(mine.size(), 0);
  std::size_t remaining = mine.size();
  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t i = 0; i < mine.size(); ++i) {
      if (finished[i] != 0) continue;
      ShardProgram& p = *mine[i];
      if (p.advance()) progressed = true;
      p.publish();
      if (p.done()) {
        // The publish above carried the final (past-the-end) frontier, so
        // neighbors blocked on this shard are already released.
        finished[i] = 1;
        --remaining;
        progressed = true;
      }
    }
    if (!progressed) std::this_thread::yield();
  }
}

}  // namespace

void run_shard_programs(const std::vector<ShardProgram*>& programs,
                        int workers, std::uint64_t sched_seed) {
  INBAND_ASSERT(workers >= 1, "need at least one worker");
  if (programs.empty()) return;

  std::vector<std::size_t> order(programs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (sched_seed != 0) {
    // Fisher–Yates with the repo RNG: the seed only moves programs between
    // workers; results must not change (asserted in test_parallel.cc).
    Rng rng{sched_seed};
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_u64(0, i - 1)]);
    }
  }
  std::vector<std::vector<ShardProgram*>> assigned(
      static_cast<std::size_t>(workers));
  for (std::size_t i = 0; i < order.size(); ++i) {
    assigned[i % static_cast<std::size_t>(workers)].push_back(
        programs[order[i]]);
  }

  if (workers == 1) {
    worker_loop(assigned[0]);  // oracle path: no threads at all
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(assigned.size());
  for (const auto& mine : assigned) {
    if (mine.empty()) continue;
    pool.emplace_back([&mine] { worker_loop(mine); });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace inband
