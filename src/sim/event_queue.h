// Cancellable discrete-event queue, allocation-free in steady state.
//
// Events at equal timestamps pop in insertion (FIFO) order — a property the
// TCP and LB models rely on for determinism. Cancellation is O(1): the
// callback slot is released and the pending entry becomes a tombstone skipped
// at pop time.
//
// Storage design (see DESIGN.md §10): two structures replace the former
// std::function + unordered_map<EventId, handler> + binary-heap trio, which
// paid one heap allocation plus a hash insert/erase per scheduled event and
// an O(log n) serial pointer chase per pop.
//
// 1. A slab-allocated event pool for the callbacks:
//  * Each event occupies a fixed-size pool slot whose EventCallback member
//    stores the erased callable inline (small-buffer optimization) for
//    captures up to EventCallback::kInlineBytes; only oversized callables
//    fall back to a single heap block.
//  * Slots are recycled through an intrusive free list, so a pop→push steady
//    state touches no allocator at all. The pool grows in fixed-size chunks
//    and slots never move, so callbacks are constructed and invoked in place.
//  * Liveness is a 32-bit generation counter per slot: an EventId encodes
//    (slot, generation), freeing a slot bumps its generation, and a pending
//    entry whose recorded generation no longer matches its slot is dead —
//    one array load where the old design did a hash lookup. A slot whose
//    generation counter would wrap is retired instead of reused, so stale
//    handles can never alias a newer event (the ABA guard; exercised by the
//    wraparound test via EventQueueTestPeer).
//
// 2. A hierarchical timing wheel for the pending set (the classic
//    discrete-event answer to the binary heap's O(log n) pops):
//  * Two rings of 64 buckets cover the near future at widths of 2^6 and
//    2^12 ticks; events beyond the 2^18-tick horizon wait in a 4-ary
//    branchless min-heap keyed by a packed (time, seq) 128-bit key.
//  * push() appends to the right ring slot in O(1) (the level is picked by
//    XOR-ing the event time with the wheel cursor, as in kernel timer
//    wheels). A ring slot is sorted by (time, seq) once, when the cursor
//    reaches it, so ordering costs O(b log b) per slot instead of O(log n)
//    per event; pops then consume the sorted slot in place.
//  * The pop order is the strict total order on (time, seq) — seq is the
//    unique monotonic push counter — so FIFO-among-ties holds and the pop
//    sequence (and therefore every digest) is bit-identical to what the
//    single-heap implementations produced.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/assert.h"
#include "util/hotpath.h"
#include "util/shard.h"
#include "util/time.h"

namespace inband {

class AuditScope;
class StateDigest;

// Opaque handle for cancellation. Id 0 is never issued (slot indices are
// biased by one in the encoding, so the high word of a real id is nonzero).
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// Move-only type-erased nullary callable with a small-buffer optimization
// sized for the queue's dominant payload (a link-delivery lambda carrying a
// Packet by value). Unlike std::function it never allocates for captures up
// to kInlineBytes and never copies the target.
INBAND_SHARD_LOCAL(owner)
class EventCallback {
 public:
  // Inline capture budget. Chosen so the largest hot-path lambda (Packet by
  // value plus three pointers — Network::transmit_held's release) fits;
  // measured in tests/test_sim.cc. Packet carries a MsgList with two inline
  // MessageRefs, which is what sets its 136-byte size.
  static constexpr std::size_t kInlineBytes = 160;

  EventCallback() = default;
  ~EventCallback() { reset(); }

  EventCallback(EventCallback&& other) noexcept { move_from(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  template <typename F>
  explicit EventCallback(F&& fn) {
    emplace(std::forward<F>(fn));
  }

  // Installs a new target, destroying any current one.
  template <typename F>
  void emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>,
                  "EventCallback target must be callable as void()");
    reset();
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      vtable_ = &kInlineVTable<Fn>;
    } else {
      INBAND_COLD_OK("target exceeds kInlineBytes; hot call sites keep their "
                     "callbacks inline (checked by the perf gate)");
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(fn)));
      vtable_ = &kHeapVTable<Fn>;
    }
  }

  void operator()() {
    INBAND_DCHECK(vtable_ != nullptr, "invoking empty EventCallback");
    vtable_->invoke(buf_);
  }

  explicit operator bool() const { return vtable_ != nullptr; }

  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(buf_);
      vtable_ = nullptr;
    }
  }

  // True when Fn is stored in place rather than behind a heap pointer.
  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    // Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static constexpr VTable kInlineVTable{
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable kHeapVTable{
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* p) { delete *std::launder(reinterpret_cast<Fn**>(p)); },
  };

  void move_from(EventCallback& other) {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(buf_, other.buf_);
      other.vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vtable_ = nullptr;
};

INBAND_SHARD_LOCAL(owner)
class EventQueue {
 public:
  EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  template <typename F>
  INBAND_HOT EventId push(SimTime t, F&& fn) {
    if constexpr (requires { fn == nullptr; }) {
      INBAND_ASSERT(!(fn == nullptr));
    }
    INBAND_ASSERT(t >= 0, "event time must be non-negative");
    const std::uint32_t slot = alloc_slot();
    Slot& s = slot_ref(slot);
    // hotlint:allow(hot-growth): emplace targets the slot's inline buffer
    s.callback.emplace(std::forward<F>(fn));
    const std::uint64_t seq = next_seq_++;
    place(WheelEntry{make_key(t, seq), slot, s.gen});
    ++live_;
    return make_id(slot, s.gen);
  }

  // Returns true if the event existed and had not yet fired.
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  // Timestamp of the next live event; kNoTime when empty.
  SimTime next_time();

  // Pops and returns the next live event's handler (with its time). The
  // caller invokes it — the queue itself never runs user code. The returned
  // callback is moved out of its pool slot; prefer fire_next() on hot paths,
  // which invokes in place.
  struct Popped {
    SimTime t;
    EventCallback fn;
  };
  Popped pop();

  // Fused pop-and-invoke: runs the next live event's callback in its pool
  // slot (no move, no transient storage). `pre(t)` runs after the event is
  // committed but before the callback, so a simulator can advance its clock
  // first. As with pop(), an event cannot cancel() itself once it is firing.
  // Returns the event's time. The queue must not be empty.
  template <typename Pre>
  INBAND_HOT SimTime fire_next(Pre&& pre) {
    WheelEntry* head = front_entry();
    INBAND_ASSERT(head != nullptr, "fire_next() on empty event queue");
    const SimTime t = key_time(head->key);
    const std::uint32_t slot = head->slot;
    Slot& s = slot_ref(slot);
    INBAND_DCHECK(s.gen == head->gen && s.callback);
    ++pos_;  // consume before the callback runs: it may push into this bucket
    --live_;
    INBAND_DCHECK(last_popped_ == kNoTime || t >= last_popped_,
                  "event queue popped backwards in time");
    last_popped_ = t;
    retire_handle(s);  // the firing event's own id goes dead, as with pop()
    firing_slot_ = slot;  // occupied but no longer live, for the auditor
    pre(t);
    s.callback();  // may push/cancel freely; `head` may dangle from here on
    s.callback.reset();
    firing_slot_ = kNullSlot;
    recycle_slot(slot, s);
    return t;
  }

  std::uint64_t total_pushed() const { return next_seq_ - 1; }

  // Timestamp of the most recently popped event; kNoTime before any pop.
  SimTime last_popped() const { return last_popped_; }

  // Invariant audit: pool/live bookkeeping agrees and the next live event
  // is not earlier than the last popped one (time monotonicity). Non-const
  // because inspecting the head may compact tombstones.
  void audit_invariants(AuditScope& scope);

  // Folds scheduling state into a determinism digest (handlers themselves
  // are not hashable; identical push/pop/cancel sequences are what make two
  // runs equal). Non-const for the same reason as audit_invariants.
  void digest_state(StateDigest& digest);

 private:
  friend struct EventQueueTestPeer;

  static constexpr std::uint32_t kNullSlot = 0xffffffffu;
  static constexpr std::uint32_t kSlotsPerChunk = 256;
  // A slot reaching this generation is retired rather than recycled, so a
  // wrapped counter can never revalidate a stale handle.
  static constexpr std::uint32_t kMaxGen = 0xffffffffu;

  struct Slot {
    EventCallback callback;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNullSlot;
  };

  // Sort key for the pending order: ((t << 64) | seq) ascending is exactly
  // the (time, then push order) total order — seq is unique, so there are no
  // ties and the pop sequence is independent of how entries are stored.
  // Requires t >= 0, asserted in push().
  __extension__ typedef unsigned __int128 Key;

  struct WheelEntry {
    Key key;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static Key make_key(SimTime t, std::uint64_t seq) {
    return (static_cast<Key>(static_cast<std::uint64_t>(t)) << 64) | seq;
  }
  static SimTime key_time(Key k) {
    return static_cast<SimTime>(static_cast<std::uint64_t>(k >> 64));
  }

  // --- Timing-wheel geometry. Each level's 64 buckets span the next 6 bits
  // of the event time; anything beyond the 2^18-tick horizon waits in the
  // far heap. Two levels (not the kernel's four+) because the far heap is a
  // single structure whose capacity high-water is reached almost
  // immediately, whereas every ring bucket is first touched only when the
  // cursor first enters its time range — more rings would push first-touch
  // growth arbitrarily late into a run.
  static constexpr std::uint32_t kWheelBits = 6;
  static constexpr std::uint32_t kWheelSlots = 1u << kWheelBits;  // 64
  static constexpr std::uint64_t kWheelMask = kWheelSlots - 1;
  static constexpr int kWheelLevels = 2;
  static constexpr std::uint32_t kL0Shift = 6;
  static constexpr std::uint32_t kL1Shift = 12;
  static constexpr std::uint32_t kFarShift = 18;
  // Buckets are first reached only when the cursor enters their time range,
  // so without an up-front reserve the first-touch growth of each vector
  // would surface as rare allocations arbitrarily late in a run. Reserved in
  // the constructor; sized above the worst per-bucket coincidence the rig
  // workloads produce (occupancy spikes past 16 were observed as mid-run
  // capacity doublings under the zero-alloc gate), because a bucket's first
  // growth past the reserve can happen arbitrarily late. 128 buckets at
  // 64 entries of 16 bytes is 128 KiB per queue — noise next to the slab.
  static constexpr std::size_t kBucketReserve = 64;
  static constexpr std::size_t kFarReserve = 64;

  // Files a pending entry by its distance from the wheel cursor: the level
  // is the highest base-64 digit in which the event time differs from the
  // cursor (the XOR trick from kernel timer wheels). O(1); bucket vectors
  // stay unsorted until the cursor reaches them.
  void place(const WheelEntry& e) {
    const std::uint64_t t = static_cast<std::uint64_t>(key_time(e.key));
    const std::uint64_t w = static_cast<std::uint64_t>(wtime_);
    if ((t >> kL0Shift) <= (w >> kL0Shift)) {
      // At or before the active bucket (e.g. scheduling at the current
      // time): merge into its sorted, partially consumed remainder.
      insert_active(e);
      return;
    }
    const std::uint64_t x = t ^ w;
    if (x < (1ull << kL1Shift)) {
      ring_append(0, (t >> kL0Shift) & kWheelMask, e);
    } else if (x < (1ull << kFarShift)) {
      ring_append(1, (t >> kL1Shift) & kWheelMask, e);
    } else {
      far_push(e);
    }
  }

  void ring_append(int level, std::uint64_t bucket, const WheelEntry& e) {
    // hotlint:allow(hot-growth): buckets reserve kBucketReserve in the ctor
    rings_[level][bucket].push_back(e);
    occ_[level] |= 1ull << bucket;
  }

  std::vector<WheelEntry>& active_bucket() {
    return rings_[0][(static_cast<std::uint64_t>(wtime_) >> kL0Shift) &
                     kWheelMask];
  }

  // Ordered insert into the active bucket's unconsumed tail. Rare (only
  // events landing at or before the cursor's own bucket) and cheap: buckets
  // hold a handful of entries.
  void insert_active(const WheelEntry& e) {
    std::vector<WheelEntry>& v = active_bucket();
    std::size_t lo = pos_;
    std::size_t hi = v.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (v[mid].key < e.key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    // hotlint:allow(hot-growth): allocates only past the ctor's reservation
    v.insert(v.begin() + static_cast<std::ptrdiff_t>(lo), e);
  }

  // Earliest live pending entry (tombstones skipped), or nullptr when the
  // queue holds no live events. The fast path — a live head in the active
  // bucket — stays inline; bucket advance/cascade/far drain is out of line.
  WheelEntry* front_entry() {
    std::vector<WheelEntry>& v = active_bucket();
    while (pos_ < v.size()) {
      WheelEntry& e = v[pos_];
      if (slot_ref(e.slot).gen == e.gen) return &e;
      ++pos_;  // cancelled while queued: tombstone
    }
    return advance_cursor();
  }

  WheelEntry* advance_cursor();            // walks buckets/levels/far heap
  void cascade(std::vector<WheelEntry>& bucket);  // re-files one level down

  // Far-horizon overflow: a 4-ary min-heap in parallel (keys, payload)
  // arrays. Pops use a branchless min-of-4 tournament over the four
  // adjacent children; payload packs (slot << 32 | gen).
  void far_push(const WheelEntry& e) {
    std::size_t i = far_keys_.size();
    // hotlint:allow(hot-growth): far_keys_ reserves kFarReserve in the ctor
    far_keys_.emplace_back();  // hole; filled on the way down
    // hotlint:allow(hot-growth): far_payload_ reserves kFarReserve in the ctor
    far_payload_.emplace_back();
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (far_keys_[parent] < e.key) break;
      far_keys_[i] = far_keys_[parent];
      far_payload_[i] = far_payload_[parent];
      i = parent;
    }
    far_keys_[i] = e.key;
    far_payload_[i] =
        static_cast<std::uint64_t>(e.slot) << 32 | e.gen;
  }
  WheelEntry far_pop();

  // Rebuilds the far heap without its tombstones; see cancel() for the
  // trigger policy. Keeps the (time, seq) pop order bit-identical.
  void compact_far();

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(slot) + 1) << 32 | gen;
  }
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>((id >> 32) - 1);
  }
  static std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }

  Slot& slot_ref(std::uint32_t index) {
    return chunks_[index / kSlotsPerChunk][index % kSlotsPerChunk];
  }
  const Slot& slot_ref(std::uint32_t index) const {
    return chunks_[index / kSlotsPerChunk][index % kSlotsPerChunk];
  }

  // The pool operations sit in the header so push()/fire_next() inline them;
  // out-of-line they cost a call per event on the hottest loop in the tree.
  std::uint32_t alloc_slot() {
    if (free_head_ != kNullSlot) {
      const std::uint32_t index = free_head_;
      Slot& s = slot_ref(index);
      free_head_ = s.next_free;
      s.next_free = kNullSlot;
      return index;
    }
    return alloc_slot_slow();
  }
  std::uint32_t alloc_slot_slow();  // grows the slab by one chunk

  void retire_handle(Slot& s) {
    // Bumping the generation kills every outstanding handle and heap entry
    // for this slot's previous occupancy. kMaxGen itself is never issued
    // (the slot is parked in recycle_slot), so a matching generation always
    // means a live event.
    INBAND_ASSERT(s.gen < kMaxGen);
    ++s.gen;
  }

  void recycle_slot(std::uint32_t index, Slot& s) {
    if (s.gen == kMaxGen) {
      // Generation counter exhausted: park the slot forever instead of
      // letting a stale handle from 2^32 occupancies ago alias a fresh
      // event.
      ++retired_slots_;
      return;
    }
    s.next_free = free_head_;
    free_head_ = index;
  }

  // Pending set (see file comment): three 64-bucket rings over the near
  // future plus the far-horizon heap. wtime_ is the start of the active
  // level-0 bucket; pos_ is how much of that (sorted) bucket has popped.
  std::vector<WheelEntry> rings_[kWheelLevels][kWheelSlots];
  std::uint64_t occ_[kWheelLevels] = {0, 0};  // nonempty-bucket bitmaps
  std::vector<Key> far_keys_;
  std::vector<std::uint64_t> far_payload_;
  SimTime wtime_ = 0;
  std::size_t pos_ = 0;

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;     // slots ever handed out (chunk frontier)
  std::uint32_t free_head_ = kNullSlot;
  // Slot whose callback fire_next() is currently invoking in place: already
  // decommissioned (not live, handle dead) but still occupying its slot, so
  // an audit running inside the callback must expect one extra occupant.
  std::uint32_t firing_slot_ = kNullSlot;
  std::uint64_t retired_slots_ = 0;  // permanently parked by the gen guard
  std::uint64_t far_cancels_ = 0;    // cancels since the last far compaction
  std::uint64_t next_seq_ = 1;       // monotonic push counter (never reused)
  std::size_t live_ = 0;
  SimTime last_popped_ = kNoTime;
};

}  // namespace inband
