// Cancellable discrete-event queue.
//
// Events at equal timestamps pop in insertion (FIFO) order — a property the
// TCP and LB models rely on for determinism. Cancellation is O(1): the
// handler slot is erased and the heap entry becomes a tombstone skipped at
// pop time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/time.h"

namespace inband {

class AuditScope;
class StateDigest;

// Opaque handle for cancellation. Id 0 is never issued.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  EventId push(SimTime t, std::function<void()> fn);

  // Returns true if the event existed and had not yet fired.
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  // Timestamp of the next live event; kNoTime when empty.
  SimTime next_time();

  // Pops and returns the next live event's handler (with its time). The
  // caller invokes it — the queue itself never runs user code.
  struct Popped {
    SimTime t;
    std::function<void()> fn;
  };
  Popped pop();

  std::uint64_t total_pushed() const { return next_id_ - 1; }

  // Timestamp of the most recently popped event; kNoTime before any pop.
  SimTime last_popped() const { return last_popped_; }

  // Invariant audit: handler/live bookkeeping agrees and the next live event
  // is not earlier than the last popped one (time monotonicity). Non-const
  // because inspecting the head may compact tombstones.
  void audit_invariants(AuditScope& scope);

  // Folds scheduling state into a determinism digest (handlers themselves
  // are not hashable; identical push/pop/cancel sequences are what make two
  // runs equal). Non-const for the same reason as audit_invariants.
  void digest_state(StateDigest& digest);

 private:
  struct HeapEntry {
    SimTime t;
    EventId id;
    // Later ids sort after earlier ones at equal t => FIFO among ties.
    bool operator>(const HeapEntry& o) const {
      return t != o.t ? t > o.t : id > o.id;
    }
  };

  void drop_dead_heads();

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
  SimTime last_popped_ = kNoTime;
};

}  // namespace inband
