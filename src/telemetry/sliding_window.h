// Sliding-window latency statistics.
//
// A ring of sub-histograms, each covering window/slices of time. record()
// rotates the ring forward as simulated time advances, so queries reflect
// only samples within the trailing window. Percentile queries merge the live
// slices into a scratch histogram (reused between calls, so queries do not
// allocate after the first).
#pragma once

#include <vector>

#include "telemetry/histogram.h"
#include "util/shard.h"
#include "util/time.h"

namespace inband {

INBAND_SHARD_LOCAL(owner)
class SlidingWindowHistogram {
 public:
  SlidingWindowHistogram(SimTime window, int slices = 8,
                         std::int64_t max_value = sec(16));

  void record(SimTime now, std::int64_t value);

  // Statistics over the trailing window ending at `now`. `now` must be
  // monotonically non-decreasing across all calls (record or query).
  std::int64_t percentile(SimTime now, double q);
  std::uint64_t count(SimTime now);
  double mean(SimTime now);

  SimTime window() const { return window_; }

  // The live slices merged into one histogram, valid until the next call on
  // this object (any mutation — record, reset, or another query — may
  // rewrite it). Lets callers take several statistics from one merge.
  const Histogram& merged(SimTime now);

  // Forgets all samples. The time anchor survives: `now` stays monotonic
  // across reset, and the next record lands in a well-defined slice.
  void reset();

 private:
  void advance_to(SimTime now);

  SimTime window_;
  SimTime slice_len_;
  std::vector<Histogram> slices_;
  Histogram scratch_;
  std::int64_t current_slice_ = 0;  // absolute slice index of ring head
  bool started_ = false;
};

}  // namespace inband
