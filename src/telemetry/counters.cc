#include "telemetry/counters.h"

#include <algorithm>

namespace inband {

std::uint64_t& CounterSet::get(std::string_view name) {
  for (auto& slot : slots_) {
    if (slot.name == name) return slot.value;
  }
  // hotlint:allow(hot-growth,hot-string): registration runs once per name
  slots_.push_back({std::string{name}, 0});
  return slots_.back().value;
}

std::uint64_t CounterSet::value(std::string_view name) const {
  for (const auto& slot : slots_) {
    if (slot.name == name) return slot.value;
  }
  return 0;
}

std::vector<CounterSet::Entry> CounterSet::snapshot() const {
  std::vector<Entry> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) out.push_back({slot.name, slot.value});
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return out;
}

void CounterSet::reset() {
  for (auto& slot : slots_) slot.value = 0;
}

}  // namespace inband
