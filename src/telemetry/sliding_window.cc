#include "telemetry/sliding_window.h"

#include "util/assert.h"

namespace inband {

SlidingWindowHistogram::SlidingWindowHistogram(SimTime window, int slices,
                                               std::int64_t max_value)
    : window_{window},
      slice_len_{window / slices},
      scratch_{max_value} {
  INBAND_ASSERT(window > 0);
  INBAND_ASSERT(slices > 0);
  INBAND_ASSERT(slice_len_ > 0, "window too short for slice count");
  slices_.reserve(static_cast<std::size_t>(slices));
  for (int i = 0; i < slices; ++i) slices_.emplace_back(max_value);
}

void SlidingWindowHistogram::advance_to(SimTime now) {
  const std::int64_t slice = now / slice_len_;
  if (!started_) {
    current_slice_ = slice;
    started_ = true;
    return;
  }
  INBAND_ASSERT(slice >= current_slice_, "time went backwards");
  const std::int64_t steps = slice - current_slice_;
  const auto n = static_cast<std::int64_t>(slices_.size());
  if (steps >= n) {
    for (auto& h : slices_) h.reset();
  } else {
    for (std::int64_t i = 1; i <= steps; ++i) {
      slices_[static_cast<std::size_t>((current_slice_ + i) % n)].reset();
    }
  }
  current_slice_ = slice;
}

void SlidingWindowHistogram::record(SimTime now, std::int64_t value) {
  advance_to(now);
  const auto n = static_cast<std::int64_t>(slices_.size());
  slices_[static_cast<std::size_t>(current_slice_ % n)].record(value);
}

const Histogram& SlidingWindowHistogram::merged(SimTime now) {
  advance_to(now);
  scratch_.reset();
  for (const auto& h : slices_) scratch_.merge(h);
  return scratch_;
}

std::int64_t SlidingWindowHistogram::percentile(SimTime now, double q) {
  return merged(now).percentile(q);
}

std::uint64_t SlidingWindowHistogram::count(SimTime now) {
  return merged(now).count();
}

double SlidingWindowHistogram::mean(SimTime now) { return merged(now).mean(); }

void SlidingWindowHistogram::reset() {
  for (auto& h : slices_) h.reset();
  // The merge scratch must go too: a caller holding the reference from a
  // pre-reset merged() would otherwise keep reading forgotten samples.
  scratch_.reset();
  // Deliberately keep started_/current_slice_. Un-anchoring here would let
  // the next record() re-anchor at an arbitrary earlier time — silently
  // accepting non-monotonic clocks and shifting the % n slice mapping.
}

}  // namespace inband
