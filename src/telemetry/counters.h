// Named monotonic counters.
//
// Components register counters by name in a CounterSet owned by the top-level
// rig; snapshots go into experiment reports. Lookup by name happens once at
// wiring time — the hot path increments through the returned reference.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "util/shard.h"

namespace inband {

INBAND_SHARD_LOCAL(owner)
class CounterSet {
 public:
  // Returns a stable reference; creating the same name twice returns the
  // same counter.
  std::uint64_t& get(std::string_view name);

  // Value of `name`, or 0 when absent.
  std::uint64_t value(std::string_view name) const;

  struct Entry {
    std::string name;
    std::uint64_t value;
  };
  // Sorted by name for deterministic output.
  std::vector<Entry> snapshot() const;

  void reset();

 private:
  struct Slot {
    std::string name;
    std::uint64_t value = 0;
  };
  // deque: stable element addresses as counters are added.
  std::deque<Slot> slots_;
};

}  // namespace inband
