// Exponentially weighted moving averages.
//
// Two flavours:
//  * Ewma        — classic per-sample EWMA with a fixed gain.
//  * DecayingEwma — time-aware EWMA whose weight on the old value decays
//    exponentially with the gap since the previous sample; robust when the
//    sampling rate itself varies (exactly the case for per-server latency
//    samples at the LB, whose arrival rate depends on traffic share).
#pragma once

#include <cmath>

#include "util/assert.h"
#include "util/shard.h"
#include "util/time.h"

namespace inband {

INBAND_SHARD_LOCAL(owner)
class Ewma {
 public:
  explicit Ewma(double gain = 0.125) : gain_{gain} {
    INBAND_ASSERT(gain > 0.0 && gain <= 1.0);
  }

  void record(double sample) {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
      return;
    }
    value_ += gain_ * (sample - value_);
  }

  bool initialized() const { return initialized_; }
  double value() const { return initialized_ ? value_ : 0.0; }

  void reset() {
    initialized_ = false;
    value_ = 0.0;
  }

 private:
  double gain_;
  double value_ = 0.0;
  bool initialized_ = false;
};

INBAND_SHARD_LOCAL(owner)
class DecayingEwma {
 public:
  // tau: time constant; a sample that arrives tau after the previous one
  // replaces ~63% of the old value.
  explicit DecayingEwma(SimTime tau) : tau_{tau} { INBAND_ASSERT(tau > 0); }

  void record(SimTime now, double sample) {
    if (!initialized_) {
      value_ = sample;
      last_ = now;
      initialized_ = true;
      return;
    }
    const SimTime dt = now >= last_ ? now - last_ : 0;
    const double keep =
        std::exp(-static_cast<double>(dt) / static_cast<double>(tau_));
    value_ = keep * value_ + (1.0 - keep) * sample;
    last_ = now;
  }

  bool initialized() const { return initialized_; }
  double value() const { return initialized_ ? value_ : 0.0; }
  SimTime last_sample_time() const { return initialized_ ? last_ : kNoTime; }

  void reset() {
    initialized_ = false;
    value_ = 0.0;
    last_ = kNoTime;
  }

 private:
  SimTime tau_;
  double value_ = 0.0;
  SimTime last_ = kNoTime;
  bool initialized_ = false;
};

}  // namespace inband
