// Log-linear latency histogram (HdrHistogram-flavoured).
//
// Values are recorded into buckets that are exact up to 2^kSubBucketBits and
// thereafter keep kSubBucketBits bits of relative precision (<= ~1.6% error
// with the default 6 bits) across the whole int64 range. Recording is O(1),
// allocation-free after construction, and percentile queries interpolate at
// the bucket midpoint. This is the workhorse for every latency series in the
// benches, and for the per-server sliding windows the controller reads.
#pragma once

#include <cstdint>
#include <vector>

#include "util/shard.h"
#include "util/time.h"

namespace inband {

INBAND_SHARD_LOCAL(owner)
class Histogram {
 public:
  static constexpr int kSubBucketBits = 6;
  static constexpr std::int64_t kSubBucketCount = 1LL << kSubBucketBits;

  // max_value bounds the recordable range; larger values are clamped and
  // counted in `clamped()`. The default covers 0ns .. ~17.6s.
  explicit Histogram(std::int64_t max_value = sec(16));

  void record(std::int64_t value) { record_n(value, 1); }
  void record_n(std::int64_t value, std::uint64_t count);

  std::uint64_t count() const { return total_; }
  std::uint64_t clamped() const { return clamped_; }
  bool empty() const { return total_ == 0; }

  std::int64_t min() const;
  std::int64_t max() const;
  double mean() const;

  // q in [0, 1]. Returns 0 on an empty histogram.
  std::int64_t percentile(double q) const;

  // Adds all samples of `other` (which must have the same max_value).
  void merge(const Histogram& other);

  void reset();

  std::int64_t max_value() const { return max_value_; }
  std::size_t bucket_count() const { return counts_.size(); }

  // Exposed for tests: the index a value maps to and that bucket's bounds.
  std::size_t index_for(std::int64_t value) const;
  std::int64_t bucket_low(std::size_t index) const;
  std::int64_t bucket_high(std::size_t index) const;  // exclusive

 private:
  std::int64_t midpoint(std::size_t index) const;

  std::int64_t max_value_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t clamped_ = 0;
  std::int64_t observed_min_ = 0;
  std::int64_t observed_max_ = 0;
  double sum_ = 0.0;
};

}  // namespace inband
