// Time-series collection for experiment output.
//
// TimeSeries stores raw (t, value) points; bucketize() aggregates them into
// fixed-width time buckets with a chosen statistic. The Fig. 3 bench, for
// example, records every GET latency and renders a p95-per-second series the
// same way the paper's plot does.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/shard.h"
#include "util/time.h"

namespace inband {

enum class Agg { kMean, kMin, kMax, kCount, kP50, kP90, kP95, kP99 };

const char* agg_name(Agg agg);

struct TimePoint {
  SimTime t;
  double value;
};

struct BucketRow {
  SimTime bucket_start;
  double value;
  std::uint64_t count;
};

INBAND_SHARD_LOCAL(owner)
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::size_t reserve) { points_.reserve(reserve); }

  void add(SimTime t, double value) { points_.push_back({t, value}); }

  const std::vector<TimePoint>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  // Aggregates into buckets of `width` starting at t=0. Empty buckets within
  // the data span are emitted with count 0 (value NaN), so plots show gaps
  // honestly. Points need not be time-ordered.
  std::vector<BucketRow> bucketize(SimTime width, Agg agg) const;

 private:
  std::vector<TimePoint> points_;
};

// Percentile over an arbitrary vector (exact, by sorting a copy). Handy for
// small sample sets where a histogram would be overkill. q in [0,1].
double exact_percentile(std::vector<double> values, double q);

}  // namespace inband
