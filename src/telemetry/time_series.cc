#include "telemetry/time_series.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/assert.h"

namespace inband {

const char* agg_name(Agg agg) {
  switch (agg) {
    case Agg::kMean:
      return "mean";
    case Agg::kMin:
      return "min";
    case Agg::kMax:
      return "max";
    case Agg::kCount:
      return "count";
    case Agg::kP50:
      return "p50";
    case Agg::kP90:
      return "p90";
    case Agg::kP95:
      return "p95";
    case Agg::kP99:
      return "p99";
  }
  return "?";
}

double exact_percentile(std::vector<double> values, double q) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  // Nearest-rank with linear interpolation between adjacent order statistics.
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

std::vector<BucketRow> TimeSeries::bucketize(SimTime width, Agg agg) const {
  INBAND_ASSERT(width > 0);
  std::vector<BucketRow> out;
  if (points_.empty()) return out;

  std::map<std::int64_t, std::vector<double>> buckets;
  for (const auto& p : points_) {
    INBAND_ASSERT(p.t >= 0, "negative timestamps unsupported");
    buckets[p.t / width].push_back(p.value);
  }

  const std::int64_t first = buckets.begin()->first;
  const std::int64_t last = buckets.rbegin()->first;
  out.reserve(static_cast<std::size_t>(last - first + 1));
  for (std::int64_t b = first; b <= last; ++b) {
    const auto it = buckets.find(b);
    BucketRow row{b * width, std::numeric_limits<double>::quiet_NaN(), 0};
    if (it != buckets.end() && !it->second.empty()) {
      auto& vals = it->second;
      row.count = vals.size();
      switch (agg) {
        case Agg::kMean: {
          double sum = 0.0;
          for (double v : vals) sum += v;
          row.value = sum / static_cast<double>(vals.size());
          break;
        }
        case Agg::kMin:
          row.value = *std::min_element(vals.begin(), vals.end());
          break;
        case Agg::kMax:
          row.value = *std::max_element(vals.begin(), vals.end());
          break;
        case Agg::kCount:
          row.value = static_cast<double>(vals.size());
          break;
        case Agg::kP50:
          row.value = exact_percentile(vals, 0.50);
          break;
        case Agg::kP90:
          row.value = exact_percentile(vals, 0.90);
          break;
        case Agg::kP95:
          row.value = exact_percentile(vals, 0.95);
          break;
        case Agg::kP99:
          row.value = exact_percentile(vals, 0.99);
          break;
      }
    }
    out.push_back(row);
  }
  return out;
}

}  // namespace inband
