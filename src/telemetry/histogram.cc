#include "telemetry/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/assert.h"

namespace inband {

namespace {

// Number of leading buckets (each kSubBucketCount wide) needed to cover
// values up to max_value with the log-linear scheme.
std::size_t buckets_needed(std::int64_t max_value) {
  std::size_t n = Histogram::kSubBucketCount * 2;  // covers [0, 2*64)
  std::int64_t top = Histogram::kSubBucketCount * 2 - 1;
  while (top < max_value) {
    top = top * 2 + 1;
    n += Histogram::kSubBucketCount;
  }
  return n;
}

}  // namespace

Histogram::Histogram(std::int64_t max_value) : max_value_{max_value} {
  INBAND_ASSERT(max_value >= kSubBucketCount, "max_value too small");
  counts_.assign(buckets_needed(max_value), 0);
}

std::size_t Histogram::index_for(std::int64_t value) const {
  INBAND_DCHECK(value >= 0);
  const auto v = static_cast<std::uint64_t>(value);
  if (v < 2 * kSubBucketCount) return static_cast<std::size_t>(v);
  // Highest set bit of v; v >= 128 here so width >= 8.
  const int msb = static_cast<int>(std::bit_width(v)) - 1;
  const int shift = msb - kSubBucketBits;
  const auto sub = static_cast<std::size_t>((v >> shift) & (kSubBucketCount - 1));
  // Bucket group g = msb - kSubBucketBits starts at index (g+1)*64.
  return (static_cast<std::size_t>(shift) + 1) * kSubBucketCount + sub;
}

std::int64_t Histogram::bucket_low(std::size_t index) const {
  if (index < 2 * kSubBucketCount) return static_cast<std::int64_t>(index);
  const std::size_t group = index / kSubBucketCount - 1;
  const std::size_t sub = index % kSubBucketCount;
  return static_cast<std::int64_t>((kSubBucketCount + sub) << group);
}

std::int64_t Histogram::bucket_high(std::size_t index) const {
  if (index < 2 * kSubBucketCount) return static_cast<std::int64_t>(index) + 1;
  const std::size_t group = index / kSubBucketCount - 1;
  return bucket_low(index) + (1LL << group);
}

std::int64_t Histogram::midpoint(std::size_t index) const {
  return bucket_low(index) + (bucket_high(index) - bucket_low(index) - 1) / 2;
}

void Histogram::record_n(std::int64_t value, std::uint64_t count) {
  if (value < 0) value = 0;
  if (value > max_value_) {
    value = max_value_;
    clamped_ += count;
  }
  const std::size_t idx = index_for(value);
  INBAND_DCHECK(idx < counts_.size());
  counts_[idx] += count;
  if (total_ == 0) {
    observed_min_ = observed_max_ = value;
  } else {
    observed_min_ = std::min(observed_min_, value);
    observed_max_ = std::max(observed_max_, value);
  }
  total_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

std::int64_t Histogram::min() const { return total_ == 0 ? 0 : observed_min_; }
std::int64_t Histogram::max() const { return total_ == 0 ? 0 : observed_max_; }

double Histogram::mean() const {
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

std::int64_t Histogram::percentile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest rank covering fraction q of the samples, so
  // q just below 1 already lands on the maximum (important for tail stats).
  auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  target = std::clamp<std::uint64_t>(target, 1, total_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) {
      return std::clamp(midpoint(i), observed_min_, observed_max_);
    }
  }
  return observed_max_;
}

void Histogram::merge(const Histogram& other) {
  INBAND_ASSERT(other.counts_.size() == counts_.size(),
                "merging histograms with different ranges");
  if (other.total_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (total_ == 0) {
    observed_min_ = other.observed_min_;
    observed_max_ = other.observed_max_;
  } else {
    observed_min_ = std::min(observed_min_, other.observed_min_);
    observed_max_ = std::max(observed_max_, other.observed_max_);
  }
  total_ += other.total_;
  clamped_ += other.clamped_;
  sum_ += other.sum_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  clamped_ = 0;
  observed_min_ = observed_max_ = 0;
  sum_ = 0.0;
}

}  // namespace inband
