// Fig. 2 rig: one backlogged flow-controlled TCP flow observed at an LB.
//
// Topology (direct server return — the receiver ACKs straight back to the
// sender, invisible to the LB):
//
//   sender ──► LB(VIP) ──► receiver
//     ▲                        │
//     └────────────────────────┘
//
// The sender keeps a fixed window permanently backlogged; mid-run an extra
// delay is injected on the LB→receiver link, stepping the true RTT up. The
// rig records (a) every packet-arrival timestamp the LB observes for the
// flow and (b) the sender's ground-truth RTT samples (T_client), so callers
// can replay the arrivals through any estimator configuration offline.
#pragma once

#include <memory>
#include <vector>

#include "app/bulk_flow.h"
#include "fault/fault_layer.h"
#include "lb/load_balancer.h"
#include "lb/policies.h"
#include "net/network.h"
#include "scenario/metrics.h"
#include "sim/simulator.h"
#include "util/shard.h"

namespace inband {

struct BackloggedRigConfig {
  // One-way propagation delays; base RTT ≈ sender→LB + LB→receiver +
  // receiver→sender (+ serialization).
  SimTime sender_lb_delay = us(50);
  SimTime lb_receiver_delay = us(50);
  SimTime receiver_sender_delay = us(100);
  std::uint64_t bandwidth_bps = 10'000'000'000;

  // Per-packet delay jitter (log-normal), modelling kernel/NIC scheduling
  // noise. Without it the simulated gaps are implausibly clean and *every*
  // timeout separates batches perfectly — the paper's Fig. 2(a) failure
  // modes only exist because real paths are noisy. The return (ACK) path
  // carries the larger share, spreading the client's transmissions within
  // a window.
  SimTime forward_jitter_median = us(2);
  double forward_jitter_sigma = 0.8;
  SimTime return_jitter_median = us(8);
  double return_jitter_sigma = 1.3;

  std::uint32_t window_segments = 16;  // the flow-control quota
  std::uint32_t mss = 1448;
  bool delayed_ack = false;
  SimTime delack_timeout = ms(40);
  bool pacing = false;
  std::uint64_t pacing_rate_bps = 500'000'000;

  SimTime duration = sec(6);
  SimTime step_time = sec(3);        // when the RTT steps up
  SimTime step_extra = us(1500);     // injected extra one-way delay
  std::uint64_t seed = 42;

  // Deterministic fault plan over the three links (sender→VIP is
  // kClientToLb, VIP→receiver is kLbToServer, receiver→sender is
  // kServerToClient, all index 0). Server faults are not supported on this
  // rig — there is no KvServer — and assert. Empty disables the layer.
  FaultPlan fault;
};

INBAND_SHARD_LOCAL(owner)
class BackloggedRig {
 public:
  explicit BackloggedRig(BackloggedRigConfig config = {});

  // Runs to completion (duration). Populates arrivals() and ground_truth().
  void run();

  // Packet-arrival timestamps of the flow at the LB, in order.
  const std::vector<SimTime>& arrivals() const { return arrivals_; }

  // Ground-truth RTT samples measured at the sender (T_client).
  const std::vector<Sample>& ground_truth() const { return ground_truth_; }

  Simulator& sim() { return sim_; }
  LoadBalancer& lb() { return *lb_; }
  const BackloggedRigConfig& config() const { return config_; }

  // The fault layer, or null when config.fault is empty.
  FaultLayer* fault() { return fault_.get(); }

 private:
  BackloggedRigConfig config_;
  Simulator sim_;
  Network net_;
  // Declared after net_ so it is destroyed first (it deregisters itself as
  // the network's send interceptor on destruction).
  std::unique_ptr<FaultLayer> fault_;
  std::unique_ptr<TcpHost> sender_host_;
  std::unique_ptr<TcpHost> receiver_host_;
  std::unique_ptr<LoadBalancer> lb_;
  std::unique_ptr<BulkSender> bulk_sender_;
  std::unique_ptr<BulkSink> bulk_sink_;
  std::vector<SimTime> arrivals_;
  std::vector<Sample> ground_truth_;
};

// Decorates a policy with a per-packet observation callback; used by rigs to
// tap the LB's vantage without changing routing.
INBAND_SHARD_LOCAL(lb)
class TapPolicy final : public RoutingPolicy {
 public:
  using Tap = std::function<void(const Packet&, BackendId, SimTime)>;

  TapPolicy(std::unique_ptr<RoutingPolicy> inner, Tap tap)
      : inner_{std::move(inner)}, tap_{std::move(tap)} {}

  std::string name() const override { return "tap+" + inner_->name(); }
  BackendId pick(const FlowKey& flow, SimTime now) override {
    return inner_->pick(flow, now);
  }
  void on_packet(const Packet& pkt, BackendId backend, SimTime now,
                 bool new_flow) override {
    inner_->on_packet(pkt, backend, now, new_flow);
    if (tap_) tap_(pkt, backend, now);
  }
  void on_flow_closed(const FlowKey& flow, BackendId backend,
                      SimTime now) override {
    inner_->on_flow_closed(flow, backend, now);
  }

 private:
  std::unique_ptr<RoutingPolicy> inner_;
  Tap tap_;
};

}  // namespace inband
