#include "scenario/cluster_rig.h"

#include "check/state_digest.h"
#include "fault/server_faults.h"
#include "util/assert.h"
#include "util/logging.h"

namespace inband {

// Address helpers (rig_client_addr & co.) live in cluster_rig.h so the
// sharded rig can route into another shard's plan.

const char* lb_mode_name(LbMode mode) {
  switch (mode) {
    case LbMode::kStaticMaglev:
      return "maglev-static";
    case LbMode::kInband:
      return "inband-latency-aware";
    case LbMode::kRoundRobin:
      return "round-robin";
    case LbMode::kLeastConn:
      return "least-conn";
    case LbMode::kWeightedRandom:
      return "weighted-random";
  }
  return "?";
}

ClusterRig::ClusterRig(ClusterRigConfig config)
    : config_{std::move(config)}, net_{sim_} {
  INBAND_ASSERT(config_.num_servers >= 1);
  INBAND_ASSERT(config_.num_lbs >= 1);
  INBAND_ASSERT(config_.num_client_hosts >= 1);
  INBAND_ASSERT(config_.victim < config_.num_servers);
  INBAND_ASSERT(config_.addr_base >= 0 && config_.addr_base <= 62,
                "addr_base out of the 10.(4*base+k).0.x plan");
  const int base = config_.addr_base;

  // Servers.
  BackendPool pool;
  for (int s = 0; s < config_.num_servers; ++s) {
    auto host = std::make_unique<TcpHost>(sim_, net_, rig_server_addr(base, s),
                                          "server" + std::to_string(s),
                                          config_.tcp, config_.seed + 100 +
                                              static_cast<std::uint64_t>(s));
    KvServerConfig sc = config_.server;
    sc.seed = config_.seed + 200 + static_cast<std::uint64_t>(s);
    servers_.push_back(std::make_unique<KvServer>(*host, sc));
    pool.push_back({static_cast<BackendId>(s), "server" + std::to_string(s),
                    rig_server_addr(base, s), 1, true});
    server_hosts_.push_back(std::move(host));
  }

  // Load balancers.
  for (int l = 0; l < config_.num_lbs; ++l) {
    auto policy = make_policy(pool, l);
    auto* inband = dynamic_cast<InbandLbPolicy*>(policy.get());
    inband_policies_.push_back(inband);
    lbs_.push_back(std::make_unique<LoadBalancer>(
        sim_, net_, rig_vip_addr(base, l), "lb" + std::to_string(l), pool,
        std::move(policy)));
    for (int s = 0; s < config_.num_servers; ++s) {
      net_.add_link(rig_vip_addr(base, l), rig_server_addr(base, s),
                    {config_.bandwidth_bps, config_.lb_server_delay, 0});
    }
  }

  // Clients (assigned to LBs round-robin when there are several).
  for (int c = 0; c < config_.num_client_hosts; ++c) {
    auto host = std::make_unique<TcpHost>(sim_, net_, rig_client_addr(base, c),
                                          "client" + std::to_string(c),
                                          config_.tcp,
                                          config_.seed + 300 +
                                              static_cast<std::uint64_t>(c));
    const int lb_index = c % config_.num_lbs;
    const SimTime extra =
        static_cast<std::size_t>(c) < config_.client_extra_distance.size()
            ? config_.client_extra_distance[static_cast<std::size_t>(c)]
            : 0;
    net_.add_link(rig_client_addr(base, c), rig_vip_addr(base, lb_index),
                  {config_.bandwidth_bps, config_.client_lb_delay + extra, 0});
    for (int s = 0; s < config_.num_servers; ++s) {
      net_.add_link(
          rig_server_addr(base, s), rig_client_addr(base, c),
          {config_.bandwidth_bps, config_.server_client_delay + extra, 0});
    }
    KvClientConfig cc = config_.client;
    cc.server = Endpoint{rig_vip_addr(base, lb_index), config_.server.port};
    cc.seed = config_.seed + 400 + static_cast<std::uint64_t>(c);
    auto client = std::make_unique<KvClient>(*host, cc);
    client->set_recorder(
        [this](const RequestRecord& rec) { records_.push_back(rec); });
    clients_.push_back(std::move(client));
    client_hosts_.push_back(std::move(host));
  }

  // Fault layer over the full directed topology (client→VIP links indexed by
  // client, VIP→server and server→client links indexed by server).
  if (config_.fault.enabled()) {
    std::vector<FaultLayer::LinkRef> topo;
    for (int c = 0; c < config_.num_client_hosts; ++c) {
      topo.push_back({rig_client_addr(base, c),
                      rig_vip_addr(base, c % config_.num_lbs),
                      LinkScope::kClientToLb, c});
    }
    for (int l = 0; l < config_.num_lbs; ++l) {
      for (int s = 0; s < config_.num_servers; ++s) {
        topo.push_back({rig_vip_addr(base, l), rig_server_addr(base, s),
                        LinkScope::kLbToServer, s});
      }
    }
    for (int s = 0; s < config_.num_servers; ++s) {
      for (int c = 0; c < config_.num_client_hosts; ++c) {
        topo.push_back({rig_server_addr(base, s), rig_client_addr(base, c),
                        LinkScope::kServerToClient, s});
      }
    }
    fault_ = std::make_unique<FaultLayer>(sim_, net_, config_.fault,
                                          std::move(topo));
    std::vector<KvServer*> raw_servers;
    raw_servers.reserve(servers_.size());
    for (auto& s : servers_) raw_servers.push_back(s.get());
    apply_server_faults(config_.fault, sim_, *fault_, raw_servers);
  }

  if (config_.share_sample_interval > 0 && inband_policies_[0] != nullptr) {
    share_sampler_ = std::make_unique<PeriodicTask>(
        sim_, config_.share_sample_interval, [this](SimTime now) {
          share_history_.push_back(
              {now, inband_policies_[0]->table().shares()});
        });
  }

  // Audit hooks for every stateful subsystem. Registration is unconditional
  // (cheap, and lets tests run audits on demand in any build); the periodic
  // audit event in run() is what kAuditsEnabled gates.
  auditor_.register_hook("sim",
                         [this](AuditScope& s) { sim_.audit_invariants(s); });
  if (fault_) {
    auditor_.register_hook(
        "fault", [this](AuditScope& s) { fault_->audit_invariants(s); });
  }
  for (int l = 0; l < config_.num_lbs; ++l) {
    auditor_.register_hook(
        "lb" + std::to_string(l), [this, l](AuditScope& s) {
          lbs_[static_cast<std::size_t>(l)]->audit_invariants(s);
        });
  }
  for (int s = 0; s < config_.num_servers; ++s) {
    auditor_.register_hook(
        "server" + std::to_string(s) + "/tcp", [this, s](AuditScope& scope) {
          server_hosts_[static_cast<std::size_t>(s)]->stack().audit_invariants(
              scope);
        });
  }
  for (int c = 0; c < config_.num_client_hosts; ++c) {
    auditor_.register_hook(
        "client" + std::to_string(c) + "/tcp", [this, c](AuditScope& scope) {
          client_hosts_[static_cast<std::size_t>(c)]->stack().audit_invariants(
              scope);
        });
  }
}

ClusterRig::~ClusterRig() = default;

std::unique_ptr<RoutingPolicy> ClusterRig::make_policy(
    const BackendPool& pool, int lb_index) {
  switch (config_.mode) {
    case LbMode::kStaticMaglev:
      return std::make_unique<StaticMaglevPolicy>(pool,
                                                  config_.maglev_table_size);
    case LbMode::kInband: {
      InbandPolicyConfig ic = config_.inband;
      ic.maglev_table_size = config_.maglev_table_size;
      return std::make_unique<InbandLbPolicy>(pool, ic);
    }
    case LbMode::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>(pool);
    case LbMode::kLeastConn:
      return std::make_unique<LeastConnPolicy>(pool);
    case LbMode::kWeightedRandom:
      return std::make_unique<WeightedRandomPolicy>(
          pool, config_.seed + 500 + static_cast<std::uint64_t>(lb_index));
  }
  return std::make_unique<StaticMaglevPolicy>(pool,
                                              config_.maglev_table_size);
}

void ClusterRig::run() {
  start();
  run_until(config_.duration);
  finish();
}

void ClusterRig::start() {
  INBAND_ASSERT(!started_, "ClusterRig::start() called twice");
  started_ = true;
  if (config_.install_log_clock) log_guard_.emplace(sim_);
  if (config_.reserve_records > 0) records_.reserve(config_.reserve_records);

  if (config_.inject_time < config_.duration && config_.inject_extra > 0) {
    sim_.schedule_at(config_.inject_time, [this] {
      const int base = config_.addr_base;
      for (int l = 0; l < config_.num_lbs; ++l) {
        net_.link(rig_vip_addr(base, l),
                  rig_server_addr(base, config_.victim))
            .set_extra_delay(config_.inject_extra);
      }
      LOG_INFO() << "injected " << format_duration(config_.inject_extra)
                 << " on LB->server" << config_.victim << " paths";
    });
  }

  if (share_sampler_) share_sampler_->start(config_.share_sample_interval);
  if (kAuditsEnabled && config_.audit_interval > 0) {
    audit_task_ = std::make_unique<PeriodicTask>(
        sim_, config_.audit_interval,
        [this](SimTime now) { auditor_.run_all(now); });
    audit_task_->start(config_.audit_interval);
  }
  for (auto& c : clients_) c->start();
}

void ClusterRig::run_until(SimTime t) {
  INBAND_ASSERT(started_, "ClusterRig::run_until() before start()");
  sim_.run_until(t);
}

void ClusterRig::finish() {
  INBAND_ASSERT(started_, "ClusterRig::finish() before start()");
  for (auto& c : clients_) c->stop();
  if (audit_task_) {
    audit_task_->cancel();
    auditor_.run_all(sim_.now());  // final full audit at end of run
  }
  log_guard_.reset();
}

std::vector<Sample> ClusterRig::get_latency_samples() const {
  std::vector<Sample> out;
  out.reserve(records_.size() / 2 + 1);
  for (const auto& r : records_) {
    if (r.op == KvOp::kGet) out.push_back({r.sent_at, r.latency});
  }
  return out;
}

InbandLbPolicy* ClusterRig::inband_policy(int i) {
  return inband_policies_[static_cast<std::size_t>(i)];
}

std::size_t ClusterRig::run_full_audit() {
  return auditor_.run_all(sim_.now());
}

std::uint64_t ClusterRig::state_digest() {
  StateDigest d;
  sim_.digest_state(d);
  if (fault_) fault_->digest_state(d);
  for (auto& lb : lbs_) lb->digest_state(d);
  for (auto& h : server_hosts_) h->stack().digest_state(d);
  for (auto& h : client_hosts_) h->stack().digest_state(d);
  d.mix(records_.size());
  for (const auto& r : records_) {
    d.mix_i64(r.sent_at);
    d.mix_i64(r.latency);
    d.mix_u32(static_cast<std::uint32_t>(r.op));
    d.mix_bool(r.hit);
    d.mix_u32(static_cast<std::uint32_t>(r.conn_index));
    d.mix(hash_flow(r.flow));
  }
  d.mix(share_history_.size());
  for (const auto& snap : share_history_) {
    d.mix_i64(snap.t);
    for (const double v : snap.shares) d.mix_double(v);
  }
  return d.value();
}

}  // namespace inband
