#include "scenario/backlogged_rig.h"

#include "util/assert.h"

namespace inband {

namespace {
constexpr Ipv4 kSenderAddr = make_ipv4(10, 0, 0, 1);
constexpr Ipv4 kVip = make_ipv4(10, 1, 0, 1);
constexpr Ipv4 kReceiverAddr = make_ipv4(10, 2, 0, 1);
constexpr std::uint16_t kSinkPort = 9000;
}  // namespace

BackloggedRig::BackloggedRig(BackloggedRigConfig config)
    : config_{config}, net_{sim_} {
  TcpConfig tcp;
  tcp.mss = config_.mss;
  tcp.cwnd_bytes = config_.window_segments * config_.mss;
  tcp.delayed_ack = config_.delayed_ack;
  tcp.delack_timeout = config_.delack_timeout;
  tcp.pacing = config_.pacing;
  tcp.pacing_rate_bps = config_.pacing_rate_bps;

  sender_host_ = std::make_unique<TcpHost>(sim_, net_, kSenderAddr, "sender",
                                           tcp, config_.seed);
  // The receiver shares the TCP options: delayed ACKs in particular matter
  // at the receiver, whose ACK policy shapes the sender's triggered
  // transmissions.
  receiver_host_ = std::make_unique<TcpHost>(sim_, net_, kReceiverAddr,
                                             "receiver", tcp,
                                             config_.seed + 1);

  LinkParams up{config_.bandwidth_bps, config_.sender_lb_delay, 0,
                config_.forward_jitter_median, config_.forward_jitter_sigma,
                config_.seed ^ 0xf01};
  LinkParams mid{config_.bandwidth_bps, config_.lb_receiver_delay, 0,
                 config_.forward_jitter_median, config_.forward_jitter_sigma,
                 config_.seed ^ 0xf02};
  LinkParams back{config_.bandwidth_bps, config_.receiver_sender_delay, 0,
                  config_.return_jitter_median, config_.return_jitter_sigma,
                  config_.seed ^ 0xf03};
  net_.add_link(kSenderAddr, kVip, up);
  net_.add_link(kVip, kReceiverAddr, mid);
  net_.add_link(kReceiverAddr, kSenderAddr, back);

  BackendPool pool{{0, "receiver", kReceiverAddr, 1, true}};
  auto base_policy =
      std::make_unique<StaticMaglevPolicy>(pool, /*table_size=*/251);
  auto tapped = std::make_unique<TapPolicy>(
      std::move(base_policy),
      [this](const Packet& pkt, BackendId, SimTime now) {
        (void)pkt;
        arrivals_.push_back(now);
      });
  lb_ = std::make_unique<LoadBalancer>(sim_, net_, kVip, "lb", pool,
                                       std::move(tapped));

  if (config_.fault.enabled()) {
    INBAND_ASSERT(config_.fault.servers.empty(),
                  "backlogged rig has no KvServers for server faults");
    fault_ = std::make_unique<FaultLayer>(
        sim_, net_, config_.fault,
        std::vector<FaultLayer::LinkRef>{
            {kSenderAddr, kVip, LinkScope::kClientToLb, 0},
            {kVip, kReceiverAddr, LinkScope::kLbToServer, 0},
            {kReceiverAddr, kSenderAddr, LinkScope::kServerToClient, 0}});
  }

  bulk_sink_ = std::make_unique<BulkSink>(*receiver_host_, kSinkPort);
  bulk_sender_ = std::make_unique<BulkSender>(
      *sender_host_, Endpoint{kVip, kSinkPort}, tcp);
  bulk_sender_->set_rtt_recorder([this](SimTime now, SimTime rtt) {
    ground_truth_.push_back({now, rtt});
  });
}

void BackloggedRig::run() {
  if (config_.step_time < config_.duration && config_.step_extra > 0) {
    sim_.schedule_at(config_.step_time, [this] {
      net_.link(kVip, kReceiverAddr).set_extra_delay(config_.step_extra);
    });
  }
  bulk_sender_->start();
  sim_.run_until(config_.duration);
}

}  // namespace inband
