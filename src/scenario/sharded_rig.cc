#include "scenario/sharded_rig.h"

#include <algorithm>
#include <string>
#include <utility>

#include "check/state_digest.h"
#include "util/assert.h"

namespace inband {

// One shard's conservative driver. ShardProgram toward the worker pool,
// RemoteEgress toward its own Network: packets sent over a missing link are
// routed onto the out-channel owning the destination address.
//
// The merge rule (the whole determinism story — sim/parallel.h): the shard
// repeatedly commits the *visible* item with the smallest
// (time, cross-before-local, channel-index) key, where the items are the
// local event queue's head and each in-channel's head, and a commit is
// allowed only when no in-channel could still produce an item that would
// sort before the candidate. Per-channel deliver times are monotone, so
// only a currently-empty channel can surprise us, and its lower_bound()
// (announced horizon) bounds any future arrival. The committed sequence is
// therefore a pure function of the inputs: how fast neighbors announce
// affects only when a commit happens, never which item commits next.
INBAND_SHARD_LOCAL(owner)
class ShardExecutor : public ShardProgram, public RemoteEgress {
 public:
  ShardExecutor(ClusterRig& rig, SimTime end, std::vector<ShardChannel*> in,
                std::vector<std::pair<Ipv4, ShardChannel*>> out_routes)
      : rig_{rig}, end_{end}, in_{std::move(in)},
        out_routes_{std::move(out_routes)} {
    std::sort(out_routes_.begin(), out_routes_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [addr, ch] : out_routes_) {
      (void)addr;
      if (std::find(out_channels_.begin(), out_channels_.end(), ch) ==
          out_channels_.end()) {
        out_channels_.push_back(ch);
      }
    }
    rig_.net().set_remote_egress(this);
  }

  // --- RemoteEgress (called from inside rig_'s event handlers) ---

  bool forward(const Packet& pkt, Ipv4 from, Ipv4 to) override {
    if (teardown_) {
      // Post-run graceful-close traffic (FINs from stop()). The
      // single-threaded rig schedules these and never runs them; the
      // sharded rig swallows them at the boundary for the same effect.
      ++teardown_drops_;
      return true;
    }
    const auto it = std::lower_bound(
        out_routes_.begin(), out_routes_.end(), to,
        [](const auto& route, Ipv4 addr) { return route.first < addr; });
    if (it == out_routes_.end() || it->first != to) return false;
    it->second->push(rig_.sim().now(), from, to, pkt);
    ++egressed_;
    return true;
  }

  // --- ShardProgram ---

  bool advance() override {
    if (done_) return false;
    bool progress = false;
    for (;;) {
      // Visible candidate with the smallest (time, cross-before-local,
      // channel-index) key.
      const SimTime local_t = rig_.sim().next_event_time();
      int best_ch = -1;
      SimTime best_t = kNoTime;
      for (std::size_t i = 0; i < in_.size(); ++i) {
        const CrossPacket* head = in_[i]->peek();
        if (head == nullptr) continue;
        if (best_ch < 0 || head->deliver_at < best_t) {
          best_t = head->deliver_at;
          best_ch = static_cast<int>(i);
        }
      }
      const bool cross =
          best_ch >= 0 && (local_t == kNoTime || best_t <= local_t);
      const SimTime t = cross ? best_t : local_t;
      if (t == kNoTime || t > end_) break;

      // Commit gate. An unseen arrival on channel i lands at or after its
      // lower bound; at exactly t it preempts the candidate only if it
      // outranks it (cross beats local, lower channel index beats higher).
      bool safe = true;
      for (std::size_t i = 0; i < in_.size(); ++i) {
        const bool outranks = !cross || static_cast<int>(i) < best_ch;
        const SimTime lb = in_[i]->lower_bound();
        if (outranks ? lb <= t : lb < t) {
          safe = false;
          break;
        }
      }
      if (!safe) break;  // conservatively blocked; retry after neighbors move

      if (cross) {
        deliver(*in_[static_cast<std::size_t>(best_ch)]);
      } else {
        rig_.sim().step();
      }
      progress = true;
    }

    // Completion: provably nothing local or inbound at or before the end.
    const SimTime local_t = rig_.sim().next_event_time();
    bool can_finish = local_t == kNoTime || local_t > end_;
    for (ShardChannel* ch : in_) {
      can_finish = can_finish && ch->lower_bound() > end_;
    }
    if (can_finish) {
      rig_.sim().advance_to(end_);
      done_ = true;
      progress = true;
    }
    return progress;
  }

  void publish() override {
    const SimTime f = frontier();
    for (ShardChannel* ch : out_channels_) ch->announce(f);
  }

  bool done() const override { return done_; }

  void begin_teardown() { teardown_ = true; }

  std::uint64_t egressed() const { return egressed_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t teardown_drops() const { return teardown_drops_; }

 private:
  // Lower bound on anything this shard may still emit: it emits only while
  // committing an item, and every committable item is at or after both the
  // local queue head and every in-channel's lower bound.
  SimTime frontier() {
    if (done_) return kFrontierMax;
    const SimTime local_t = rig_.sim().next_event_time();
    SimTime f = local_t == kNoTime ? kFrontierMax : local_t;
    for (ShardChannel* ch : in_) f = std::min(f, ch->lower_bound());
    return std::min(f, kFrontierMax);
  }

  void deliver(ShardChannel& ch) {
    SimTime at = kNoTime;
    Ipv4 from = 0;
    Ipv4 to = 0;
    Packet pkt = ch.take_detached(&at, &from, &to);
    rig_.sim().advance_to(at);
    Host* dst = rig_.net().host_at(to);
    INBAND_ASSERT(dst != nullptr, "cross-shard packet for an unknown host");
    PacketRef ref = rig_.net().pool().acquire();
    *ref = std::move(pkt);
    PacketBatch batch;
    batch.push(std::move(ref));
    dst->handle_batch(std::move(batch));
    ++delivered_;
  }

  ClusterRig& rig_;
  const SimTime end_;
  std::vector<ShardChannel*> in_;
  std::vector<std::pair<Ipv4, ShardChannel*>> out_routes_;  // sorted by addr
  std::vector<ShardChannel*> out_channels_;                 // unique targets
  bool done_ = false;
  bool teardown_ = false;
  std::uint64_t egressed_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t teardown_drops_ = 0;
};

namespace {

// splitmix64 finalizer: decorrelates per-shard digests before the
// commutative fold so permuted shard state cannot cancel out.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void digest_records(StateDigest& d, const std::vector<RequestRecord>& recs) {
  d.mix(recs.size());
  for (const auto& r : recs) {
    d.mix_i64(r.sent_at);
    d.mix_i64(r.latency);
    d.mix_u32(static_cast<std::uint32_t>(r.op));
    d.mix_bool(r.hit);
    d.mix_u32(static_cast<std::uint32_t>(r.conn_index));
    d.mix(hash_flow(r.flow));
  }
}

}  // namespace

ShardedRig::ShardedRig(ShardedRigConfig config) : config_{std::move(config)} {
  const int S = config_.num_shards;
  INBAND_ASSERT(S >= 1);
  INBAND_ASSERT(config_.workers >= 1);
  INBAND_ASSERT(config_.remote_clients_per_shard >= 0);
  INBAND_ASSERT(config_.cross_latency > 0,
                "cross-shard lookahead must be positive (sim/parallel.h)");

  if (S > 1) {
    channels_.resize(static_cast<std::size_t>(2 * S));
    for (int s = 0; s < S; ++s) {
      channels_[static_cast<std::size_t>(2 * s)] = std::make_unique<
          ShardChannel>(static_cast<std::uint32_t>(2 * s),
                        config_.cross_latency);
      channels_[static_cast<std::size_t>(2 * s + 1)] = std::make_unique<
          ShardChannel>(static_cast<std::uint32_t>(2 * s + 1),
                        config_.cross_latency);
    }
  }

  shards_.resize(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) {
    ClusterRigConfig cfg = config_.shard;
    cfg.addr_base = s;
    cfg.seed = config_.shard.seed +
               config_.seed_stride * static_cast<std::uint64_t>(s);
    cfg.install_log_clock = false;
    Shard& sh = shards_[static_cast<std::size_t>(s)];
    sh.rig = std::make_unique<ClusterRig>(std::move(cfg));

    const ClusterRigConfig& scfg = sh.rig->config();
    for (int i = 0; i < config_.remote_clients_per_shard; ++i) {
      auto host = std::make_unique<TcpHost>(
          sh.rig->sim(), sh.rig->net(), rig_remote_client_addr(s, i),
          "rclient" + std::to_string(s) + "_" + std::to_string(i), scfg.tcp,
          scfg.seed + 600 + static_cast<std::uint64_t>(i));
      const int target = (s + 1) % S;
      const Ipv4 vip = rig_vip_addr(target, i % scfg.num_lbs);
      if (S == 1) {
        // Single shard: the "remote" path is ordinary local links with the
        // trunk's latency — same workload shape, no channels.
        sh.rig->net().add_link(host->addr(), vip,
                               {scfg.bandwidth_bps, config_.cross_latency, 0});
        for (int sv = 0; sv < scfg.num_servers; ++sv) {
          sh.rig->net().add_link(
              rig_server_addr(s, sv), host->addr(),
              {scfg.bandwidth_bps, config_.cross_latency, 0});
        }
      }
      KvClientConfig rc = config_.remote_client;
      rc.server = Endpoint{vip, scfg.server.port};
      rc.seed = scfg.seed + 700 + static_cast<std::uint64_t>(i);
      auto client = std::make_unique<KvClient>(*host, rc);
      // &sh.remote_records is stable: shards_ never grows after resize().
      client->set_recorder([recs = &sh.remote_records](
                               const RequestRecord& r) {
        recs->push_back(r);
      });
      sh.remote.push_back({std::move(host), std::move(client)});
    }
  }

  for (int s = 0; s < S; ++s) {
    std::vector<ShardChannel*> in;
    std::vector<std::pair<Ipv4, ShardChannel*>> routes;
    if (S > 1) {
      const int prev = (s + S - 1) % S;
      const int next = (s + 1) % S;
      // Fixed in-channel order = merge-rule priority: requests from the
      // previous shard first, responses from the next shard second.
      in.push_back(channels_[static_cast<std::size_t>(2 * prev)].get());
      in.push_back(channels_[static_cast<std::size_t>(2 * next + 1)].get());
      for (int l = 0; l < config_.shard.num_lbs; ++l) {
        routes.emplace_back(rig_vip_addr(next, l),
                            channels_[static_cast<std::size_t>(2 * s)].get());
      }
      for (int i = 0; i < config_.remote_clients_per_shard; ++i) {
        routes.emplace_back(
            rig_remote_client_addr(prev, i),
            channels_[static_cast<std::size_t>(2 * s + 1)].get());
      }
    }
    shards_[static_cast<std::size_t>(s)].exec = std::make_unique<
        ShardExecutor>(*shards_[static_cast<std::size_t>(s)].rig,
                       config_.shard.duration, std::move(in),
                       std::move(routes));
  }
}

ShardedRig::~ShardedRig() = default;

KvClient& ShardedRig::remote_client(int s, int i) {
  return *shards_[static_cast<std::size_t>(s)]
              .remote[static_cast<std::size_t>(i)]
              .client;
}

void ShardedRig::run() {
  INBAND_ASSERT(!ran_, "ShardedRig::run() called twice");
  ran_ = true;
  for (Shard& sh : shards_) {
    sh.rig->start();
    for (Shard::Remote& r : sh.remote) r.client->start();
  }
  std::vector<ShardProgram*> programs;
  programs.reserve(shards_.size());
  for (Shard& sh : shards_) programs.push_back(sh.exec.get());
  run_shard_programs(programs, config_.workers, config_.sched_seed);
  for (Shard& sh : shards_) {
    sh.exec->begin_teardown();
    for (Shard::Remote& r : sh.remote) r.client->stop();
    sh.rig->finish();
  }
}

std::uint64_t ShardedRig::shard_digest(int s) {
  Shard& sh = shards_[static_cast<std::size_t>(s)];
  StateDigest d;
  d.mix(sh.rig->state_digest());
  for (Shard::Remote& r : sh.remote) r.host->stack().digest_state(d);
  digest_records(d, sh.remote_records);
  d.mix(sh.exec->egressed());
  d.mix(sh.exec->delivered());
  return d.value();
}

std::uint64_t ShardedRig::combined_digest() {
  std::uint64_t sum = 0;
  for (int s = 0; s < num_shards(); ++s) {
    const std::uint64_t salt =
        std::uint64_t{0x9e3779b97f4a7c15ULL} * static_cast<std::uint64_t>(s + 1);
    sum += mix64(shard_digest(s) + salt);
  }
  return sum;
}

std::uint64_t ShardedRig::cross_packets() const {
  std::uint64_t n = 0;
  for (const auto& ch : channels_) n += ch->pushed();
  return n;
}

std::uint64_t ShardedRig::total_packets_sent() const {
  std::uint64_t n = 0;
  for (const Shard& sh : shards_) n += sh.rig->net().stats().packets_sent;
  return n;
}

std::uint64_t ShardedRig::total_records() const {
  std::uint64_t n = 0;
  for (const Shard& sh : shards_) {
    n += sh.rig->records().size() + sh.remote_records.size();
  }
  return n;
}

}  // namespace inband
