#include "scenario/metrics.h"

#include <algorithm>
#include <cmath>

#include "telemetry/time_series.h"
#include "util/assert.h"

namespace inband {

std::vector<double> relative_errors(std::vector<Sample> estimates,
                                    std::vector<Sample> truth) {
  auto by_time = [](const Sample& a, const Sample& b) { return a.t < b.t; };
  std::sort(estimates.begin(), estimates.end(), by_time);
  std::sort(truth.begin(), truth.end(), by_time);

  std::vector<double> errors;
  errors.reserve(estimates.size());
  std::size_t ti = 0;
  for (const auto& est : estimates) {
    // Advance to the last truth sample at or before est.t.
    while (ti + 1 < truth.size() && truth[ti + 1].t <= est.t) ++ti;
    if (truth.empty() || truth[ti].t > est.t) continue;
    const double ref = static_cast<double>(truth[ti].value);
    if (ref <= 0.0) continue;
    errors.push_back(std::abs(static_cast<double>(est.value) - ref) / ref);
  }
  return errors;
}

AccuracySummary summarize_accuracy(const std::vector<Sample>& estimates,
                                   const std::vector<Sample>& truth) {
  const auto errors = relative_errors(estimates, truth);
  AccuracySummary s;
  s.samples = errors.size();
  if (errors.empty()) return s;
  double sum = 0.0;
  for (double e : errors) sum += e;
  s.mean_rel_error = sum / static_cast<double>(errors.size());
  s.median_rel_error = exact_percentile(errors, 0.50);
  s.p90_rel_error = exact_percentile(errors, 0.90);
  return s;
}

double mean_in_window(const std::vector<Sample>& samples, SimTime from,
                      SimTime to) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : samples) {
    if (s.t >= from && s.t < to) {
      sum += static_cast<double>(s.value);
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double percentile_in_window(const std::vector<Sample>& samples, SimTime from,
                            SimTime to, double q) {
  std::vector<double> vals;
  for (const auto& s : samples) {
    if (s.t >= from && s.t < to) vals.push_back(static_cast<double>(s.value));
  }
  if (vals.empty()) return 0.0;
  return exact_percentile(std::move(vals), q);
}

std::size_t fault_events_in_window(const std::vector<FaultEvent>& events,
                                   FaultEvent::Kind kind, SimTime from,
                                   SimTime to) {
  std::size_t n = 0;
  for (const auto& ev : events) {
    if (ev.kind == kind && ev.t >= from && ev.t < to) ++n;
  }
  return n;
}

double weight_total_variation_per_epoch(
    const std::vector<ShareSnapshot>& history, SimTime epoch, SimTime from,
    SimTime to) {
  INBAND_ASSERT(epoch > 0);
  if (to <= from) return 0.0;
  double tv = 0.0;
  const ShareSnapshot* prev = nullptr;
  for (const auto& snap : history) {
    if (snap.t < from || snap.t >= to) continue;
    if (prev != nullptr) {
      const std::size_t n = std::min(prev->shares.size(), snap.shares.size());
      for (std::size_t i = 0; i < n; ++i) {
        tv += std::abs(snap.shares[i] - prev->shares[i]);
      }
    }
    prev = &snap;
  }
  const double epochs =
      static_cast<double>(to - from) / static_cast<double>(epoch);
  return epochs > 0.0 ? tv / epochs : 0.0;
}

SimTime share_drained_at(const std::vector<ShareSnapshot>& history,
                         std::size_t backend, double threshold, SimTime from) {
  for (const auto& snap : history) {
    if (snap.t >= from && backend < snap.shares.size() &&
        snap.shares[backend] < threshold) {
      return snap.t;
    }
  }
  return kNoTime;
}

}  // namespace inband
