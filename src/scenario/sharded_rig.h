// Sharded parallel composition of ClusterRigs.
//
// The topology is partitioned exactly along the ownership boundary shardlint
// proves and commits (tools/detlint/partition_src.json): one shard = one
// ClusterRig = one LB tier plus its servers and clients, with a private
// Simulator/EventQueue/Network of its own. Shards are arranged in a ring and
// coupled by real cross-shard traffic: each shard hosts `remote clients`
// whose requests target the *next* shard's VIP, so requests flow around the
// ring one way and direct-server-return responses flow back the other way.
//
// Cross-shard packets travel over ShardChannels (net/shard_channel.h) with a
// fixed positive latency — the conservative lookahead — and the shards are
// driven by run_shard_programs() (sim/parallel.h) on 1..N worker threads.
// Per-shard execution order is a pure function of the inputs (the merge rule
// in ShardExecutor), so per-shard digests are bit-identical across worker
// counts and scheduling seeds; the combined digest folds the per-shard
// digests commutatively so it is independent of shard enumeration order too.
//
// With one shard and one worker the rig degenerates to a plain ClusterRig
// driven step-by-step on the calling thread — the oracle path, pinned
// against ClusterRig::run()'s digest in tests/test_parallel.cc.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/shard_channel.h"
#include "scenario/cluster_rig.h"
#include "sim/parallel.h"
#include "util/shard.h"

namespace inband {

class ShardExecutor;

struct ShardedRigConfig {
  int num_shards = 2;
  // Worker threads for the parallel drive; 1 = inline on the caller (oracle).
  int workers = 1;
  // != 0 permutes the shard->worker placement; results must not change.
  std::uint64_t sched_seed = 0;

  // Per-shard template. addr_base, seed, and install_log_clock are
  // overridden per shard: shard s runs at addr_base = s and
  // seed = shard.seed + seed_stride * s (so shard 0 matches the template
  // exactly and the S=1 rig is digest-identical to a plain ClusterRig).
  ClusterRigConfig shard;
  std::uint64_t seed_stride = 1000;

  // One-way latency of every cross-shard trunk: the conservative lookahead.
  // Must be positive — zero would stall the protocol (sim/parallel.h).
  SimTime cross_latency = us(200);

  // Remote clients hosted on each shard, targeting the next shard's VIP
  // (round-robin over its LBs). 0 decouples the shards entirely. With
  // num_shards == 1 the "remote" path is wired as ordinary local links of
  // the same latency — no channels, same workload shape.
  int remote_clients_per_shard = 1;
  KvClientConfig remote_client;  // server endpoint + seed filled by the rig
};

INBAND_SHARD_LOCAL(owner)
class ShardedRig {
 public:
  explicit ShardedRig(ShardedRigConfig config);
  ~ShardedRig();

  // start()s every shard, drives them in parallel to shard.duration under
  // the conservative protocol, then finish()es them. Main thread only.
  void run();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  ClusterRig& shard(int s) { return *shards_[static_cast<std::size_t>(s)].rig; }

  int num_remote_clients(int s) const {
    return static_cast<int>(shards_[static_cast<std::size_t>(s)].remote.size());
  }
  KvClient& remote_client(int s, int i);
  const std::vector<RequestRecord>& remote_records(int s) const {
    return shards_[static_cast<std::size_t>(s)].remote_records;
  }

  // Everything that must be bit-identical across worker counts for shard s:
  // the ClusterRig digest plus the remote-client stacks, remote records, and
  // the shard's cross-traffic counters.
  std::uint64_t shard_digest(int s);

  // Order-independent fold of the per-shard digests (each finalized with its
  // shard index so permuting shard state cannot cancel out).
  std::uint64_t combined_digest();

  // Total packets handed to ShardChannels across all trunks.
  std::uint64_t cross_packets() const;
  // Total packets sent across all shard networks (the bench throughput
  // numerator).
  std::uint64_t total_packets_sent() const;
  // Completed requests across all shards, local + remote.
  std::uint64_t total_records() const;

  const ShardedRigConfig& config() const { return config_; }

 private:
  struct Shard {
    std::unique_ptr<ClusterRig> rig;
    struct Remote {
      std::unique_ptr<TcpHost> host;
      std::unique_ptr<KvClient> client;
    };
    std::vector<Remote> remote;
    std::vector<RequestRecord> remote_records;
    std::unique_ptr<ShardExecutor> exec;
  };

  std::vector<Shard> shards_;
  // channels_[2s] carries shard s's requests forward to shard (s+1) % S;
  // channels_[2s+1] carries shard s's responses back to shard (s-1+S) % S.
  // Empty when num_shards == 1.
  std::vector<std::unique_ptr<ShardChannel>> channels_;
  ShardedRigConfig config_;
  bool ran_ = false;
};

}  // namespace inband
