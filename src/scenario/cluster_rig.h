// Fig. 3 rig: a load-balanced memcached-style cluster.
//
//   memtier-style clients ──► LB(VIP, Maglev) ──► N KV servers
//            ▲                                        │
//            └────────── direct server return ────────┘
//
// Mid-run, an extra 1 ms delay is injected on the LB→victim-server link
// (the paper's experiment injects the delay on exactly that path). The rig
// records every completed GET/SET with its client-side latency, the LB's
// per-backend slot shares over time, and (for the in-band policy) the shift
// history — everything needed to reproduce Fig. 3 and the reaction-time
// claim, and to run the α/pool-size/multi-LB ablations.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/kv_client.h"
#include "app/kv_server.h"
#include "check/invariant_auditor.h"
#include "core/inband_lb_policy.h"
#include "fault/fault_layer.h"
#include "lb/load_balancer.h"
#include "lb/policies.h"
#include "scenario/metrics.h"
#include "util/shard.h"

namespace inband {

enum class LbMode {
  kStaticMaglev,
  kInband,
  kRoundRobin,
  kLeastConn,
  kWeightedRandom,
};

const char* lb_mode_name(LbMode mode);

// The rig's address plan, shared with the sharded rig (which must route to
// another shard's VIPs and attach its own remote-client hosts). `base` is
// ClusterRigConfig::addr_base; valid for base in [0, 62], i in [0, 254].
constexpr Ipv4 rig_client_addr(int base, int i) {
  return make_ipv4(10, static_cast<std::uint8_t>(4 * base),
                   0, static_cast<std::uint8_t>(1 + i));
}
constexpr Ipv4 rig_vip_addr(int base, int i) {
  return make_ipv4(10, static_cast<std::uint8_t>(4 * base + 1),
                   0, static_cast<std::uint8_t>(1 + i));
}
constexpr Ipv4 rig_server_addr(int base, int i) {
  return make_ipv4(10, static_cast<std::uint8_t>(4 * base + 2),
                   0, static_cast<std::uint8_t>(1 + i));
}
constexpr Ipv4 rig_remote_client_addr(int base, int i) {
  return make_ipv4(10, static_cast<std::uint8_t>(4 * base + 3),
                   0, static_cast<std::uint8_t>(1 + i));
}

struct ClusterRigConfig {
  int num_servers = 2;
  int num_lbs = 1;       // >1 => independent LBs sharing the server pool
  int num_client_hosts = 2;

  // Address-plan offset: the rig's subnets are 10.(4*addr_base + k).0.x
  // (k = 0 clients, 1 VIPs, 2 servers, 3 reserved for a sharded rig's
  // remote clients). 0 — the default, and the historical plan — for a
  // standalone rig; the sharded rig gives shard s addr_base = s so every
  // shard's topology is globally addressable without collisions.
  int addr_base = 0;
  // Install this rig's sim clock as the process-wide logging clock between
  // start() and finish(). The logging clock is a global; a sharded rig runs
  // many rigs on many threads and must leave it alone (set false there).
  bool install_log_clock = true;

  LbMode mode = LbMode::kInband;
  InbandPolicyConfig inband;  // used when mode == kInband
  std::uint64_t maglev_table_size = 4099;

  KvServerConfig server;
  KvClientConfig client;  // `server` endpoint is filled in by the rig

  // Network.
  SimTime client_lb_delay = us(20);
  SimTime lb_server_delay = us(20);
  SimTime server_client_delay = us(40);
  // Extra one-way distance per client host (both directions), index-aligned
  // with client hosts; missing entries mean 0. Models far / non-equidistant
  // clients (paper §5(1)).
  std::vector<SimTime> client_extra_distance;
  std::uint64_t bandwidth_bps = 10'000'000'000;
  TcpConfig tcp;

  // Fault injection: extra delay on LB→servers[victim] from inject_time on.
  SimTime inject_time = sec(10);
  SimTime inject_extra = ms(1);
  int victim = 0;

  // Deterministic fault plan (loss / duplication / reordering / jitter /
  // flaps / server faults). Empty (the default) disables the fault layer
  // entirely; see fault/fault_plan.h.
  FaultPlan fault;

  SimTime duration = sec(20);
  // Sample LB slot shares every this often (0 disables).
  SimTime share_sample_interval = ms(1);
  // Full invariant audit every this often during run(); only effective in
  // audit-enabled builds (kAuditsEnabled, i.e. debug or
  // -DINBAND_ENABLE_AUDITS=ON). 0 disables the periodic event; the audit
  // hooks stay registered either way so tests can run them on demand.
  SimTime audit_interval = ms(250);
  std::uint64_t seed = 2022;
  // Pre-reserve the completed-request record vector at start(). Lets
  // allocation tests take the record stream off the steady-state heap
  // profile; 0 keeps the default growth behaviour.
  std::size_t reserve_records = 0;
};

INBAND_SHARD_LOCAL(owner)
class ClusterRig {
 public:
  explicit ClusterRig(ClusterRigConfig config);
  ~ClusterRig();

  void run();

  // Phased form of run() for callers that need to observe the rig mid-run
  // (e.g. the allocation test brackets a steady-state window between two
  // run_until() calls). start() arms the injection schedule, samplers, and
  // clients; run_until() advances the clock; finish() stops the clients and
  // runs the final audit. run() == start(); run_until(duration); finish().
  void start();
  void run_until(SimTime t);
  void finish();

  // All completed requests (client-side ground truth).
  const std::vector<RequestRecord>& records() const { return records_; }
  // GET latencies only, as (t, latency) samples — the Fig. 3 series.
  std::vector<Sample> get_latency_samples() const;

  const std::vector<ShareSnapshot>& share_history() const {
    return share_history_;
  }

  Simulator& sim() { return sim_; }
  Network& net() { return net_; }
  LoadBalancer& lb(int i = 0) { return *lbs_[static_cast<std::size_t>(i)]; }
  int num_lbs() const { return static_cast<int>(lbs_.size()); }
  KvServer& server(int i) { return *servers_[static_cast<std::size_t>(i)]; }
  KvClient& client(int i) { return *clients_[static_cast<std::size_t>(i)]; }
  int num_clients() const { return static_cast<int>(clients_.size()); }

  // The in-band policy of LB i (null unless mode == kInband).
  InbandLbPolicy* inband_policy(int i = 0);

  const ClusterRigConfig& config() const { return config_; }

  // The rig-wide invariant auditor with every subsystem hook registered
  // (simulator, each LB, each host TCP stack, the fault layer if present).
  InvariantAuditor& auditor() { return auditor_; }

  // The fault layer, or null when config.fault is empty.
  FaultLayer* fault() { return fault_.get(); }

  // Runs every audit hook immediately; returns violations found (aborts on
  // the first one in the default kAbort mode).
  std::size_t run_full_audit();

  // Digest of all simulation state that must match between two same-seed
  // runs: clock/scheduler, every LB (conntrack, Maglev table, estimator
  // state), every TCP stack, RNGs, and the completed-request record stream.
  std::uint64_t state_digest();

 private:
  std::unique_ptr<RoutingPolicy> make_policy(const BackendPool& pool,
                                             int lb_index);

  ClusterRigConfig config_;
  Simulator sim_;
  Network net_;
  // Declared after net_ so it is destroyed first (it deregisters itself as
  // the network's send interceptor on destruction).
  std::unique_ptr<FaultLayer> fault_;
  std::vector<std::unique_ptr<TcpHost>> server_hosts_;
  std::vector<std::unique_ptr<KvServer>> servers_;
  std::vector<std::unique_ptr<TcpHost>> client_hosts_;
  std::vector<std::unique_ptr<KvClient>> clients_;
  std::vector<std::unique_ptr<LoadBalancer>> lbs_;
  std::vector<InbandLbPolicy*> inband_policies_;  // borrowed, may hold nulls
  std::vector<RequestRecord> records_;
  std::vector<ShareSnapshot> share_history_;
  std::unique_ptr<PeriodicTask> share_sampler_;
  InvariantAuditor auditor_;
  std::unique_ptr<PeriodicTask> audit_task_;
  // Live between start() and finish() so phased runs log sim timestamps.
  std::optional<Simulator::LogClockGuard> log_guard_;
  bool started_ = false;
};

}  // namespace inband
