// Experiment metrics shared by benches, examples and integration tests.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_plan.h"
#include "util/time.h"

namespace inband {

// A timestamped duration measurement (estimate or ground truth).
struct Sample {
  SimTime t;
  SimTime value;
};

// A timestamped per-backend slot-share vector (one LB's Maglev table view).
// Produced by ClusterRig's share sampler; consumed by the convergence and
// oscillation metrics below.
struct ShareSnapshot {
  SimTime t;
  std::vector<double> shares;  // per backend id, LB 0's table
};

// Relative error of each estimate against the ground truth prevailing at the
// estimate's timestamp. Ground truth is interpreted as a right-continuous
// step function through `truth` (sorted or not; sorted internally).
// Estimates earlier than the first truth sample are skipped.
std::vector<double> relative_errors(std::vector<Sample> estimates,
                                    std::vector<Sample> truth);

struct AccuracySummary {
  std::size_t samples = 0;
  double median_rel_error = 0.0;
  double p90_rel_error = 0.0;
  double mean_rel_error = 0.0;
};

AccuracySummary summarize_accuracy(const std::vector<Sample>& estimates,
                                   const std::vector<Sample>& truth);

// Mean of sample values within [from, to).
double mean_in_window(const std::vector<Sample>& samples, SimTime from,
                      SimTime to);

// Exact percentile (q in [0,1]) of sample values within [from, to);
// 0 when the window is empty.
double percentile_in_window(const std::vector<Sample>& samples, SimTime from,
                            SimTime to, double q);

// Number of executed fault events of `kind` with timestamp in [from, to).
// `events` is a FaultLayer's timeline (FaultLayer::events()).
std::size_t fault_events_in_window(const std::vector<FaultEvent>& events,
                                   FaultEvent::Kind kind, SimTime from,
                                   SimTime to);

// Oscillation metric: total variation of the share vector — the summed L1
// distance between consecutive snapshots in [from, to) — normalized to one
// `epoch` of simulated time. A controller at rest scores ~0; one that keeps
// sloshing weight back and forth scores high even if its time-average is
// perfect (the herding signature of stale-view control).
double weight_total_variation_per_epoch(
    const std::vector<ShareSnapshot>& history, SimTime epoch, SimTime from,
    SimTime to);

// First time >= `from` at which shares[backend] drops below `threshold`;
// kNoTime if it never does. The reaction/convergence probe: with `from` set
// to the fault-injection time this is "when had the controller drained the
// victim".
SimTime share_drained_at(const std::vector<ShareSnapshot>& history,
                         std::size_t backend, double threshold, SimTime from);

}  // namespace inband
