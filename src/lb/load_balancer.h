// L4 load balancer dataplane under direct server return.
//
// The LB is the host attached at the service VIP. For every arriving
// client→VIP packet it (1) consults conntrack for per-connection
// consistency, (2) on miss asks the routing policy for a backend, and
// (3) forwards the packet to the backend's delivery address without
// rewriting the flow — the backend accepts VIP-addressed traffic and
// answers the client directly, so the LB structurally never observes
// responses. The policy's on_packet() hook is therefore fed exactly the
// one-directional stream the paper's estimators must work with.
#pragma once

#include <memory>
#include <vector>

#include "lb/backend.h"
#include "lb/conntrack.h"
#include "lb/policy.h"
#include "net/network.h"
#include "telemetry/counters.h"
#include "util/hotpath.h"
#include "util/shard.h"

namespace inband {

INBAND_SHARD_LOCAL(lb)
class LoadBalancer : public Host {
 public:
  // Backend ids must equal their index in `pool` (asserted) so forwarding
  // is a single array read.
  LoadBalancer(Simulator& sim, Network& net, Ipv4 vip, std::string name,
               BackendPool pool, std::unique_ptr<RoutingPolicy> policy,
               ConntrackConfig conntrack_config = {});

  // Native batch path: every element is conntracked/policied/forwarded out
  // of its pooled buffer — the LB hop moves handles, never packet bytes.
  INBAND_HOT void handle_batch(PacketBatch&& batch) override;
  void handle_packet(Packet pkt) override;

  // Control-plane pool updates (health checker, operator). The policy is
  // re-notified so *new* flows avoid an unhealthy backend; tracked
  // connections keep forwarding to their pinned backend until they close
  // (drain semantics — §2.5's "minimize connection-breaking").
  void set_backend_health(BackendId id, bool healthy);
  void set_backend_weight(BackendId id, std::uint32_t weight);

  RoutingPolicy& policy() { return *policy_; }
  const BackendPool& pool() const { return pool_; }
  ConnTracker& conntrack() { return conntrack_; }
  CounterSet& counters() { return counters_; }

  std::uint64_t forwarded_to(BackendId id) const;
  std::uint64_t new_flows_to(BackendId id) const;

  // Invariant audit across the whole dataplane: conntrack consistency
  // (every pinned backend within the pool), per-backend stat vectors sized
  // to the pool, and the routing policy's own invariants.
  void audit_invariants(AuditScope& scope) const;

  // Folds dataplane + policy state into a determinism digest.
  void digest_state(StateDigest& digest) const;

 private:
  // Per-packet dataplane: conntrack, policy pick, forward (or drop).
  INBAND_HOT void forward(PacketRef pkt);

  BackendPool pool_;
  std::unique_ptr<RoutingPolicy> policy_;
  ConnTracker conntrack_;
  CounterSet counters_;
  std::vector<std::uint64_t> forwarded_per_backend_;
  std::vector<std::uint64_t> new_flows_per_backend_;
};

}  // namespace inband
