// Backend pool descriptors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/address.h"

namespace inband {

// Index into the LB's backend table. Stable for the lifetime of a pool.
using BackendId = std::uint32_t;
inline constexpr BackendId kNoBackend = ~0u;

struct Backend {
  BackendId id = 0;
  std::string name;   // hashed by Maglev for permutation seeds
  Ipv4 addr = 0;      // delivery address the LB forwards to
  std::uint32_t weight = 1;
  bool healthy = true;
};

using BackendPool = std::vector<Backend>;

}  // namespace inband
