#include "lb/load_balancer.h"

#include "check/invariant_auditor.h"
#include "check/state_digest.h"
#include "util/assert.h"
#include "util/logging.h"

namespace inband {

LoadBalancer::LoadBalancer(Simulator& sim, Network& net, Ipv4 vip,
                           std::string name, BackendPool pool,
                           std::unique_ptr<RoutingPolicy> policy,
                           ConntrackConfig conntrack_config)
    : Host(sim, net, vip, std::move(name)),
      pool_{std::move(pool)},
      policy_{std::move(policy)},
      conntrack_{conntrack_config} {
  INBAND_ASSERT(!pool_.empty(), "LB needs at least one backend");
  INBAND_ASSERT(policy_ != nullptr);
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    INBAND_ASSERT(pool_[i].id == i, "backend ids must be pool indices");
  }
  forwarded_per_backend_.assign(pool_.size(), 0);
  new_flows_per_backend_.assign(pool_.size(), 0);
}

void LoadBalancer::handle_batch(PacketBatch&& batch) {
  for (std::uint32_t i = 0; i < batch.size(); ++i) {
    forward(batch.take(i));
  }
}

void LoadBalancer::handle_packet(Packet pkt) {
  PacketRef ref = network().pool().acquire();
  *ref = std::move(pkt);
  forward(std::move(ref));
}

void LoadBalancer::forward(PacketRef pkt) {
  const SimTime now = sim().now();
  ++counters_.get("lb.packets_in");
  conntrack_.sweep(now);

  BackendId backend = conntrack_.lookup(pkt->flow, now);
  bool new_flow = false;
  if (backend == kNoBackend) {
    backend = policy_->pick(pkt->flow, now);
    if (backend == kNoBackend || backend >= pool_.size() ||
        !pool_[backend].healthy) {
      ++counters_.get("lb.drops_no_backend");
      return;
    }
    // hotlint:allow(hot-growth): ConnTracker::insert, not a container op
    conntrack_.insert(pkt->flow, backend, now);
    new_flow = true;
    ++new_flows_per_backend_[backend];
    ++counters_.get("lb.new_flows");
  }

  if (pkt->has(tcpflag::kFin) || pkt->has(tcpflag::kRst)) {
    if (conntrack_.mark_closing(pkt->flow, now)) {
      policy_->on_flow_closed(pkt->flow, backend, now);
      ++counters_.get("lb.flows_closed");
    }
  }

  policy_->on_packet(*pkt, backend, now, new_flow);

  ++forwarded_per_backend_[backend];
  ++counters_.get("lb.packets_forwarded");
  send_to(pool_[backend].addr, std::move(pkt));
}

void LoadBalancer::set_backend_health(BackendId id, bool healthy) {
  INBAND_ASSERT(id < pool_.size());
  if (pool_[id].healthy == healthy) return;
  pool_[id].healthy = healthy;
  policy_->on_pool_change(pool_);
  ++counters_.get("lb.pool_changes");
}

void LoadBalancer::set_backend_weight(BackendId id, std::uint32_t weight) {
  INBAND_ASSERT(id < pool_.size());
  if (pool_[id].weight == weight) return;
  pool_[id].weight = weight;
  policy_->on_pool_change(pool_);
  ++counters_.get("lb.pool_changes");
}

std::uint64_t LoadBalancer::forwarded_to(BackendId id) const {
  INBAND_ASSERT(id < forwarded_per_backend_.size());
  return forwarded_per_backend_[id];
}

std::uint64_t LoadBalancer::new_flows_to(BackendId id) const {
  INBAND_ASSERT(id < new_flows_per_backend_.size());
  return new_flows_per_backend_[id];
}

void LoadBalancer::audit_invariants(AuditScope& scope) const {
  scope.check(forwarded_per_backend_.size() == pool_.size() &&
                  new_flows_per_backend_.size() == pool_.size(),
              "stat-vectors-sized-to-pool");
  conntrack_.audit_invariants(scope, static_cast<BackendId>(pool_.size()));
  policy_->audit_invariants(scope);
}

void LoadBalancer::digest_state(StateDigest& digest) const {
  digest.mix(pool_.size());
  for (const auto& b : pool_) {
    digest.mix_u32(b.id);
    digest.mix_u32(b.weight);
    digest.mix_bool(b.healthy);
  }
  conntrack_.digest_state(digest);
  for (const auto v : forwarded_per_backend_) digest.mix(v);
  for (const auto v : new_flows_per_backend_) digest.mix(v);
  for (const auto& [name, value] : counters_.snapshot()) {
    digest.mix_string(name);
    digest.mix(value);
  }
  policy_->digest_state(digest);
}

}  // namespace inband
