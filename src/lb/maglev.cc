#include "lb/maglev.h"

#include <algorithm>
#include <string>
#include <string_view>

#include "check/invariant_auditor.h"
#include "check/state_digest.h"
#include "util/assert.h"

namespace inband {

namespace {

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

std::uint64_t hash_name(std::string_view name, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (char c : name) {
    h = splitmix64(h ^ static_cast<unsigned char>(c));
  }
  return h;
}

}  // namespace

MaglevTable::MaglevTable(std::uint64_t table_size, std::uint64_t hash_seed)
    : table_size_{table_size}, seed_{hash_seed} {
  INBAND_ASSERT(is_prime(table_size), "Maglev table size must be prime");
  table_.assign(table_size_, kNoBackend);
}

void MaglevTable::build(const BackendPool& pool) {
  struct Candidate {
    BackendId id;
    std::uint32_t weight;
    std::uint64_t offset;
    std::uint64_t skip;
    std::uint64_t next = 0;  // position in its permutation
    double credit = 0.0;     // fractional turn accumulator
  };

  std::vector<Candidate> cands;
  max_backend_id_ = 0;
  std::uint32_t max_weight = 0;
  for (const auto& b : pool) {
    max_backend_id_ = std::max(max_backend_id_, b.id);
    if (!b.healthy || b.weight == 0) continue;
    Candidate c;
    c.id = b.id;
    c.weight = b.weight;
    c.offset = hash_name(b.name, seed_) % table_size_;
    c.skip = hash_name(b.name, splitmix64(seed_)) % (table_size_ - 1) + 1;
    // hotlint:allow(hot-growth): table rebuild runs at control-plane rate
    cands.push_back(c);
    max_weight = std::max(max_weight, b.weight);
  }
  INBAND_ASSERT(!cands.empty(), "Maglev build with no eligible backends");

  std::fill(table_.begin(), table_.end(), kNoBackend);
  std::uint64_t filled = 0;
  // Weighted turn-taking via fractional credits: per round each backend
  // earns weight/max_weight of a turn and claims a slot whenever a full
  // credit accumulates. This interleaves backends slot-by-slot (preserving
  // Maglev's low-disruption property under weight changes), unlike naive
  // "weight consecutive turns", which clusters slots into runs and rewrites
  // large table regions on small weight adjustments.
  while (true) {
    for (auto& c : cands) {
      c.credit += static_cast<double>(c.weight) / max_weight;
      while (c.credit >= 1.0) {
        c.credit -= 1.0;
        // Walk this backend's permutation to its next empty slot.
        std::uint64_t slot;
        do {
          slot = (c.offset + c.next * c.skip) % table_size_;
          ++c.next;
        } while (table_[slot] != kNoBackend);
        table_[slot] = c.id;
        if (++filled == table_size_) return;
      }
    }
  }
}

BackendId MaglevTable::lookup(const FlowKey& flow) const {
  return lookup_hash(hash_flow(flow, seed_));
}

BackendId MaglevTable::lookup_hash(std::uint64_t hash) const {
  return table_[hash % table_size_];
}

std::size_t MaglevTable::slots_owned(BackendId id) const {
  return static_cast<std::size_t>(
      std::count(table_.begin(), table_.end(), id));
}

std::vector<double> MaglevTable::shares() const {
  std::vector<double> out(max_backend_id_ + 1, 0.0);
  for (BackendId id : table_) {
    if (id == kNoBackend) continue;
    // hotlint:allow(hot-growth): share snapshot runs at restore-drift rate
    if (id >= out.size()) out.resize(id + 1, 0.0);
    out[id] += 1.0;
  }
  for (auto& v : out) v /= static_cast<double>(table_size_);
  return out;
}

std::size_t MaglevTable::shift_slots(BackendId from, double fraction) {
  INBAND_ASSERT(fraction >= 0.0 && fraction <= 1.0);
  // Receivers: every other backend currently in the table. The scratch
  // vector is a member so repeated shifts reuse its capacity.
  std::vector<BackendId>& receivers = shift_receivers_;
  receivers.clear();
  for (BackendId id : table_) {
    if (id == kNoBackend || id == from) continue;
    if (std::find(receivers.begin(), receivers.end(), id) ==
        receivers.end()) {
      // hotlint:allow(hot-growth): capacity retained across shifts, warms once
      receivers.push_back(id);
    }
  }
  if (receivers.empty()) return 0;
  std::sort(receivers.begin(), receivers.end());

  auto want = static_cast<std::size_t>(
      fraction * static_cast<double>(table_size_) + 0.999999);
  std::size_t moved = 0;
  std::size_t rr = 0;
  for (std::uint64_t i = 0; i < table_size_ && moved < want; ++i) {
    if (table_[i] != from) continue;
    table_[i] = receivers[rr];
    rr = (rr + 1) % receivers.size();
    ++moved;
  }
  return moved;
}

std::size_t MaglevTable::move_slots(BackendId from, BackendId to,
                                    std::size_t count) {
  std::size_t moved = 0;
  for (std::uint64_t i = 0; i < table_size_ && moved < count; ++i) {
    if (table_[i] != from) continue;
    table_[i] = to;
    ++moved;
  }
  return moved;
}

void MaglevTable::audit_invariants(AuditScope& scope,
                                   const BackendPool* pool) const {
  if (!scope.check(table_.size() == table_size_, "table-size-consistent")) {
    return;
  }
  for (std::uint64_t i = 0; i < table_size_; ++i) {
    const BackendId id = table_[i];
    if (!scope.check(id != kNoBackend, "slot-populated",
                     "empty slot " + std::to_string(i))) {
      continue;
    }
    if (!scope.check(id <= max_backend_id_, "slot-owner-valid",
                     "slot " + std::to_string(i) + " owned by unknown id " +
                         std::to_string(id))) {
      continue;
    }
    if (pool != nullptr) {
      bool in_pool = false;
      for (const auto& b : *pool) {
        if (b.id == id) {
          in_pool = true;
          break;
        }
      }
      scope.check(in_pool, "slot-owner-in-pool",
                  "slot " + std::to_string(i) + " owned by id " +
                      std::to_string(id) + " absent from the pool");
    }
  }
}

void MaglevTable::digest_state(StateDigest& digest) const {
  digest.mix(table_size_);
  digest.mix(seed_);
  digest.mix_u32(max_backend_id_);
  for (const BackendId id : table_) digest.mix_u32(id);
}

void MaglevTable::corrupt_slot_for_test(std::size_t slot, BackendId id) {
  INBAND_ASSERT(slot < table_.size());
  table_[slot] = id;
}

std::size_t MaglevTable::diff(const MaglevTable& other) const {
  INBAND_ASSERT(other.table_size_ == table_size_);
  std::size_t d = 0;
  for (std::uint64_t i = 0; i < table_size_; ++i) {
    if (table_[i] != other.table_[i]) ++d;
  }
  return d;
}

}  // namespace inband
