#include "lb/conntrack.h"

#include "check/invariant_auditor.h"
#include "check/state_digest.h"
#include "util/assert.h"
#include "util/sorted_view.h"

namespace inband {

ConnTracker::ConnTracker(ConntrackConfig config) : config_{config} {
  INBAND_ASSERT(config_.max_entries > 0);
  map_.reserve(std::min<std::size_t>(config_.max_entries, 1 << 16));
}

bool ConnTracker::expired(const Entry& e, SimTime now) const {
  if (e.closing && now - e.close_marked >= config_.closing_linger) return true;
  return now - e.last_seen >= config_.idle_timeout;
}

BackendId ConnTracker::lookup(const FlowKey& flow, SimTime now) {
  const auto it = map_.find(flow);
  if (it == map_.end() || expired(it->second, now)) {
    if (it != map_.end()) {
      map_.erase(it);
      ++expirations_;
    }
    ++misses_;
    return kNoBackend;
  }
  it->second.last_seen = now;
  ++hits_;
  return it->second.backend;
}

void ConnTracker::insert(const FlowKey& flow, BackendId backend, SimTime now) {
  if (map_.size() >= config_.max_entries &&
      map_.find(flow) == map_.end()) {
    evict_one(now);
  }
  // hotlint:allow(hot-growth): flow admission, bounded by max_entries above
  map_[flow] = Entry{backend, now, false, kNoTime};
}

bool ConnTracker::mark_closing(const FlowKey& flow, SimTime now) {
  const auto it = map_.find(flow);
  if (it == map_.end()) return false;
  if (it->second.closing) return false;
  it->second.closing = true;
  it->second.close_marked = now;
  return true;
}

void ConnTracker::evict_one(SimTime now) {
  // Prefer an expired entry; otherwise evict the stalest. The victim is the
  // unique minimum by (not-expired, last_seen, flow key) — ties on last_seen
  // break on the flow key, never on hash-table position, so the evicted
  // entry is reproducible run to run. A full scan is acceptable because
  // eviction only happens at capacity, which the experiments never approach;
  // production tables use clocked buckets.
  const auto better = [&](const auto& a, const auto& b) {
    const bool a_exp = expired(a.second, now);
    const bool b_exp = expired(b.second, now);
    if (a_exp != b_exp) return a_exp;
    if (a.second.last_seen != b.second.last_seen) {
      return a.second.last_seen < b.second.last_seen;
    }
    return a.first < b.first;
  };
  auto victim = map_.end();
  // detlint:allow(unordered-iter): selects the unique minimum by a value-based key; the result is independent of visit order
  for (auto it = map_.begin(); it != map_.end(); ++it) {
    if (victim == map_.end() || better(*it, *victim)) victim = it;
  }
  if (victim != map_.end()) {
    map_.erase(victim);
    ++evictions_;
  }
}

void ConnTracker::sweep(SimTime now) {
  if (now - last_sweep_ < config_.sweep_interval) return;
  last_sweep_ = now;
  // detlint:allow(unordered-iter): erases the expired subset; expiry is decided per entry, independent of visit order
  for (auto it = map_.begin(); it != map_.end();) {
    if (expired(it->second, now)) {
      it = map_.erase(it);
      ++expirations_;
    } else {
      ++it;
    }
  }
}

void ConnTracker::audit_invariants(AuditScope& scope,
                                   BackendId backend_limit) const {
  const SimTime now = scope.now();
  scope.check(map_.size() <= config_.max_entries, "capacity-bound",
              "conntrack exceeds max_entries");
  scope.check(last_sweep_ <= now, "sweep-clock-sane");
  // Sorted snapshot: audit failure messages come out in flow-key order, so
  // a failing run reports identically across reruns.
  for (const auto* e : sorted_entries(map_)) {
    const auto& [flow, entry] = *e;
    if (!scope.check(entry.backend != kNoBackend, "backend-assigned",
                     format_flow(flow))) {
      continue;
    }
    if (backend_limit != kNoBackend) {
      scope.check(entry.backend < backend_limit, "backend-in-pool",
                  format_flow(flow) + " pinned to out-of-range backend " +
                      std::to_string(entry.backend));
    }
    scope.check(entry.last_seen <= now, "last-seen-in-past",
                format_flow(flow));
    if (entry.closing) {
      scope.check(entry.close_marked != kNoTime && entry.close_marked <= now,
                  "close-mark-sane", format_flow(flow));
    } else {
      scope.check(entry.close_marked == kNoTime, "close-mark-only-when-closing",
                  format_flow(flow));
    }
  }
}

void ConnTracker::digest_state(StateDigest& digest) const {
  UnorderedDigest entries;
  // detlint:allow(unordered-iter): per-entry digests fold through the commutative UnorderedDigest combiner
  for (const auto& [flow, entry] : map_) {
    StateDigest e;
    e.mix(hash_flow(flow));
    e.mix_u32(entry.backend);
    e.mix_i64(entry.last_seen);
    e.mix_bool(entry.closing);
    e.mix_i64(entry.close_marked);
    entries.add(e);
  }
  entries.mix_into(digest);
  digest.mix(hits_);
  digest.mix(misses_);
  digest.mix(evictions_);
  digest.mix(expirations_);
  digest.mix_i64(last_sweep_);
}

std::vector<std::size_t> ConnTracker::connections_per_backend() const {
  std::vector<std::size_t> out;
  // detlint:allow(unordered-iter): commutative per-backend counting; the histogram is independent of visit order
  for (const auto& [flow, entry] : map_) {
    (void)flow;
    if (entry.closing) continue;
    if (entry.backend >= out.size()) out.resize(entry.backend + 1, 0);
    ++out[entry.backend];
  }
  return out;
}

}  // namespace inband
