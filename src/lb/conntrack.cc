#include "lb/conntrack.h"

#include "check/invariant_auditor.h"
#include "check/state_digest.h"
#include "util/assert.h"

namespace inband {

ConnTracker::ConnTracker(ConntrackConfig config) : config_{config} {
  INBAND_ASSERT(config_.max_entries > 0);
  map_.reserve(std::min<std::size_t>(config_.max_entries, 1 << 16));
}

bool ConnTracker::expired(const Entry& e, SimTime now) const {
  if (e.closing && now - e.close_marked >= config_.closing_linger) return true;
  return now - e.last_seen >= config_.idle_timeout;
}

BackendId ConnTracker::lookup(const FlowKey& flow, SimTime now) {
  const auto it = map_.find(flow);
  if (it == map_.end() || expired(it->second, now)) {
    if (it != map_.end()) {
      map_.erase(it);
      ++expirations_;
    }
    ++misses_;
    return kNoBackend;
  }
  it->second.last_seen = now;
  ++hits_;
  return it->second.backend;
}

void ConnTracker::insert(const FlowKey& flow, BackendId backend, SimTime now) {
  if (map_.size() >= config_.max_entries &&
      map_.find(flow) == map_.end()) {
    evict_one(now);
  }
  map_[flow] = Entry{backend, now, false, kNoTime};
}

bool ConnTracker::mark_closing(const FlowKey& flow, SimTime now) {
  const auto it = map_.find(flow);
  if (it == map_.end()) return false;
  if (it->second.closing) return false;
  it->second.closing = true;
  it->second.close_marked = now;
  return true;
}

void ConnTracker::evict_one(SimTime now) {
  // Prefer an expired or closing entry; otherwise evict the stalest. A full
  // scan is acceptable because eviction only happens at capacity, which the
  // experiments never approach; production tables use clocked buckets.
  auto victim = map_.end();
  for (auto it = map_.begin(); it != map_.end(); ++it) {
    if (expired(it->second, now)) {
      victim = it;
      break;
    }
    if (victim == map_.end() ||
        it->second.last_seen < victim->second.last_seen) {
      victim = it;
    }
  }
  if (victim != map_.end()) {
    map_.erase(victim);
    ++evictions_;
  }
}

void ConnTracker::sweep(SimTime now) {
  if (now - last_sweep_ < config_.sweep_interval) return;
  last_sweep_ = now;
  for (auto it = map_.begin(); it != map_.end();) {
    if (expired(it->second, now)) {
      it = map_.erase(it);
      ++expirations_;
    } else {
      ++it;
    }
  }
}

void ConnTracker::audit_invariants(AuditScope& scope,
                                   BackendId backend_limit) const {
  const SimTime now = scope.now();
  scope.check(map_.size() <= config_.max_entries, "capacity-bound",
              "conntrack exceeds max_entries");
  scope.check(last_sweep_ <= now, "sweep-clock-sane");
  for (const auto& [flow, entry] : map_) {
    if (!scope.check(entry.backend != kNoBackend, "backend-assigned",
                     format_flow(flow))) {
      continue;
    }
    if (backend_limit != kNoBackend) {
      scope.check(entry.backend < backend_limit, "backend-in-pool",
                  format_flow(flow) + " pinned to out-of-range backend " +
                      std::to_string(entry.backend));
    }
    scope.check(entry.last_seen <= now, "last-seen-in-past",
                format_flow(flow));
    if (entry.closing) {
      scope.check(entry.close_marked != kNoTime && entry.close_marked <= now,
                  "close-mark-sane", format_flow(flow));
    } else {
      scope.check(entry.close_marked == kNoTime, "close-mark-only-when-closing",
                  format_flow(flow));
    }
  }
}

void ConnTracker::digest_state(StateDigest& digest) const {
  UnorderedDigest entries;
  for (const auto& [flow, entry] : map_) {
    StateDigest e;
    e.mix(hash_flow(flow));
    e.mix_u32(entry.backend);
    e.mix_i64(entry.last_seen);
    e.mix_bool(entry.closing);
    e.mix_i64(entry.close_marked);
    entries.add(e);
  }
  entries.mix_into(digest);
  digest.mix(hits_);
  digest.mix(misses_);
  digest.mix(evictions_);
  digest.mix(expirations_);
  digest.mix_i64(last_sweep_);
}

std::vector<std::size_t> ConnTracker::connections_per_backend() const {
  std::vector<std::size_t> out;
  for (const auto& [flow, entry] : map_) {
    (void)flow;
    if (entry.closing) continue;
    if (entry.backend >= out.size()) out.resize(entry.backend + 1, 0);
    ++out[entry.backend];
  }
  return out;
}

}  // namespace inband
