#include "lb/conntrack.h"

#include "util/assert.h"

namespace inband {

ConnTracker::ConnTracker(ConntrackConfig config) : config_{config} {
  INBAND_ASSERT(config_.max_entries > 0);
  map_.reserve(std::min<std::size_t>(config_.max_entries, 1 << 16));
}

bool ConnTracker::expired(const Entry& e, SimTime now) const {
  if (e.closing && now - e.close_marked >= config_.closing_linger) return true;
  return now - e.last_seen >= config_.idle_timeout;
}

BackendId ConnTracker::lookup(const FlowKey& flow, SimTime now) {
  const auto it = map_.find(flow);
  if (it == map_.end() || expired(it->second, now)) {
    if (it != map_.end()) {
      map_.erase(it);
      ++expirations_;
    }
    ++misses_;
    return kNoBackend;
  }
  it->second.last_seen = now;
  ++hits_;
  return it->second.backend;
}

void ConnTracker::insert(const FlowKey& flow, BackendId backend, SimTime now) {
  if (map_.size() >= config_.max_entries &&
      map_.find(flow) == map_.end()) {
    evict_one(now);
  }
  map_[flow] = Entry{backend, now, false, kNoTime};
}

bool ConnTracker::mark_closing(const FlowKey& flow, SimTime now) {
  const auto it = map_.find(flow);
  if (it == map_.end()) return false;
  if (it->second.closing) return false;
  it->second.closing = true;
  it->second.close_marked = now;
  return true;
}

void ConnTracker::evict_one(SimTime now) {
  // Prefer an expired or closing entry; otherwise evict the stalest. A full
  // scan is acceptable because eviction only happens at capacity, which the
  // experiments never approach; production tables use clocked buckets.
  auto victim = map_.end();
  for (auto it = map_.begin(); it != map_.end(); ++it) {
    if (expired(it->second, now)) {
      victim = it;
      break;
    }
    if (victim == map_.end() ||
        it->second.last_seen < victim->second.last_seen) {
      victim = it;
    }
  }
  if (victim != map_.end()) {
    map_.erase(victim);
    ++evictions_;
  }
}

void ConnTracker::sweep(SimTime now) {
  if (now - last_sweep_ < config_.sweep_interval) return;
  last_sweep_ = now;
  for (auto it = map_.begin(); it != map_.end();) {
    if (expired(it->second, now)) {
      it = map_.erase(it);
      ++expirations_;
    } else {
      ++it;
    }
  }
}

std::vector<std::size_t> ConnTracker::connections_per_backend() const {
  std::vector<std::size_t> out;
  for (const auto& [flow, entry] : map_) {
    (void)flow;
    if (entry.closing) continue;
    if (entry.backend >= out.size()) out.resize(entry.backend + 1, 0);
    ++out[entry.backend];
  }
  return out;
}

}  // namespace inband
