// Connection tracking for per-connection consistency.
//
// Once a flow has been routed, every later packet of that flow must reach
// the same backend even if the routing table changes underneath (§2.5's
// connection-to-server affinity requirement). Entries are created on SYN,
// marked on FIN/RST, and expire by idle timeout via an amortized sweep; a
// capacity bound evicts the stalest entries when the table would overflow.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "lb/backend.h"
#include "net/flow.h"
#include "util/shard.h"
#include "util/time.h"

namespace inband {

class AuditScope;
class StateDigest;

struct ConntrackConfig {
  std::size_t max_entries = 1 << 20;
  SimTime idle_timeout = sec(60);
  // A flow that has seen FIN/RST lingers briefly to absorb retransmissions.
  SimTime closing_linger = ms(50);
  SimTime sweep_interval = sec(1);
};

INBAND_SHARD_LOCAL(lb)
class ConnTracker {
 public:
  explicit ConnTracker(ConntrackConfig config = {});

  // Returns the backend for `flow`, or kNoBackend on miss. Refreshes the
  // entry's last-seen time on hit.
  BackendId lookup(const FlowKey& flow, SimTime now);

  // Inserts or overwrites the mapping.
  void insert(const FlowKey& flow, BackendId backend, SimTime now);

  // Marks the flow as closing (entry expires after closing_linger).
  // Returns true only on the transition (false if absent or already closing),
  // so callers can fire close-hooks exactly once per flow.
  bool mark_closing(const FlowKey& flow, SimTime now);

  // Removes expired entries; called opportunistically by the LB.
  void sweep(SimTime now);

  std::size_t size() const { return map_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t expirations() const { return expirations_; }

  // Live (non-closing) connections per backend id.
  std::vector<std::size_t> connections_per_backend() const;

  // Invariant audit: capacity bound holds, every entry's timestamps are in
  // the past, and closing entries carry a close mark. When `backend_limit`
  // is not kNoBackend, every pinned backend id must be below it (the LB
  // passes its pool size — forwarding indexes an array with this id).
  void audit_invariants(AuditScope& scope,
                        BackendId backend_limit = kNoBackend) const;

  // Order-independent digest of the whole table plus counters.
  void digest_state(StateDigest& digest) const;

 private:
  struct Entry {
    BackendId backend;
    SimTime last_seen;
    bool closing = false;
    SimTime close_marked = kNoTime;
  };

  bool expired(const Entry& e, SimTime now) const;
  void evict_one(SimTime now);

  ConntrackConfig config_;
  std::unordered_map<FlowKey, Entry, FlowKeyHash> map_;
  SimTime last_sweep_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t expirations_ = 0;
};

}  // namespace inband
