// Maglev consistent hashing (Eisenbud et al., NSDI '16), with weights and an
// incremental slot-shift operation.
//
// The table is populated with the paper's permutation scheme: each backend
// derives (offset, skip) from two hashes of its name and claims slots in
// round-robin turns; weights grant proportionally more turns per round.
// Lookup is a single modulo + array read.
//
// shift_slots(from, fraction) reassigns a fraction of the *total table* away
// from one backend, spreading the slots equally over the remaining healthy
// backends — this is the α-shift primitive the paper's controller applies to
// "the LB's hash table". Shifted slots are chosen deterministically from the
// victim's slot list; existing connections are unaffected because the
// dataplane consults conntrack before the table.
#pragma once

#include <cstdint>
#include <vector>

#include "lb/backend.h"
#include "net/flow.h"
#include "util/rng.h"
#include "util/shard.h"

namespace inband {

class AuditScope;
class StateDigest;

INBAND_SHARD_LOCAL(lb)
class MaglevTable {
 public:
  // table_size must be a prime (asserted); 65537 in the Maglev paper's small
  // configuration, smaller primes are fine for tests.
  explicit MaglevTable(std::uint64_t table_size = 65537,
                       std::uint64_t hash_seed = 0xab5e1ef7ULL);

  // (Re)builds the table for the given pool. Unhealthy and zero-weight
  // backends get no slots. At least one eligible backend is required.
  void build(const BackendPool& pool);

  // Backend for a flow (hash of the 5-tuple modulo table size).
  BackendId lookup(const FlowKey& flow) const;
  BackendId lookup_hash(std::uint64_t hash) const;

  // Moves ceil(fraction * table_size) slots away from `from`, equally over
  // the other backends present in the table (round-robin). Returns the
  // number of slots actually moved (bounded by how many `from` owns).
  std::size_t shift_slots(BackendId from, double fraction);

  // Moves `count` slots from `from` to `to`. Returns slots moved.
  std::size_t move_slots(BackendId from, BackendId to, std::size_t count);

  std::uint64_t table_size() const { return table_size_; }
  std::size_t slots_owned(BackendId id) const;
  // Fraction of the table owned by each backend id present.
  std::vector<double> shares() const;
  const std::vector<BackendId>& raw_table() const { return table_; }

  // Number of slots that differ between this table and `other` (same size).
  std::size_t diff(const MaglevTable& other) const;

  // Invariant audit: the table is fully populated (build() ran), every slot
  // owner is a known backend id and — when a pool is supplied — a backend
  // that actually exists in the pool. This is the permutation-validity check
  // the α-shift fast path relies on: lookup() is an unchecked array read.
  void audit_invariants(AuditScope& scope, const BackendPool* pool) const;

  // Folds the full slot assignment into a determinism digest.
  void digest_state(StateDigest& digest) const;

  // Fault injection for the auditor's negative tests: overwrites one slot,
  // bypassing every consistency guarantee. Never call outside tests.
  void corrupt_slot_for_test(std::size_t slot, BackendId id);

 private:
  std::uint64_t table_size_;
  std::uint64_t seed_;
  std::vector<BackendId> table_;
  BackendId max_backend_id_ = 0;
  // Receiver scratch for shift_slots(): reused across calls so the periodic
  // α-shift control loop stays off the allocator once warmed.
  std::vector<BackendId> shift_receivers_;
};

}  // namespace inband
