// Baseline routing policies: static Maglev (the paper's comparison point),
// round-robin, weighted random, and least-connections.
#pragma once

#include <memory>

#include "lb/conntrack.h"
#include "lb/maglev.h"
#include "lb/policy.h"
#include "util/rng.h"
#include "util/shard.h"

namespace inband {

// The regular Maglev LB of Fig. 3: a hash table built once from the pool.
INBAND_SHARD_LOCAL(lb)
class StaticMaglevPolicy final : public RoutingPolicy {
 public:
  StaticMaglevPolicy(const BackendPool& pool, std::uint64_t table_size = 65537,
                     std::uint64_t hash_seed = 0xab5e1ef7ULL);

  std::string name() const override { return "maglev-static"; }
  BackendId pick(const FlowKey& flow, SimTime now) override;
  void on_pool_change(const BackendPool& pool) override;

  const MaglevTable& table() const { return table_; }

 private:
  MaglevTable table_;
};

// Cycles through healthy backends.
INBAND_SHARD_LOCAL(lb)
class RoundRobinPolicy final : public RoutingPolicy {
 public:
  explicit RoundRobinPolicy(const BackendPool& pool);

  std::string name() const override { return "round-robin"; }
  BackendId pick(const FlowKey& flow, SimTime now) override;
  void on_pool_change(const BackendPool& pool) override { pool_ = pool; }

 private:
  BackendPool pool_;
  std::size_t next_ = 0;
};

// Weight-proportional random choice.
INBAND_SHARD_LOCAL(lb)
class WeightedRandomPolicy final : public RoutingPolicy {
 public:
  WeightedRandomPolicy(const BackendPool& pool, std::uint64_t seed);

  std::string name() const override { return "weighted-random"; }
  BackendId pick(const FlowKey& flow, SimTime now) override;
  void on_pool_change(const BackendPool& pool) override;

 private:
  BackendPool pool_;
  std::uint64_t total_weight_ = 0;
  Rng rng_;
};

// Fewest live connections. Counts flows itself from the signals every L4 LB
// has: a pick() opens a flow, an observed FIN/RST closes it. (Flows that die
// silently are reaped against a generous idle assumption by periodically
// reconciling with pick volume; for the simulated workloads, FIN/RST
// coverage is complete.)
INBAND_SHARD_LOCAL(lb)
class LeastConnPolicy final : public RoutingPolicy {
 public:
  explicit LeastConnPolicy(const BackendPool& pool);

  std::string name() const override { return "least-conn"; }
  BackendId pick(const FlowKey& flow, SimTime now) override;
  void on_flow_closed(const FlowKey& flow, BackendId backend,
                      SimTime now) override;
  void on_pool_change(const BackendPool& pool) override;

  std::uint64_t live_connections(BackendId id) const;

 private:
  BackendPool pool_;
  std::vector<std::uint64_t> live_;
};

}  // namespace inband
