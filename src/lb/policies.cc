#include "lb/policies.h"

#include "util/assert.h"

namespace inband {

StaticMaglevPolicy::StaticMaglevPolicy(const BackendPool& pool,
                                       std::uint64_t table_size,
                                       std::uint64_t hash_seed)
    : table_{table_size, hash_seed} {
  table_.build(pool);
}

BackendId StaticMaglevPolicy::pick(const FlowKey& flow, SimTime now) {
  (void)now;
  return table_.lookup(flow);
}

void StaticMaglevPolicy::on_pool_change(const BackendPool& pool) {
  table_.build(pool);
}

RoundRobinPolicy::RoundRobinPolicy(const BackendPool& pool) : pool_{pool} {
  INBAND_ASSERT(!pool_.empty());
}

BackendId RoundRobinPolicy::pick(const FlowKey& flow, SimTime now) {
  (void)flow;
  (void)now;
  for (std::size_t tried = 0; tried < pool_.size(); ++tried) {
    const Backend& b = pool_[next_];
    next_ = (next_ + 1) % pool_.size();
    if (b.healthy && b.weight > 0) return b.id;
  }
  return kNoBackend;
}

WeightedRandomPolicy::WeightedRandomPolicy(const BackendPool& pool,
                                           std::uint64_t seed)
    : pool_{pool}, rng_{seed} {
  for (const auto& b : pool_) {
    if (b.healthy) total_weight_ += b.weight;
  }
  INBAND_ASSERT(total_weight_ > 0, "no healthy weighted backend");
}

void WeightedRandomPolicy::on_pool_change(const BackendPool& pool) {
  pool_ = pool;
  total_weight_ = 0;
  for (const auto& b : pool_) {
    if (b.healthy) total_weight_ += b.weight;
  }
}

BackendId WeightedRandomPolicy::pick(const FlowKey& flow, SimTime now) {
  (void)flow;
  (void)now;
  std::uint64_t r = rng_.uniform_u64(0, total_weight_ - 1);
  for (const auto& b : pool_) {
    if (!b.healthy) continue;
    if (r < b.weight) return b.id;
    r -= b.weight;
  }
  return kNoBackend;
}

LeastConnPolicy::LeastConnPolicy(const BackendPool& pool) : pool_{pool} {
  INBAND_ASSERT(!pool_.empty());
  std::size_t max_id = 0;
  for (const auto& b : pool_) max_id = std::max<std::size_t>(max_id, b.id);
  live_.assign(max_id + 1, 0);
}

BackendId LeastConnPolicy::pick(const FlowKey& flow, SimTime now) {
  (void)flow;
  (void)now;
  BackendId best = kNoBackend;
  std::uint64_t best_count = 0;
  for (const auto& b : pool_) {
    if (!b.healthy || b.weight == 0) continue;
    const std::uint64_t c = live_[b.id];
    if (best == kNoBackend || c < best_count) {
      best = b.id;
      best_count = c;
    }
  }
  if (best != kNoBackend) ++live_[best];
  return best;
}

void LeastConnPolicy::on_flow_closed(const FlowKey& flow, BackendId backend,
                                     SimTime now) {
  (void)flow;
  (void)now;
  if (backend < live_.size() && live_[backend] > 0) --live_[backend];
}

void LeastConnPolicy::on_pool_change(const BackendPool& pool) {
  pool_ = pool;
  std::size_t max_id = 0;
  for (const auto& b : pool_) max_id = std::max<std::size_t>(max_id, b.id);
  if (live_.size() <= max_id) live_.resize(max_id + 1, 0);
}

std::uint64_t LeastConnPolicy::live_connections(BackendId id) const {
  INBAND_ASSERT(id < live_.size());
  return live_[id];
}

}  // namespace inband
