// Routing-policy interface for the LB dataplane.
//
// A policy decides where *new* flows go and observes every client→server
// packet the LB forwards (after conntrack resolution, so the packet comes
// annotated with the backend it is bound to). The observation hook is the
// entire vantage the paper allows: requests only, no responses.
#pragma once

#include <string>

#include "lb/backend.h"
#include "net/packet.h"
#include "util/shard.h"
#include "util/time.h"

namespace inband {

class AuditScope;
class StateDigest;

INBAND_SHARD_LOCAL(lb)
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  virtual std::string name() const = 0;

  // Backend for a new flow; kNoBackend refuses (the LB drops the packet).
  virtual BackendId pick(const FlowKey& flow, SimTime now) = 0;

  // Every forwarded client→server packet, annotated with its backend and
  // whether this packet created the flow's conntrack entry.
  virtual void on_packet(const Packet& pkt, BackendId backend, SimTime now,
                         bool new_flow) {
    (void)pkt;
    (void)backend;
    (void)now;
    (void)new_flow;
  }

  // The flow was seen finishing (FIN or RST through the LB).
  virtual void on_flow_closed(const FlowKey& flow, BackendId backend,
                              SimTime now) {
    (void)flow;
    (void)backend;
    (void)now;
  }

  // The backend pool changed (health flip, weight change). Policies that
  // precompute structures (hash tables, weight sums) rebuild here. Existing
  // connections are unaffected: conntrack pins them until they finish.
  virtual void on_pool_change(const BackendPool& pool) { (void)pool; }

  // Invariant audit over the policy's internal structures (hash tables,
  // per-flow state). Default: nothing to audit.
  virtual void audit_invariants(AuditScope& scope) const { (void)scope; }

  // Folds policy state into a determinism digest. Default: nothing beyond
  // what the LB itself digests.
  virtual void digest_state(StateDigest& digest) const { (void)digest; }
};

}  // namespace inband
