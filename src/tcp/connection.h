// TCP connection state machine.
//
// Implements the subset of TCP that matters for the paper's phenomena:
//  * three-way handshake (with SYN retransmission) — the LB observes the
//    client's SYN and handshake ACK, the classic proxy-RTT special case;
//  * reliable in-order delivery with cumulative, piggybacked ACKs;
//  * a fixed flow-control window (min of cwnd and the peer's advertised
//    window) — the "quota" whose exhaustion creates inter-batch pauses;
//  * optional delayed ACKs and packet pacing (§5 timing violations);
//  * RTT measurement via the timestamp option (ground truth T_client);
//  * graceful FIN teardown, RST abort, and TIME_WAIT.
//
// Not modelled (documented simplifications): congestion control, SACK,
// window scaling as a negotiated option (windows are plain 32-bit byte
// counts), Nagle (memcached-style apps disable it), and simultaneous open.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/simulator.h"
#include "tcp/config.h"
#include "util/hotpath.h"
#include "tcp/recv_buffer.h"
#include "tcp/send_buffer.h"
#include "util/shard.h"

namespace inband {

class AuditScope;
class StateDigest;
class TcpStack;

enum class TcpState {
  kClosed,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kLastAck,
  kClosing,
  kTimeWait,
};

const char* tcp_state_name(TcpState s);

INBAND_SHARD_LOCAL(shard)
class TcpConnection {
 public:
  // Application callbacks. Set before open()/first packet; any may be null.
  struct Callbacks {
    std::function<void(TcpConnection&)> on_established;
    // One application message delivered in order.
    std::function<void(TcpConnection&, std::shared_ptr<const AppPayload>)>
        on_message;
    // In-order payload bytes delivered (fires alongside on_message).
    std::function<void(TcpConnection&, std::uint64_t)> on_data;
    // Peer sent FIN (half-close); local side may still send.
    std::function<void(TcpConnection&)> on_peer_close;
    // Connection fully terminated (graceful or reset). Last callback; the
    // connection object is reaped right after it returns.
    std::function<void(TcpConnection&, bool reset)> on_closed;
    // Sender-side RTT sample from the timestamp option.
    std::function<void(TcpConnection&, SimTime rtt)> on_rtt_sample;
  };

  TcpConnection(TcpStack& stack, FlowKey key_local_view, TcpConfig config,
                std::uint32_t isn, bool active_open);
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  Callbacks& callbacks() { return cb_; }

  // Active open: transmits the SYN. Call once, after setting callbacks.
  void open();

  // Queues one application message of `wire_bytes` for transmission.
  void send_message(std::shared_ptr<const AppPayload> payload,
                    std::uint32_t wire_bytes);

  // Queues `n` bulk bytes (no message boundary).
  void send_bytes(std::uint64_t n);

  // Graceful close: FIN after all queued data is sent.
  void close();

  // Hard abort: sends RST and tears down immediately.
  void abort();

  INBAND_HOT void on_packet(const Packet& pkt);

  // --- Introspection (tests, apps, telemetry) ---
  TcpState state() const { return state_; }
  // True when the application may still queue data (established-ish and no
  // local close() issued yet).
  bool can_send() const {
    return !close_requested_ && (state_ == TcpState::kEstablished ||
                                 state_ == TcpState::kCloseWait);
  }
  const FlowKey& key() const { return key_; }  // {local, remote}
  const Endpoint& local() const { return key_.src; }
  const Endpoint& remote() const { return key_.dst; }
  const TcpConfig& config() const { return config_; }
  std::uint64_t bytes_in_flight() const { return snd_nxt_ - snd_una_; }
  std::uint64_t bytes_queued() const { return send_buf_.end() - snd_nxt_; }
  std::uint64_t snd_una() const { return snd_una_; }
  std::uint64_t snd_nxt() const { return snd_nxt_; }
  std::uint64_t rcv_nxt() const { return recv_buf_.rcv_nxt(); }
  std::uint64_t effective_window() const;
  SimTime srtt() const { return srtt_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t segments_sent() const { return segments_sent_; }
  std::uint64_t segments_received() const { return segments_received_; }

  // Invariant audit: sequence-number ordering (snd_una <= snd_nxt <= queued
  // end), window/FIN bookkeeping, and RTT estimator sanity.
  void audit_invariants(AuditScope& scope) const;

  // Folds the connection's full transport state into a determinism digest.
  void digest_state(StateDigest& digest) const;

 private:
  friend class TcpStack;

  Simulator& sim();

  // Acquires a pooled buffer and fills the TCP header in place.
  INBAND_HOT PacketRef make_packet(std::uint8_t flags,
                                   std::uint64_t seq_offset,
                                   std::uint32_t payload_len);
  // Hands a segment to the stack — immediately, or into the open burst
  // batch when try_send() is accumulating one.
  INBAND_HOT void emit(PacketRef pkt);
  std::uint32_t advertised_window() const;

  INBAND_HOT void try_send();
  void send_data_segment(std::uint64_t offset, std::uint32_t len,
                         bool retransmission);
  bool maybe_send_fin();
  void send_ack_now();
  void schedule_ack(bool immediate);
  void cancel_delack();

  void handle_ack(const Packet& pkt);
  void handle_data(const Packet& pkt);
  void process_fin_if_reached();

  void arm_retx();
  void disarm_retx();
  void on_retx_timeout();
  void update_rtt(SimTime sample);

  void enter_time_wait();
  void teardown(bool reset_seen);

  TcpStack& stack_;
  FlowKey key_;  // local view: src == local endpoint
  TcpConfig config_;
  Callbacks cb_;
  TcpState state_ = TcpState::kClosed;

  // Send side (absolute stream offsets; 0 == ISN).
  std::uint32_t isn_;
  SendBuffer send_buf_;
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t peer_rwnd_ = 0;
  bool close_requested_ = false;
  bool fin_sent_ = false;
  std::uint64_t fin_offset_ = 0;  // valid once fin_sent_

  // Receive side.
  std::uint32_t irs_ = 0;
  RecvBuffer recv_buf_;
  bool peer_fin_seen_ = false;
  std::uint64_t peer_fin_offset_ = 0;  // stream offset of the FIN itself
  bool peer_fin_processed_ = false;

  // Timestamp option state.
  SimTime ts_recent_ = kNoTime;

  // Non-null only while try_send() is accumulating an unpaced burst; emit()
  // then appends instead of outputting one segment at a time.
  PacketBatch* open_batch_ = nullptr;

  // Timers.
  EventId retx_timer_ = kInvalidEventId;
  SimTime rto_;
  SimTime srtt_ = 0;
  SimTime rttvar_ = 0;
  int retx_attempts_ = 0;
  EventId delack_timer_ = kInvalidEventId;
  int unacked_segments_ = 0;
  EventId time_wait_timer_ = kInvalidEventId;
  EventId pace_timer_ = kInvalidEventId;
  SimTime next_pace_ = 0;

  // Stats.
  std::uint64_t retransmits_ = 0;
  std::uint64_t segments_sent_ = 0;
  std::uint64_t segments_received_ = 0;
};

}  // namespace inband
