// TCP receive-side reassembly.
//
// Maintains rcv_nxt (absolute stream offset) and a sorted list of
// out-of-order segments. Delivery is strictly in-order; message objects are
// surfaced exactly when the stream reaches their end offset. Duplicate
// message delivery (possible when retransmitted segments overlap) is
// suppressed by tracking the largest delivered message end offset.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.h"  // MessageRef, MsgList
#include "util/shard.h"

namespace inband {

INBAND_SHARD_LOCAL(owner)
class RecvBuffer {
 public:
  // The first expected app byte is offset 1 (offset 0 was the SYN).
  RecvBuffer() = default;

  struct Delivery {
    std::uint64_t bytes = 0;  // newly delivered in-order payload bytes
    MsgList messages;
    bool out_of_order = false;  // segment did not advance rcv_nxt
    bool duplicate = false;     // segment carried no new data at all
  };

  // Ingests payload [start, end) carrying `msgs`. Offsets are absolute.
  Delivery on_segment(std::uint64_t start, std::uint64_t end,
                      const MsgList& msgs);

  std::uint64_t rcv_nxt() const { return rcv_nxt_; }

  // Bytes held in the out-of-order store (reduces the advertised window).
  std::uint64_t buffered_bytes() const;

  std::size_t ooo_segments() const { return ooo_.size(); }

 private:
  struct OooSegment {
    std::uint64_t start;
    std::uint64_t end;
    MsgList msgs;
  };

  void stash(std::uint64_t start, std::uint64_t end, const MsgList& msgs);
  void drain(Delivery& out);
  void deliver_messages(const MsgList& msgs, std::uint64_t limit,
                        Delivery& out);

  std::uint64_t rcv_nxt_ = 1;
  std::uint64_t last_delivered_msg_end_ = 0;
  std::vector<OooSegment> ooo_;  // sorted by start, non-overlapping
};

}  // namespace inband
