// TCP send buffer.
//
// Tracks the application byte stream in absolute stream offsets (0 == ISN,
// so the first app byte is offset 1, after the SYN). Payload *content* is
// just a byte count; application message objects are retained with the
// stream offset at which they end so that (re)transmitted segments can carry
// the right MessageRefs until the data is acknowledged.
#pragma once

#include <cstdint>
#include <memory>

#include "net/packet.h"
#include "util/ring_buffer.h"
#include "util/shard.h"

namespace inband {

INBAND_SHARD_LOCAL(owner)
class SendBuffer {
 public:
  // First app byte sits at stream offset 1 (offset 0 is the SYN).
  SendBuffer() = default;

  // Appends n bytes with no message boundary (bulk data).
  void append_bytes(std::uint64_t n) { end_ += n; }

  // Appends one application message occupying `wire_bytes` bytes.
  void append_message(std::shared_ptr<const AppPayload> payload,
                      std::uint32_t wire_bytes);

  // One past the last queued byte (absolute stream offset).
  std::uint64_t end() const { return end_; }

  // Message refs with end_offset in (range_start, range_end]; used when
  // building a segment covering that range. Returns a MsgList so the common
  // zero/one-message segment allocates nothing.
  MsgList messages_in(std::uint64_t range_start,
                      std::uint64_t range_end) const;

  // Drops bookkeeping for messages fully acknowledged below `snd_una`.
  void release_acked(std::uint64_t snd_una);

  std::size_t pending_messages() const { return msgs_.size(); }

 private:
  std::uint64_t end_ = 1;
  RingBuffer<MessageRef> msgs_;  // sorted by end_offset (append-only order)
};

}  // namespace inband
