// Host-level TCP: connection demultiplexing, listeners, port allocation.
//
// One TcpStack per host. Demux keys on the full 4-tuple as seen from the
// local side; listeners match on destination port only, irrespective of the
// destination address — exactly the loopback-VIP configuration of a real
// direct-server-return backend, which accepts traffic addressed to the VIP
// arriving on its own NIC.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "tcp/connection.h"
#include "util/rng.h"
#include "util/shard.h"

namespace inband {

INBAND_SHARD_LOCAL(shard)
class TcpStack {
 public:
  // Called when a SYN creates a new passive connection, before the SYN+ACK
  // goes out; set callbacks on the connection here.
  using AcceptCallback = std::function<void(TcpConnection&)>;

  TcpStack(Host& host, TcpConfig default_config, std::uint64_t seed);
  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  // Creates an active-open connection to `remote` from an ephemeral local
  // port. Set callbacks on the returned connection, then call open() on it.
  // The pointer stays valid until the on_closed callback returns.
  TcpConnection* connect(Endpoint remote);
  TcpConnection* connect(Endpoint remote, const TcpConfig& config);

  void listen(std::uint16_t port, AcceptCallback cb);

  // Entry point from the owning host. The packet is borrowed for the call:
  // batch delivery hands each pooled element here without copying it out.
  INBAND_HOT void on_packet(const Packet& pkt);

  TcpConnection* find(const FlowKey& local_view);
  std::size_t connection_count() const { return conns_.size(); }

  Host& host() { return host_; }
  Simulator& sim() { return host_.sim(); }
  PacketPool& pool() { return host_.network().pool(); }
  const TcpConfig& default_config() const { return default_config_; }

  std::uint64_t resets_sent() const { return resets_sent_; }
  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t initiated() const { return initiated_; }

  // Invariant audit: demux-map key consistency plus every connection's own
  // sequence/window invariants.
  void audit_invariants(AuditScope& scope) const;

  // Order-independent digest over all live connections plus stack-level
  // counters and the port/ISN RNG state.
  void digest_state(StateDigest& digest) const;

 private:
  friend class TcpConnection;

  INBAND_HOT void output(PacketRef pkt);
  INBAND_HOT void output_batch(Ipv4 to, PacketBatch& batch);
  // Defers destruction of a closed connection to a fresh event.
  void reap(const FlowKey& key);
  std::uint16_t allocate_port();
  std::uint32_t make_isn();
  void send_rst_for(const Packet& pkt);
  bool port_in_use(std::uint16_t port) const;

  Host& host_;
  TcpConfig default_config_;
  Rng rng_;
  std::unordered_map<FlowKey, std::unique_ptr<TcpConnection>, FlowKeyHash>
      conns_;
  std::unordered_map<std::uint16_t, AcceptCallback> listeners_;
  std::uint16_t next_ephemeral_ = 32768;
  std::uint64_t conn_counter_ = 0;
  std::uint64_t resets_sent_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t initiated_ = 0;
};

// Convenience host owning a TCP stack.
INBAND_SHARD_LOCAL(shard)
class TcpHost : public Host {
 public:
  TcpHost(Simulator& sim, Network& net, Ipv4 addr, std::string name,
          TcpConfig config = {}, std::uint64_t seed = 1)
      : Host(sim, net, addr, std::move(name)),
        stack_(*this, config, seed) {}

  TcpStack& stack() { return stack_; }

  // Native batch delivery: segments are processed in place, straight out of
  // the pooled buffers; nothing is copied onto this hop.
  INBAND_HOT void handle_batch(PacketBatch&& batch) override {
    for (std::uint32_t i = 0; i < batch.size(); ++i) {
      stack_.on_packet(*batch[i]);
    }
  }

  void handle_packet(Packet pkt) override { stack_.on_packet(pkt); }

 private:
  TcpStack stack_;
};

}  // namespace inband
