#include "tcp/connection.h"

#include <algorithm>

#include "check/invariant_auditor.h"
#include "check/state_digest.h"
#include "tcp/seq.h"
#include "tcp/stack.h"
#include "util/assert.h"
#include "util/logging.h"

namespace inband {

const char* tcp_state_name(TcpState s) {
  switch (s) {
    case TcpState::kClosed:
      return "CLOSED";
    case TcpState::kSynSent:
      return "SYN_SENT";
    case TcpState::kSynRcvd:
      return "SYN_RCVD";
    case TcpState::kEstablished:
      return "ESTABLISHED";
    case TcpState::kFinWait1:
      return "FIN_WAIT_1";
    case TcpState::kFinWait2:
      return "FIN_WAIT_2";
    case TcpState::kCloseWait:
      return "CLOSE_WAIT";
    case TcpState::kLastAck:
      return "LAST_ACK";
    case TcpState::kClosing:
      return "CLOSING";
    case TcpState::kTimeWait:
      return "TIME_WAIT";
  }
  return "?";
}

TcpConnection::TcpConnection(TcpStack& stack, FlowKey key_local_view,
                             TcpConfig config, std::uint32_t isn,
                             bool active_open)
    : stack_{stack},
      key_{key_local_view},
      config_{config},
      isn_{isn},
      rto_{config.rto_initial} {
  INBAND_ASSERT(config_.mss > 0);
  INBAND_ASSERT(config_.cwnd_bytes >= config_.mss);
  (void)active_open;
}

Simulator& TcpConnection::sim() { return stack_.sim(); }

// Stream offset the next outgoing ACK acknowledges (data plus processed FIN).
static std::uint64_t ack_offset_of(const RecvBuffer& rb, bool fin_processed,
                                   std::uint64_t fin_offset) {
  return fin_processed ? fin_offset + 1 : rb.rcv_nxt();
}

std::uint32_t TcpConnection::advertised_window() const {
  const std::uint64_t buffered = recv_buf_.buffered_bytes();
  if (buffered >= config_.recv_buffer_bytes) return 0;
  return config_.recv_buffer_bytes - static_cast<std::uint32_t>(buffered);
}

std::uint64_t TcpConnection::effective_window() const {
  return std::min<std::uint64_t>(config_.cwnd_bytes, peer_rwnd_);
}

PacketRef TcpConnection::make_packet(std::uint8_t flags,
                                     std::uint64_t seq_offset,
                                     std::uint32_t payload_len) {
  PacketRef p = stack_.pool().acquire();
  p->flow = key_;
  p->seq = wrap_seq(isn_, seq_offset);
  p->flags = flags;
  p->payload_len = payload_len;
  p->wnd = advertised_window();
  p->ts_val = sim().now();
  if ((flags & tcpflag::kAck) != 0) {
    p->ack = wrap_seq(
        irs_, ack_offset_of(recv_buf_, peer_fin_processed_, peer_fin_offset_));
    p->ts_ecr = ts_recent_;
  }
  return p;
}

void TcpConnection::emit(PacketRef pkt) {
  ++segments_sent_;
  if (pkt->has(tcpflag::kAck)) {
    unacked_segments_ = 0;
    cancel_delack();
  }
  if (open_batch_ != nullptr) {
    if (open_batch_->full()) {
      stack_.output_batch(key_.dst.addr, *open_batch_);  // clears the batch
    }
    open_batch_->push(std::move(pkt));
    return;
  }
  stack_.output(std::move(pkt));
}

void TcpConnection::open() {
  INBAND_ASSERT(state_ == TcpState::kClosed, "open() on used connection");
  state_ = TcpState::kSynSent;
  snd_una_ = 0;
  snd_nxt_ = 1;  // SYN occupies offset 0
  emit(make_packet(tcpflag::kSyn, 0, 0));
  arm_retx();
}

void TcpConnection::send_message(std::shared_ptr<const AppPayload> payload,
                                 std::uint32_t wire_bytes) {
  INBAND_ASSERT(!close_requested_, "send after close()");
  send_buf_.append_message(std::move(payload), wire_bytes);
  try_send();
}

void TcpConnection::send_bytes(std::uint64_t n) {
  INBAND_ASSERT(!close_requested_, "send after close()");
  send_buf_.append_bytes(n);
  try_send();
}

void TcpConnection::close() {
  if (close_requested_) return;
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    // Closing an unestablished connection: no peer state to unwind.
    teardown(false);
    return;
  }
  close_requested_ = true;
  try_send();
}

void TcpConnection::abort() {
  if (state_ == TcpState::kClosed) return;
  emit(make_packet(tcpflag::kRst | tcpflag::kAck, snd_nxt_, 0));
  teardown(true);
}

void TcpConnection::on_packet(const Packet& pkt) {
  ++segments_received_;

  if (pkt.has(tcpflag::kRst)) {
    teardown(true);
    return;
  }

  switch (state_) {
    case TcpState::kClosed: {
      // Passive open: the stack routes the initial SYN here.
      if (!pkt.has(tcpflag::kSyn) || pkt.has(tcpflag::kAck)) return;
      irs_ = pkt.seq;
      ts_recent_ = pkt.ts_val;
      peer_rwnd_ = pkt.wnd;
      state_ = TcpState::kSynRcvd;
      snd_una_ = 0;
      snd_nxt_ = 1;
      emit(make_packet(tcpflag::kSyn | tcpflag::kAck, 0, 0));
      arm_retx();
      return;
    }
    case TcpState::kSynSent: {
      if (pkt.has(tcpflag::kSyn) && pkt.has(tcpflag::kAck)) {
        const std::int64_t una = unwrap_seq(isn_, pkt.ack, snd_una_);
        if (una < 1) return;  // does not cover our SYN
        irs_ = pkt.seq;
        ts_recent_ = pkt.ts_val;
        peer_rwnd_ = pkt.wnd;
        snd_una_ = 1;
        retx_attempts_ = 0;
        disarm_retx();
        if (pkt.ts_ecr != kNoTime) {
          update_rtt(sim().now() - pkt.ts_ecr);
          if (cb_.on_rtt_sample) cb_.on_rtt_sample(*this, srtt_);
        }
        state_ = TcpState::kEstablished;
        send_ack_now();
        if (cb_.on_established) cb_.on_established(*this);
        try_send();
      }
      return;
    }
    case TcpState::kSynRcvd: {
      if (pkt.has(tcpflag::kSyn) && !pkt.has(tcpflag::kAck)) {
        // Duplicate SYN (our SYN+ACK may be lost); retransmit timer covers
        // recovery, but answering immediately is cheap and realistic.
        emit(make_packet(tcpflag::kSyn | tcpflag::kAck, 0, 0));
        return;
      }
      if (!pkt.has(tcpflag::kAck)) return;
      const std::int64_t una = unwrap_seq(isn_, pkt.ack, snd_una_);
      if (una < 1) return;
      state_ = TcpState::kEstablished;
      retx_attempts_ = 0;
      disarm_retx();
      if (cb_.on_established) cb_.on_established(*this);
      break;  // fall through to common processing (ACK may carry data)
    }
    case TcpState::kTimeWait: {
      // Retransmitted FIN from the peer: re-ack it.
      if (pkt.has(tcpflag::kFin)) send_ack_now();
      return;
    }
    default:
      break;
  }

  // Common processing for established and closing states.
  if (pkt.ts_val != kNoTime) {
    const std::int64_t seg_off = unwrap_seq(irs_, pkt.seq, recv_buf_.rcv_nxt());
    const auto ack_off = static_cast<std::int64_t>(
        ack_offset_of(recv_buf_, peer_fin_processed_, peer_fin_offset_));
    if (seg_off <= ack_off) ts_recent_ = pkt.ts_val;
  }
  if (pkt.has(tcpflag::kAck)) handle_ack(pkt);
  if (state_ == TcpState::kClosed) return;  // handle_ack may finish teardown
  if (pkt.payload_len > 0 || pkt.has(tcpflag::kFin)) handle_data(pkt);
  if (state_ == TcpState::kClosed) return;
  try_send();
}

void TcpConnection::handle_ack(const Packet& pkt) {
  peer_rwnd_ = pkt.wnd;
  const std::int64_t una_signed = unwrap_seq(isn_, pkt.ack, snd_una_);
  if (una_signed < 0) return;
  const auto una = static_cast<std::uint64_t>(una_signed);
  if (una > snd_nxt_) return;  // acks data never sent; ignore
  if (una <= snd_una_) return;

  snd_una_ = una;
  send_buf_.release_acked(una);
  retx_attempts_ = 0;
  if (pkt.ts_ecr != kNoTime) {
    const SimTime sample = sim().now() - pkt.ts_ecr;
    update_rtt(sample);
    if (cb_.on_rtt_sample) cb_.on_rtt_sample(*this, sample);
  }

  if (fin_sent_ && snd_una_ > fin_offset_) {
    switch (state_) {
      case TcpState::kFinWait1:
        state_ = TcpState::kFinWait2;
        break;
      case TcpState::kClosing:
        enter_time_wait();
        break;
      case TcpState::kLastAck:
        teardown(false);
        return;
      default:
        break;
    }
  }

  disarm_retx();
  if (snd_nxt_ > snd_una_) arm_retx();
}

void TcpConnection::handle_data(const Packet& pkt) {
  const std::int64_t start_signed =
      unwrap_seq(irs_, pkt.seq, recv_buf_.rcv_nxt());
  if (start_signed < 0) {
    send_ack_now();  // ancient duplicate; re-ack
    return;
  }
  const auto start = static_cast<std::uint64_t>(start_signed);
  const std::uint64_t end = start + pkt.payload_len;

  RecvBuffer::Delivery d;
  if (pkt.payload_len > 0) {
    d = recv_buf_.on_segment(start, end, pkt.msgs);
  }

  if (pkt.has(tcpflag::kFin)) {
    peer_fin_seen_ = true;
    peer_fin_offset_ = end;
  }
  bool fin_just_processed = false;
  if (peer_fin_seen_ && !peer_fin_processed_ &&
      recv_buf_.rcv_nxt() == peer_fin_offset_) {
    peer_fin_processed_ = true;
    fin_just_processed = true;
    switch (state_) {
      case TcpState::kEstablished:
        state_ = TcpState::kCloseWait;
        if (cb_.on_peer_close) cb_.on_peer_close(*this);
        break;
      case TcpState::kFinWait1:
        // Our FIN not yet acked (else we'd be in FIN_WAIT_2).
        state_ = TcpState::kClosing;
        break;
      case TcpState::kFinWait2:
        enter_time_wait();
        break;
      default:
        break;
    }
  }

  if (d.bytes > 0) ++unacked_segments_;

  // Application delivery may immediately queue a response; the response
  // segment piggybacks the ACK, which is the dominant causally-triggered
  // transmission in request/response traffic.
  for (const auto& m : d.messages) {
    if (cb_.on_message) cb_.on_message(*this, m.payload);
    if (state_ == TcpState::kClosed) return;
  }
  if (d.bytes > 0 && cb_.on_data) {
    cb_.on_data(*this, d.bytes);
    if (state_ == TcpState::kClosed) return;
  }

  const bool force_ack = d.duplicate || d.out_of_order || fin_just_processed;
  if (force_ack) {
    send_ack_now();
  } else if (unacked_segments_ > 0) {
    const bool immediate =
        !config_.delayed_ack || unacked_segments_ >= config_.ack_every;
    schedule_ack(immediate);
  }
}

void TcpConnection::try_send() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kFinWait1) {
    return;
  }

  const SimTime now = sim().now();
  if (config_.pacing && now < next_pace_) {
    if (pace_timer_ == kInvalidEventId) {
      pace_timer_ = sim().schedule_at(next_pace_, [this] {
        pace_timer_ = kInvalidEventId;
        try_send();
      });
    }
    return;
  }

  // Unpaced senders burst the whole window at one instant, so the segments
  // accumulate in a stack-local batch and leave through one send_batch()
  // call — same packets, same delivery schedule, one virtual-dispatch pass
  // per layer instead of one per segment. Paced senders emit at most one
  // segment here and stay on the scalar path.
  PacketBatch burst;
  if (!config_.pacing) open_batch_ = &burst;

  while (true) {
    const std::uint64_t wnd = effective_window();
    const std::uint64_t avail_end =
        std::min(snd_una_ + wnd, send_buf_.end());
    if (snd_nxt_ >= avail_end) break;
    const auto len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(config_.mss, avail_end - snd_nxt_));
    send_data_segment(snd_nxt_, len, /*retransmission=*/false);
    snd_nxt_ += len;
    if (config_.pacing) {
      const auto pace_ns = static_cast<SimTime>(
          (static_cast<__uint128_t>(len) * 8u * 1'000'000'000u) /
          config_.pacing_rate_bps);
      next_pace_ = std::max(now, next_pace_) + std::max<SimTime>(pace_ns, 1);
      if (snd_nxt_ < std::min(snd_una_ + effective_window(), send_buf_.end()) &&
          pace_timer_ == kInvalidEventId) {
        pace_timer_ = sim().schedule_at(next_pace_, [this] {
          pace_timer_ = kInvalidEventId;
          try_send();
        });
      }
      break;  // at most one segment per pacing slot
    }
  }

  maybe_send_fin();

  if (open_batch_ != nullptr) {
    open_batch_ = nullptr;
    if (!burst.empty()) stack_.output_batch(key_.dst.addr, burst);
  }

  if (snd_nxt_ > snd_una_ && retx_timer_ == kInvalidEventId) arm_retx();
}

void TcpConnection::send_data_segment(std::uint64_t offset, std::uint32_t len,
                                      bool retransmission) {
  auto msgs = send_buf_.messages_in(offset, offset + len);
  std::uint8_t flags = tcpflag::kAck;
  if (!msgs.empty()) flags |= tcpflag::kPsh;
  PacketRef p = make_packet(flags, offset, len);
  p->msgs = std::move(msgs);
  if (retransmission) ++retransmits_;
  emit(std::move(p));
}

bool TcpConnection::maybe_send_fin() {
  if (!close_requested_ || fin_sent_) return false;
  if (snd_nxt_ != send_buf_.end()) return false;  // data still queued
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    return false;
  }
  fin_offset_ = snd_nxt_;
  fin_sent_ = true;
  emit(make_packet(tcpflag::kFin | tcpflag::kAck, snd_nxt_, 0));
  snd_nxt_ += 1;
  state_ = state_ == TcpState::kEstablished ? TcpState::kFinWait1
                                            : TcpState::kLastAck;
  // Retransmission arming is the caller's epilogue (try_send): after a FIN
  // snd_nxt_ > snd_una_ always holds, so the timer is armed there — after
  // the burst batch flushes, keeping the event-push order of the old
  // emit-immediately path.
  return true;
}

void TcpConnection::send_ack_now() {
  emit(make_packet(tcpflag::kAck, snd_nxt_, 0));
}

void TcpConnection::schedule_ack(bool immediate) {
  if (immediate) {
    send_ack_now();
    return;
  }
  if (delack_timer_ != kInvalidEventId) return;
  delack_timer_ = sim().schedule_after(config_.delack_timeout, [this] {
    delack_timer_ = kInvalidEventId;
    send_ack_now();
  });
}

void TcpConnection::cancel_delack() {
  if (delack_timer_ != kInvalidEventId) {
    sim().cancel(delack_timer_);
    delack_timer_ = kInvalidEventId;
  }
}

void TcpConnection::arm_retx() {
  INBAND_DCHECK(retx_timer_ == kInvalidEventId);
  retx_timer_ = sim().schedule_after(rto_, [this] {
    retx_timer_ = kInvalidEventId;
    on_retx_timeout();
  });
}

void TcpConnection::disarm_retx() {
  if (retx_timer_ != kInvalidEventId) {
    sim().cancel(retx_timer_);
    retx_timer_ = kInvalidEventId;
  }
}

void TcpConnection::on_retx_timeout() {
  ++retx_attempts_;
  if (retx_attempts_ > config_.max_retries) {
    LOG_DEBUG() << "conn " << format_flow(key_) << " gave up after "
                << config_.max_retries << " retries in "
                << tcp_state_name(state_);
    teardown(true);
    return;
  }
  rto_ = std::min(rto_ * 2, config_.rto_max);

  switch (state_) {
    case TcpState::kSynSent:
      ++retransmits_;
      emit(make_packet(tcpflag::kSyn, 0, 0));
      break;
    case TcpState::kSynRcvd:
      ++retransmits_;
      emit(make_packet(tcpflag::kSyn | tcpflag::kAck, 0, 0));
      break;
    default: {
      if (snd_una_ >= snd_nxt_) break;  // nothing outstanding
      if (fin_sent_ && snd_una_ == fin_offset_) {
        ++retransmits_;
        emit(make_packet(tcpflag::kFin | tcpflag::kAck, fin_offset_, 0));
      } else {
        const auto len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            config_.mss,
            std::min(snd_nxt_, send_buf_.end()) - snd_una_));
        if (len > 0) {
          send_data_segment(snd_una_, len, /*retransmission=*/true);
        }
      }
      break;
    }
  }
  arm_retx();
}

void TcpConnection::update_rtt(SimTime sample) {
  if (sample < 0) return;
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const SimTime err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
  rto_ = std::clamp(srtt_ + 4 * rttvar_, config_.rto_min, config_.rto_max);
}

void TcpConnection::enter_time_wait() {
  state_ = TcpState::kTimeWait;
  disarm_retx();
  cancel_delack();
  if (time_wait_timer_ == kInvalidEventId) {
    time_wait_timer_ = sim().schedule_after(config_.time_wait, [this] {
      time_wait_timer_ = kInvalidEventId;
      teardown(false);
    });
  }
}

void TcpConnection::teardown(bool reset_seen) {
  if (state_ == TcpState::kClosed) return;
  state_ = TcpState::kClosed;
  disarm_retx();
  cancel_delack();
  if (time_wait_timer_ != kInvalidEventId) {
    sim().cancel(time_wait_timer_);
    time_wait_timer_ = kInvalidEventId;
  }
  if (pace_timer_ != kInvalidEventId) {
    sim().cancel(pace_timer_);
    pace_timer_ = kInvalidEventId;
  }
  if (cb_.on_closed) cb_.on_closed(*this, reset_seen);
  stack_.reap(key_);
}

void TcpConnection::audit_invariants(AuditScope& scope) const {
  const std::string who = format_flow(key_);
  scope.check(snd_una_ <= snd_nxt_, "snd-una-le-snd-nxt", who);
  scope.check(snd_nxt_ <= send_buf_.end() + (fin_sent_ ? 1 : 0),
              "snd-nxt-within-queued", who);
  if (fin_sent_) {
    scope.check(close_requested_, "fin-implies-close-requested", who);
    scope.check(fin_offset_ == send_buf_.end(), "fin-after-stream-end", who);
  }
  if (peer_fin_seen_) {
    scope.check(recv_buf_.rcv_nxt() <= peer_fin_offset_ + 1,
                "rcv-nxt-within-peer-fin", who);
  }
  if (peer_fin_processed_) {
    scope.check(peer_fin_seen_, "fin-processed-implies-seen", who);
  }
  scope.check(srtt_ >= 0 && rttvar_ >= 0, "rtt-estimator-nonnegative", who);
  scope.check(rto_ > 0, "rto-positive", who);
  scope.check(retx_attempts_ >= 0, "retx-attempts-nonnegative", who);
  scope.check(ts_recent_ == kNoTime || ts_recent_ <= scope.now(),
              "timestamp-echo-in-past", who);
}

void TcpConnection::digest_state(StateDigest& digest) const {
  digest.mix(hash_flow(key_));
  digest.mix_u32(static_cast<std::uint32_t>(state_));
  digest.mix_u32(isn_);
  digest.mix_u32(irs_);
  digest.mix(snd_una_);
  digest.mix(snd_nxt_);
  digest.mix(send_buf_.end());
  digest.mix(peer_rwnd_);
  digest.mix_bool(close_requested_);
  digest.mix_bool(fin_sent_);
  digest.mix(recv_buf_.rcv_nxt());
  digest.mix_bool(peer_fin_seen_);
  digest.mix_i64(ts_recent_);
  digest.mix_i64(srtt_);
  digest.mix_i64(rttvar_);
  digest.mix_i64(rto_);
  digest.mix_i64(next_pace_);
  digest.mix(retransmits_);
  digest.mix(segments_sent_);
  digest.mix(segments_received_);
}

}  // namespace inband
