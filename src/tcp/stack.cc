#include "tcp/stack.h"

#include "check/invariant_auditor.h"
#include "check/state_digest.h"
#include "util/assert.h"
#include "util/hotpath.h"
#include "util/logging.h"
#include "util/sorted_view.h"

namespace inband {

TcpStack::TcpStack(Host& host, TcpConfig default_config, std::uint64_t seed)
    : host_{host},
      default_config_{default_config},
      rng_{splitmix64(seed ^ host.addr())} {}

std::uint32_t TcpStack::make_isn() {
  ++conn_counter_;
  if (default_config_.random_isn) {
    return static_cast<std::uint32_t>(rng_());
  }
  // Deterministic but distinct per connection; tests exercising wraparound
  // override via the connection config path.
  return static_cast<std::uint32_t>(conn_counter_ * 0x01000193u);
}

bool TcpStack::port_in_use(std::uint16_t port) const {
  // detlint:allow(unordered-iter): pure existence test; the answer is independent of visit order
  for (const auto& [key, conn] : conns_) {
    (void)conn;
    if (key.src.port == port) return true;
  }
  return false;
}

std::uint16_t TcpStack::allocate_port() {
  for (int attempts = 0; attempts < 65536; ++attempts) {
    const std::uint16_t candidate = next_ephemeral_;
    next_ephemeral_ =
        next_ephemeral_ >= 60999 ? 32768 : static_cast<std::uint16_t>(
                                               next_ephemeral_ + 1);
    if (!port_in_use(candidate) &&
        listeners_.find(candidate) == listeners_.end()) {
      return candidate;
    }
  }
  INBAND_ASSERT(false, "ephemeral port space exhausted");
  return 0;
}

TcpConnection* TcpStack::connect(Endpoint remote) {
  return connect(remote, default_config_);
}

TcpConnection* TcpStack::connect(Endpoint remote, const TcpConfig& config) {
  const Endpoint local{host_.addr(), allocate_port()};
  const FlowKey key{local, remote, IpProto::kTcp};
  auto conn = std::make_unique<TcpConnection>(*this, key, config, make_isn(),
                                              /*active_open=*/true);
  auto* ptr = conn.get();
  const auto [it, inserted] = conns_.emplace(key, std::move(conn));
  (void)it;
  INBAND_ASSERT(inserted, "duplicate connection key");
  ++initiated_;
  return ptr;
}

void TcpStack::listen(std::uint16_t port, AcceptCallback cb) {
  INBAND_ASSERT(cb != nullptr);
  const auto [it, inserted] = listeners_.emplace(port, std::move(cb));
  (void)it;
  INBAND_ASSERT(inserted, "port already listening");
}

TcpConnection* TcpStack::find(const FlowKey& local_view) {
  const auto it = conns_.find(local_view);
  return it == conns_.end() ? nullptr : it->second.get();
}

void TcpStack::on_packet(const Packet& pkt) {
  const FlowKey local_view = pkt.flow.reversed();
  if (auto* conn = find(local_view)) {
    conn->on_packet(pkt);
    return;
  }
  // No connection. A SYN to a listening port creates one; anything else
  // (except an RST) is answered with RST, as a real stack would.
  if (pkt.has(tcpflag::kSyn) && !pkt.has(tcpflag::kAck)) {
    const auto lit = listeners_.find(pkt.flow.dst.port);
    if (lit != listeners_.end()) {
      INBAND_COLD_OK("connection admission: once per flow, not per segment");
      auto conn = std::make_unique<TcpConnection>(
          *this, local_view, default_config_, make_isn(),
          /*active_open=*/false);
      auto* ptr = conn.get();
      conns_.emplace(local_view, std::move(conn));
      ++accepted_;
      lit->second(*ptr);      // app installs callbacks
      ptr->on_packet(pkt);    // processes the SYN, sends SYN+ACK
      return;
    }
  }
  if (!pkt.has(tcpflag::kRst)) send_rst_for(pkt);
}

void TcpStack::send_rst_for(const Packet& pkt) {
  PacketRef rst = pool().acquire();
  rst->flow = pkt.flow.reversed();
  rst->flags = tcpflag::kRst | tcpflag::kAck;
  rst->seq = pkt.ack;  // plausible; peers tear down on any RST in this model
  rst->ack = pkt.seq + pkt.seq_len();
  ++resets_sent_;
  output(std::move(rst));
}

void TcpStack::output(PacketRef pkt) { host_.send(std::move(pkt)); }

void TcpStack::output_batch(Ipv4 to, PacketBatch& batch) {
  host_.send_batch(to, batch);
}

void TcpStack::reap(const FlowKey& key) {
  // Deferred: the connection may be deep in its own call stack right now.
  sim().schedule_after(0, [this, key] {
    const auto it = conns_.find(key);
    if (it != conns_.end() && it->second->state() == TcpState::kClosed) {
      conns_.erase(it);
    }
  });
}

void TcpStack::audit_invariants(AuditScope& scope) const {
  // Sorted snapshot: per-connection audits run (and report failures) in
  // flow-key order, so a failing run reports identically across reruns.
  for (const auto* e : sorted_entries(conns_)) {
    const auto& [key, conn] = *e;
    if (!scope.check(conn != nullptr, "demux-entry-live", format_flow(key))) {
      continue;
    }
    scope.check(conn->key() == key, "demux-key-matches-connection",
                format_flow(key));
    conn->audit_invariants(scope);
  }
  scope.check(conn_counter_ == initiated_ + accepted_,
              "connection-counter-consistent");
  scope.check(conns_.size() <= conn_counter_, "live-bounded-by-created");
}

void TcpStack::digest_state(StateDigest& digest) const {
  UnorderedDigest conns;
  // detlint:allow(unordered-iter): per-connection digests fold through the commutative UnorderedDigest combiner
  for (const auto& [key, conn] : conns_) {
    StateDigest e;
    conn->digest_state(e);
    conns.add(e);
  }
  conns.mix_into(digest);
  digest.mix(listeners_.size());
  digest.mix(next_ephemeral_);
  digest.mix(conn_counter_);
  digest.mix(resets_sent_);
  digest.mix(accepted_);
  digest.mix(initiated_);
  for (const auto w : rng_.state()) digest.mix(w);
}

}  // namespace inband
