#include "tcp/recv_buffer.h"

#include <algorithm>

#include "util/assert.h"
#include "util/hotpath.h"

namespace inband {

void RecvBuffer::deliver_messages(const MsgList& msgs, std::uint64_t limit,
                                  Delivery& out) {
  for (const auto& m : msgs) {
    if (m.end_offset > limit) continue;
    if (m.end_offset <= last_delivered_msg_end_) continue;  // duplicate
    last_delivered_msg_end_ = m.end_offset;
    out.messages.push_msg(m);
  }
}

void RecvBuffer::stash(std::uint64_t start, std::uint64_t end,
                       const MsgList& msgs) {
  INBAND_COLD_OK("out-of-order stash: loss/reorder recovery, off the "
                 "in-order fast path");
  // Trim against existing segments to keep ooo_ non-overlapping. Message
  // refs from trimmed regions are safe to drop: the overlapping segment
  // already carries an identical ref (retransmissions repeat message
  // boundaries), and delivery dedupes by end offset anyway.
  std::uint64_t s = start;
  for (const auto& seg : ooo_) {
    if (seg.end <= s) continue;
    if (seg.start >= end) break;
    // Overlap: keep only the part before seg, recurse for the part after.
    if (s < seg.start) {
      MsgList head;
      for (const auto& m : msgs) {
        if (m.end_offset > s && m.end_offset <= seg.start) head.push_msg(m);
      }
      OooSegment cut{s, seg.start, std::move(head)};
      ooo_.push_back(std::move(cut));
    }
    s = std::max(s, seg.end);
  }
  if (s < end) {
    MsgList tail;
    for (const auto& m : msgs) {
      if (m.end_offset > s && m.end_offset <= end) tail.push_msg(m);
    }
    ooo_.push_back({s, end, std::move(tail)});
  }
  std::sort(ooo_.begin(), ooo_.end(),
            [](const OooSegment& a, const OooSegment& b) {
              return a.start < b.start;
            });
}

void RecvBuffer::drain(Delivery& out) {
  while (!ooo_.empty() && ooo_.front().start <= rcv_nxt_) {
    OooSegment seg = std::move(ooo_.front());
    ooo_.erase(ooo_.begin());
    if (seg.end <= rcv_nxt_) continue;  // fully stale
    const std::uint64_t advance_from = std::max(seg.start, rcv_nxt_);
    out.bytes += seg.end - advance_from;
    rcv_nxt_ = seg.end;
    deliver_messages(seg.msgs, rcv_nxt_, out);
  }
}

RecvBuffer::Delivery RecvBuffer::on_segment(std::uint64_t start,
                                            std::uint64_t end,
                                            const MsgList& msgs) {
  INBAND_ASSERT(start <= end);
  Delivery out;
  if (end <= rcv_nxt_) {
    out.duplicate = true;
    return out;
  }
  if (start > rcv_nxt_) {
    out.out_of_order = true;
    stash(start, end, msgs);
    return out;
  }
  // In-order (possibly with a stale prefix).
  out.bytes += end - rcv_nxt_;
  rcv_nxt_ = end;
  deliver_messages(msgs, rcv_nxt_, out);
  drain(out);
  return out;
}

std::uint64_t RecvBuffer::buffered_bytes() const {
  std::uint64_t total = 0;
  for (const auto& seg : ooo_) total += seg.end - seg.start;
  return total;
}

}  // namespace inband
