// 32-bit TCP sequence-number arithmetic.
//
// On the wire, sequence numbers wrap modulo 2^32. Internally the connection
// tracks 64-bit absolute stream offsets (offset 0 == ISN); these helpers
// convert between the two and compare wire values correctly across the wrap.
#pragma once

#include <cstdint>

namespace inband {

inline bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
inline bool seq_gt(std::uint32_t a, std::uint32_t b) { return seq_lt(b, a); }
inline bool seq_ge(std::uint32_t a, std::uint32_t b) { return seq_le(b, a); }

// Wire sequence number for absolute stream offset `offset` given ISN.
inline std::uint32_t wrap_seq(std::uint32_t isn, std::uint64_t offset) {
  return isn + static_cast<std::uint32_t>(offset);
}

// Absolute stream offset for wire value `seq`, chosen as the 64-bit value
// congruent to (seq - isn) mod 2^32 that lies closest to `reference`.
// `reference` is typically rcv_nxt or snd_una. The result can be negative
// only for garbage input (e.g. old duplicates before the reference window);
// callers treat offsets below their window as duplicates.
inline std::int64_t unwrap_seq(std::uint32_t isn, std::uint32_t seq,
                               std::uint64_t reference) {
  const auto rel = static_cast<std::uint32_t>(seq - isn);
  const auto ref_low = static_cast<std::uint32_t>(reference);
  const auto diff = static_cast<std::int32_t>(rel - ref_low);
  return static_cast<std::int64_t>(reference) + diff;
}

}  // namespace inband
