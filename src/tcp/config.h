// TCP model configuration.
//
// The model implements the mechanisms that produce causally-triggered
// transmissions — flow control (a fixed window), ACK clocking, piggybacked
// cumulative ACKs — plus the §5 "timing violation" behaviours (delayed ACKs,
// pacing) as switchable options. Congestion control is deliberately a fixed
// window: the paper's flows are window/application-limited datacenter flows,
// and a fixed quota is precisely the "flow control" the measurement technique
// keys on.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace inband {

struct TcpConfig {
  // Maximum segment payload bytes.
  std::uint32_t mss = 1448;

  // Fixed send window (the flow-control quota), bytes. The effective window
  // is min(cwnd_bytes, peer receive window).
  std::uint32_t cwnd_bytes = 16 * 1448;

  // Advertised receive buffer, bytes.
  std::uint32_t recv_buffer_bytes = 1 << 20;

  // Delayed acknowledgements (off by default: memcached-style workloads run
  // with quickack-ish behaviour; the ablation bench turns this on).
  bool delayed_ack = false;
  SimTime delack_timeout = ms(40);
  int ack_every = 2;  // ack at latest every N full segments

  // Packet pacing of data segments (off by default; ablation knob).
  bool pacing = false;
  std::uint64_t pacing_rate_bps = 1'000'000'000;

  // Retransmission timer (RFC 6298 shape).
  SimTime rto_initial = ms(50);
  SimTime rto_min = ms(5);
  SimTime rto_max = sec(4);
  int max_retries = 8;

  // TIME_WAIT linger (2*MSL equivalent; short — simulated networks do not
  // hold stragglers for minutes).
  SimTime time_wait = ms(2);

  // Deterministic ISNs (offset by connection counter) when false.
  bool random_isn = true;
};

}  // namespace inband
