#include "tcp/send_buffer.h"

#include <cstddef>

#include "util/assert.h"

namespace inband {

void SendBuffer::append_message(std::shared_ptr<const AppPayload> payload,
                                std::uint32_t wire_bytes) {
  INBAND_ASSERT(wire_bytes > 0, "empty message");
  end_ += wire_bytes;
  msgs_.push({end_, std::move(payload)});
}

MsgList SendBuffer::messages_in(std::uint64_t range_start,
                                std::uint64_t range_end) const {
  MsgList out;
  // msgs_ is sorted by end_offset; binary-search the first with
  // end_offset > range_start, then walk forward through the range.
  std::size_t lo = 0;
  std::size_t hi = msgs_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (msgs_[mid].end_offset <= range_start) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  for (; lo < msgs_.size() && msgs_[lo].end_offset <= range_end; ++lo) {
    out.push_msg(msgs_[lo]);
  }
  return out;
}

void SendBuffer::release_acked(std::uint64_t snd_una) {
  while (!msgs_.empty() && msgs_.front().end_offset <= snd_una) {
    msgs_.pop();
  }
}

}  // namespace inband
