#include "tcp/send_buffer.h"

#include <algorithm>

#include "util/assert.h"

namespace inband {

void SendBuffer::append_message(std::shared_ptr<const AppPayload> payload,
                                std::uint32_t wire_bytes) {
  INBAND_ASSERT(wire_bytes > 0, "empty message");
  end_ += wire_bytes;
  // hotlint:allow(hot-growth): one record per app message, deque-amortized
  msgs_.push_back({end_, std::move(payload)});
}

MsgList SendBuffer::messages_in(std::uint64_t range_start,
                                std::uint64_t range_end) const {
  MsgList out;
  // msgs_ is sorted by end_offset; find the first with end_offset > start.
  auto it = std::partition_point(
      msgs_.begin(), msgs_.end(),
      [&](const MessageRef& m) { return m.end_offset <= range_start; });
  for (; it != msgs_.end() && it->end_offset <= range_end; ++it) {
    out.push_msg(*it);
  }
  return out;
}

void SendBuffer::release_acked(std::uint64_t snd_una) {
  while (!msgs_.empty() && msgs_.front().end_offset <= snd_una) {
    msgs_.pop_front();
  }
}

}  // namespace inband
