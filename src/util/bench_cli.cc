#include "util/bench_cli.h"

#include <cstdio>
#include <fstream>

namespace inband {

BenchCli::BenchCli(std::string bench_name, std::string description,
                   std::int64_t default_seed)
    : bench_name_{std::move(bench_name)},
      flags_{std::move(description)},
      seed_{default_seed} {
  flags_.add("json", &json_path_,
             "write a JSON result summary to this path");
  flags_.add("quick", &quick_, "scaled-down run for smoke tests");
  flags_.add("seed", &seed_, "simulation seed");
}

bool BenchCli::parse(int argc, const char* const* argv) {
  return flags_.parse(argc, argv);
}

bool BenchCli::write_json(
    const std::function<void(JsonWriter&)>& fill) const {
  if (json_path_.empty()) return true;
  std::ofstream out{json_path_};
  if (!out) {
    std::fprintf(stderr, "cannot write --json file: %s\n",
                 json_path_.c_str());
    return false;
  }
  JsonWriter w{out};
  w.begin_object();
  w.kv("schema", kSchema);
  w.kv("bench", bench_name_);
  w.kv("quick", quick_);
  w.kv("seed", seed_);
  w.key("metrics").begin_object();
  fill(w);
  w.end_object();
  w.end_object();
  return out.good();
}

}  // namespace inband
