// Deterministic random number generation.
//
// The simulator must be reproducible across runs and platforms, so we avoid
// std::<distribution> types (their output sequences are implementation
// defined) and implement the engine and every distribution ourselves.
//
// Engine: xoshiro256++ (Blackman & Vigna), seeded via SplitMix64 so that any
// 64-bit seed — including 0 — yields a well-mixed state.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/assert.h"
#include "util/shard.h"

namespace inband {

// Stateless seed mixer; also usable as a cheap hash of a counter.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// xoshiro256++ engine. Satisfies UniformRandomBitGenerator.
INBAND_SHARD_LOCAL(owner)
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1ba9d41e00000001ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& w : state_) {
      x = splitmix64(x);
      w = x;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [lo, hi] inclusive. Uses Lemire's multiply-shift
  // rejection method to avoid modulo bias.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);

  // Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    return lo + (hi - lo) * uniform_double();
  }

  // true with probability p.
  bool bernoulli(double p) { return uniform_double() < p; }

  // Exponential with the given mean (> 0).
  double exponential(double mean);

  // Standard normal via Box–Muller (caches the spare variate).
  double normal();
  double normal(double mu, double sigma) { return mu + sigma * normal(); }

  // Log-normal such that the *median* of the output is `median` and the
  // underlying normal has standard deviation `sigma` (in log space).
  double lognormal_median(double median, double sigma);

  // Pareto with scale x_m > 0 and shape alpha > 0.
  double pareto(double x_m, double alpha);

  // Engine state, exposed for determinism digests (check/state_digest):
  // two same-seed runs must leave every RNG in an identical state.
  const std::array<std::uint64_t, 4>& state() const { return state_; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

// Zipf-distributed integers over {1, ..., n} with exponent s >= 0, using
// rejection-inversion sampling (Hörmann & Derflinger); O(1) per sample with
// no table, so it supports very large n.
INBAND_SHARD_LOCAL(owner)
class ZipfDistribution {
 public:
  ZipfDistribution(std::uint64_t n, double s);

  std::uint64_t n() const { return n_; }
  double s() const { return s_; }

  std::uint64_t operator()(Rng& rng) const;

 private:
  double h(double x) const;
  double h_inv(double x) const;

  std::uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;  // rejection threshold for k == 1
};

}  // namespace inband
