#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace inband {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
LogClock g_clock = nullptr;
const void* g_clock_ctx = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_clock(LogClock clock, const void* ctx) {
  g_clock = clock;
  g_clock_ctx = ctx;
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level.load());
}

namespace detail {

LogMessage::LogMessage(LogLevel level, std::string_view file, int line)
    : level_{level} {
  // Keep only the basename to avoid long absolute paths in every line.
  const auto slash = file.find_last_of('/');
  if (slash != std::string_view::npos) file = file.substr(slash + 1);
  stream_ << '[' << level_name(level) << "] ";
  if (g_clock != nullptr) {
    stream_ << '[' << format_duration(g_clock(g_clock_ctx)) << "] ";
  }
  stream_ << file << ':' << line << ": ";
}

LogMessage::~LogMessage() {
  stream_ << '\n';
  std::fputs(stream_.str().c_str(), stderr);
  (void)level_;
}

}  // namespace detail

}  // namespace inband
