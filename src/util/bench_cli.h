// Common command-line surface for the bench drivers.
//
// Every per-figure bench (fig2a/fig2b/fig3, the ablations, perf_dataplane)
// shares one option set on top of util/flags:
//
//   --json <path>   write a machine-readable result summary (JSON envelope
//                   {schema, bench, quick, seed, metrics:{...}})
//   --quick         scaled-down run for smoke tests / CI (each bench defines
//                   what "quick" means for its workload)
//   --seed <n>      simulation seed
//
// Bench-specific flags are registered through flags(). The JSON envelope is
// written via write_json(), which hands the caller a JsonWriter positioned
// inside the "metrics" object so every bench emits the same outer schema.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/flags.h"
#include "util/json.h"

namespace inband {

class BenchCli {
 public:
  inline static constexpr const char* kSchema = "inband-bench-v1";

  BenchCli(std::string bench_name, std::string description,
           std::int64_t default_seed = 2022);

  // Register bench-specific flags before parse().
  FlagSet& flags() { return flags_; }

  // Returns false on parse error / --help (caller should exit non-zero).
  bool parse(int argc, const char* const* argv);

  bool quick() const { return quick_; }
  std::int64_t seed() const { return seed_; }
  const std::string& json_path() const { return json_path_; }

  // Pre-loads a default --json path (call before parse()).
  void set_json_default(std::string path) { json_path_ = std::move(path); }

  // Writes the common JSON envelope to --json (no-op when the flag is
  // unset). `fill` receives a writer inside the "metrics" object. Returns
  // false when the file cannot be written.
  bool write_json(const std::function<void(JsonWriter&)>& fill) const;

 private:
  std::string bench_name_;
  FlagSet flags_;
  std::string json_path_;
  bool quick_ = false;
  std::int64_t seed_;
};

}  // namespace inband
