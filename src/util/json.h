// Minimal JSON support for the bench drivers: a streaming writer and a tiny
// recursive-descent parser.
//
// The writer emits deterministic output (keys in the order written, fixed
// number formatting) so bench JSON diffs cleanly between runs. The parser
// covers the subset the benches produce — objects, arrays, strings, numbers,
// booleans, null — and exists so harnesses can validate their own output
// schema and merge a baseline file without an external dependency.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/shard.h"

namespace inband {

// --- Writer -----------------------------------------------------------------

// Streaming writer with explicit begin/end nesting. Keys and values are
// emitted in call order; the writer inserts commas and indentation. Misuse
// (value without a pending key inside an object, unbalanced end) asserts.
INBAND_SHARD_LOCAL(owner)
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_{os} {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Key for the next value (objects only).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view{v}); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& value_null();

  // Shorthand: key + value.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  void before_value();
  void newline_indent();
  static void write_escaped(std::ostream& os, std::string_view s);

  struct Level {
    bool array = false;
    bool first = true;
  };
  std::ostream& os_;
  std::vector<Level> stack_;
  bool key_pending_ = false;
};

// --- Parser -----------------------------------------------------------------

// Parsed JSON value. Object member order is not preserved (std::map), which
// is fine for lookups and keeps iteration deterministic.
INBAND_SHARD_LOCAL(owner)
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_v = false;
  double num_v = 0.0;
  std::string str_v;
  std::vector<JsonValue> arr_v;
  std::map<std::string, JsonValue> obj_v;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_bool() const { return kind == Kind::kBool; }

  // Member lookup; returns nullptr when absent or not an object.
  const JsonValue* find(const std::string& k) const;
};

// Parses `text`; returns nullptr and fills `error` on malformed input.
std::unique_ptr<JsonValue> json_parse(std::string_view text,
                                      std::string* error);

// Re-emits a parsed value through a writer (used to splice a baseline file
// into a new report). For objects the writer must have a key pending or be
// inside an array / at top level, as with any other value() call.
void json_write_value(JsonWriter& w, const JsonValue& v);

// Convenience: reads and parses a file. Returns nullptr on IO/parse error.
std::unique_ptr<JsonValue> json_parse_file(const std::string& path,
                                           std::string* error);

}  // namespace inband
