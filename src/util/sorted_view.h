// Deterministic snapshots of unordered containers.
//
// std::unordered_{map,set} iteration order depends on hash-table history
// (insertion/erase interleaving, rehash points) and is therefore not part of
// any determinism contract in this codebase; detlint (tools/detlint) flags
// every raw iteration of one. When code must *visit* such a container —
// audits that emit ordered failure messages, crash sweeps that put RSTs on
// the wire, anything whose effects depend on visit order — it goes through
// these helpers, which materialize a snapshot sorted by a value-based key.
// These are the blessed entry points of the unordered-iter rule (DESIGN.md
// §9): a call site using them needs no waiver.
//
// Cost is one O(n) pass plus an O(n log n) sort per call; every current
// caller is a cold path (invariant audits, digest preparation, crash
// teardown), never per-packet.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

namespace inband {

// Pointers to a map's entries, ordered by `less` on the key. The pointers
// borrow from `m`: do not mutate the map while holding the snapshot.
template <typename Map, typename KeyLess = std::less<>>
std::vector<const typename Map::value_type*> sorted_entries(
    const Map& m, KeyLess less = {}) {
  std::vector<const typename Map::value_type*> out;
  out.reserve(m.size());
  for (const auto& entry : m) out.push_back(&entry);
  std::sort(out.begin(), out.end(),
            [&less](const auto* a, const auto* b) {
              return less(a->first, b->first);
            });
  return out;
}

// Copies of a set's values, ordered by `less`. For sets of pointers pass a
// comparator over the pointees — sorting raw pointer values is exactly the
// hazard this header exists to prevent (detlint rule `pointer-order`).
template <typename Set, typename Less = std::less<>>
std::vector<typename Set::value_type> sorted_values(const Set& s,
                                                    Less less = {}) {
  std::vector<typename Set::value_type> out;
  out.reserve(s.size());
  for (const auto& v : s) out.push_back(v);
  std::sort(out.begin(), out.end(), less);
  return out;
}

}  // namespace inband
