#include "util/time.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace inband {

namespace {

// Prints `v` with up to three significant decimals, trimming trailing zeros.
std::string trim_fixed(double v, const char* unit) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  std::string s{buf};
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  s += unit;
  return s;
}

}  // namespace

std::string format_duration(SimTime t) {
  const bool neg = t < 0;
  const auto a = neg ? -t : t;
  std::string out;
  if (a < 1'000) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", a);
    out = buf;
  } else if (a < 1'000'000) {
    out = trim_fixed(static_cast<double>(a) / 1e3, "us");
  } else if (a < 1'000'000'000) {
    out = trim_fixed(static_cast<double>(a) / 1e6, "ms");
  } else {
    out = trim_fixed(static_cast<double>(a) / 1e9, "s");
  }
  return neg ? "-" + out : out;
}

}  // namespace inband
