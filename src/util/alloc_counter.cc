// Global operator new/delete replacements that count allocations.
//
// Linked ONLY into binaries that want counting (bench/perf_dataplane); see
// alloc_counter.h. Under sanitizers the replacements are compiled out — the
// sanitizer runtimes interpose the same symbols and must keep doing so — and
// counting_enabled() reports false so harnesses skip the metric instead of
// reporting zeros.
#include "util/alloc_counter.h"

#include <atomic>
#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define INBAND_ALLOC_COUNTER_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define INBAND_ALLOC_COUNTER_DISABLED 1
#endif
#endif

namespace inband::allocs {
namespace {
// Relaxed: the simulator is single-threaded; atomics guard against the
// odd runtime-internal thread touching the heap during shutdown.
std::atomic<std::uint64_t> g_count{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<AllocHook> g_hook{nullptr};
}  // namespace

Snapshot snapshot() {
  return {g_count.load(std::memory_order_relaxed),
          g_bytes.load(std::memory_order_relaxed)};
}

bool counting_enabled() {
#ifdef INBAND_ALLOC_COUNTER_DISABLED
  return false;
#else
  return true;
#endif
}

void set_alloc_hook(AllocHook hook) {
  g_hook.store(hook, std::memory_order_relaxed);
}

namespace {
inline void run_hook(std::size_t n) {
  // hotlint:allow(shard-global): atomic diagnostic hook; null outside tests
  if (AllocHook hook = g_hook.load(std::memory_order_relaxed)) hook(n);
}
inline void* counted_alloc(std::size_t n) {
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(n, std::memory_order_relaxed);
  run_hook(n);
  return std::malloc(n != 0 ? n : 1);
}
inline void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(n, std::memory_order_relaxed);
  run_hook(n);
  // aligned_alloc requires size to be a multiple of alignment.
  const std::size_t rounded = (n + align - 1) / align * align;
  return std::aligned_alloc(align, rounded != 0 ? rounded : align);
}
}  // namespace

}  // namespace inband::allocs

#ifndef INBAND_ALLOC_COUNTER_DISABLED

void* operator new(std::size_t n) {
  if (void* p = inband::allocs::counted_alloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  if (void* p = inband::allocs::counted_alloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return inband::allocs::counted_alloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return inband::allocs::counted_alloc(n);
}
void* operator new(std::size_t n, std::align_val_t a) {
  if (void* p = inband::allocs::counted_alloc_aligned(
          n, static_cast<std::size_t>(a))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t a) {
  if (void* p = inband::allocs::counted_alloc_aligned(
          n, static_cast<std::size_t>(a))) {
    return p;
  }
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // INBAND_ALLOC_COUNTER_DISABLED
