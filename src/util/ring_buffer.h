// Recycling FIFO ring buffer.
//
// Replaces the std::deque push_back/pop_front pattern on hot paths: push()
// appends at the tail, pop() recycles the head slot.
// A deque allocates and frees ~512-byte blocks as elements cycle through —
// visible as steady-state heap traffic in the fig-3 rig (TCP send-buffer
// message records, the KV server's overload queue). This ring keeps one
// power-of-two slab and reuses slots forever; the only allocation is the
// doubling growth when occupancy exceeds the high-water mark.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.h"
#include "util/hotpath.h"
#include "util/shard.h"

namespace inband {

template <typename T>
INBAND_SHARD_LOCAL(owner)
class RingBuffer {
 public:
  RingBuffer() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  INBAND_HOT void push(T value) {
    if (size_ == slots_.size()) {
      INBAND_COLD_OK("doubling growth past the occupancy high-water mark");
      grow();
    }
    slots_[index(size_)] = std::move(value);
    ++size_;
  }

  INBAND_HOT void pop() {
    INBAND_ASSERT(size_ > 0, "pop on empty ring");
    slots_[head_] = T{};  // drop held resources now, not at overwrite
    head_ = mask(head_ + 1);
    --size_;
  }

  T& front() {
    INBAND_ASSERT(size_ > 0, "front on empty ring");
    return slots_[head_];
  }
  const T& front() const {
    INBAND_ASSERT(size_ > 0, "front on empty ring");
    return slots_[head_];
  }

  // i-th element from the front (0 == front()).
  T& operator[](std::size_t i) {
    INBAND_DCHECK(i < size_);
    return slots_[index(i)];
  }
  const T& operator[](std::size_t i) const {
    INBAND_DCHECK(i < size_);
    return slots_[index(i)];
  }

  void clear() {
    while (size_ > 0) pop();
  }

  std::size_t capacity() const { return slots_.size(); }

 private:
  std::size_t mask(std::size_t i) const { return i & (slots_.size() - 1); }
  std::size_t index(std::size_t i) const { return mask(head_ + i); }

  void grow() {
    const std::size_t new_cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<T> grown(new_cap);
    for (std::size_t i = 0; i < size_; ++i) grown[i] = std::move((*this)[i]);
    slots_ = std::move(grown);
    head_ = 0;
  }

  std::vector<T> slots_;  // power-of-two capacity, or empty
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace inband
