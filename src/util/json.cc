#include "util/json.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/assert.h"

namespace inband {

// --- Writer -----------------------------------------------------------------

void JsonWriter::write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          // hotlint:allow(hot-io): stack formatting; hot only via key() name collision
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void JsonWriter::newline_indent() {
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::before_value() {
  if (stack_.empty()) return;  // top-level value
  Level& top = stack_.back();
  if (top.array) {
    INBAND_ASSERT(!key_pending_, "key inside an array");
    if (!top.first) os_ << ',';
    newline_indent();
  } else {
    INBAND_ASSERT(key_pending_, "object value without a key");
  }
  top.first = false;
  key_pending_ = false;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  INBAND_ASSERT(!stack_.empty() && !stack_.back().array,
                "key() outside an object");
  INBAND_ASSERT(!key_pending_, "two keys in a row");
  if (!stack_.back().first) os_ << ',';
  newline_indent();
  write_escaped(os_, k);
  os_ << ": ";
  stack_.back().first = false;
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back({false, true});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  INBAND_ASSERT(!stack_.empty() && !stack_.back().array, "unbalanced end");
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  os_ << '}';
  if (stack_.empty()) os_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back({true, true});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  INBAND_ASSERT(!stack_.empty() && stack_.back().array, "unbalanced end");
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  write_escaped(os_, v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  char buf[64];
  // %.17g round-trips; trim to %g for readability where exactness is not
  // needed — bench metrics are measurements, not bit-exact state.
  // hotlint:allow(hot-io): stack formatting; hot only via value() name collision
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value_null() {
  before_value();
  os_ << "null";
  return *this;
}

// --- Parser -----------------------------------------------------------------

const JsonValue* JsonValue::find(const std::string& k) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = obj_v.find(k);
  return it == obj_v.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_{text}, error_{error} {}

  std::unique_ptr<JsonValue> run() {
    auto v = std::make_unique<JsonValue>();
    if (!parse_value(*v)) return nullptr;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after top-level value");
      return nullptr;
    }
    return v;
  }

 private:
  void fail(const std::string& what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      fail("expected string");
      return false;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'u': {
            // Benches only emit control-char escapes; decode as '?' rather
            // than implementing full UTF-16 surrogates.
            pos_ += std::min<std::size_t>(4, text_.size() - pos_);
            c = '?';
            break;
          }
          default:
            c = esc;
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.str_v);
    }
    if (literal("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.bool_v = true;
      return true;
    }
    if (literal("false")) {
      out.kind = JsonValue::Kind::kBool;
      out.bool_v = false;
      return true;
    }
    if (literal("null")) {
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    // Number.
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("unexpected character");
      return false;
    }
    try {
      out.num_v = std::stod(std::string{text_.substr(start, pos_ - start)});
    } catch (const std::exception&) {
      fail("bad number");
      return false;
    }
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string k;
      if (!parse_string(k)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        fail("expected ':'");
        return false;
      }
      ++pos_;
      JsonValue v;
      if (!parse_value(v)) return false;
      out.obj_v.emplace(std::move(k), std::move(v));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      fail("expected ',' or '}'");
      return false;
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!parse_value(v)) return false;
      out.arr_v.push_back(std::move(v));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      fail("expected ',' or ']'");
      return false;
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<JsonValue> json_parse(std::string_view text,
                                      std::string* error) {
  return Parser{text, error}.run();
}

void json_write_value(JsonWriter& w, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      w.value_null();
      break;
    case JsonValue::Kind::kBool:
      w.value(v.bool_v);
      break;
    case JsonValue::Kind::kNumber:
      w.value(v.num_v);
      break;
    case JsonValue::Kind::kString:
      w.value(std::string_view{v.str_v});
      break;
    case JsonValue::Kind::kArray:
      w.begin_array();
      for (const auto& e : v.arr_v) json_write_value(w, e);
      w.end_array();
      break;
    case JsonValue::Kind::kObject:
      w.begin_object();
      for (const auto& [k, e] : v.obj_v) {
        w.key(k);
        json_write_value(w, e);
      }
      w.end_object();
      break;
  }
}

std::unique_ptr<JsonValue> json_parse_file(const std::string& path,
                                           std::string* error) {
  std::ifstream in{path};
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return nullptr;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return json_parse(ss.str(), error);
}

}  // namespace inband
