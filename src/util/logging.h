// Minimal leveled logging.
//
// A Logger is a stream-style sink guarded by a global level; when a
// simulation clock provider is installed, each line is prefixed with the
// current simulated time. Logging is for humans — structured experiment
// output goes through telemetry/ and util/csv.h instead.
//
// Usage:
//   LOG_INFO() << "backend " << id << " latency " << format_duration(rtt);
#pragma once

#include <sstream>
#include <string_view>

#include "util/time.h"

namespace inband {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

// Global minimum level; messages below it are discarded cheaply.
void set_log_level(LogLevel level);
LogLevel log_level();

// Installs a provider for the simulated-time log prefix (nullptr to clear).
// The provider must outlive all logging calls; the Simulator installs itself.
using LogClock = SimTime (*)(const void* ctx);
void set_log_clock(LogClock clock, const void* ctx);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

bool log_enabled(LogLevel level);

}  // namespace inband

#define INBAND_LOG(level)                        \
  if (!::inband::log_enabled(level)) {           \
  } else                                         \
    ::inband::detail::LogMessage(level, __FILE__, __LINE__)

#define LOG_TRACE() INBAND_LOG(::inband::LogLevel::kTrace)
#define LOG_DEBUG() INBAND_LOG(::inband::LogLevel::kDebug)
#define LOG_INFO() INBAND_LOG(::inband::LogLevel::kInfo)
#define LOG_WARN() INBAND_LOG(::inband::LogLevel::kWarn)
#define LOG_ERROR() INBAND_LOG(::inband::LogLevel::kError)
