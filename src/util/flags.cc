#include "util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/assert.h"

namespace inband {

namespace {

const char* type_name(const std::variant<bool*, std::int64_t*, double*,
                                         std::string*>& t) {
  switch (t.index()) {
    case 0:
      return "bool";
    case 1:
      return "int";
    case 2:
      return "float";
    default:
      return "string";
  }
}

}  // namespace

void FlagSet::add(std::string name, bool* target, std::string help) {
  INBAND_ASSERT(find(name) == nullptr, "duplicate flag");
  flags_.push_back({std::move(name), target, std::move(help)});
}
void FlagSet::add(std::string name, std::int64_t* target, std::string help) {
  INBAND_ASSERT(find(name) == nullptr, "duplicate flag");
  flags_.push_back({std::move(name), target, std::move(help)});
}
void FlagSet::add(std::string name, double* target, std::string help) {
  INBAND_ASSERT(find(name) == nullptr, "duplicate flag");
  flags_.push_back({std::move(name), target, std::move(help)});
}
void FlagSet::add(std::string name, std::string* target, std::string help) {
  INBAND_ASSERT(find(name) == nullptr, "duplicate flag");
  flags_.push_back({std::move(name), target, std::move(help)});
}

const FlagSet::Flag* FlagSet::find(const std::string& name) const {
  for (const auto& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

bool FlagSet::assign(const Flag& flag, const std::string& value) {
  try {
    switch (flag.target.index()) {
      case 0: {
        if (value == "true" || value == "1") {
          *std::get<bool*>(flag.target) = true;
        } else if (value == "false" || value == "0") {
          *std::get<bool*>(flag.target) = false;
        } else {
          return false;
        }
        return true;
      }
      case 1: {
        std::size_t pos = 0;
        const long long v = std::stoll(value, &pos);
        if (pos != value.size()) return false;
        *std::get<std::int64_t*>(flag.target) = v;
        return true;
      }
      case 2: {
        std::size_t pos = 0;
        const double v = std::stod(value, &pos);
        if (pos != value.size()) return false;
        *std::get<double*>(flag.target) = v;
        return true;
      }
      default:
        *std::get<std::string*>(flag.target) = value;
        return true;
    }
  } catch (const std::exception&) {
    return false;
  }
}

bool FlagSet::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg{argv[i]};
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stderr);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n%s",
                   arg.c_str(), usage(argv[0]).c_str());
      return false;
    }
    arg.erase(0, 2);
    std::string value;
    bool have_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      have_value = true;
    }
    const Flag* flag = find(arg);
    if (flag == nullptr) {
      std::fprintf(stderr, "unknown flag: --%s\n%s", arg.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
    if (!have_value) {
      if (flag->target.index() == 0) {
        value = "true";  // bare --flag for booleans
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s requires a value\n", arg.c_str());
        return false;
      }
    }
    if (!assign(*flag, value)) {
      std::fprintf(stderr, "bad value for --%s (%s): '%s'\n", arg.c_str(),
                   type_name(flag->target), value.c_str());
      return false;
    }
  }
  return true;
}

std::string FlagSet::usage(const std::string& argv0) const {
  std::ostringstream os;
  if (!description_.empty()) os << description_ << '\n';
  os << "usage: " << argv0 << " [--flag=value ...]\n";
  for (const auto& f : flags_) {
    os << "  --" << f.name << " (" << type_name(f.target) << ")  " << f.help
       << '\n';
  }
  return os.str();
}

}  // namespace inband
