#include "util/csv.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace inband {

CsvWriter::CsvWriter(const std::string& path) : file_{path}, out_{&file_} {
  if (!file_.is_open()) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

void CsvWriter::write_string(std::string_view s) {
  const bool needs_quoting =
      s.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) {
    *out_ << s;
    return;
  }
  *out_ << '"';
  for (char c : s) {
    if (c == '"') *out_ << '"';
    *out_ << c;
  }
  *out_ << '"';
}

void CsvWriter::write_double(double v) {
  if (std::isnan(v)) {
    *out_ << "nan";
    return;
  }
  // %g keeps output compact while preserving enough precision for plots.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out_ << buf;
}

}  // namespace inband
