// Unbounded single-producer / single-consumer queue with producer-side
// reclamation.
//
// The transport under the cross-shard channels in sim/parallel.h. Two
// properties drive the design, both dictated by the conservative-lookahead
// protocol rather than by raw throughput:
//
//  * Unbounded. A bounded ring would make push() block when full, and a
//    producer blocked on a consumer that is itself conservatively blocked on
//    the producer's horizon is a deadlock cycle. Capacity grows in chunks of
//    kChunkCap slots appended to a singly-linked list; steady state recycles
//    nothing across threads.
//
//  * Producer-side reclamation. Slots are destroyed (assigned T{}) by the
//    PRODUCER, after the consumer publishes how far it has read. The payload
//    types crossing shards hold shard-local resources (SharedPool-backed
//    shared_ptrs whose deleters touch a free list owned by the producing
//    shard); destroying them on the consumer thread would race. The consumer
//    only ever reads a slot and bumps an atomic counter — it never runs a
//    destructor of a producer-owned value. Consumers that need to keep data
//    must deep-copy out of the slot (see ShardChannel::pop).
//
// Memory ordering: the producer publishes a slot by storing the chunk's
// `filled` count with release after writing the slot; the consumer loads it
// with acquire before reading. Symmetrically the consumer publishes
// `consumed_` with release and the producer reclaims after an acquire load.
// No other synchronization exists — exactly one thread may call the producer
// methods and one (possibly different) thread the consumer methods.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/assert.h"
#include "util/shard.h"

namespace inband {

template <typename T>
INBAND_SHARD_CHANNEL
class SpscQueue {
 public:
  static constexpr std::uint32_t kChunkCap = 64;

  SpscQueue() {
    Chunk* c = new Chunk;
    head_ = tail_ = reclaim_ = c;
  }
  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;
  ~SpscQueue() {
    // Single-threaded by the time a queue dies (the runner has joined).
    Chunk* c = reclaim_;
    while (c != nullptr) {
      Chunk* next = c->next.load(std::memory_order_relaxed);
      delete c;
      c = next;
    }
  }

  // --- producer side ---

  void push(T value) {
    Chunk* t = tail_;
    const std::uint32_t filled = t->filled.load(std::memory_order_relaxed);
    if (filled == kChunkCap) {
      // hotlint:allow(hot-alloc): one chunk per kChunkCap pushes, cross-shard trunk rate only
      Chunk* fresh = new Chunk;
      fresh->base = t->base + kChunkCap;
      tail_ = fresh;
      // Publish the link after the chunk is fully constructed.
      t->next.store(fresh, std::memory_order_release);
      t = fresh;
    }
    const std::uint32_t slot = t->filled.load(std::memory_order_relaxed);
    t->slots[slot] = std::move(value);
    t->filled.store(slot + 1, std::memory_order_release);
    ++pushed_;
  }

  // Destroys every slot the consumer has finished with and frees chunks that
  // are fully reclaimed. Producer thread only; call at any convenient rate
  // (the channel calls it on every horizon announcement).
  void reclaim() {
    const std::uint64_t consumed = consumed_.load(std::memory_order_acquire);
    while (reclaimed_ < consumed) {
      Chunk* c = reclaim_;
      const std::uint32_t i = static_cast<std::uint32_t>(reclaimed_ - c->base);
      if (i == kChunkCap) {
        Chunk* next = c->next.load(std::memory_order_relaxed);
        INBAND_ASSERT(next != nullptr, "reclaim ran past the chunk chain");
        reclaim_ = next;
        delete c;
        continue;
      }
      c->slots[i] = T{};  // producer-side destruction of the value
      ++reclaimed_;
    }
  }

  std::uint64_t pushed() const { return pushed_; }  // producer thread only

  // --- consumer side ---

  // Borrowed pointer to the next unconsumed value, or nullptr when none is
  // visible. Valid until consume(); the consumer must not destroy it.
  const T* peek() {
    Chunk* c = head_;
    const std::uint32_t i = static_cast<std::uint32_t>(next_read_ - c->base);
    if (i == kChunkCap) {
      Chunk* next = c->next.load(std::memory_order_acquire);
      if (next == nullptr) return nullptr;
      head_ = c = next;
      return peek();
    }
    if (i >= c->filled.load(std::memory_order_acquire)) return nullptr;
    return &c->slots[i];
  }

  // Marks the current peek()ed value consumed and publishes that fact to the
  // producer for reclamation. Must follow a successful peek().
  void consume() {
    ++next_read_;
    consumed_.store(next_read_, std::memory_order_release);
  }

  std::uint64_t consumed() const {  // either thread; approximate for producer
    return consumed_.load(std::memory_order_acquire);
  }

 private:
  struct Chunk {
    std::uint64_t base = 0;  // global index of slots[0]
    std::atomic<std::uint32_t> filled{0};
    std::atomic<Chunk*> next{nullptr};
    T slots[kChunkCap];
  };

  // Producer-owned.
  Chunk* tail_ = nullptr;    // chunk being filled
  Chunk* reclaim_ = nullptr; // oldest chunk with undestroyed slots
  std::uint64_t pushed_ = 0;
  std::uint64_t reclaimed_ = 0;

  // Consumer-owned.
  Chunk* head_ = nullptr;      // chunk being read
  std::uint64_t next_read_ = 0;

  // Consumer -> producer watermark.
  std::atomic<std::uint64_t> consumed_{0};
};

}  // namespace inband
