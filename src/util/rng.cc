#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace inband {

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  INBAND_ASSERT(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == ~0ULL) return (*this)();
  const std::uint64_t n = span + 1;
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t t = (0 - n) % n;
    while (low < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double mean) {
  INBAND_ASSERT(mean > 0.0);
  double u;
  do {
    u = uniform_double();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1;
  do {
    u1 = uniform_double();
  } while (u1 == 0.0);
  const double u2 = uniform_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::lognormal_median(double median, double sigma) {
  INBAND_ASSERT(median > 0.0);
  INBAND_ASSERT(sigma >= 0.0);
  return median * std::exp(sigma * normal());
}

double Rng::pareto(double x_m, double alpha) {
  INBAND_ASSERT(x_m > 0.0);
  INBAND_ASSERT(alpha > 0.0);
  double u;
  do {
    u = uniform_double();
  } while (u == 0.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

namespace {

// Helper used by rejection-inversion: H(x) integrates x^{-s}.
double h_integral(double x, double s) {
  const double log_x = std::log(x);
  if (std::abs(1.0 - s) < 1e-12) return log_x;
  return std::expm1((1.0 - s) * log_x) / (1.0 - s);
}

double h_integral_inv(double x, double s) {
  if (std::abs(1.0 - s) < 1e-12) return std::exp(x);
  double t = x * (1.0 - s);
  if (t < -1.0) t = -1.0;  // numeric guard
  return std::exp(std::log1p(t) / (1.0 - s));
}

}  // namespace

ZipfDistribution::ZipfDistribution(std::uint64_t n, double s) : n_{n}, s_{s} {
  INBAND_ASSERT(n >= 1);
  INBAND_ASSERT(s >= 0.0);
  h_x1_ = h_integral(1.5, s_) - 1.0;
  h_n_ = h_integral(static_cast<double>(n_) + 0.5, s_);
  threshold_ = 2.0 - h_integral_inv(h_integral(2.5, s_) - std::pow(2.0, -s_),
                                    s_);
}

double ZipfDistribution::h(double x) const { return h_integral(x, s_); }
double ZipfDistribution::h_inv(double x) const {
  return h_integral_inv(x, s_);
}

std::uint64_t ZipfDistribution::operator()(Rng& rng) const {
  if (n_ == 1) return 1;
  while (true) {
    const double u = h_n_ + rng.uniform_double() * (h_x1_ - h_n_);
    const double x = h_inv(u);
    auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_ ||
        u >= h(kd + 0.5) - std::exp(-s_ * std::log(kd))) {
      return k;
    }
  }
}

}  // namespace inband
