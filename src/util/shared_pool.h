// Freelist-backed shared_ptr factory for fixed-type message objects.
//
// `SharedPool<T>::make(...)` is a drop-in replacement for
// `std::make_shared<T>(...)` that recycles the single control-block+object
// allocation through a freelist instead of returning it to the heap. In the
// fig-3 rig the KV request and response objects were the last steady-state
// per-packet allocations; with a per-host pool they cost a freelist pop.
//
// Lifetime: pooled objects routinely outlive their pool's owner — a packet
// in flight holds its payload ref inside a pending simulator event, and the
// rig destroys hosts before the simulator. The freelist state is therefore
// itself a shared_ptr, kept alive by the allocator copy stored in every
// outstanding control block; blocks released after the pool owner is gone
// still land back in the (now orphaned) freelist, which frees everything
// when the last outstanding ref drops.
//
// Shard-safety: the pool is a plain member object — no globals, no locks —
// so per-shard ownership falls out of per-shard host ownership.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "util/hotpath.h"
#include "util/shard.h"

namespace inband {

template <typename T>
INBAND_SHARD_LOCAL(owner)
class SharedPool {
 public:
  SharedPool() = default;

  // Pool-allocated equivalent of std::make_shared<T>(args...).
  template <typename... Args>
  std::shared_ptr<T> make(Args&&... args) {
    // hotlint:allow(hot-alloc): routes through the pool freelist allocator
    return std::allocate_shared<T>(Alloc<T>{state_},
                                   std::forward<Args>(args)...);
  }

  std::size_t free_blocks() const { return state_->free.size(); }

 private:
  // One control-block-sized allocation class. `block_size` latches to the
  // first size requested (allocate_shared's fused block for T); requests of
  // any other size bypass the freelist.
  struct State {
    State() { free.reserve(kMaxFree); }
    State(const State&) = delete;
    State& operator=(const State&) = delete;
    ~State() {
      for (void* p : free) ::operator delete(p);
    }
    std::vector<void*> free;
    std::size_t block_size = 0;
    static constexpr std::size_t kMaxFree = 4096;
  };

  template <typename U>
  struct Alloc {
    using value_type = U;

    explicit Alloc(std::shared_ptr<State> s) : state{std::move(s)} {}
    template <typename V>
    Alloc(const Alloc<V>& other) : state{other.state} {}  // rebind

    U* allocate(std::size_t n) {
      const std::size_t bytes = n * sizeof(U);
      if (state->block_size == 0) state->block_size = bytes;
      if (bytes == state->block_size && !state->free.empty()) {
        void* p = state->free.back();
        state->free.pop_back();
        return static_cast<U*>(p);
      }
      INBAND_COLD_OK("freelist empty: pool warming or off-size request");
      return static_cast<U*>(::operator new(bytes));
    }

    void deallocate(U* p, std::size_t n) {
      const std::size_t bytes = n * sizeof(U);
      if (bytes == state->block_size && state->free.size() < State::kMaxFree) {
        // hotlint:allow(hot-growth): capacity reserved up front in State().
        state->free.push_back(p);
        return;
      }
      ::operator delete(p);
    }

    template <typename V>
    bool operator==(const Alloc<V>& other) const {
      return state == other.state;
    }
    template <typename V>
    bool operator!=(const Alloc<V>& other) const {
      return state != other.state;
    }

    std::shared_ptr<State> state;
  };

  std::shared_ptr<State> state_ = std::make_shared<State>();
};

}  // namespace inband
