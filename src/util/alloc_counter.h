// Heap-allocation counting hook for the perf harness.
//
// Declarations only: the global operator new/delete replacements live in
// alloc_counter.cc, which is deliberately NOT part of inband_util — linking
// it into a binary (bench/perf_dataplane) opts that binary into counting.
// Keeping the replacement out of the library keeps sanitizer builds (whose
// runtimes interpose the same symbols) untouched.
#pragma once

#include <cstdint>

namespace inband::allocs {

struct Snapshot {
  std::uint64_t count = 0;  // operator new invocations
  std::uint64_t bytes = 0;  // bytes requested
};

// Current totals since process start. In binaries that do not link
// alloc_counter.cc the weak fallbacks return zeros and `counting_enabled()`
// is false, so callers can tell "no allocations" from "not counting".
Snapshot snapshot();
bool counting_enabled();

// Attribution aid: when set, the hook fires on every counted allocation
// (with the requested size) before the allocation happens. The hook must
// not allocate. Used by zero-alloc tests to print backtraces for the
// allocations that broke the budget; null (the default) disables it.
using AllocHook = void (*)(std::size_t bytes);
void set_alloc_hook(AllocHook hook);

inline Snapshot delta(const Snapshot& before, const Snapshot& after) {
  return {after.count - before.count, after.bytes - before.bytes};
}

}  // namespace inband::allocs
