// Simulation time.
//
// All simulation timestamps and durations are signed 64-bit nanosecond
// counts. Nothing on the dataplane uses floating-point time; conversions to
// seconds happen only when formatting output. A signed representation keeps
// subtraction (the single most common operation on timestamps) safe.
#pragma once

#include <cstdint>
#include <string>

namespace inband {

// A point in simulated time, or a duration, in nanoseconds.
using SimTime = std::int64_t;

// Sentinel for "no timestamp recorded yet".
inline constexpr SimTime kNoTime = -1;

constexpr SimTime ns(std::int64_t v) { return v; }
constexpr SimTime us(std::int64_t v) { return v * 1'000; }
constexpr SimTime ms(std::int64_t v) { return v * 1'000'000; }
constexpr SimTime sec(std::int64_t v) { return v * 1'000'000'000; }

constexpr double to_us(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double to_ms(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double to_sec(SimTime t) { return static_cast<double>(t) / 1e9; }

namespace time_literals {

constexpr SimTime operator""_ns(unsigned long long v) {
  return static_cast<SimTime>(v);
}
constexpr SimTime operator""_us(unsigned long long v) {
  return us(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return ms(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_s(unsigned long long v) {
  return sec(static_cast<std::int64_t>(v));
}

}  // namespace time_literals

// Renders a duration with an auto-selected unit, e.g. "1.234ms", "64us",
// "2.5s". Intended for logs and reports, not for machine parsing.
std::string format_duration(SimTime t);

}  // namespace inband
