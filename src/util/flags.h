// Tiny command-line flag parser for the examples and bench drivers.
//
// Flags are registered against variables owned by the caller and parsed from
// `--name=value` or `--name value` arguments (`--flag` alone sets a bool).
// Unknown flags are an error: experiment drivers should fail loudly rather
// than silently ignore a typo'd parameter.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/shard.h"

namespace inband {

INBAND_SHARD_LOCAL(owner)
class FlagSet {
 public:
  explicit FlagSet(std::string program_description = {})
      : description_{std::move(program_description)} {}

  void add(std::string name, bool* target, std::string help);
  void add(std::string name, std::int64_t* target, std::string help);
  void add(std::string name, double* target, std::string help);
  void add(std::string name, std::string* target, std::string help);

  // Parses argv (excluding argv[0]). Returns false and prints usage on error
  // or when --help is present. Registered targets keep their prior values for
  // flags not mentioned, so callers pre-load defaults into the variables.
  bool parse(int argc, const char* const* argv);

  std::string usage(const std::string& argv0) const;

 private:
  using Target = std::variant<bool*, std::int64_t*, double*, std::string*>;
  struct Flag {
    std::string name;
    Target target;
    std::string help;
  };

  const Flag* find(const std::string& name) const;
  static bool assign(const Flag& flag, const std::string& value);

  std::string description_;
  std::vector<Flag> flags_;
};

}  // namespace inband
