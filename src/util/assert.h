// Lightweight assertion macros.
//
// INBAND_ASSERT is active in every build type: it guards contract violations
// on slow paths (setup, teardown, control plane). INBAND_DCHECK compiles out
// in NDEBUG builds and may be used on the per-packet fast path.
//
// INBAND_AUDIT / INBAND_AUDIT_BLOCK are a third, heavier tier feeding the
// runtime invariant auditor (src/check/): structural checks that walk whole
// tables or queues. They compile to nothing unless INBAND_ENABLE_AUDITS is
// defined — on by default in non-NDEBUG builds, forced on by the CMake
// option -DINBAND_ENABLE_AUDITS=ON (the sanitizer CI preset), forced off by
// defining INBAND_DISABLE_AUDITS.
#pragma once

#include <cstdio>
#include <cstdlib>

#if !defined(INBAND_ENABLE_AUDITS) && !defined(NDEBUG) && \
    !defined(INBAND_DISABLE_AUDITS)
#define INBAND_ENABLE_AUDITS 1
#endif

namespace inband {

// True when INBAND_AUDIT checks are compiled in; lets runtime code (e.g. the
// cluster rig's periodic full-audit event) branch without an #ifdef.
#ifdef INBAND_ENABLE_AUDITS
inline constexpr bool kAuditsEnabled = true;
#else
inline constexpr bool kAuditsEnabled = false;
#endif

namespace detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "assertion failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace detail
}  // namespace inband

#define INBAND_ASSERT(cond, ...)                                       \
  do {                                                                 \
    if (!(cond)) [[unlikely]] {                                        \
      ::inband::detail::assert_fail(#cond, __FILE__, __LINE__,         \
                                    "" __VA_ARGS__);                   \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define INBAND_DCHECK(cond, ...) \
  do {                           \
  } while (0)
#else
#define INBAND_DCHECK(cond, ...) INBAND_ASSERT(cond, ##__VA_ARGS__)
#endif

#ifdef INBAND_ENABLE_AUDITS
// Condition form: aborts like INBAND_ASSERT when the audit fails.
#define INBAND_AUDIT(cond, ...) INBAND_ASSERT(cond, ##__VA_ARGS__)
// Statement form: runs arbitrary audit code (hook registration, periodic
// full-audit scheduling) only in audit-enabled builds.
#define INBAND_AUDIT_BLOCK(...) \
  do {                          \
    __VA_ARGS__;                \
  } while (0)
#else
// sizeof keeps the condition syntactically checked (so audit-only bugs do
// not rot in release-only code) without evaluating it — zero codegen.
#define INBAND_AUDIT(cond, ...)  \
  do {                           \
    (void)sizeof(!(cond));       \
  } while (0)
#define INBAND_AUDIT_BLOCK(...) \
  do {                          \
  } while (0)
#endif
