// Lightweight assertion macros.
//
// INBAND_ASSERT is active in every build type: it guards contract violations
// on slow paths (setup, teardown, control plane). INBAND_DCHECK compiles out
// in NDEBUG builds and may be used on the per-packet fast path.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace inband::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "assertion failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace inband::detail

#define INBAND_ASSERT(cond, ...)                                       \
  do {                                                                 \
    if (!(cond)) [[unlikely]] {                                        \
      ::inband::detail::assert_fail(#cond, __FILE__, __LINE__,         \
                                    "" __VA_ARGS__);                   \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define INBAND_DCHECK(cond, ...) \
  do {                           \
  } while (0)
#else
#define INBAND_DCHECK(cond, ...) INBAND_ASSERT(cond, ##__VA_ARGS__)
#endif
