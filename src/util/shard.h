// Shard-ownership annotations for the shardlint static analyzer
// (tools/detlint). All three macros expand to nothing — they exist purely
// as tokens for the analyzer, placed immediately before the class keyword:
//
//   INBAND_SHARD_LOCAL(shard) class KvServer { ... };
//
// The taxonomy (DESIGN.md §9.2) partitions mutable simulator state so the
// planned parallel rig can replicate, share, or channel it:
//
// `INBAND_SHARD_LOCAL(domain)` — every instance's mutable state belongs to
// exactly one ownership domain; the domain name ("shard", "lb", ...) groups
// the classes that a single worker owns together. The special domain
// `owner` marks instance-scoped value/engine types (Rng, EventQueue,
// Simulator): each instance belongs to whatever object owns it, so the
// class is transparent to cross-domain analysis — annotate with `owner`
// only when a type holds no state of its own that outlives its owner.
//
// `INBAND_SHARD_SHARED_CONST` — immutable after construction; every domain
// may read it concurrently. shardlint trusts the annotation and skips the
// class; lying here (mutating after setup) is a determinism bug the lint
// cannot see.
//
// `INBAND_SHARD_CHANNEL` — the only sanctioned cross-shard mutation path.
// Channel state may be touched from any domain (that is its job), and
// shardlint stops domain reachability at a channel boundary: whatever a
// channel hands to the other side is the receiving domain's own state,
// covered by that domain's own hot roots.
//
// Unannotated classes whose mutable state is reachable from two ownership
// domains are `unannotated-shared` findings; see tools/detlint/README.md
// for the full shardlint rule table and the comment-waiver form.
#pragma once

#define INBAND_SHARD_LOCAL(domain)
#define INBAND_SHARD_SHARED_CONST
#define INBAND_SHARD_CHANNEL
