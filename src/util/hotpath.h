// Hot-path annotations for the hotlint static analyzer (tools/detlint).
//
// `INBAND_HOT` marks a function as a hot root: hotlint walks the
// approximate call graph from every definition (and declaration) carrying
// the marker and flags allocation, growth, string, throw, I/O, blocking and
// shard-safety hazards in everything reachable. The macro expands to
// nothing — it exists purely as a token for the analyzer, placed before the
// return type:
//
//   INBAND_HOT void transmit(Packet pkt, PacketSink& dst);
//
// `INBAND_COLD_OK(reason)` marks the rest of the enclosing brace block as a
// justified cold region: hot-path findings inside it are waived with
// `reason`, and hotlint stops traversing call edges that originate there.
// Shard-safety findings are NOT waived by a cold region — code in a cold
// branch still runs inside the simulation, so mutable shared state there
// still blocks per-shard parallelism; waive those with an explicit hotlint
// waiver comment naming the shard rule (see tools/detlint/README.md). The
// reason string is mandatory; an empty or missing reason is itself a
// finding.
//
//   if (freelist_.empty()) {
//     INBAND_COLD_OK("pool warming: heap touched only until steady state");
//     return static_cast<T*>(::operator new(bytes));
//   }
//
// See DESIGN.md §9 for the full taxonomy and tools/detlint/README.md for
// the rule table.
#pragma once

#define INBAND_HOT
#define INBAND_COLD_OK(reason) \
  do {                         \
  } while (false)
