// CSV output for experiment results.
//
// Every bench emits its figure/table series through CsvWriter so the rows are
// both human-scannable on stdout and machine-parseable for plotting. Fields
// containing commas, quotes or newlines are quoted per RFC 4180.
#pragma once

#include <fstream>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>

#include "util/assert.h"
#include "util/shard.h"

namespace inband {

INBAND_SHARD_LOCAL(owner)
class CsvWriter {
 public:
  // Writes to an externally owned stream (e.g. std::cout).
  explicit CsvWriter(std::ostream& out) : out_{&out} {}

  // Writes to a file; throws std::runtime_error if the file cannot be opened.
  explicit CsvWriter(const std::string& path);

  // Emits the header row. Must be called before the first row (enforced).
  template <typename... Cols>
  void header(Cols&&... cols) {
    INBAND_ASSERT(!header_written_, "header() called twice");
    write_row(std::forward<Cols>(cols)...);
    header_written_ = true;
  }

  template <typename... Vals>
  void row(Vals&&... vals) {
    INBAND_ASSERT(header_written_, "row() before header()");
    write_row(std::forward<Vals>(vals)...);
    ++rows_;
  }

  std::size_t rows_written() const { return rows_; }

 private:
  template <typename... Vals>
  void write_row(Vals&&... vals) {
    bool first = true;
    ((write_field(first, std::forward<Vals>(vals)), first = false), ...);
    *out_ << '\n';
  }

  template <typename T>
  void write_field(bool first, const T& v) {
    if (!first) *out_ << ',';
    if constexpr (std::is_convertible_v<T, std::string_view>) {
      write_string(std::string_view{v});
    } else if constexpr (std::is_floating_point_v<T>) {
      write_double(static_cast<double>(v));
    } else {
      *out_ << v;
    }
  }

  void write_string(std::string_view s);
  void write_double(double v);

  std::ofstream file_;
  std::ostream* out_;
  bool header_written_ = false;
  std::size_t rows_ = 0;
};

}  // namespace inband
