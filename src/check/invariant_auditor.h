// Runtime invariant auditor.
//
// A registry of per-module audit hooks that walk live data structures and
// verify structural invariants the unit tests cannot see from the outside:
// event-queue time monotonicity, TCP sequence/window relationships, Maglev
// table validity, conntrack and flow-state-table consistency. Modules expose
// an `audit_invariants(AuditScope&)` method; owners (the cluster rig, tests)
// register those methods as hooks and run the whole set — periodically from
// a simulator event in audit-enabled builds, or on demand.
//
// Failure handling is configurable: kAbort turns the first violation into an
// INBAND_ASSERT-style abort (the right default for debug simulation runs),
// kCollect records violations for inspection (what the negative tests use to
// assert that injected corruption is detected).
//
// This library depends only on util/, so every other subsystem can link it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/shard.h"
#include "util/time.h"

namespace inband {

struct AuditViolation {
  std::string module;     // registered hook name, e.g. "lb0/maglev"
  std::string invariant;  // short invariant id, e.g. "slot-owner-valid"
  std::string detail;     // free-form context for the report
  SimTime t = kNoTime;    // simulation time of the audit that caught it
};

enum class AuditFailMode { kAbort, kCollect };

class InvariantAuditor;

// Handed to every hook invocation; carries the audit time and routes check
// results back to the auditor under the hook's module name.
INBAND_SHARD_LOCAL(owner)
class AuditScope {
 public:
  SimTime now() const { return now_; }

  // Records a violation when `ok` is false; returns `ok` so callers can
  // guard follow-on checks that would crash on corrupt state.
  bool check(bool ok, std::string_view invariant, std::string detail = {});

 private:
  friend class InvariantAuditor;
  AuditScope(InvariantAuditor& auditor, std::string_view module, SimTime now)
      : auditor_{auditor}, module_{module}, now_{now} {}

  InvariantAuditor& auditor_;
  std::string_view module_;
  SimTime now_;
};

INBAND_SHARD_LOCAL(owner)
class InvariantAuditor {
 public:
  using Hook = std::function<void(AuditScope&)>;

  explicit InvariantAuditor(AuditFailMode mode = AuditFailMode::kAbort)
      : mode_{mode} {}

  // Registers a named hook; names must be unique (asserted). Hooks run in
  // registration order so audit output is deterministic.
  void register_hook(std::string module, Hook hook);
  bool unregister_hook(std::string_view module);
  std::size_t hook_count() const { return hooks_.size(); }

  // Runs every registered hook at simulation time `now`. Returns the number
  // of violations found by this run (always 0 in kAbort mode — the first
  // violation aborts).
  std::size_t run_all(SimTime now);

  // Runs a single registered hook; returns violations found.
  std::size_t run_one(std::string_view module, SimTime now);

  // Direct reporting entry (used by AuditScope::check and free-standing
  // audit code). Aborts in kAbort mode.
  void report(std::string_view module, std::string_view invariant,
              std::string detail, SimTime t);

  const std::vector<AuditViolation>& violations() const { return violations_; }
  std::uint64_t audits_run() const { return audits_run_; }
  void clear_violations() { violations_.clear(); }

  AuditFailMode fail_mode() const { return mode_; }

 private:
  struct NamedHook {
    std::string module;
    Hook hook;
  };

  std::size_t run_hook(const NamedHook& h, SimTime now);

  AuditFailMode mode_;
  std::vector<NamedHook> hooks_;
  std::vector<AuditViolation> violations_;
  std::uint64_t audits_run_ = 0;
};

}  // namespace inband
