// Pre-rework reference implementations, kept for differential testing and
// benchmarking.
//
// LegacyEventQueue and LegacyFlowStateTable are the event queue and flow
// table as they existed before the slab-pool/eviction-index rework (PR 5):
// std::function handlers in an unordered_map, and an O(n) eviction scan.
// They are the behavioral spec the reworked implementations must match —
// tests drive identical operation sequences through old and new and compare
// pop order, eviction victims, and digests; micro_dataplane benches them as
// the "before" column of the speedup claim.
//
// LegacyAlphaShiftController is the α-shift controller as it existed before
// it was rehomed onto the WeightController interface: the oracle the
// refactored controller must match decision-for-decision, bit for bit.
//
// LegacyScalarLink / LegacyScalarSendPath are the per-packet send path as it
// stood before the PacketBatch redesign (PR 9): one stamp, one verdict, one
// link clock-in per Network::send() call. The batch path must reproduce
// their delivery times and order bit-for-bit; the differential suite drives
// identical traffic through both and compares (pkt_id, deliver_at) streams.
//
// Not for production use.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "check/state_digest.h"
#include "core/alpha_shift_controller.h"  // AlphaShiftConfig / ShiftDecision
#include "core/flow_state_table.h"
#include "core/server_latency_tracker.h"
#include "net/flow.h"
#include "net/link.h"     // LinkParams
#include "net/network.h"  // SendVerdict
#include "sim/event_queue.h"  // EventId / kInvalidEventId
#include "telemetry/ewma.h"
#include "util/assert.h"
#include "util/shard.h"
#include "util/time.h"

namespace inband {

INBAND_SHARD_LOCAL(owner)
class LegacyEventQueue {
 public:
  EventId push(SimTime t, std::function<void()> fn) {
    INBAND_ASSERT(fn != nullptr);
    const EventId id = next_id_++;
    heap_.push({t, id});
    // hotlint:allow(hot-growth): reference model, differential tests only
    handlers_.emplace(id, std::move(fn));
    ++live_;
    return id;
  }

  bool cancel(EventId id) {
    const auto erased = handlers_.erase(id);
    if (erased == 0) return false;
    INBAND_ASSERT(live_ > 0);
    --live_;
    return true;
  }

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  SimTime next_time() {
    drop_dead_heads();
    return heap_.empty() ? kNoTime : heap_.top().t;
  }

  struct Popped {
    SimTime t;
    std::function<void()> fn;
  };

  Popped pop() {
    drop_dead_heads();
    INBAND_ASSERT(!heap_.empty(), "pop() on empty event queue");
    const HeapEntry head = heap_.top();
    heap_.pop();
    auto it = handlers_.find(head.id);
    INBAND_ASSERT(it != handlers_.end());
    Popped out{head.t, std::move(it->second)};
    handlers_.erase(it);
    --live_;
    last_popped_ = head.t;
    return out;
  }

  std::uint64_t total_pushed() const { return next_id_ - 1; }
  SimTime last_popped() const { return last_popped_; }

  void digest_state(StateDigest& digest) {
    digest.mix(next_id_);
    digest.mix(live_);
    digest.mix_i64(last_popped_);
    digest.mix_i64(next_time());
  }

 private:
  struct HeapEntry {
    SimTime t;
    EventId id;
    bool operator>(const HeapEntry& o) const {
      return t != o.t ? t > o.t : id > o.id;
    }
  };

  void drop_dead_heads() {
    while (!heap_.empty() &&
           handlers_.find(heap_.top().id) == handlers_.end()) {
      heap_.pop();
    }
  }

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
  SimTime last_popped_ = kNoTime;
};

INBAND_SHARD_LOCAL(lb)
class LegacyFlowStateTable {
 public:
  explicit LegacyFlowStateTable(FlowStateTableConfig config = {})
      : config_{config} {
    INBAND_ASSERT(config_.max_entries > 0);
  }

  FlowState& get_or_create(const FlowKey& flow, SimTime now) {
    auto it = map_.find(flow);
    if (it == map_.end()) {
      if (map_.size() >= config_.max_entries) evict_stalest();
      // hotlint:allow(hot-growth): reference model, differential tests only
      it = map_.emplace(flow, Entry{}).first;
    }
    it->second.last_seen = now;
    return it->second.state;
  }

  void erase(const FlowKey& flow) { map_.erase(flow); }

  void maybe_sweep(SimTime now) {
    if (now - last_sweep_ < config_.sweep_interval) return;
    last_sweep_ = now;
    // detlint:allow(unordered-iter): erases the idle subset; expiry is decided per entry, independent of visit order
    for (auto it = map_.begin(); it != map_.end();) {
      if (now - it->second.last_seen >= config_.idle_timeout) {
        it = map_.erase(it);
        ++expirations_;
      } else {
        ++it;
      }
    }
  }

  std::size_t size() const { return map_.size(); }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t expirations() const { return expirations_; }

  void digest_state(StateDigest& digest) const {
    UnorderedDigest entries;
    // detlint:allow(unordered-iter): per-entry digests fold through the commutative UnorderedDigest combiner
    for (const auto& [flow, entry] : map_) {
      StateDigest e;
      e.mix(hash_flow(flow));
      e.mix_i64(entry.last_seen);
      e.mix_i64(entry.state.min_sample);
      EnsembleTimeout::digest_state(entry.state.ensemble, e);
      entries.add(e);
    }
    entries.mix_into(digest);
    digest.mix(evictions_);
    digest.mix(expirations_);
    digest.mix_i64(last_sweep_);
  }

 private:
  struct Entry {
    FlowState state;
    SimTime last_seen = kNoTime;
  };

  void evict_stalest() {
    // The O(n) scan the eviction index replaced; ties on last_seen break on
    // the flow key so old and new pick the same victim.
    auto victim = map_.end();
    // detlint:allow(unordered-iter): selects the unique minimum by a value-based key; the result is independent of visit order
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      if (victim == map_.end() ||
          it->second.last_seen < victim->second.last_seen ||
          (it->second.last_seen == victim->second.last_seen &&
           it->first < victim->first)) {
        victim = it;
      }
    }
    if (victim != map_.end()) {
      map_.erase(victim);
      ++evictions_;
    }
  }

  FlowStateTableConfig config_;
  std::unordered_map<FlowKey, Entry, FlowKeyHash> map_;
  SimTime last_sweep_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t expirations_ = 0;
};

// The directed-link clock-in logic exactly as it stood before the batch
// redesign, decoupled from the Simulator: the caller supplies `now`. One
// call = one packet, same virtual-queue admission, serialization,
// propagation, jitter draw, and FIFO monotonicity as the old
// Link::transmit(Packet, PacketSink&).
INBAND_SHARD_LOCAL(shard)
class LegacyScalarLink {
 public:
  explicit LegacyScalarLink(LinkParams params)
      : params_{params}, jitter_rng_{params.jitter_seed} {
    INBAND_ASSERT(params_.bandwidth_bps > 0);
  }

  void set_extra_delay(SimTime d) { extra_delay_ = d; }

  SimTime serialization_delay(std::uint64_t bytes) const {
    const auto num = static_cast<__uint128_t>(bytes) * 8u * 1'000'000'000u;
    const auto d = static_cast<SimTime>(
        (num + params_.bandwidth_bps - 1) / params_.bandwidth_bps);
    return std::max<SimTime>(d, 1);
  }

  // Clocks one packet of `wire_bytes` in at time `now`. Returns the delivery
  // time, or kNoTime on a virtual-queue drop.
  SimTime transmit_at(SimTime now, std::uint64_t wire_bytes) {
    if (params_.queue_bytes != 0) {
      const SimTime queue_limit = serialization_delay(params_.queue_bytes);
      const SimTime backlog = busy_until_ > now ? busy_until_ - now : 0;
      if (backlog > queue_limit) {
        ++drops_;
        return kNoTime;
      }
    }
    const SimTime start = std::max(now, busy_until_);
    const SimTime done = start + serialization_delay(wire_bytes);
    busy_until_ = done;
    ++tx_packets_;
    SimTime deliver_at = done + params_.prop_delay + extra_delay_;
    if (params_.jitter_median > 0 && params_.jitter_sigma > 0.0) {
      deliver_at += static_cast<SimTime>(jitter_rng_.lognormal_median(
          static_cast<double>(params_.jitter_median), params_.jitter_sigma));
    }
    deliver_at = std::max(deliver_at, last_delivery_ + 1);
    last_delivery_ = deliver_at;
    return deliver_at;
  }

  std::uint64_t tx_packets() const { return tx_packets_; }
  std::uint64_t drops() const { return drops_; }

 private:
  LinkParams params_;
  Rng jitter_rng_;
  SimTime extra_delay_ = 0;
  SimTime busy_until_ = 0;
  SimTime last_delivery_ = 0;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t drops_ = 0;
};

// The old Network::send() applied to one directed link: stamp a fresh
// pkt_id, apply the scalar interceptor verdict (drop / duplicate_hold /
// hold), clock the survivors into the link one at a time. Held packets sit
// in an internal (release-time, seq) min-heap that mirrors the simulator's
// event ordering; they clock in when the replayed clock passes their release
// time. The recorded (pkt_id, deliver_at) stream is in clock-in order, which
// on a FIFO link equals delivery order — the stream the batch path must
// reproduce exactly.
INBAND_SHARD_LOCAL(shard)
class LegacyScalarSendPath {
 public:
  struct Delivery {
    std::uint64_t pkt_id;
    SimTime deliver_at;
  };

  explicit LegacyScalarSendPath(LinkParams params) : link_{params} {}

  LegacyScalarLink& link() { return link_; }

  // Replays one Network::send() call at time `now`. Returns what
  // dispatch() returned pre-batch: false only on a link queue drop of the
  // original packet.
  bool send(SimTime now, std::uint64_t wire_bytes,
            const SendVerdict& verdict = {}) {
    release_held(now);
    const std::uint64_t id = next_pkt_id_++;
    ++packets_sent_;
    if (verdict.drop) return true;  // lost in the network, send "succeeded"
    if (verdict.duplicate_hold != kNoTime) {
      held_.push({now + verdict.duplicate_hold, next_hold_seq_++, id,
                  wire_bytes});
    }
    if (verdict.hold > 0) {
      held_.push({now + verdict.hold, next_hold_seq_++, id, wire_bytes});
      return true;
    }
    const bool ok = clock_in(now, id, wire_bytes);
    if (!ok) ++packets_dropped_;
    return ok;
  }

  // Advances the replayed clock to `now`, clocking in every held packet
  // whose release time has passed. Call with the end-of-run time to flush.
  void release_held(SimTime now) {
    while (!held_.empty() && held_.top().at <= now) {
      const Held h = held_.top();
      held_.pop();
      if (!clock_in(h.at, h.pkt_id, h.wire_bytes)) ++packets_dropped_;
    }
  }

  const std::vector<Delivery>& deliveries() const { return deliveries_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }

  std::uint64_t delivery_digest() const {
    StateDigest d;
    d.mix(deliveries_.size());
    for (const auto& del : deliveries_) {
      d.mix(del.pkt_id);
      d.mix_i64(del.deliver_at);
    }
    return d.value();
  }

 private:
  struct Held {
    SimTime at;
    std::uint64_t seq;  // schedule order breaks release-time ties
    std::uint64_t pkt_id;
    std::uint64_t wire_bytes;
    bool operator>(const Held& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  bool clock_in(SimTime now, std::uint64_t pkt_id, std::uint64_t wire_bytes) {
    const SimTime deliver_at = link_.transmit_at(now, wire_bytes);
    if (deliver_at == kNoTime) return false;
    // hotlint:allow(hot-growth): reference model, differential tests only
    deliveries_.push_back({pkt_id, deliver_at});
    return true;
  }

  LegacyScalarLink link_;
  std::priority_queue<Held, std::vector<Held>, std::greater<>> held_;
  std::vector<Delivery> deliveries_;
  std::uint64_t next_pkt_id_ = 1;
  std::uint64_t next_hold_seq_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_dropped_ = 0;
};

// The α-shift controller exactly as it stood before the WeightController
// interface extraction (PR 7): cooldown/shift bookkeeping inline instead of
// inherited. The differential suite drives this and the refactored
// AlphaShiftController with the same score streams and requires identical
// decision sequences.
INBAND_SHARD_LOCAL(lb)
class LegacyAlphaShiftController {
 public:
  explicit LegacyAlphaShiftController(AlphaShiftConfig config = {})
      : config_{config}, baseline_best_{config.guard_tau} {
    INBAND_ASSERT(config_.alpha > 0.0 && config_.alpha <= 1.0);
    INBAND_ASSERT(config_.rel_threshold >= 1.0);
    INBAND_ASSERT(config_.cooldown >= 0);
  }

  std::optional<ShiftDecision> evaluate(ServerLatencyTracker& tracker,
                                        SimTime now) {
    if (now < config_.warmup) return std::nullopt;
    if (last_shift_ != kNoTime && now - last_shift_ < config_.cooldown) {
      return std::nullopt;
    }

    tracker.scores_into(now, scores_scratch_);
    const auto& all = scores_scratch_;
    const BackendScore* worst = nullptr;
    const BackendScore* best = nullptr;
    std::size_t eligible = 0;
    for (const auto& s : all) {
      if (s.samples < config_.min_samples) continue;
      if (now - s.last_sample > config_.staleness) continue;
      ++eligible;
      if (worst == nullptr || s.score_ns > worst->score_ns) worst = &s;
      if (best == nullptr || s.score_ns < best->score_ns) best = &s;
    }
    if (eligible < 2 || worst == nullptr || best == nullptr ||
        worst->backend == best->backend) {
      return std::nullopt;
    }

    if (config_.global_guard > 0.0) {
      const bool inflated =
          baseline_best_.initialized() &&
          best->score_ns > config_.global_guard * baseline_best_.value();
      baseline_best_.record(now, best->score_ns);
      if (inflated) {
        ++guard_holds_;
        pending_from_ = kNoBackend;
        return std::nullopt;
      }
    }

    const double gap = worst->score_ns - best->score_ns;
    if (gap < static_cast<double>(config_.min_abs_gap) ||
        worst->score_ns < config_.rel_threshold * best->score_ns) {
      pending_from_ = kNoBackend;
      return std::nullopt;
    }

    if (config_.confirm > 0) {
      if (pending_from_ != worst->backend) {
        pending_from_ = worst->backend;
        pending_since_ = now;
        return std::nullopt;
      }
      if (now - pending_since_ < config_.confirm) return std::nullopt;
    }

    pending_from_ = kNoBackend;
    last_shift_ = now;
    ++shifts_;
    return ShiftDecision{worst->backend, config_.alpha, worst->score_ns,
                         best->score_ns};
  }

  std::uint64_t shifts() const { return shifts_; }
  std::uint64_t guard_holds() const { return guard_holds_; }
  SimTime last_shift_time() const { return last_shift_; }

 private:
  AlphaShiftConfig config_;
  DecayingEwma baseline_best_;
  std::vector<BackendScore> scores_scratch_;
  BackendId pending_from_ = kNoBackend;
  SimTime pending_since_ = kNoTime;
  SimTime last_shift_ = kNoTime;
  std::uint64_t shifts_ = 0;
  std::uint64_t guard_holds_ = 0;
};

}  // namespace inband
