// Pre-rework reference implementations, kept for differential testing and
// benchmarking.
//
// LegacyEventQueue and LegacyFlowStateTable are the event queue and flow
// table as they existed before the slab-pool/eviction-index rework (PR 5):
// std::function handlers in an unordered_map, and an O(n) eviction scan.
// They are the behavioral spec the reworked implementations must match —
// tests drive identical operation sequences through old and new and compare
// pop order, eviction victims, and digests; micro_dataplane benches them as
// the "before" column of the speedup claim.
//
// LegacyAlphaShiftController is the α-shift controller as it existed before
// it was rehomed onto the WeightController interface: the oracle the
// refactored controller must match decision-for-decision, bit for bit.
//
// Not for production use.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "check/state_digest.h"
#include "core/alpha_shift_controller.h"  // AlphaShiftConfig / ShiftDecision
#include "core/flow_state_table.h"
#include "core/server_latency_tracker.h"
#include "net/flow.h"
#include "sim/event_queue.h"  // EventId / kInvalidEventId
#include "telemetry/ewma.h"
#include "util/assert.h"
#include "util/shard.h"
#include "util/time.h"

namespace inband {

INBAND_SHARD_LOCAL(owner)
class LegacyEventQueue {
 public:
  EventId push(SimTime t, std::function<void()> fn) {
    INBAND_ASSERT(fn != nullptr);
    const EventId id = next_id_++;
    heap_.push({t, id});
    // hotlint:allow(hot-growth): reference model, differential tests only
    handlers_.emplace(id, std::move(fn));
    ++live_;
    return id;
  }

  bool cancel(EventId id) {
    const auto erased = handlers_.erase(id);
    if (erased == 0) return false;
    INBAND_ASSERT(live_ > 0);
    --live_;
    return true;
  }

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  SimTime next_time() {
    drop_dead_heads();
    return heap_.empty() ? kNoTime : heap_.top().t;
  }

  struct Popped {
    SimTime t;
    std::function<void()> fn;
  };

  Popped pop() {
    drop_dead_heads();
    INBAND_ASSERT(!heap_.empty(), "pop() on empty event queue");
    const HeapEntry head = heap_.top();
    heap_.pop();
    auto it = handlers_.find(head.id);
    INBAND_ASSERT(it != handlers_.end());
    Popped out{head.t, std::move(it->second)};
    handlers_.erase(it);
    --live_;
    last_popped_ = head.t;
    return out;
  }

  std::uint64_t total_pushed() const { return next_id_ - 1; }
  SimTime last_popped() const { return last_popped_; }

  void digest_state(StateDigest& digest) {
    digest.mix(next_id_);
    digest.mix(live_);
    digest.mix_i64(last_popped_);
    digest.mix_i64(next_time());
  }

 private:
  struct HeapEntry {
    SimTime t;
    EventId id;
    bool operator>(const HeapEntry& o) const {
      return t != o.t ? t > o.t : id > o.id;
    }
  };

  void drop_dead_heads() {
    while (!heap_.empty() &&
           handlers_.find(heap_.top().id) == handlers_.end()) {
      heap_.pop();
    }
  }

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
  SimTime last_popped_ = kNoTime;
};

INBAND_SHARD_LOCAL(lb)
class LegacyFlowStateTable {
 public:
  explicit LegacyFlowStateTable(FlowStateTableConfig config = {})
      : config_{config} {
    INBAND_ASSERT(config_.max_entries > 0);
  }

  FlowState& get_or_create(const FlowKey& flow, SimTime now) {
    auto it = map_.find(flow);
    if (it == map_.end()) {
      if (map_.size() >= config_.max_entries) evict_stalest();
      // hotlint:allow(hot-growth): reference model, differential tests only
      it = map_.emplace(flow, Entry{}).first;
    }
    it->second.last_seen = now;
    return it->second.state;
  }

  void erase(const FlowKey& flow) { map_.erase(flow); }

  void maybe_sweep(SimTime now) {
    if (now - last_sweep_ < config_.sweep_interval) return;
    last_sweep_ = now;
    // detlint:allow(unordered-iter): erases the idle subset; expiry is decided per entry, independent of visit order
    for (auto it = map_.begin(); it != map_.end();) {
      if (now - it->second.last_seen >= config_.idle_timeout) {
        it = map_.erase(it);
        ++expirations_;
      } else {
        ++it;
      }
    }
  }

  std::size_t size() const { return map_.size(); }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t expirations() const { return expirations_; }

  void digest_state(StateDigest& digest) const {
    UnorderedDigest entries;
    // detlint:allow(unordered-iter): per-entry digests fold through the commutative UnorderedDigest combiner
    for (const auto& [flow, entry] : map_) {
      StateDigest e;
      e.mix(hash_flow(flow));
      e.mix_i64(entry.last_seen);
      e.mix_i64(entry.state.min_sample);
      EnsembleTimeout::digest_state(entry.state.ensemble, e);
      entries.add(e);
    }
    entries.mix_into(digest);
    digest.mix(evictions_);
    digest.mix(expirations_);
    digest.mix_i64(last_sweep_);
  }

 private:
  struct Entry {
    FlowState state;
    SimTime last_seen = kNoTime;
  };

  void evict_stalest() {
    // The O(n) scan the eviction index replaced; ties on last_seen break on
    // the flow key so old and new pick the same victim.
    auto victim = map_.end();
    // detlint:allow(unordered-iter): selects the unique minimum by a value-based key; the result is independent of visit order
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      if (victim == map_.end() ||
          it->second.last_seen < victim->second.last_seen ||
          (it->second.last_seen == victim->second.last_seen &&
           it->first < victim->first)) {
        victim = it;
      }
    }
    if (victim != map_.end()) {
      map_.erase(victim);
      ++evictions_;
    }
  }

  FlowStateTableConfig config_;
  std::unordered_map<FlowKey, Entry, FlowKeyHash> map_;
  SimTime last_sweep_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t expirations_ = 0;
};

// The α-shift controller exactly as it stood before the WeightController
// interface extraction (PR 7): cooldown/shift bookkeeping inline instead of
// inherited. The differential suite drives this and the refactored
// AlphaShiftController with the same score streams and requires identical
// decision sequences.
INBAND_SHARD_LOCAL(lb)
class LegacyAlphaShiftController {
 public:
  explicit LegacyAlphaShiftController(AlphaShiftConfig config = {})
      : config_{config}, baseline_best_{config.guard_tau} {
    INBAND_ASSERT(config_.alpha > 0.0 && config_.alpha <= 1.0);
    INBAND_ASSERT(config_.rel_threshold >= 1.0);
    INBAND_ASSERT(config_.cooldown >= 0);
  }

  std::optional<ShiftDecision> evaluate(ServerLatencyTracker& tracker,
                                        SimTime now) {
    if (now < config_.warmup) return std::nullopt;
    if (last_shift_ != kNoTime && now - last_shift_ < config_.cooldown) {
      return std::nullopt;
    }

    tracker.scores_into(now, scores_scratch_);
    const auto& all = scores_scratch_;
    const BackendScore* worst = nullptr;
    const BackendScore* best = nullptr;
    std::size_t eligible = 0;
    for (const auto& s : all) {
      if (s.samples < config_.min_samples) continue;
      if (now - s.last_sample > config_.staleness) continue;
      ++eligible;
      if (worst == nullptr || s.score_ns > worst->score_ns) worst = &s;
      if (best == nullptr || s.score_ns < best->score_ns) best = &s;
    }
    if (eligible < 2 || worst == nullptr || best == nullptr ||
        worst->backend == best->backend) {
      return std::nullopt;
    }

    if (config_.global_guard > 0.0) {
      const bool inflated =
          baseline_best_.initialized() &&
          best->score_ns > config_.global_guard * baseline_best_.value();
      baseline_best_.record(now, best->score_ns);
      if (inflated) {
        ++guard_holds_;
        pending_from_ = kNoBackend;
        return std::nullopt;
      }
    }

    const double gap = worst->score_ns - best->score_ns;
    if (gap < static_cast<double>(config_.min_abs_gap) ||
        worst->score_ns < config_.rel_threshold * best->score_ns) {
      pending_from_ = kNoBackend;
      return std::nullopt;
    }

    if (config_.confirm > 0) {
      if (pending_from_ != worst->backend) {
        pending_from_ = worst->backend;
        pending_since_ = now;
        return std::nullopt;
      }
      if (now - pending_since_ < config_.confirm) return std::nullopt;
    }

    pending_from_ = kNoBackend;
    last_shift_ = now;
    ++shifts_;
    return ShiftDecision{worst->backend, config_.alpha, worst->score_ns,
                         best->score_ns};
  }

  std::uint64_t shifts() const { return shifts_; }
  std::uint64_t guard_holds() const { return guard_holds_; }
  SimTime last_shift_time() const { return last_shift_; }

 private:
  AlphaShiftConfig config_;
  DecayingEwma baseline_best_;
  std::vector<BackendScore> scores_scratch_;
  BackendId pending_from_ = kNoBackend;
  SimTime pending_since_ = kNoTime;
  SimTime last_shift_ = kNoTime;
  std::uint64_t shifts_ = 0;
  std::uint64_t guard_holds_ = 0;
};

}  // namespace inband
