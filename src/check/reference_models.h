// Pre-pool reference implementations, kept for differential testing and
// benchmarking.
//
// LegacyEventQueue and LegacyFlowStateTable are the event queue and flow
// table as they existed before the slab-pool/eviction-index rework (PR 5):
// std::function handlers in an unordered_map, and an O(n) eviction scan.
// They are the behavioral spec the reworked implementations must match —
// tests drive identical operation sequences through old and new and compare
// pop order, eviction victims, and digests; micro_dataplane benches them as
// the "before" column of the speedup claim. Not for production use.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "check/state_digest.h"
#include "core/flow_state_table.h"
#include "net/flow.h"
#include "sim/event_queue.h"  // EventId / kInvalidEventId
#include "util/assert.h"
#include "util/time.h"

namespace inband {

class LegacyEventQueue {
 public:
  EventId push(SimTime t, std::function<void()> fn) {
    INBAND_ASSERT(fn != nullptr);
    const EventId id = next_id_++;
    heap_.push({t, id});
    // hotlint:allow(hot-growth): reference model, differential tests only
    handlers_.emplace(id, std::move(fn));
    ++live_;
    return id;
  }

  bool cancel(EventId id) {
    const auto erased = handlers_.erase(id);
    if (erased == 0) return false;
    INBAND_ASSERT(live_ > 0);
    --live_;
    return true;
  }

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  SimTime next_time() {
    drop_dead_heads();
    return heap_.empty() ? kNoTime : heap_.top().t;
  }

  struct Popped {
    SimTime t;
    std::function<void()> fn;
  };

  Popped pop() {
    drop_dead_heads();
    INBAND_ASSERT(!heap_.empty(), "pop() on empty event queue");
    const HeapEntry head = heap_.top();
    heap_.pop();
    auto it = handlers_.find(head.id);
    INBAND_ASSERT(it != handlers_.end());
    Popped out{head.t, std::move(it->second)};
    handlers_.erase(it);
    --live_;
    last_popped_ = head.t;
    return out;
  }

  std::uint64_t total_pushed() const { return next_id_ - 1; }
  SimTime last_popped() const { return last_popped_; }

  void digest_state(StateDigest& digest) {
    digest.mix(next_id_);
    digest.mix(live_);
    digest.mix_i64(last_popped_);
    digest.mix_i64(next_time());
  }

 private:
  struct HeapEntry {
    SimTime t;
    EventId id;
    bool operator>(const HeapEntry& o) const {
      return t != o.t ? t > o.t : id > o.id;
    }
  };

  void drop_dead_heads() {
    while (!heap_.empty() &&
           handlers_.find(heap_.top().id) == handlers_.end()) {
      heap_.pop();
    }
  }

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
  SimTime last_popped_ = kNoTime;
};

class LegacyFlowStateTable {
 public:
  explicit LegacyFlowStateTable(FlowStateTableConfig config = {})
      : config_{config} {
    INBAND_ASSERT(config_.max_entries > 0);
  }

  FlowState& get_or_create(const FlowKey& flow, SimTime now) {
    auto it = map_.find(flow);
    if (it == map_.end()) {
      if (map_.size() >= config_.max_entries) evict_stalest();
      // hotlint:allow(hot-growth): reference model, differential tests only
      it = map_.emplace(flow, Entry{}).first;
    }
    it->second.last_seen = now;
    return it->second.state;
  }

  void erase(const FlowKey& flow) { map_.erase(flow); }

  void maybe_sweep(SimTime now) {
    if (now - last_sweep_ < config_.sweep_interval) return;
    last_sweep_ = now;
    // detlint:allow(unordered-iter): erases the idle subset; expiry is decided per entry, independent of visit order
    for (auto it = map_.begin(); it != map_.end();) {
      if (now - it->second.last_seen >= config_.idle_timeout) {
        it = map_.erase(it);
        ++expirations_;
      } else {
        ++it;
      }
    }
  }

  std::size_t size() const { return map_.size(); }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t expirations() const { return expirations_; }

  void digest_state(StateDigest& digest) const {
    UnorderedDigest entries;
    // detlint:allow(unordered-iter): per-entry digests fold through the commutative UnorderedDigest combiner
    for (const auto& [flow, entry] : map_) {
      StateDigest e;
      e.mix(hash_flow(flow));
      e.mix_i64(entry.last_seen);
      e.mix_i64(entry.state.min_sample);
      EnsembleTimeout::digest_state(entry.state.ensemble, e);
      entries.add(e);
    }
    entries.mix_into(digest);
    digest.mix(evictions_);
    digest.mix(expirations_);
    digest.mix_i64(last_sweep_);
  }

 private:
  struct Entry {
    FlowState state;
    SimTime last_seen = kNoTime;
  };

  void evict_stalest() {
    // The O(n) scan the eviction index replaced; ties on last_seen break on
    // the flow key so old and new pick the same victim.
    auto victim = map_.end();
    // detlint:allow(unordered-iter): selects the unique minimum by a value-based key; the result is independent of visit order
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      if (victim == map_.end() ||
          it->second.last_seen < victim->second.last_seen ||
          (it->second.last_seen == victim->second.last_seen &&
           it->first < victim->first)) {
        victim = it;
      }
    }
    if (victim != map_.end()) {
      map_.erase(victim);
      ++evictions_;
    }
  }

  FlowStateTableConfig config_;
  std::unordered_map<FlowKey, Entry, FlowKeyHash> map_;
  SimTime last_sweep_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t expirations_ = 0;
};

}  // namespace inband
