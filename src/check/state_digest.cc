#include "check/state_digest.h"

#include <cstdio>

namespace inband {

std::string StateDigest::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h_));
  return std::string(buf);
}

}  // namespace inband
