#include "check/invariant_auditor.h"

#include <cstdio>

#include "util/assert.h"

namespace inband {

bool AuditScope::check(bool ok, std::string_view invariant,
                       std::string detail) {
  if (!ok) [[unlikely]] {
    auditor_.report(module_, invariant, std::move(detail), now_);
  }
  return ok;
}

void InvariantAuditor::register_hook(std::string module, Hook hook) {
  INBAND_ASSERT(hook != nullptr);
  for (const auto& h : hooks_) {
    INBAND_ASSERT(h.module != module, "duplicate audit hook name");
  }
  hooks_.push_back(NamedHook{std::move(module), std::move(hook)});
}

bool InvariantAuditor::unregister_hook(std::string_view module) {
  for (auto it = hooks_.begin(); it != hooks_.end(); ++it) {
    if (it->module == module) {
      hooks_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t InvariantAuditor::run_hook(const NamedHook& h, SimTime now) {
  const std::size_t before = violations_.size();
  AuditScope scope{*this, h.module, now};
  h.hook(scope);
  ++audits_run_;
  return violations_.size() - before;
}

std::size_t InvariantAuditor::run_all(SimTime now) {
  std::size_t found = 0;
  for (const auto& h : hooks_) found += run_hook(h, now);
  return found;
}

std::size_t InvariantAuditor::run_one(std::string_view module, SimTime now) {
  for (const auto& h : hooks_) {
    if (h.module == module) return run_hook(h, now);
  }
  INBAND_ASSERT(false, "run_one: no such audit hook");
  return 0;
}

void InvariantAuditor::report(std::string_view module,
                              std::string_view invariant, std::string detail,
                              SimTime t) {
  if (mode_ == AuditFailMode::kAbort) {
    std::fprintf(stderr,
                 "invariant audit failed: [%.*s] %.*s at t=%s%s%s\n",
                 static_cast<int>(module.size()), module.data(),
                 static_cast<int>(invariant.size()), invariant.data(),
                 format_duration(t).c_str(), detail.empty() ? "" : " — ",
                 detail.c_str());
    std::abort();
  }
  violations_.push_back(AuditViolation{std::string(module),
                                       std::string(invariant),
                                       std::move(detail), t});
}

}  // namespace inband
