// Order-sensitive and order-insensitive state hashing for determinism
// checks.
//
// StateDigest is an FNV-1a-64 accumulator; modules implement
// `digest_state(StateDigest&) const` and fold in every field that must be
// identical across two same-seed runs. For unordered containers
// (conntrack, flow-state, TCP demux maps) iteration order is not part of
// the contract, so per-entry digests are combined commutatively via
// UnorderedDigest and only the combined value is mixed in.
//
// The digest is a detector, not a cryptographic commitment: FNV is cheap,
// stable across runs and platforms with identical arithmetic, and a single
// diverging field anywhere in the mixed state flips the value with high
// probability — exactly what examples/determinism_check.cc needs to catch
// iteration-order or uninitialized-read nondeterminism.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/shard.h"

namespace inband {

INBAND_SHARD_LOCAL(owner)
class StateDigest {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      mix_byte(static_cast<unsigned char>(v >> (8 * i)));
    }
  }
  void mix_i64(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix_u32(std::uint32_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix_bool(bool v) { mix(v ? 1u : 0u); }
  // Bit pattern, so -0.0 vs 0.0 and NaN payload differences are visible.
  void mix_double(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix_string(std::string_view s) {
    mix(s.size());
    for (const char c : s) mix_byte(static_cast<unsigned char>(c));
  }

  std::uint64_t value() const { return h_; }
  std::string hex() const;

 private:
  void mix_byte(unsigned char b) {
    h_ ^= b;
    h_ *= 0x100000001b3ULL;  // FNV-1a 64 prime
  }

  std::uint64_t h_ = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
};

// Commutative combiner for unordered containers: digest each entry into its
// own StateDigest, add the entry values here, then mix `combined()` (entry
// count + sum) into the parent digest.
INBAND_SHARD_LOCAL(owner)
class UnorderedDigest {
 public:
  void add(std::uint64_t entry_digest) {
    sum_ += entry_digest;
    ++count_;
  }
  void add(const StateDigest& entry) { add(entry.value()); }

  void mix_into(StateDigest& parent) const {
    parent.mix(count_);
    parent.mix(sum_);
  }

  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t sum_ = 0;  // wraps mod 2^64; commutative by construction
  std::uint64_t count_ = 0;
};

}  // namespace inband
