// Shortest-queue-style proportional weighting, with an optional stale-view
// variant.
//
// The classic baseline the source paper argues against sizing by: send
// traffic in proportion to how "short" each server currently looks. Here a
// server's queue proxy is its in-band latency score, so the law is
//
//   w_i  ~  (1 / max(score_i, 1ns)) ^ power
//
// renormalized over the healthy set (floored, so nobody starves). `power`
// sharpens the preference: 1.0 is plain inverse-latency proportionality;
// large powers approach join-the-shortest-queue's winner-take-all behavior
// and exhibit its herd oscillation.
//
// The stale-info variant (`view_refresh > 0`) recomputes from a *snapshot*
// of the scores that only refreshes every `view_refresh`: between refreshes
// the law keeps steering by the old view, reproducing the stale-control-state
// herding that motivates in-band feedback in the first place (the "fast
// in-band signal vs slow out-of-band collection" contrast of PAPER.md §3).
#pragma once

#include <cstdint>
#include <vector>

#include "core/weight_controller.h"
#include "util/shard.h"

namespace inband {

struct ShortestQueueConfig {
  SimTime epoch = ms(2);   // reweigh interval
  SimTime view_refresh = 0;  // 0: always-fresh view; >0: stale-info variant
  double power = 1.0;      // preference sharpness
  double min_weight = 0.02;
  std::uint64_t min_samples = 1;
  SimTime staleness = ms(20);
  SimTime warmup = 0;
  double deadband = 0.01;
  // Purity contract; the law itself draws no entropy (see KnapsackLbConfig).
  std::uint64_t seed = 0x50f7;
};

INBAND_SHARD_LOCAL(lb)
class ShortestQueueController final : public WeightController {
 public:
  explicit ShortestQueueController(ShortestQueueConfig config = {});

  const char* name() const override {
    return config_.view_refresh > 0 ? "shortest-queue-stale"
                                    : "shortest-queue";
  }

  INBAND_HOT std::optional<WeightDecision> control_step(
      ServerLatencyTracker& tracker, const std::vector<double>& weights,
      SimTime now) override;

  const ShortestQueueConfig& config() const { return config_; }
  // Age of the score view the last decision was computed from (0 for the
  // fresh variant). Introspection for tests.
  SimTime view_age(SimTime now) const {
    return view_taken_ == kNoTime ? 0 : now - view_taken_;
  }

  void digest_state(StateDigest& digest) const override;

 private:
  ShortestQueueConfig config_;
  std::vector<BackendScore> scores_scratch_;
  std::vector<BackendScore> view_;  // stale snapshot (view_refresh > 0)
  std::vector<double> next_;        // the decision's weight vector (owned)
  SimTime last_eval_ = kNoTime;
  SimTime view_taken_ = kNoTime;
};

}  // namespace inband
