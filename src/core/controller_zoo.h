// Controller zoo: one factory for every registered WeightController.
//
// Kept separate from weight_controller.h (the interface) so concrete
// controller headers can include the interface without a cycle. The zoo is
// the single registration point: the conformance suite in
// tests/test_controllers.cc iterates `controller_registry()`, so a controller
// added here is automatically held to the shared laws (normalization,
// determinism, no starvation).
#pragma once

#include <memory>
#include <vector>

#include "core/alpha_shift_controller.h"
#include "core/gradient_controller.h"
#include "core/knapsack_controller.h"
#include "core/shortest_queue_controller.h"
#include "core/weight_controller.h"

namespace inband {

// Per-kind configs, carried together so rigs/benches/CLIs can plumb one
// struct. Only the config matching `kind` is consulted by make_controller.
struct ControllerZooConfig {
  ControllerKind kind = ControllerKind::kAlphaShift;
  AlphaShiftConfig alpha;
  KnapsackLbConfig knapsack;
  GradientDescentConfig gradient;
  ShortestQueueConfig shortest_queue;
};

// Builds the controller selected by `config.kind`. The stale shortest-queue
// kind reuses ShortestQueueConfig with view_refresh forced positive.
std::unique_ptr<WeightController> make_controller(
    const ControllerZooConfig& config);

// Every kind the zoo can build, in stable declaration order. The conformance
// suite treats this as the source of truth for "all registered controllers".
const std::vector<ControllerKind>& controller_registry();

}  // namespace inband
