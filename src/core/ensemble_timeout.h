// Algorithm 2 — ENSEMBLETIMEOUT with sample-cliff detection (HotNets '22 §3).
//
// Runs k FIXEDTIMEOUT instances with exponentially spaced timeouts
// δ₁ < δ₂ < … < δₖ over every packet, counting how many samples each timeout
// produced during an epoch E. At each epoch boundary it finds the *sample
// cliff* — the largest drop in sample count between adjacent timeouts,
// m = argmaxᵢ (Nᵢ / Nᵢ₊₁) — and emits samples from δₘ during the next epoch.
//
// Rationale (paper §3): timeouts below the ideal δ_opt over-segment batches
// and produce too many (low) samples; timeouts above it merge batches and
// produce too few (high) samples; the count falls off sharply right past
// δ_opt, so the cliff position tracks δ_opt as the true RTT changes.
//
// Implementation notes, where the pseudocode is silent:
//  * counts are smoothed as (Nᵢ+1)/(Nᵢ₊₁+1) so empty buckets do not divide
//    by zero; ties resolve to the smallest i;
//  * the epoch is per-flow and starts at the flow's first packet; boundary
//    detection happens on the first packet whose arrival crosses the epoch
//    end ("current packet is the first of a new epoch");
//  * if an epoch produced no samples at all, the previous δ is kept;
//  * the initial δ (before the first cliff) is configurable; the default is
//    the middle of the ladder.
#pragma once

#include <cstdint>
#include <vector>

#include "core/fixed_timeout.h"
#include "util/shard.h"
#include "util/time.h"

namespace inband {

class AuditScope;
class StateDigest;

struct EnsembleConfig {
  // δ₁ … δₖ, strictly increasing. Paper default: 64µs, 128µs, …, 4ms.
  std::vector<SimTime> timeouts = default_timeouts();
  // Epoch length E. Paper default: 64 ms.
  SimTime epoch = ms(64);
  // Index into `timeouts` used before the first cliff detection; -1 => the
  // middle of the ladder. Default 0 (the smallest δ): a sensitive start
  // produces samples from a flow's very first batches — vital for
  // short-lived, churned connections whose lifetime is shorter than one
  // epoch — and the cliff corrects the choice upward at the first boundary.
  int initial_choice = 0;

  static std::vector<SimTime> default_timeouts();
};

// Per-flow state: one FIXEDTIMEOUT state per timeout (sharing time_last_pkt
// would be incorrect — each instance must apply Algorithm 1 independently),
// the per-epoch sample counters, and the epoch bookkeeping.
// Size is ~(24·k + 32) bytes; for k = 7 about 200 bytes per flow, within
// reason for an XDP per-flow map entry.
struct EnsembleState {
  std::vector<FixedTimeoutState> per_timeout;  // k entries
  std::vector<std::uint32_t> samples;          // Nᵢ for this epoch
  SimTime epoch_start = kNoTime;
  std::uint32_t chosen = 0;  // index of δₑ for the current epoch
  bool initialized = false;
};

INBAND_SHARD_LOCAL(lb)
class EnsembleTimeout {
 public:
  explicit EnsembleTimeout(EnsembleConfig config = {});

  // Processes one packet arrival; returns a T_LB sample produced by the
  // currently chosen timeout, or kNoTime.
  SimTime on_packet(EnsembleState& state, SimTime now) const;

  // δ chosen for the flow's current epoch (kNoTime before the first packet).
  SimTime current_delta(const EnsembleState& state) const;

  const EnsembleConfig& config() const { return config_; }
  std::size_t k() const { return fixed_.size(); }

  // Exposed for tests: the cliff rule applied to raw counts.
  static std::size_t detect_cliff(const std::vector<std::uint32_t>& counts);

  // Invariant audit for one flow's state against ladder size k: vector
  // layouts, the chosen index, epoch bookkeeping, and each FIXEDTIMEOUT
  // instance's batch-timer ordering (batch start <= last packet <= now).
  static void audit_state(const EnsembleState& state, std::size_t k,
                          AuditScope& scope);

  // Folds one flow's estimator state into a determinism digest.
  static void digest_state(const EnsembleState& state, StateDigest& digest);

 private:
  void init_state(EnsembleState& state, SimTime now) const;
  void roll_epoch(EnsembleState& state, SimTime now) const;

  EnsembleConfig config_;
  std::vector<FixedTimeout> fixed_;
  std::uint32_t initial_choice_ = 0;
};

}  // namespace inband
