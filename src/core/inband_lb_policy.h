// The latency-aware routing policy — the paper's full in-band feedback loop.
//
// Composition, per packet at the LB (requests direction only):
//
//   packet ──► FlowStateTable ──► EnsembleTimeout (Alg. 2 over Alg. 1)
//                                     │ T_LB sample
//                                     ▼
//                         ServerLatencyTracker (per-backend score)
//                                     │
//                                     ▼
//                  WeightController (pluggable; §3 α-shift by default,
//                  see core/controller_zoo.h for the full zoo)
//                                     │ WeightDecision
//                                     ▼
//         MaglevTable::shift_slots or weighted rebuild (hash-table update)
//
// New flows route through the (continuously adapted) Maglev table; existing
// flows are pinned by the LB's conntrack, preserving per-connection
// consistency across shifts exactly as in the Cilium/XDP prototype.
//
// An optional restore mechanism (off by default, an explicit extension over
// the paper) slowly drifts the table back toward its original shares when
// the controller has been quiet, so a recovered server can earn traffic
// again; the paper leaves this open (§5(4)).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/controller_zoo.h"
#include "core/ensemble_timeout.h"
#include "core/handshake_rtt.h"
#include "core/flow_state_table.h"
#include "core/server_latency_tracker.h"
#include "lb/maglev.h"
#include "lb/policy.h"
#include "util/hotpath.h"
#include "util/shard.h"

namespace inband {

// How a shift-expression WeightDecision is applied to the Maglev table.
//  * kShiftSlots  — the paper's mechanism: reassign α·M slots away from the
//    victim in place. O(moved) work, minimal disruption.
//  * kWeightRebuild — adjust per-backend target shares and rebuild the whole
//    table with weighted Maglev. The "textbook" alternative; costs a full
//    table build per update and moves unrelated slots. Benchmarked in
//    bench/ablation_table_update.
// Decisions that carry a full weight vector (knapsack, gradient, shortest
// queue) always apply via the weighted-rebuild mechanism — a weight vector
// has no single victim to shift away from.
enum class TableUpdateMode { kShiftSlots, kWeightRebuild };

struct InbandPolicyConfig {
  EnsembleConfig ensemble;
  LatencyTrackerConfig tracker;
  // Which control law closes the loop, plus each law's config (only the one
  // matching `controller_kind` is consulted). `controller` keeps its name
  // from the alpha-only era so existing config sites read unchanged.
  ControllerKind controller_kind = ControllerKind::kAlphaShift;
  AlphaShiftConfig controller;
  KnapsackLbConfig knapsack;
  GradientDescentConfig gradient;
  ShortestQueueConfig shortest_queue;
  FlowStateTableConfig flow_table;
  std::uint64_t maglev_table_size = 65537;
  std::uint64_t maglev_seed = 0xab5e1ef7ULL;

  // Optional restore: every `restore_interval` without a shift, move
  // `restore_step` of the table from the largest owner back toward the
  // backend furthest below its weight-fair share. 0 disables (default).
  SimTime restore_interval = 0;
  double restore_step = 0.02;

  // §5(1) extension: score each sample as its inflation above the *client's*
  // observed floor (minimum T_LB ever seen from that source address) instead
  // of the absolute value. The floor captures the client↔LB distance — a
  // property of the client, not of any server — so far clients stop biasing
  // server scores, while a genuine server fault still shows as inflation
  // above the floor. Keyed per client rather than per flow deliberately:
  // per-flow floors re-baseline at every connection churn and would hide a
  // persistent fault from all post-fault connections. Off by default (the
  // paper's controller uses absolute latencies).
  bool normalize_client_floor = false;

  // §3's "simple instantiation": also feed SYN→handshake-ACK gaps into the
  // per-server scores. Gives every new connection a sample after one round
  // trip, before any request batch exists — a fast bootstrap for freshly
  // routed flows. Off by default (matches the paper's evaluated design).
  bool use_handshake_bootstrap = false;
  HandshakeRttConfig handshake;

  TableUpdateMode table_update = TableUpdateMode::kShiftSlots;
};

// One executed table update, for reaction-time analysis (§4's
// "updates incorporate the latency inflation in milliseconds").
struct ShiftEvent {
  SimTime t;
  BackendId from;
  std::size_t slots_moved;
  double worst_score_ns;
  double best_score_ns;
};

INBAND_SHARD_LOCAL(lb)
class InbandLbPolicy final : public RoutingPolicy {
 public:
  InbandLbPolicy(const BackendPool& pool, InbandPolicyConfig config = {});

  std::string name() const override { return "inband-latency-aware"; }
  INBAND_HOT BackendId pick(const FlowKey& flow, SimTime now) override;
  INBAND_HOT void on_packet(const Packet& pkt, BackendId backend, SimTime now,
                            bool new_flow) override;
  void on_flow_closed(const FlowKey& flow, BackendId backend,
                      SimTime now) override;
  void on_pool_change(const BackendPool& pool) override;
  // Audits the Maglev table against the pool, every per-flow estimator
  // state, and the share bookkeeping the α-shift controller relies on.
  void audit_invariants(AuditScope& scope) const override;
  void digest_state(StateDigest& digest) const override;

  // --- introspection ---
  const MaglevTable& table() const { return table_; }
  MaglevTable& table() { return table_; }
  ServerLatencyTracker& tracker() { return tracker_; }
  const WeightController& controller() const { return *controller_; }
  const EnsembleTimeout& estimator() const { return estimator_; }
  const std::vector<ShiftEvent>& shift_history() const { return shifts_; }
  std::uint64_t samples_total() const { return samples_total_; }
  std::uint64_t handshake_samples() const { return handshake_samples_; }
  // Total slots whose owner changed across all table updates.
  std::uint64_t slots_disturbed() const { return slots_disturbed_; }
  std::size_t tracked_flows() const { return flows_.size(); }

  // Per-flow estimator introspection for tests/benches.
  SimTime flow_delta(const FlowKey& flow, SimTime now);

 private:
  void record_sample(const Packet& pkt, BackendId backend, SimTime now,
                     SimTime sample);
  // Applies the controller's decision via the configured mechanism; returns
  // the number of slots whose owner changed.
  std::size_t apply_decision(const WeightDecision& decision);
  // Rebuilds the Maglev table from target_shares_ and returns the number of
  // slots whose owner changed (the kWeightRebuild / weight-vector mechanism).
  std::size_t rebuild_from_targets();
  // Recomputes live_shares_ from the table. Runs only after a (rate-limited)
  // table mutation, never per packet.
  void refresh_live_shares();
  void maybe_restore(SimTime now);

  InbandPolicyConfig config_;
  BackendPool pool_;
  MaglevTable table_;
  std::vector<double> fair_shares_;
  std::vector<double> target_shares_;  // live targets (weighted rebuilds)
  // Current per-backend table shares, refreshed after each table mutation —
  // the `weights` input every control_step sees. Kept analytically so the
  // per-packet path never walks the table.
  std::vector<double> live_shares_;
  EnsembleTimeout estimator_;
  HandshakeRttEstimator handshake_;
  FlowStateTable flows_;
  ServerLatencyTracker tracker_;
  std::unique_ptr<WeightController> controller_;
  std::vector<ShiftEvent> shifts_;
  // Per-client minimum T_LB (the §5(1) floor); only populated when
  // normalize_client_floor is enabled.
  std::unordered_map<Ipv4, SimTime> client_floor_;
  std::uint64_t samples_total_ = 0;
  std::uint64_t handshake_samples_ = 0;
  std::uint64_t slots_disturbed_ = 0;
  SimTime last_restore_ = 0;
};

}  // namespace inband
