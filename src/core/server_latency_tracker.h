// Per-server latency aggregation.
//
// Folds the per-flow T_LB samples into one latency score per backend. Two
// score modes: a time-decayed EWMA (fast, smooth) and a sliding-window p95
// (closer to the tail objective the paper targets). Freshness matters: a
// backend that the LB has shifted traffic away from stops producing samples,
// so scores carry their last-sample time and consumers can treat stale
// scores accordingly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "lb/backend.h"
#include "telemetry/ewma.h"
#include "telemetry/sliding_window.h"
#include "util/shard.h"
#include "util/time.h"

namespace inband {

class AuditScope;
class StateDigest;

enum class LatencyScoreMode { kEwma, kWindowedP95 };

struct LatencyTrackerConfig {
  LatencyScoreMode mode = LatencyScoreMode::kEwma;
  SimTime ewma_tau = ms(2);      // decay constant of the per-server EWMA
  SimTime window = ms(50);       // sliding window for the p95 mode
  int window_slices = 8;
};

struct BackendScore {
  BackendId backend = kNoBackend;
  double score_ns = 0.0;
  SimTime last_sample = kNoTime;
  std::uint64_t samples = 0;  // lifetime sample count
};

INBAND_SHARD_LOCAL(lb)
class ServerLatencyTracker {
 public:
  ServerLatencyTracker(std::size_t backend_count,
                       LatencyTrackerConfig config = {});

  void record(BackendId backend, SimTime now, SimTime t_lb);

  // Score for one backend; nullopt when it has no opinion — no samples yet,
  // or (p95 mode) every sample has aged out of the sliding window. The old
  // 0.0-on-empty-window convention made a long-quiet backend the cluster's
  // *best* score, defeating the controller's rel_threshold/global_guard
  // comparisons and attracting shifted traffic.
  std::optional<double> score(BackendId backend, SimTime now);

  // All backends that currently have a score (see score()).
  std::vector<BackendScore> scores(SimTime now);

  // Same, written into `out` (cleared first) so per-packet callers reuse its
  // capacity instead of allocating a fresh vector per evaluation.
  void scores_into(SimTime now, std::vector<BackendScore>& out);

  std::uint64_t samples(BackendId backend) const;
  SimTime last_sample_time(BackendId backend) const;
  std::size_t backend_count() const { return entries_.size(); }

  // Invariant audit: per-backend freshness timestamps lie in the past and
  // score bookkeeping is consistent with the sample counts.
  void audit_invariants(AuditScope& scope) const;

  // Folds per-backend aggregation state into a determinism digest.
  void digest_state(StateDigest& digest) const;

 private:
  struct Entry {
    DecayingEwma ewma;
    SlidingWindowHistogram window;
    SimTime last_sample = kNoTime;
    std::uint64_t count = 0;

    Entry(SimTime tau, SimTime window_len, int slices)
        : ewma{tau}, window{window_len, slices} {}
  };

  LatencyTrackerConfig config_;
  std::vector<Entry> entries_;
};

}  // namespace inband
