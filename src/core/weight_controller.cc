#include "core/weight_controller.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace inband {

const char* controller_kind_name(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::kAlphaShift:
      return "alpha-shift";
    case ControllerKind::kKnapsack:
      return "knapsack";
    case ControllerKind::kGradientDescent:
      return "gradient";
    case ControllerKind::kShortestQueue:
      return "shortest-queue";
    case ControllerKind::kShortestQueueStale:
      return "shortest-queue-stale";
  }
  return "?";
}

std::optional<ControllerKind> controller_kind_from_name(std::string_view name) {
  if (name == "alpha-shift" || name == "alpha") {
    return ControllerKind::kAlphaShift;
  }
  if (name == "knapsack") return ControllerKind::kKnapsack;
  if (name == "gradient" || name == "gradient-descent") {
    return ControllerKind::kGradientDescent;
  }
  if (name == "shortest-queue" || name == "sq") {
    return ControllerKind::kShortestQueue;
  }
  if (name == "shortest-queue-stale" || name == "sq-stale") {
    return ControllerKind::kShortestQueueStale;
  }
  return std::nullopt;
}

void floor_and_normalize(std::vector<double>& w, double floor) {
  const std::size_t n = w.size();
  if (n == 0) return;
  const double nd = static_cast<double>(n);
  const double f = std::clamp(floor, 0.0, 1.0 / (2.0 * nd));
  // Scale-invariance: callers pass raw scores (e.g. inverse latencies) whose
  // magnitude carries no meaning; bring them onto the simplex before the
  // floor is applied so the floor compares against *shares*, not raw units.
  double total = 0.0;
  for (const double v : w) total += std::max(0.0, v);
  if (total > 0.0) {
    for (double& v : w) v = std::max(0.0, v) / total;
  }
  double surplus_sum = 0.0;
  for (double& v : w) {
    v = std::max(0.0, v - f);
    surplus_sum += v;
  }
  const double budget = 1.0 - nd * f;
  if (surplus_sum <= 0.0) {
    for (double& v : w) v = 1.0 / nd;
    return;
  }
  for (double& v : w) v = f + budget * (v / surplus_sum);
}

void project_to_simplex(std::vector<double>& w, double mass,
                        std::vector<double>& scratch) {
  const std::size_t n = w.size();
  INBAND_ASSERT(mass > 0.0);
  if (n == 0) return;
  // Sort a copy descending; find the largest rho with
  // u_rho - (cum_rho - mass)/rho > 0, then clip at that threshold.
  scratch = w;
  std::sort(scratch.begin(), scratch.end(), std::greater<double>{});
  double cum = 0.0;
  double tau = 0.0;
  std::size_t rho = 0;
  for (std::size_t j = 0; j < n; ++j) {
    cum += scratch[j];
    const double t = (cum - mass) / static_cast<double>(j + 1);
    if (scratch[j] - t > 0.0) {
      rho = j + 1;
      tau = t;
    }
  }
  INBAND_ASSERT(rho > 0);
  for (double& v : w) v = std::max(0.0, v - tau);
}

double weight_l1_distance(const std::vector<double>& a,
                          const std::vector<double>& b) {
  double d = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) d += std::abs(a[i] - b[i]);
  for (std::size_t i = n; i < a.size(); ++i) d += std::abs(a[i]);
  for (std::size_t i = n; i < b.size(); ++i) d += std::abs(b[i]);
  return d;
}

}  // namespace inband
