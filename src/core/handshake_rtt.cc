#include "core/handshake_rtt.h"

#include "util/assert.h"

namespace inband {

HandshakeRttEstimator::HandshakeRttEstimator(HandshakeRttConfig config)
    : config_{config} {
  INBAND_ASSERT(config_.max_pending > 0);
}

void HandshakeRttEstimator::maybe_sweep(SimTime now) {
  if (now - last_sweep_ < config_.pending_timeout) return;
  last_sweep_ = now;
  // detlint:allow(unordered-iter): erases the timed-out subset; expiry is decided per entry, independent of visit order
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now - it->second >= config_.pending_timeout) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

SimTime HandshakeRttEstimator::on_packet(const Packet& pkt, SimTime now) {
  maybe_sweep(now);

  if (pkt.has(tcpflag::kSyn) && !pkt.has(tcpflag::kAck)) {
    // hotlint:allow(hot-growth): one pending entry per handshake, swept out
    const auto [it, inserted] = pending_.emplace(pkt.flow, now);
    if (!inserted) {
      // SYN retransmission: the eventual ACK gap would measure the retry
      // timeout, not the path — drop the handshake instead.
      ++retransmitted_syns_;
      pending_.erase(it);
      return kNoTime;
    }
    if (pending_.size() > config_.max_pending) {
      // Evict the oldest pending handshake (SYN floods must not grow this
      // table; a production LB would use a SYN-cookie-style fixed slab).
      // Ties on the SYN timestamp break on the flow key, never on
      // hash-table position — same-tick SYN floods evict reproducibly.
      auto victim = pending_.end();
      // detlint:allow(unordered-iter): selects the unique minimum by a value-based key; the result is independent of visit order
      for (auto it2 = pending_.begin(); it2 != pending_.end(); ++it2) {
        if (victim == pending_.end() || it2->second < victim->second ||
            (it2->second == victim->second && it2->first < victim->first)) {
          victim = it2;
        }
      }
      pending_.erase(victim);
    }
    return kNoTime;
  }

  if (pkt.has(tcpflag::kAck) && !pkt.has(tcpflag::kSyn) &&
      !pkt.has(tcpflag::kRst)) {
    const auto it = pending_.find(pkt.flow);
    if (it == pending_.end()) return kNoTime;
    const SimTime sample = now - it->second;
    pending_.erase(it);
    ++samples_;
    return sample;
  }

  if (pkt.has(tcpflag::kRst)) pending_.erase(pkt.flow);
  return kNoTime;
}

}  // namespace inband
