// SYN→handshake-ACK RTT estimation at the LB.
//
// The paper (§3) notes that "a simple instantiation of the proxy measurement
// idea is the estimation of the TCP round-trip time at the beginning of the
// connection by measuring the time interval between the SYN and the ACK
// packet of the TCP 3-way handshake". Both packets travel client→server, so
// the LB sees both even under DSR: the gap is
//     LB→server + server→client (SYN+ACK) + client→LB,
// i.e. one full loop of exactly the components a response latency contains,
// with the server's accept-path processing in place of request processing.
//
// This estimator complements ENSEMBLETIMEOUT: it yields a sample after one
// round trip on every *new* connection — before the flow has transmitted a
// single batch — so a freshly-routed connection immediately contributes to
// its backend's score. Stale entries (SYN seen, handshake ACK lost or never
// observed) are aged out to bound memory.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/flow.h"
#include "net/packet.h"
#include "util/shard.h"
#include "util/time.h"

namespace inband {

struct HandshakeRttConfig {
  std::size_t max_pending = 1 << 16;
  // A handshake older than this is abandoned (SYN retransmissions would
  // otherwise inflate the sample anyway).
  SimTime pending_timeout = sec(2);
};

INBAND_SHARD_LOCAL(lb)
class HandshakeRttEstimator {
 public:
  explicit HandshakeRttEstimator(HandshakeRttConfig config = {});

  // Feeds one client→server packet; returns the handshake RTT sample when
  // `pkt` is the ACK completing a tracked handshake, else kNoTime.
  SimTime on_packet(const Packet& pkt, SimTime now);

  std::size_t pending() const { return pending_.size(); }
  std::uint64_t samples_emitted() const { return samples_; }
  std::uint64_t retransmitted_syns() const { return retransmitted_syns_; }

 private:
  void maybe_sweep(SimTime now);

  HandshakeRttConfig config_;
  // flow -> time of first SYN.
  std::unordered_map<FlowKey, SimTime, FlowKeyHash> pending_;
  SimTime last_sweep_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t retransmitted_syns_ = 0;
};

}  // namespace inband
