#include "core/shortest_queue_controller.h"

#include <algorithm>
#include <cmath>

#include "check/state_digest.h"
#include "util/assert.h"

namespace inband {

ShortestQueueController::ShortestQueueController(ShortestQueueConfig config)
    : config_{config} {
  INBAND_ASSERT(config_.epoch > 0);
  INBAND_ASSERT(config_.power > 0.0);
  INBAND_ASSERT(config_.min_weight >= 0.0 && config_.min_weight < 1.0);
  INBAND_ASSERT(config_.deadband >= 0.0);
}

std::optional<WeightDecision> ShortestQueueController::control_step(
    ServerLatencyTracker& tracker, const std::vector<double>& weights,
    SimTime now) {
  if (now < config_.warmup) return std::nullopt;
  if (last_eval_ != kNoTime && now - last_eval_ < config_.epoch) {
    return std::nullopt;
  }
  INBAND_COLD_OK(
      "epoch-rate reweigh: runs once per epoch, the per-sample path exits "
      "above");
  last_eval_ = now;

  const std::size_t n = tracker.backend_count();
  if (n < 2 || weights.size() != n) return std::nullopt;

  // Refresh the operative view — every epoch for the fresh variant, only
  // every `view_refresh` for the stale one. A refresh demands a complete
  // fresh opinion set; if it isn't available, the stale variant keeps
  // steering by the old view (that's the point) and the fresh one holds.
  const bool want_refresh =
      config_.view_refresh == 0 || view_taken_ == kNoTime ||
      now - view_taken_ >= config_.view_refresh;
  if (want_refresh) {
    tracker.scores_into(now, scores_scratch_);
    bool complete = scores_scratch_.size() == n;
    if (complete) {
      for (const auto& s : scores_scratch_) {
        if (s.samples < config_.min_samples ||
            now - s.last_sample > config_.staleness) {
          complete = false;
          break;
        }
      }
    }
    if (complete) {
      view_ = scores_scratch_;
      view_taken_ = now;
    }
  }
  if (view_.size() != n) return std::nullopt;

  const BackendScore* worst = &view_[0];
  const BackendScore* best = &view_[0];
  next_.assign(n, 0.0);
  for (const auto& s : view_) {
    if (s.score_ns > worst->score_ns) worst = &s;
    if (s.score_ns < best->score_ns) best = &s;
    const double inv = 1.0 / std::max(s.score_ns, 1.0);
    // power == 1 skips a pow() whose rounding is libm's business, not ours.
    next_[s.backend] =
        config_.power > 0.999 && config_.power < 1.001
            ? inv
            : std::pow(inv, config_.power);
  }
  floor_and_normalize(next_, config_.min_weight);

  if (weight_l1_distance(next_, weights) < config_.deadband) {
    return std::nullopt;
  }
  note_update(now);
  WeightDecision out;
  out.from = worst->backend;
  out.weights = &next_;
  out.worst_score_ns = worst->score_ns;
  out.best_score_ns = best->score_ns;
  return out;
}

void ShortestQueueController::digest_state(StateDigest& digest) const {
  digest.mix(shifts());
  digest.mix_i64(last_shift_time());
  digest.mix_i64(last_eval_);
  digest.mix_i64(view_taken_);
  digest.mix(view_.size());
  for (const auto& s : view_) {
    digest.mix_u32(s.backend);
    digest.mix_double(s.score_ns);
  }
  digest.mix(next_.size());
  for (const double w : next_) digest.mix_double(w);
}

}  // namespace inband
