#include "core/knapsack_controller.h"

#include <algorithm>
#include <cmath>

#include "check/state_digest.h"
#include "util/assert.h"

namespace inband {

KnapsackLbController::KnapsackLbController(KnapsackLbConfig config)
    : config_{config} {
  INBAND_ASSERT(config_.epoch > 0);
  INBAND_ASSERT(config_.weight_step > 0.0 && config_.weight_step <= 1.0);
  INBAND_ASSERT(config_.min_weight >= 0.0 && config_.min_weight < 1.0);
  INBAND_ASSERT(config_.deadband >= 0.0);
}

void KnapsackLbController::fit(Gauge& g) const {
  // Least squares over the ring. A ring whose weights barely vary carries no
  // slope information; fall back to treating the mean observed score as the
  // marginal cost per unit of weight (intercept 0), which makes the greedy
  // solve waterfill toward w_i proportional to 1/score_i. The fallback must
  // NOT divide the score by the current weight: that proxy makes a lightly
  // weighted backend look steep exactly because it is lightly weighted, and
  // the solve locks onto whoever happens to hold the most weight — an
  // absorbing winner-take-all state the gauging can never escape (constant
  // weights forever mean the ring never regains variance).
  const int n = g.count;
  INBAND_ASSERT(n > 0);
  double wm = 0.0;
  double sm = 0.0;
  for (int i = 0; i < n; ++i) {
    wm += g.weight[static_cast<std::size_t>(i)];
    sm += g.score_ns[static_cast<std::size_t>(i)];
  }
  wm /= n;
  sm /= n;
  double var = 0.0;
  double cov = 0.0;
  for (int i = 0; i < n; ++i) {
    const double dw = g.weight[static_cast<std::size_t>(i)] - wm;
    var += dw * dw;
    cov += dw * (g.score_ns[static_cast<std::size_t>(i)] - sm);
  }
  constexpr double kMinVariance = 1e-6;  // weights live in [0,1]
  if (var > kMinVariance) {
    g.slope = std::max(0.0, cov / var);
    g.intercept = sm - g.slope * wm;
  } else {
    g.slope = std::max(0.0, sm);
    g.intercept = 0.0;
  }
}

std::optional<WeightDecision> KnapsackLbController::control_step(
    ServerLatencyTracker& tracker, const std::vector<double>& weights,
    SimTime now) {
  if (now < config_.warmup) return std::nullopt;
  if (last_eval_ != kNoTime && now - last_eval_ < config_.epoch) {
    return std::nullopt;
  }
  INBAND_COLD_OK(
      "epoch-rate gauging + greedy solve: runs once per epoch, the per-sample "
      "path exits above");
  last_eval_ = now;

  // A solve needs a live opinion about *every* backend: the floor guarantees
  // each one keeps producing samples once the law is in charge, and acting on
  // a partial view would starve whoever happens to be quiet this epoch.
  tracker.scores_into(now, scores_scratch_);
  const std::size_t n = tracker.backend_count();
  if (scores_scratch_.size() != n || n < 2 || weights.size() != n) {
    return std::nullopt;
  }
  for (const auto& s : scores_scratch_) {
    if (s.samples < config_.min_samples) return std::nullopt;
    if (now - s.last_sample > config_.staleness) return std::nullopt;
  }

  // Gauge: one (weight, score) observation per backend per epoch.
  if (gauges_.size() != n) gauges_.assign(n, Gauge{});
  const BackendScore* worst = &scores_scratch_[0];
  const BackendScore* best = &scores_scratch_[0];
  for (const auto& s : scores_scratch_) {
    if (s.score_ns > worst->score_ns) worst = &s;
    if (s.score_ns < best->score_ns) best = &s;
    Gauge& g = gauges_[s.backend];
    g.weight[static_cast<std::size_t>(g.next)] = weights[s.backend];
    g.score_ns[static_cast<std::size_t>(g.next)] = s.score_ns;
    g.next = (g.next + 1) % kGaugePoints;
    g.count = std::min(g.count + 1, kGaugePoints);
    fit(g);
  }

  // Greedy knapsack: floor everyone, then hand out the surplus one step at a
  // time to the backend whose *predicted* latency at its next weight level is
  // lowest. With linear curves this greedily minimizes the max predicted
  // latency increase per unit of weight placed.
  const double nd = static_cast<double>(n);
  const double floor = std::min(config_.min_weight, 1.0 / (2.0 * nd));
  const double budget = 1.0 - nd * floor;
  const int steps =
      std::max(1, static_cast<int>(std::lround(budget / config_.weight_step)));
  const double unit = budget / steps;
  solved_.assign(n, floor);
  for (int s = 0; s < steps; ++s) {
    std::size_t pick = 0;
    double pick_cost = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const Gauge& g = gauges_[i];
      const double cost = g.intercept + g.slope * (solved_[i] + unit);
      if (i == 0 || cost < pick_cost) {
        pick = i;
        pick_cost = cost;
      }
    }
    solved_[pick] += unit;
  }

  if (weight_l1_distance(solved_, weights) < config_.deadband) {
    return std::nullopt;
  }
  note_update(now);
  WeightDecision out;
  out.from = worst->backend;
  out.weights = &solved_;
  out.worst_score_ns = worst->score_ns;
  out.best_score_ns = best->score_ns;
  return out;
}

double KnapsackLbController::gauged_slope(BackendId backend) const {
  return backend < gauges_.size() ? gauges_[backend].slope : 0.0;
}

void KnapsackLbController::digest_state(StateDigest& digest) const {
  digest.mix(shifts());
  digest.mix_i64(last_shift_time());
  digest.mix_i64(last_eval_);
  digest.mix(gauges_.size());
  for (const auto& g : gauges_) {
    digest.mix_u32(static_cast<std::uint32_t>(g.count));
    digest.mix_double(g.slope);
    digest.mix_double(g.intercept);
  }
  digest.mix(solved_.size());
  for (const double w : solved_) digest.mix_double(w);
}

}  // namespace inband
