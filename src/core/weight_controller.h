// WeightController — the pluggable control-law interface of the in-band
// feedback loop.
//
// The paper's α-shift rule (move α of total traffic off the worst server) is
// one point in a large design space of weight-update laws. Every controller
// in the zoo consumes the same inputs — the per-server in-band latency
// scores aggregated by ServerLatencyTracker and the current per-backend
// weight (table-share) vector — and emits a WeightDecision that the policy
// applies through the existing Maglev table-update path. Two decision
// expressions exist so the paper's law stays bit-identical:
//
//  * shift:   "move `fraction` of total traffic off backend `from`" — the
//    α-shift primitive, applied in place via MaglevTable::shift_slots;
//  * weights: a full normalized target-share vector, applied via a weighted
//    Maglev rebuild (the mechanism benchmarked in ablation_table_update).
//
// Controllers must be deterministic: the decision stream is a pure function
// of (sample stream, weight inputs, config/seed). Nothing here may read
// wall clocks, iterate unordered containers, or draw from unseeded entropy —
// detlint/hotlint enforce this like everywhere else in the tree.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/server_latency_tracker.h"
#include "util/hotpath.h"
#include "util/shard.h"
#include "util/time.h"

namespace inband {

class StateDigest;

// Registered control laws. kShortestQueueStale is kShortestQueue acting on a
// periodically refreshed (i.e. stale) score snapshot — the classic
// out-of-band-polling baseline.
enum class ControllerKind {
  kAlphaShift,
  kKnapsack,
  kGradientDescent,
  kShortestQueue,
  kShortestQueueStale,
};

const char* controller_kind_name(ControllerKind kind);
std::optional<ControllerKind> controller_kind_from_name(std::string_view name);

// One control decision. `weights == nullptr` selects the shift expression;
// otherwise `weights` points at a controller-owned normalized target-share
// vector (indexed by backend id) that stays valid until the controller's
// next control_step() call.
struct WeightDecision {
  BackendId from = kNoBackend;  // shift victim / diagnostically-worst backend
  double fraction = 0.0;        // shift expression only
  const std::vector<double>* weights = nullptr;
  double worst_score_ns = 0.0;
  double best_score_ns = 0.0;

  bool is_weight_vector() const { return weights != nullptr; }
};

INBAND_SHARD_LOCAL(lb)
class WeightController {
 public:
  virtual ~WeightController() = default;

  virtual const char* name() const = 0;

  // Called once per in-band latency sample (not per packet). `weights` is
  // the policy's live per-backend share vector. Returns the decision to
  // execute, or nullopt. Implementations must call note_update() exactly
  // when they return a decision, so cooldown/epoch bookkeeping and the
  // shifts() counter stay consistent across laws.
  INBAND_HOT virtual std::optional<WeightDecision> control_step(
      ServerLatencyTracker& tracker, const std::vector<double>& weights,
      SimTime now) = 0;

  // Executed decisions. The α-shift law calls these "shifts"; the name is
  // kept for every law so existing benches/tests read unchanged.
  std::uint64_t shifts() const { return updates_; }
  SimTime last_shift_time() const { return last_update_; }

  // Folds controller-internal state into a determinism digest. Used by the
  // conformance suite to compare two same-seed instances; deliberately NOT
  // folded into InbandLbPolicy::digest_state so the rig digest of the
  // default α-shift configuration is unchanged by the zoo refactor.
  virtual void digest_state(StateDigest& digest) const { (void)digest; }

 protected:
  void note_update(SimTime now) {
    ++updates_;
    last_update_ = now;
  }

 private:
  std::uint64_t updates_ = 0;
  SimTime last_update_ = kNoTime;
};

// --- shared weight-vector helpers (used by the zoo laws and their tests) ---

// Rescales `w` onto the probability simplex with a per-entry floor. The
// input's magnitude is irrelevant (it is first normalized to sum 1, negative
// entries clipped): each entry ends at `floor + surplus_i`, surpluses
// proportional to the positive parts of (share_i - floor) and summing to
// 1 - n*floor. Degenerate inputs (zero, or all-at-or-below-floor) collapse
// to the uniform vector. `floor` is internally clamped to 1/(2n) so n*floor
// can never exceed the total mass.
void floor_and_normalize(std::vector<double>& w, double floor);

// Euclidean projection of `w` onto {v : v_i >= 0, sum v_i = mass} (sort-based
// O(n log n) algorithm; deterministic). `scratch` is caller-owned so the
// epoch-rate caller reuses capacity.
void project_to_simplex(std::vector<double>& w, double mass,
                        std::vector<double>& scratch);

// L1 distance between two weight vectors (total variation x2); the
// oscillation deadband metric shared by the zoo laws.
double weight_l1_distance(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace inband
