#include "core/ensemble_timeout.h"

#include <string>

#include "check/invariant_auditor.h"
#include "check/state_digest.h"
#include "util/assert.h"
#include "util/hotpath.h"

namespace inband {

std::vector<SimTime> EnsembleConfig::default_timeouts() {
  // 64µs, 128µs, 256µs, 512µs, 1024µs, 2048µs, 4096µs (paper §3).
  std::vector<SimTime> out;
  for (SimTime d = us(64); d <= us(4096); d *= 2) out.push_back(d);
  return out;
}

EnsembleTimeout::EnsembleTimeout(EnsembleConfig config)
    : config_{std::move(config)} {
  INBAND_ASSERT(!config_.timeouts.empty());
  INBAND_ASSERT(config_.epoch > 0);
  SimTime prev = 0;
  for (SimTime d : config_.timeouts) {
    INBAND_ASSERT(d > prev, "timeouts must be strictly increasing");
    prev = d;
    fixed_.emplace_back(d);
  }
  if (config_.initial_choice < 0) {
    initial_choice_ = static_cast<std::uint32_t>(fixed_.size() / 2);
  } else {
    INBAND_ASSERT(static_cast<std::size_t>(config_.initial_choice) <
                  fixed_.size());
    initial_choice_ = static_cast<std::uint32_t>(config_.initial_choice);
  }
}

void EnsembleTimeout::init_state(EnsembleState& state, SimTime now) const {
  INBAND_COLD_OK("per-flow estimator init: runs once per admitted flow");
  state.per_timeout.assign(fixed_.size(), FixedTimeoutState{});
  state.samples.assign(fixed_.size(), 0);
  state.epoch_start = now;
  state.chosen = initial_choice_;
  state.initialized = true;
}

std::size_t EnsembleTimeout::detect_cliff(
    const std::vector<std::uint32_t>& counts) {
  INBAND_ASSERT(!counts.empty());
  // m = argmaxᵢ (Nᵢ / Nᵢ₊₁), add-one smoothed; ties to the smallest i.
  std::size_t best = 0;
  double best_ratio = 0.0;
  for (std::size_t i = 0; i + 1 < counts.size(); ++i) {
    const double ratio = (static_cast<double>(counts[i]) + 1.0) /
                         (static_cast<double>(counts[i + 1]) + 1.0);
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best = i;
    }
  }
  return best;
}

void EnsembleTimeout::roll_epoch(EnsembleState& state, SimTime now) const {
  const SimTime elapsed = now - state.epoch_start;
  // Counters older than the immediately preceding epoch are stale: the flow
  // sat idle for at least one full epoch since they were collected, and the
  // cliff they encode describes traffic that no longer exists. Adopting δ
  // from them let one pre-idle burst dictate the timeout a resumed flow
  // wakes up with; discard them and keep the previous choice instead.
  const bool stale = elapsed >= 2 * config_.epoch;
  bool any = false;
  for (auto n : state.samples) any = any || n > 0;
  if (any && !stale) {
    const std::size_t m = detect_cliff(state.samples);
    // Only adopt a cliff whose winning timeout actually produced samples;
    // an all-quiet flow keeps its previous choice (line 10's δₘ would be
    // meaningless).
    if (state.samples[m] > 0) {
      state.chosen = static_cast<std::uint32_t>(m);
    }
  }
  // hotlint:allow(hot-growth): resets an already-sized vector in place
  state.samples.assign(fixed_.size(), 0);  // line 9: reset counters
  // Epochs are anchored to the flow's first packet; skip any fully idle
  // epochs so epoch_start stays within one epoch of `now`.
  state.epoch_start += (elapsed / config_.epoch) * config_.epoch;
}

SimTime EnsembleTimeout::on_packet(EnsembleState& state, SimTime now) const {
  if (!state.initialized) init_state(state, now);

  // Line 7: "current packet is the first of a new epoch".
  if (now - state.epoch_start >= config_.epoch) {
    roll_epoch(state, now);
  }

  // Lines 1–6: run every FIXEDTIMEOUT instance, count samples.
  SimTime chosen_sample = kNoTime;
  for (std::size_t i = 0; i < fixed_.size(); ++i) {
    const SimTime t = fixed_[i].on_packet(state.per_timeout[i], now);
    if (t != kNoTime) {
      ++state.samples[i];
      if (i == state.chosen) chosen_sample = t;  // line 12: T_LB,e
    }
  }
  return chosen_sample;
}

SimTime EnsembleTimeout::current_delta(const EnsembleState& state) const {
  if (!state.initialized) return kNoTime;
  return config_.timeouts[state.chosen];
}

void EnsembleTimeout::audit_state(const EnsembleState& state, std::size_t k,
                                  AuditScope& scope) {
  if (!state.initialized) {
    scope.check(state.epoch_start == kNoTime, "uninitialized-state-blank");
    return;
  }
  const SimTime now = scope.now();
  const bool layout_ok =
      scope.check(state.per_timeout.size() == k && state.samples.size() == k,
                  "ladder-layout",
                  "per-flow vectors disagree with ladder size k") &&
      scope.check(state.chosen < k, "chosen-in-range",
                  "chosen=" + std::to_string(state.chosen));
  scope.check(state.epoch_start != kNoTime && state.epoch_start <= now,
              "epoch-start-in-past");
  if (!layout_ok) return;
  for (std::size_t i = 0; i < k; ++i) {
    const FixedTimeoutState& f = state.per_timeout[i];
    if (f.time_last_pkt == kNoTime) {
      scope.check(f.time_last_batch == kNoTime, "batch-needs-packet");
      continue;
    }
    scope.check(f.time_last_pkt <= now, "last-packet-in-past");
    scope.check(f.time_last_batch != kNoTime &&
                    f.time_last_batch <= f.time_last_pkt,
                "batch-timer-ordered",
                "batch start after last packet (timeout index " +
                    std::to_string(i) + ")");
  }
}

void EnsembleTimeout::digest_state(const EnsembleState& state,
                                   StateDigest& digest) {
  digest.mix_bool(state.initialized);
  digest.mix_i64(state.epoch_start);
  digest.mix_u32(state.chosen);
  digest.mix(state.per_timeout.size());
  for (const auto& f : state.per_timeout) {
    digest.mix_i64(f.time_last_batch);
    digest.mix_i64(f.time_last_pkt);
  }
  for (const auto n : state.samples) digest.mix_u32(n);
}

}  // namespace inband
