// Per-flow estimator state store.
//
// Bounded map from FlowKey to EnsembleState with idle aging — the software
// analogue of the per-flow BPF map an XDP load balancer would dedicate to
// the estimator. Entries are created on first packet, refreshed on every
// packet, dropped when the flow is seen closing, and swept when idle too
// long; at capacity the stalest entry is evicted.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/ensemble_timeout.h"
#include "net/flow.h"
#include "util/time.h"

namespace inband {

class AuditScope;
class StateDigest;

struct FlowStateTableConfig {
  std::size_t max_entries = 1 << 18;
  SimTime idle_timeout = sec(30);
  SimTime sweep_interval = sec(1);
};

// Everything the policy keeps per flow: the estimator state plus the
// smallest T_LB the flow has ever produced. The floor approximates the
// flow's uncontrollable propagation component (client→LB distance plus the
// fixed network path), so `sample - min_sample` isolates the *inflation* the
// LB can actually act on — the §5(1) far-client normalization.
struct FlowState {
  EnsembleState ensemble;
  SimTime min_sample = kNoTime;

  // Records a sample into the floor and returns the inflation above it.
  SimTime record_floor(SimTime sample) {
    if (min_sample == kNoTime || sample < min_sample) min_sample = sample;
    return sample - min_sample;
  }
};

class FlowStateTable {
 public:
  explicit FlowStateTable(FlowStateTableConfig config = {});

  // State for `flow`, creating it if absent; refreshes last-seen.
  FlowState& get_or_create(const FlowKey& flow, SimTime now);

  // Drops the flow's state (e.g. FIN observed). No-op when absent.
  void erase(const FlowKey& flow);

  // Amortized cleanup; cheap to call per packet.
  void maybe_sweep(SimTime now);

  std::size_t size() const { return map_.size(); }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t expirations() const { return expirations_; }

  // Invariant audit: capacity/liveness bounds for the table itself plus the
  // estimator-state sanity of every entry against ladder size
  // `expected_k` (the owning policy passes EnsembleTimeout::k()).
  void audit_invariants(AuditScope& scope, std::size_t expected_k) const;

  // Order-independent digest of all per-flow state plus counters.
  void digest_state(StateDigest& digest) const;

 private:
  struct Entry {
    FlowState state;
    SimTime last_seen = kNoTime;
  };

  void evict_stalest();

  FlowStateTableConfig config_;
  std::unordered_map<FlowKey, Entry, FlowKeyHash> map_;
  SimTime last_sweep_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t expirations_ = 0;
};

}  // namespace inband
