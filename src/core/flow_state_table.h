// Per-flow estimator state store.
//
// Bounded map from FlowKey to EnsembleState with idle aging — the software
// analogue of the per-flow BPF map an XDP load balancer would dedicate to
// the estimator. Entries are created on first packet, refreshed on every
// packet, dropped when the flow is seen closing, and swept when idle too
// long; at capacity the stalest entry is evicted.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/ensemble_timeout.h"
#include "net/flow.h"
#include "util/shard.h"
#include "util/time.h"

namespace inband {

class AuditScope;
class StateDigest;

struct FlowStateTableConfig {
  std::size_t max_entries = 1 << 18;
  SimTime idle_timeout = sec(30);
  SimTime sweep_interval = sec(1);
};

// Everything the policy keeps per flow: the estimator state plus the
// smallest T_LB the flow has ever produced. The floor approximates the
// flow's uncontrollable propagation component (client→LB distance plus the
// fixed network path), so `sample - min_sample` isolates the *inflation* the
// LB can actually act on — the §5(1) far-client normalization.
struct FlowState {
  EnsembleState ensemble;
  SimTime min_sample = kNoTime;

  // Records a sample into the floor and returns the inflation above it.
  SimTime record_floor(SimTime sample) {
    if (min_sample == kNoTime || sample < min_sample) min_sample = sample;
    return sample - min_sample;
  }
};

INBAND_SHARD_LOCAL(lb)
class FlowStateTable {
 public:
  explicit FlowStateTable(FlowStateTableConfig config = {});

  // State for `flow`, creating it if absent; refreshes last-seen.
  FlowState& get_or_create(const FlowKey& flow, SimTime now);

  // Drops the flow's state (e.g. FIN observed). No-op when absent.
  void erase(const FlowKey& flow);

  // Amortized cleanup; cheap to call per packet.
  void maybe_sweep(SimTime now);

  std::size_t size() const { return map_.size(); }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t expirations() const { return expirations_; }

  // Invariant audit: capacity/liveness bounds for the table itself plus the
  // estimator-state sanity of every entry against ladder size
  // `expected_k` (the owning policy passes EnsembleTimeout::k()).
  void audit_invariants(AuditScope& scope, std::size_t expected_k) const;

  // Order-independent digest of all per-flow state plus counters.
  void digest_state(StateDigest& digest) const;

 private:
  struct Entry {
    FlowState state;
    SimTime last_seen = kNoTime;
  };

  // Lazy min-heap record over (last_seen, flow). Every refresh pushes a new
  // record; eviction pops records until one still matches its entry's
  // current last_seen. Stale records (the flow was refreshed, erased, or
  // expired since the push) are skipped, which makes evict_stalest()
  // amortized O(log n) instead of the former O(n) scan — the scan degraded
  // to O(n²) total under the SYN-flood scenarios that churn the table at
  // capacity. The victim is identical to the scan's: the live minimum of
  // (last_seen, flow key).
  struct EvictRecord {
    SimTime last_seen;
    FlowKey flow;
  };
  struct EvictGreater {
    bool operator()(const EvictRecord& a, const EvictRecord& b) const {
      if (a.last_seen != b.last_seen) return a.last_seen > b.last_seen;
      return b.flow < a.flow;
    }
  };

  void evict_stalest();
  void push_evict_record(const FlowKey& flow, SimTime last_seen);
  void compact_evict_index();
  std::size_t evict_index_limit() const { return 2 * map_.size() + 64; }

  FlowStateTableConfig config_;
  std::unordered_map<FlowKey, Entry, FlowKeyHash> map_;
  std::vector<EvictRecord> evict_index_;  // min-heap via EvictGreater
  SimTime last_sweep_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t expirations_ = 0;
};

}  // namespace inband
