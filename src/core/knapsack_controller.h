// KnapsackLB-style performance-aware weight assignment
// (Gandhi & Narayana, "KnapsackLB: Enabling Performance-Aware Layer-4 Load
// Balancing", PAPERS.md).
//
// KNAPSACKLB's core idea is *gauging*: learn each backend's latency-vs-weight
// response curve by observing the latency it delivers at the weights it has
// actually been assigned, then solve the weight assignment as a knapsack-like
// optimization over those curves. This controller reproduces that loop on
// the in-band EnsembleTimeout scores, with no out-of-band probes:
//
//  1. Every epoch, record one gauge point (current weight, current score)
//     per backend into a short per-backend history ring.
//  2. Fit latency_i(w) = a_i + b_i * w by least squares over the ring
//     (slope clamped non-negative; a degenerate ring — every observation at
//     the same weight — falls back to b = score, a = 0, so the solve
//     waterfills toward w_i proportional to 1/score_i until real slope
//     information reappears).
//  3. Solve greedily: start every backend at the `min_weight` floor and hand
//     out the remaining mass in `weight_step` units, each unit to the
//     backend with the lowest *predicted* latency at its next weight level.
//     Ties break toward the lower backend id (determinism).
//
// The floor doubles as the gauging budget: every backend keeps receiving a
// trickle of traffic, so its curve keeps refreshing and a recovered server
// wins weight back — KNAPSACKLB's answer to the restore problem the source
// paper leaves open (§5(4)).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/weight_controller.h"
#include "util/shard.h"

namespace inband {

struct KnapsackLbConfig {
  SimTime epoch = ms(4);      // gauge + solve interval
  double weight_step = 0.05;  // greedy allocation granularity
  double min_weight = 0.02;   // per-backend floor (gauging budget)
  std::uint64_t min_samples = 3;
  SimTime staleness = ms(20);  // scores older than this block a solve
  SimTime warmup = 0;
  // A solve whose result moves less than this much total weight (L1) is
  // discarded — the oscillation deadband.
  double deadband = 0.04;
  // Purity contract: identical (samples, weights, seed) => identical output.
  // The law is currently deterministic without entropy; the seed is part of
  // the conformance interface so stochastic variants keep the contract.
  std::uint64_t seed = 0x6a6e;
};

INBAND_SHARD_LOCAL(lb)
class KnapsackLbController final : public WeightController {
 public:
  explicit KnapsackLbController(KnapsackLbConfig config = {});

  const char* name() const override { return "knapsack"; }

  INBAND_HOT std::optional<WeightDecision> control_step(
      ServerLatencyTracker& tracker, const std::vector<double>& weights,
      SimTime now) override;

  const KnapsackLbConfig& config() const { return config_; }
  // Fitted latency-vs-weight slope of one backend (ns per unit weight);
  // 0 until gauged. Introspection for tests/benches.
  double gauged_slope(BackendId backend) const;

  void digest_state(StateDigest& digest) const override;

 private:
  static constexpr int kGaugePoints = 8;
  struct Gauge {
    std::array<double, kGaugePoints> weight{};
    std::array<double, kGaugePoints> score_ns{};
    int count = 0;  // valid points (ring fills then wraps)
    int next = 0;
    double slope = 0.0;      // fitted b_i
    double intercept = 0.0;  // fitted a_i
  };

  void fit(Gauge& g) const;

  KnapsackLbConfig config_;
  std::vector<Gauge> gauges_;
  std::vector<BackendScore> scores_scratch_;
  std::vector<double> solved_;  // the decision's weight vector (owned)
  SimTime last_eval_ = kNoTime;
};

}  // namespace inband
