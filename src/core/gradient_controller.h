// Distributed-gradient-descent weight update
// (Balseiro, Mirrokni & Wydrowski, "Load Balancing with Network Latencies via
// Distributed Gradient Descent", PAPERS.md).
//
// Their scheme treats the routing weights as the decision variable of a
// convex program — minimize the weighted mean latency — and descends its
// gradient: each server's weight moves against (latency_i - weighted mean
// latency), then the vector is projected back onto the probability simplex.
// Servers slower than the average lose weight, faster ones gain, and the
// step length shrinks as a server accumulates observations (per-server
// step-size), so the law is aggressive while learning and calm at the
// equilibrium. Reproduced here on the in-band EnsembleTimeout scores:
//
//   g_i  = (score_i - sum_j w_j score_j) / scale        (scale-free gradient)
//   w_i <- w_i - eta_i * g_i,  eta_i = step / sqrt(1 + epochs_i)
//   w   <- floor + project_onto_simplex(w - floor)      (mass 1 - n*floor)
//
// The `min_weight` floor keeps every healthy server sampled (no starvation,
// and the gradient stays observable for recovered servers).
#pragma once

#include <cstdint>
#include <vector>

#include "core/weight_controller.h"
#include "util/shard.h"

namespace inband {

struct GradientDescentConfig {
  SimTime epoch = ms(2);  // descent interval
  double step = 0.3;      // base step size eta_0 (on normalized gradients)
  bool decay_step = true;  // eta_i = step / sqrt(1 + epochs_i); false: constant
  // Decay cap: epochs_i saturates here, flooring eta_i at
  // step / sqrt(1 + max_decay_epochs). Unbounded decay is correct for the
  // source papers' static programs but paralyzes the law in a non-stationary
  // system — after a long calm stretch eta falls below the deadband and a
  // fault (stall, flap) can no longer be corrected. 63 floors eta at step/8.
  std::uint64_t max_decay_epochs = 63;
  double min_weight = 0.02;
  std::uint64_t min_samples = 3;
  SimTime staleness = ms(20);
  SimTime warmup = 0;
  double deadband = 0.01;  // discard updates moving less than this much (L1)
  // Purity contract; the law itself draws no entropy (see KnapsackLbConfig).
  std::uint64_t seed = 0x9d5c;
};

INBAND_SHARD_LOCAL(lb)
class GradientDescentController final : public WeightController {
 public:
  explicit GradientDescentController(GradientDescentConfig config = {});

  const char* name() const override { return "gradient"; }

  INBAND_HOT std::optional<WeightDecision> control_step(
      ServerLatencyTracker& tracker, const std::vector<double>& weights,
      SimTime now) override;

  const GradientDescentConfig& config() const { return config_; }
  // Number of descent epochs backend i has participated in (drives its
  // per-server step size). Introspection for tests.
  std::uint64_t epochs_seen(BackendId backend) const;

  void digest_state(StateDigest& digest) const override;

 private:
  GradientDescentConfig config_;
  std::vector<std::uint64_t> epochs_;  // per-backend participation count
  std::vector<BackendScore> scores_scratch_;
  std::vector<double> next_;     // the decision's weight vector (owned)
  std::vector<double> scratch_;  // projection workspace
  SimTime last_eval_ = kNoTime;
};

}  // namespace inband
