#include "core/flow_state_table.h"

#include "util/assert.h"

namespace inband {

FlowStateTable::FlowStateTable(FlowStateTableConfig config)
    : config_{config} {
  INBAND_ASSERT(config_.max_entries > 0);
}

FlowState& FlowStateTable::get_or_create(const FlowKey& flow, SimTime now) {
  auto it = map_.find(flow);
  if (it == map_.end()) {
    if (map_.size() >= config_.max_entries) evict_stalest();
    it = map_.emplace(flow, Entry{}).first;
  }
  it->second.last_seen = now;
  return it->second.state;
}

void FlowStateTable::erase(const FlowKey& flow) { map_.erase(flow); }

void FlowStateTable::evict_stalest() {
  auto victim = map_.begin();
  for (auto it = map_.begin(); it != map_.end(); ++it) {
    if (it->second.last_seen < victim->second.last_seen) victim = it;
  }
  if (victim != map_.end()) {
    map_.erase(victim);
    ++evictions_;
  }
}

void FlowStateTable::maybe_sweep(SimTime now) {
  if (now - last_sweep_ < config_.sweep_interval) return;
  last_sweep_ = now;
  for (auto it = map_.begin(); it != map_.end();) {
    if (now - it->second.last_seen >= config_.idle_timeout) {
      it = map_.erase(it);
      ++expirations_;
    } else {
      ++it;
    }
  }
}

}  // namespace inband
