#include "core/flow_state_table.h"

#include "check/invariant_auditor.h"
#include "check/state_digest.h"
#include "util/assert.h"

namespace inband {

FlowStateTable::FlowStateTable(FlowStateTableConfig config)
    : config_{config} {
  INBAND_ASSERT(config_.max_entries > 0);
}

FlowState& FlowStateTable::get_or_create(const FlowKey& flow, SimTime now) {
  auto it = map_.find(flow);
  if (it == map_.end()) {
    if (map_.size() >= config_.max_entries) evict_stalest();
    it = map_.emplace(flow, Entry{}).first;
  }
  it->second.last_seen = now;
  return it->second.state;
}

void FlowStateTable::erase(const FlowKey& flow) { map_.erase(flow); }

void FlowStateTable::evict_stalest() {
  auto victim = map_.begin();
  for (auto it = map_.begin(); it != map_.end(); ++it) {
    if (it->second.last_seen < victim->second.last_seen) victim = it;
  }
  if (victim != map_.end()) {
    map_.erase(victim);
    ++evictions_;
  }
}

void FlowStateTable::maybe_sweep(SimTime now) {
  if (now - last_sweep_ < config_.sweep_interval) return;
  last_sweep_ = now;
  for (auto it = map_.begin(); it != map_.end();) {
    if (now - it->second.last_seen >= config_.idle_timeout) {
      it = map_.erase(it);
      ++expirations_;
    } else {
      ++it;
    }
  }
}

void FlowStateTable::audit_invariants(AuditScope& scope,
                                      std::size_t expected_k) const {
  const SimTime now = scope.now();
  scope.check(map_.size() <= config_.max_entries, "capacity-bound",
              "flow state table exceeds max_entries");
  scope.check(last_sweep_ <= now, "sweep-clock-sane");
  for (const auto& [flow, entry] : map_) {
    scope.check(entry.last_seen != kNoTime && entry.last_seen <= now,
                "last-seen-in-past", format_flow(flow));
    scope.check(entry.state.min_sample == kNoTime ||
                    entry.state.min_sample >= 0,
                "floor-nonnegative", format_flow(flow));
    EnsembleTimeout::audit_state(entry.state.ensemble, expected_k, scope);
  }
}

void FlowStateTable::digest_state(StateDigest& digest) const {
  UnorderedDigest entries;
  for (const auto& [flow, entry] : map_) {
    StateDigest e;
    e.mix(hash_flow(flow));
    e.mix_i64(entry.last_seen);
    e.mix_i64(entry.state.min_sample);
    EnsembleTimeout::digest_state(entry.state.ensemble, e);
    entries.add(e);
  }
  entries.mix_into(digest);
  digest.mix(evictions_);
  digest.mix(expirations_);
  digest.mix_i64(last_sweep_);
}

}  // namespace inband
