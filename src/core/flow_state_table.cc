#include "core/flow_state_table.h"

#include <algorithm>

#include "check/invariant_auditor.h"
#include "check/state_digest.h"
#include "util/assert.h"
#include "util/sorted_view.h"

namespace inband {

FlowStateTable::FlowStateTable(FlowStateTableConfig config)
    : config_{config} {
  INBAND_ASSERT(config_.max_entries > 0);
}

FlowState& FlowStateTable::get_or_create(const FlowKey& flow, SimTime now) {
  auto it = map_.find(flow);
  if (it == map_.end()) {
    if (map_.size() >= config_.max_entries) evict_stalest();
    // hotlint:allow(hot-growth): flow admission, bounded by max_entries
    it = map_.emplace(flow, Entry{}).first;
    it->second.last_seen = now;
    push_evict_record(flow, now);
  } else if (it->second.last_seen != now) {
    it->second.last_seen = now;
    push_evict_record(flow, now);
  }
  return it->second.state;
}

void FlowStateTable::erase(const FlowKey& flow) {
  map_.erase(flow);
  if (evict_index_.size() > evict_index_limit()) compact_evict_index();
}

void FlowStateTable::push_evict_record(const FlowKey& flow,
                                       SimTime last_seen) {
  // hotlint:allow(hot-growth): capacity retained across compactions (below)
  evict_index_.push_back({last_seen, flow});
  std::push_heap(evict_index_.begin(), evict_index_.end(), EvictGreater{});
  // Refreshes leave the flow's previous record behind as garbage; compact
  // in place once garbage dominates. The bound keeps the index linear in
  // the live table and the rebuild amortized O(1) per refresh; clear()
  // retains capacity, so steady-state churn never touches the allocator.
  if (evict_index_.size() > evict_index_limit()) compact_evict_index();
}

void FlowStateTable::compact_evict_index() {
  evict_index_.clear();
  // detlint:allow(unordered-iter): refills the heap from all live entries; make_heap orders by value, independent of visit order
  for (const auto& [flow, entry] : map_) {
    // hotlint:allow(hot-growth): refill after clear(); capacity retained
    evict_index_.push_back({entry.last_seen, flow});
  }
  std::make_heap(evict_index_.begin(), evict_index_.end(), EvictGreater{});
}

void FlowStateTable::evict_stalest() {
  // Ties on last_seen break on the flow key, never on hash-table position,
  // so the evicted entry is reproducible run to run.
  while (!evict_index_.empty()) {
    std::pop_heap(evict_index_.begin(), evict_index_.end(), EvictGreater{});
    const EvictRecord rec = evict_index_.back();
    evict_index_.pop_back();
    auto it = map_.find(rec.flow);
    // A record is live only while it matches the entry's current last_seen;
    // anything else is a leftover from a refresh, erase, or expiry.
    if (it == map_.end() || it->second.last_seen != rec.last_seen) continue;
    map_.erase(it);
    ++evictions_;
    return;
  }
  // Every live entry's current record is in the index, so running dry means
  // the table itself is empty and there is nothing to evict.
  INBAND_ASSERT(map_.empty(), "evict index lost a live entry");
}

void FlowStateTable::maybe_sweep(SimTime now) {
  if (now - last_sweep_ < config_.sweep_interval) return;
  last_sweep_ = now;
  // detlint:allow(unordered-iter): erases the idle subset; expiry is decided per entry, independent of visit order
  for (auto it = map_.begin(); it != map_.end();) {
    if (now - it->second.last_seen >= config_.idle_timeout) {
      it = map_.erase(it);
      ++expirations_;
    } else {
      ++it;
    }
  }
  if (evict_index_.size() > evict_index_limit()) compact_evict_index();
}

void FlowStateTable::audit_invariants(AuditScope& scope,
                                      std::size_t expected_k) const {
  const SimTime now = scope.now();
  scope.check(map_.size() <= config_.max_entries, "capacity-bound",
              "flow state table exceeds max_entries");
  scope.check(last_sweep_ <= now, "sweep-clock-sane");
  scope.check(evict_index_.size() <= evict_index_limit(),
              "evict-index-bounded",
              "eviction index grew past its compaction bound");
  const auto rec_less = [](const EvictRecord& a, const EvictRecord& b) {
    if (a.last_seen != b.last_seen) return a.last_seen < b.last_seen;
    return a.flow < b.flow;
  };
  std::vector<EvictRecord> records{evict_index_.begin(), evict_index_.end()};
  std::sort(records.begin(), records.end(), rec_less);
  // Sorted snapshot: audit failure messages come out in flow-key order.
  for (const auto* e : sorted_entries(map_)) {
    const auto& [flow, entry] = *e;
    scope.check(entry.last_seen != kNoTime && entry.last_seen <= now,
                "last-seen-in-past", format_flow(flow));
    scope.check(std::binary_search(records.begin(), records.end(),
                                   EvictRecord{entry.last_seen, flow},
                                   rec_less),
                "evict-index-covers-live", format_flow(flow));
    scope.check(entry.state.min_sample == kNoTime ||
                    entry.state.min_sample >= 0,
                "floor-nonnegative", format_flow(flow));
    EnsembleTimeout::audit_state(entry.state.ensemble, expected_k, scope);
  }
}

void FlowStateTable::digest_state(StateDigest& digest) const {
  UnorderedDigest entries;
  // detlint:allow(unordered-iter): per-entry digests fold through the commutative UnorderedDigest combiner
  for (const auto& [flow, entry] : map_) {
    StateDigest e;
    e.mix(hash_flow(flow));
    e.mix_i64(entry.last_seen);
    e.mix_i64(entry.state.min_sample);
    EnsembleTimeout::digest_state(entry.state.ensemble, e);
    entries.add(e);
  }
  entries.mix_into(digest);
  digest.mix(evictions_);
  digest.mix(expirations_);
  digest.mix_i64(last_sweep_);
}

}  // namespace inband
