#include "core/flow_state_table.h"

#include "check/invariant_auditor.h"
#include "check/state_digest.h"
#include "util/assert.h"
#include "util/sorted_view.h"

namespace inband {

FlowStateTable::FlowStateTable(FlowStateTableConfig config)
    : config_{config} {
  INBAND_ASSERT(config_.max_entries > 0);
}

FlowState& FlowStateTable::get_or_create(const FlowKey& flow, SimTime now) {
  auto it = map_.find(flow);
  if (it == map_.end()) {
    if (map_.size() >= config_.max_entries) evict_stalest();
    it = map_.emplace(flow, Entry{}).first;
  }
  it->second.last_seen = now;
  return it->second.state;
}

void FlowStateTable::erase(const FlowKey& flow) { map_.erase(flow); }

void FlowStateTable::evict_stalest() {
  // Ties on last_seen break on the flow key, never on hash-table position,
  // so the evicted entry is reproducible run to run.
  auto victim = map_.end();
  // detlint:allow(unordered-iter): selects the unique minimum by a value-based key; the result is independent of visit order
  for (auto it = map_.begin(); it != map_.end(); ++it) {
    if (victim == map_.end() ||
        it->second.last_seen < victim->second.last_seen ||
        (it->second.last_seen == victim->second.last_seen &&
         it->first < victim->first)) {
      victim = it;
    }
  }
  if (victim != map_.end()) {
    map_.erase(victim);
    ++evictions_;
  }
}

void FlowStateTable::maybe_sweep(SimTime now) {
  if (now - last_sweep_ < config_.sweep_interval) return;
  last_sweep_ = now;
  // detlint:allow(unordered-iter): erases the idle subset; expiry is decided per entry, independent of visit order
  for (auto it = map_.begin(); it != map_.end();) {
    if (now - it->second.last_seen >= config_.idle_timeout) {
      it = map_.erase(it);
      ++expirations_;
    } else {
      ++it;
    }
  }
}

void FlowStateTable::audit_invariants(AuditScope& scope,
                                      std::size_t expected_k) const {
  const SimTime now = scope.now();
  scope.check(map_.size() <= config_.max_entries, "capacity-bound",
              "flow state table exceeds max_entries");
  scope.check(last_sweep_ <= now, "sweep-clock-sane");
  // Sorted snapshot: audit failure messages come out in flow-key order.
  for (const auto* e : sorted_entries(map_)) {
    const auto& [flow, entry] = *e;
    scope.check(entry.last_seen != kNoTime && entry.last_seen <= now,
                "last-seen-in-past", format_flow(flow));
    scope.check(entry.state.min_sample == kNoTime ||
                    entry.state.min_sample >= 0,
                "floor-nonnegative", format_flow(flow));
    EnsembleTimeout::audit_state(entry.state.ensemble, expected_k, scope);
  }
}

void FlowStateTable::digest_state(StateDigest& digest) const {
  UnorderedDigest entries;
  // detlint:allow(unordered-iter): per-entry digests fold through the commutative UnorderedDigest combiner
  for (const auto& [flow, entry] : map_) {
    StateDigest e;
    e.mix(hash_flow(flow));
    e.mix_i64(entry.last_seen);
    e.mix_i64(entry.state.min_sample);
    EnsembleTimeout::digest_state(entry.state.ensemble, e);
    entries.add(e);
  }
  entries.mix_into(digest);
  digest.mix(evictions_);
  digest.mix(expirations_);
  digest.mix_i64(last_sweep_);
}

}  // namespace inband
