#include "core/server_latency_tracker.h"

#include <string>

#include "check/invariant_auditor.h"
#include "check/state_digest.h"
#include "util/assert.h"

namespace inband {

ServerLatencyTracker::ServerLatencyTracker(std::size_t backend_count,
                                           LatencyTrackerConfig config)
    : config_{config} {
  INBAND_ASSERT(backend_count > 0);
  entries_.reserve(backend_count);
  for (std::size_t i = 0; i < backend_count; ++i) {
    entries_.emplace_back(config_.ewma_tau, config_.window,
                          config_.window_slices);
  }
}

void ServerLatencyTracker::record(BackendId backend, SimTime now,
                                  SimTime t_lb) {
  INBAND_ASSERT(backend < entries_.size());
  if (t_lb < 0) return;
  auto& e = entries_[backend];
  e.ewma.record(now, static_cast<double>(t_lb));
  e.window.record(now, t_lb);
  e.last_sample = now;
  ++e.count;
}

std::optional<double> ServerLatencyTracker::score(BackendId backend,
                                                  SimTime now) {
  INBAND_ASSERT(backend < entries_.size());
  auto& e = entries_[backend];
  if (e.count == 0) return std::nullopt;
  switch (config_.mode) {
    case LatencyScoreMode::kEwma:
      return e.ewma.value();
    case LatencyScoreMode::kWindowedP95: {
      const Histogram& h = e.window.merged(now);
      if (h.count() == 0) return std::nullopt;  // all samples aged out
      return static_cast<double>(h.percentile(0.95));
    }
  }
  return std::nullopt;
}

std::vector<BackendScore> ServerLatencyTracker::scores(SimTime now) {
  std::vector<BackendScore> out;
  scores_into(now, out);
  return out;
}

void ServerLatencyTracker::scores_into(SimTime now,
                                       std::vector<BackendScore>& out) {
  out.clear();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    auto& e = entries_[i];
    const auto s = score(static_cast<BackendId>(i), now);
    if (!s.has_value()) continue;
    // hotlint:allow(hot-growth): caller-owned buffer, capacity retained
    out.push_back({static_cast<BackendId>(i), *s, e.last_sample, e.count});
  }
}

std::uint64_t ServerLatencyTracker::samples(BackendId backend) const {
  INBAND_ASSERT(backend < entries_.size());
  return entries_[backend].count;
}

SimTime ServerLatencyTracker::last_sample_time(BackendId backend) const {
  INBAND_ASSERT(backend < entries_.size());
  return entries_[backend].last_sample;
}

void ServerLatencyTracker::audit_invariants(AuditScope& scope) const {
  const SimTime now = scope.now();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto& e = entries_[i];
    if (e.count == 0) {
      scope.check(e.last_sample == kNoTime, "fresh-entry-blank",
                  "backend " + std::to_string(i));
      continue;
    }
    scope.check(e.last_sample != kNoTime && e.last_sample <= now,
                "last-sample-in-past", "backend " + std::to_string(i));
    scope.check(e.ewma.initialized(), "ewma-follows-count",
                "backend " + std::to_string(i));
  }
}

void ServerLatencyTracker::digest_state(StateDigest& digest) const {
  digest.mix(entries_.size());
  for (const auto& e : entries_) {
    digest.mix(e.count);
    digest.mix_i64(e.last_sample);
    digest.mix_bool(e.ewma.initialized());
    digest.mix_double(e.ewma.value());
  }
}

}  // namespace inband
