#include "core/controller_zoo.h"

#include "util/assert.h"

namespace inband {

std::unique_ptr<WeightController> make_controller(
    const ControllerZooConfig& config) {
  switch (config.kind) {
    case ControllerKind::kAlphaShift:
      return std::make_unique<AlphaShiftController>(config.alpha);
    case ControllerKind::kKnapsack:
      return std::make_unique<KnapsackLbController>(config.knapsack);
    case ControllerKind::kGradientDescent:
      return std::make_unique<GradientDescentController>(config.gradient);
    case ControllerKind::kShortestQueue: {
      ShortestQueueConfig sq = config.shortest_queue;
      sq.view_refresh = 0;  // the fresh kind, regardless of carried config
      return std::make_unique<ShortestQueueController>(sq);
    }
    case ControllerKind::kShortestQueueStale: {
      ShortestQueueConfig sq = config.shortest_queue;
      if (sq.view_refresh <= 0) sq.view_refresh = ms(20);
      return std::make_unique<ShortestQueueController>(sq);
    }
  }
  INBAND_ASSERT(false);
  return nullptr;
}

const std::vector<ControllerKind>& controller_registry() {
  static const std::vector<ControllerKind> kinds = {
      ControllerKind::kAlphaShift,          ControllerKind::kKnapsack,
      ControllerKind::kGradientDescent,     ControllerKind::kShortestQueue,
      ControllerKind::kShortestQueueStale,
  };
  return kinds;
}

}  // namespace inband
