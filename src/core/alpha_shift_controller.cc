#include "core/alpha_shift_controller.h"

#include "check/state_digest.h"
#include "util/assert.h"

namespace inband {

AlphaShiftController::AlphaShiftController(AlphaShiftConfig config)
    : config_{config}, baseline_best_{config.guard_tau} {
  INBAND_ASSERT(config_.alpha > 0.0 && config_.alpha <= 1.0);
  INBAND_ASSERT(config_.rel_threshold >= 1.0);
  INBAND_ASSERT(config_.cooldown >= 0);
  // detlint:allow(float-eq): 0.0 is the explicit "guard disabled" sentinel, assigned only from the same literal
  INBAND_ASSERT(config_.global_guard == 0.0 || config_.global_guard >= 1.0);
}

std::optional<ShiftDecision> AlphaShiftController::evaluate(
    ServerLatencyTracker& tracker, SimTime now) {
  if (now < config_.warmup) return std::nullopt;
  const SimTime last_shift = last_shift_time();
  if (last_shift != kNoTime && now - last_shift < config_.cooldown) {
    return std::nullopt;
  }

  // Scratch reuse: evaluate runs per sampled packet, so a fresh vector here
  // would be the dataplane's only steady-state allocation.
  tracker.scores_into(now, scores_scratch_);
  const auto& all = scores_scratch_;
  // Eligible: warm and fresh.
  const BackendScore* worst = nullptr;
  const BackendScore* best = nullptr;
  std::size_t eligible = 0;
  for (const auto& s : all) {
    if (s.samples < config_.min_samples) continue;
    if (now - s.last_sample > config_.staleness) continue;
    ++eligible;
    if (worst == nullptr || s.score_ns > worst->score_ns) worst = &s;
    if (best == nullptr || s.score_ns < best->score_ns) best = &s;
  }
  // Shifting needs a comparison: at least two live opinions.
  if (eligible < 2 || worst == nullptr || best == nullptr ||
      worst->backend == best->backend) {
    return std::nullopt;
  }

  // Global-inflation guard: compare the best score against its trailing
  // baseline *before* folding the new level in, so an abrupt shared fault
  // is caught; the EWMA then absorbs persistent levels and re-arms control.
  if (config_.global_guard > 0.0) {
    const bool inflated =
        baseline_best_.initialized() &&
        best->score_ns > config_.global_guard * baseline_best_.value();
    baseline_best_.record(now, best->score_ns);
    if (inflated) {
      ++guard_holds_;
      pending_from_ = kNoBackend;  // a shared event voids any candidate
      return std::nullopt;
    }
  }

  const double gap = worst->score_ns - best->score_ns;
  if (gap < static_cast<double>(config_.min_abs_gap) ||
      worst->score_ns < config_.rel_threshold * best->score_ns) {
    pending_from_ = kNoBackend;  // gap evaporated: candidate withdrawn
    return std::nullopt;
  }

  if (config_.confirm > 0) {
    if (pending_from_ != worst->backend) {
      pending_from_ = worst->backend;
      pending_since_ = now;
      return std::nullopt;
    }
    if (now - pending_since_ < config_.confirm) return std::nullopt;
  }

  pending_from_ = kNoBackend;
  note_update(now);
  return ShiftDecision{worst->backend, config_.alpha, worst->score_ns,
                       best->score_ns};
}

std::optional<WeightDecision> AlphaShiftController::control_step(
    ServerLatencyTracker& tracker, const std::vector<double>& weights,
    SimTime now) {
  (void)weights;
  const auto decision = evaluate(tracker, now);
  if (!decision.has_value()) return std::nullopt;
  WeightDecision out;
  out.from = decision->from;
  out.fraction = decision->fraction;
  out.worst_score_ns = decision->worst_score_ns;
  out.best_score_ns = decision->best_score_ns;
  return out;
}

void AlphaShiftController::digest_state(StateDigest& digest) const {
  digest.mix(shifts());
  digest.mix_i64(last_shift_time());
  digest.mix(guard_holds_);
  digest.mix_u32(pending_from_);
  digest.mix_i64(pending_since_);
  digest.mix_bool(baseline_best_.initialized());
  digest.mix_double(baseline_best_.value());
}

}  // namespace inband
