// The paper's §3 control strategy: "redistribute a fixed fraction α of total
// traffic from the server with the highest latency equally over all other
// servers", potentially on every new latency sample.
//
// The raw rule as stated would also fire when all servers are equally fast
// (there is always *some* maximum), so the controller adds two stabilizers,
// both defaulted to mild values and both ablatable:
//  * a relative trigger — shift only when the worst score exceeds the best
//    by a configurable factor (1.0 reproduces the unconditional paper rule);
//  * a cooldown — a minimum interval between shifts, preventing one burst of
//    samples from draining a server in a single RTT.
// Scores older than `staleness` are ignored: a drained backend stops
// producing samples, and acting on its ghost would oscillate.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/server_latency_tracker.h"
#include "core/weight_controller.h"
#include "telemetry/ewma.h"
#include "util/shard.h"
#include "util/time.h"

namespace inband {

struct AlphaShiftConfig {
  double alpha = 0.10;          // fraction of total traffic per shift (§3)
  double rel_threshold = 2.0;   // worst/best trigger ratio; 1.0 == paper rule
  SimTime min_abs_gap = us(100);  // worst-best must exceed this, too
  SimTime cooldown = us(500);   // min time between shifts
  SimTime staleness = ms(20);   // ignore scores older than this
  std::uint64_t min_samples = 3;  // per-backend warm-up before acting
  // No shifts before this absolute time: connection-setup transients during
  // cold start otherwise sit in windowed scores and trigger spurious drains.
  SimTime warmup = 0;

  // Global-inflation guard (§5(3)): hold fire when even the *best* eligible
  // score exceeds `global_guard` times its own trailing baseline — if every
  // server got slower at once, the cause is shared (a common dependency, a
  // network event) and no routing decision can dodge it; draining whoever
  // happened to inflate first only destroys capacity. The baseline is a
  // decaying EWMA with time constant `guard_tau`, so a *permanent* global
  // level shift is eventually absorbed and control re-arms. 0 disables.
  double global_guard = 0.0;
  SimTime guard_tau = ms(50);

  // Confirmation delay: a shift candidate (same worst backend, thresholds
  // met) must persist this long before executing. Defeats transition races —
  // under an abrupt *shared* fault, whichever server's samples arrive first
  // looks asymmetrically slow for a millisecond or two until the others
  // catch up; confirmation lets the gap evaporate before anyone is drained.
  // Costs the same delay in reaction time to genuine faults. 0 disables
  // (the paper's act-per-sample behaviour).
  SimTime confirm = 0;
};

struct ShiftDecision {
  BackendId from = kNoBackend;
  double fraction = 0.0;
  double worst_score_ns = 0.0;
  double best_score_ns = 0.0;
};

INBAND_SHARD_LOCAL(lb)
class AlphaShiftController final : public WeightController {
 public:
  explicit AlphaShiftController(AlphaShiftConfig config = {});

  const char* name() const override { return "alpha-shift"; }

  // Evaluates the rule against the tracker's current scores. Returns the
  // shift to execute, or nullopt. Marks the cooldown when a shift fires.
  // This is the law itself, kept callable directly (unit tests and the
  // legacy-oracle differential suite drive it without the interface).
  std::optional<ShiftDecision> evaluate(ServerLatencyTracker& tracker,
                                        SimTime now);

  // WeightController entry point: evaluate() expressed as a shift decision.
  // The current weight vector is ignored — the α rule only looks at scores.
  INBAND_HOT std::optional<WeightDecision> control_step(
      ServerLatencyTracker& tracker, const std::vector<double>& weights,
      SimTime now) override;

  std::uint64_t guard_holds() const { return guard_holds_; }
  const AlphaShiftConfig& config() const { return config_; }

  void digest_state(StateDigest& digest) const override;

 private:
  AlphaShiftConfig config_;
  DecayingEwma baseline_best_;
  std::vector<BackendScore> scores_scratch_;  // reused across evaluate() calls
  BackendId pending_from_ = kNoBackend;
  SimTime pending_since_ = kNoTime;
  std::uint64_t guard_holds_ = 0;
};

}  // namespace inband
