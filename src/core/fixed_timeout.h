// Algorithm 1 — FIXEDTIMEOUT (HotNets '22 §3).
//
// Splits a flow's client→server packet arrivals into batches using a fixed
// inter-batch timeout δ, flowlet-style: a packet whose gap from the previous
// packet exceeds δ starts a new batch, and the gap between the *first*
// packets of successive batches is reported as a response-latency sample
// T_LB. The batch-opening packet is presumed causally triggered by a server
// response that the LB cannot see (direct server return).
//
// Faithful transcription, including the edge case the pseudocode leaves
// implicit: the very first packet of a flow initializes both timestamps and
// produces no sample (there is no previous batch to measure from).
//
// State is a plain struct so callers (the per-flow table, the ensemble of
// Algorithm 2) control layout; the algorithm object is immutable and
// shareable.
#pragma once

#include "util/shard.h"
#include "util/time.h"

namespace inband {

struct FixedTimeoutState {
  SimTime time_last_batch = kNoTime;  // f.time_last_batch
  SimTime time_last_pkt = kNoTime;    // f.time_last_pkt
};

INBAND_SHARD_LOCAL(lb)
class FixedTimeout {
 public:
  explicit FixedTimeout(SimTime delta);

  // Processes one packet arrival at time `now`. Returns the new T_LB sample,
  // or kNoTime when this packet does not produce one ("undef" in the paper).
  SimTime on_packet(FixedTimeoutState& f, SimTime now) const;

  SimTime delta() const { return delta_; }

 private:
  SimTime delta_;
};

}  // namespace inband
