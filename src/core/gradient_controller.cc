#include "core/gradient_controller.h"

#include <algorithm>
#include <cmath>

#include "check/state_digest.h"
#include "util/assert.h"

namespace inband {

GradientDescentController::GradientDescentController(
    GradientDescentConfig config)
    : config_{config} {
  INBAND_ASSERT(config_.epoch > 0);
  INBAND_ASSERT(config_.step > 0.0);
  INBAND_ASSERT(config_.min_weight >= 0.0 && config_.min_weight < 1.0);
  INBAND_ASSERT(config_.deadband >= 0.0);
}

std::optional<WeightDecision> GradientDescentController::control_step(
    ServerLatencyTracker& tracker, const std::vector<double>& weights,
    SimTime now) {
  if (now < config_.warmup) return std::nullopt;
  if (last_eval_ != kNoTime && now - last_eval_ < config_.epoch) {
    return std::nullopt;
  }
  INBAND_COLD_OK(
      "epoch-rate descent step: runs once per epoch, the per-sample path "
      "exits above");
  last_eval_ = now;

  // Like the knapsack law, descend only on a complete fresh view — the floor
  // keeps every backend sampled once the law is in charge.
  tracker.scores_into(now, scores_scratch_);
  const std::size_t n = tracker.backend_count();
  if (scores_scratch_.size() != n || n < 2 || weights.size() != n) {
    return std::nullopt;
  }
  for (const auto& s : scores_scratch_) {
    if (s.samples < config_.min_samples) return std::nullopt;
    if (now - s.last_sample > config_.staleness) return std::nullopt;
  }
  if (epochs_.size() != n) epochs_.assign(n, 0);

  // Weighted mean latency under the *current* weights — the gradient's
  // reference point — and a scale to make the step size unitless.
  double mean = 0.0;
  double wsum = 0.0;
  const BackendScore* worst = &scores_scratch_[0];
  const BackendScore* best = &scores_scratch_[0];
  for (const auto& s : scores_scratch_) {
    mean += weights[s.backend] * s.score_ns;
    wsum += weights[s.backend];
    if (s.score_ns > worst->score_ns) worst = &s;
    if (s.score_ns < best->score_ns) best = &s;
  }
  if (wsum > 1e-9) {
    mean /= wsum;
  } else {
    mean = 0.0;
    for (const auto& s : scores_scratch_) mean += s.score_ns;
    mean /= static_cast<double>(n);
  }
  const double scale = std::max(mean, 1.0);

  next_.assign(n, 0.0);
  for (const auto& s : scores_scratch_) {
    const double g = (s.score_ns - mean) / scale;
    const std::uint64_t decay_epochs =
        std::min(epochs_[s.backend], config_.max_decay_epochs);
    const double eta =
        config_.decay_step
            ? config_.step / std::sqrt(1.0 + static_cast<double>(decay_epochs))
            : config_.step;
    next_[s.backend] = weights[s.backend] - eta * g;
    ++epochs_[s.backend];
  }

  // Project back onto the simplex, floor first so no healthy backend starves.
  const double nd = static_cast<double>(n);
  const double floor = std::min(config_.min_weight, 1.0 / (2.0 * nd));
  for (double& w : next_) w -= floor;
  project_to_simplex(next_, 1.0 - nd * floor, scratch_);
  for (double& w : next_) w += floor;

  if (weight_l1_distance(next_, weights) < config_.deadband) {
    return std::nullopt;
  }
  note_update(now);
  WeightDecision out;
  out.from = worst->backend;
  out.weights = &next_;
  out.worst_score_ns = worst->score_ns;
  out.best_score_ns = best->score_ns;
  return out;
}

std::uint64_t GradientDescentController::epochs_seen(BackendId backend) const {
  return backend < epochs_.size() ? epochs_[backend] : 0;
}

void GradientDescentController::digest_state(StateDigest& digest) const {
  digest.mix(shifts());
  digest.mix_i64(last_shift_time());
  digest.mix_i64(last_eval_);
  digest.mix(epochs_.size());
  for (const std::uint64_t e : epochs_) digest.mix(e);
  digest.mix(next_.size());
  for (const double w : next_) digest.mix_double(w);
}

}  // namespace inband
