#include "core/inband_lb_policy.h"

#include <algorithm>
#include <string>

#include "check/invariant_auditor.h"
#include "check/state_digest.h"
#include "util/assert.h"
#include "util/logging.h"

namespace inband {

InbandLbPolicy::InbandLbPolicy(const BackendPool& pool,
                               InbandPolicyConfig config)
    : config_{std::move(config)},
      pool_{pool},
      table_{config_.maglev_table_size, config_.maglev_seed},
      estimator_{config_.ensemble},
      handshake_{config_.handshake},
      flows_{config_.flow_table},
      tracker_{pool.size(), config_.tracker} {
  INBAND_ASSERT(!pool_.empty());
  ControllerZooConfig zoo;
  zoo.kind = config_.controller_kind;
  zoo.alpha = config_.controller;
  zoo.knapsack = config_.knapsack;
  zoo.gradient = config_.gradient;
  zoo.shortest_queue = config_.shortest_queue;
  controller_ = make_controller(zoo);
  table_.build(pool_);
  // Weight-fair target shares, for the optional restore drift.
  double total = 0.0;
  for (const auto& b : pool_) total += b.healthy ? b.weight : 0;
  fair_shares_.resize(pool_.size(), 0.0);
  for (const auto& b : pool_) {
    fair_shares_[b.id] = b.healthy ? b.weight / total : 0.0;
  }
  target_shares_ = fair_shares_;
  refresh_live_shares();
}

std::size_t InbandLbPolicy::rebuild_from_targets() {
  // Rebuild with integer weights proportional to the live targets.
  BackendPool weighted = pool_;
  for (auto& b : weighted) {
    b.weight = static_cast<std::uint32_t>(
        target_shares_[b.id] * 10'000.0 + 0.5);
  }
  bool any = false;
  for (const auto& b : weighted) any = any || (b.healthy && b.weight > 0);
  if (!any) return 0;
  MaglevTable rebuilt{table_.table_size(), config_.maglev_seed};
  rebuilt.build(weighted);
  const std::size_t changed = table_.diff(rebuilt);
  table_ = rebuilt;
  slots_disturbed_ += changed;
  return changed;
}

std::size_t InbandLbPolicy::apply_decision(const WeightDecision& decision) {
  if (decision.is_weight_vector()) {
    // A full weight vector always applies via weighted rebuild; health masks
    // the targets so a dead backend never wins slots back through a stale
    // controller opinion.
    INBAND_ASSERT(decision.weights->size() == pool_.size());
    for (const auto& b : pool_) {
      target_shares_[b.id] = b.healthy ? (*decision.weights)[b.id] : 0.0;
    }
    return rebuild_from_targets();
  }
  switch (config_.table_update) {
    case TableUpdateMode::kShiftSlots: {
      const std::size_t moved =
          table_.shift_slots(decision.from, decision.fraction);
      slots_disturbed_ += moved;
      return moved;
    }
    case TableUpdateMode::kWeightRebuild: {
      // Move `fraction` of total share off the victim, equally to others.
      double taken = std::min(decision.fraction, target_shares_[decision.from]);
      if (taken <= 0.0) return 0;
      std::size_t receivers = 0;
      for (const auto& b : pool_) {
        if (b.healthy && b.id != decision.from) ++receivers;
      }
      if (receivers == 0) return 0;
      target_shares_[decision.from] -= taken;
      for (const auto& b : pool_) {
        if (b.healthy && b.id != decision.from) {
          target_shares_[b.id] += taken / static_cast<double>(receivers);
        }
      }
      return rebuild_from_targets();
    }
  }
  return 0;
}

void InbandLbPolicy::record_sample(const Packet& pkt, BackendId backend,
                                   SimTime now, SimTime sample) {
  SimTime scored = sample;
  if (config_.normalize_client_floor) {
    // hotlint:allow(hot-growth): one floor entry per distinct client address
    auto [it, inserted] = client_floor_.emplace(pkt.flow.src.addr, sample);
    if (!inserted && sample < it->second) it->second = sample;
    scored = sample - it->second;
  }
  tracker_.record(backend, now, scored);
}

BackendId InbandLbPolicy::pick(const FlowKey& flow, SimTime now) {
  (void)now;
  return table_.lookup(flow);
}

void InbandLbPolicy::on_packet(const Packet& pkt, BackendId backend,
                               SimTime now, bool new_flow) {
  (void)new_flow;
  flows_.maybe_sweep(now);

  // Fast bootstrap: a new connection's handshake yields a sample one RTT in.
  if (config_.use_handshake_bootstrap) {
    if (const SimTime hs = handshake_.on_packet(pkt, now); hs != kNoTime) {
      ++handshake_samples_;
      record_sample(pkt, backend, now, hs);
    }
  }

  FlowState& state = flows_.get_or_create(pkt.flow, now);
  const SimTime t_lb = estimator_.on_packet(state.ensemble, now);
  if (t_lb == kNoTime) {
    maybe_restore(now);
    return;
  }
  ++samples_total_;
  record_sample(pkt, backend, now, t_lb);

  if (auto decision = controller_->control_step(tracker_, live_shares_, now)) {
    const std::size_t moved = apply_decision(*decision);
    if (moved > 0) {
      // hotlint:allow(hot-growth): one record per table update, rate-limited
      shifts_.push_back({now, decision->from, moved, decision->worst_score_ns,
                         decision->best_score_ns});
      refresh_live_shares();
      LOG_DEBUG() << controller_->name() << ": moved " << moved
                  << " slots off backend " << decision->from << " (worst "
                  << decision->worst_score_ns / 1e3 << "us vs best "
                  << decision->best_score_ns / 1e3 << "us)";
    }
  }
  maybe_restore(now);
}

void InbandLbPolicy::on_pool_change(const BackendPool& pool) {
  INBAND_ASSERT(pool.size() == pool_.size(),
                "pool membership is fixed; only health/weights may change");
  pool_ = pool;
  double total = 0.0;
  for (const auto& b : pool_) total += b.healthy ? b.weight : 0;
  for (const auto& b : pool_) {
    fair_shares_[b.id] = b.healthy && total > 0 ? b.weight / total : 0.0;
  }
  target_shares_ = fair_shares_;
  table_.build(pool_);
  refresh_live_shares();
}

void InbandLbPolicy::refresh_live_shares() {
  INBAND_COLD_OK(
      "runs once per table mutation (build, applied decision, restore drift), "
      "never on the per-packet path");
  live_shares_ = table_.shares();
}

void InbandLbPolicy::on_flow_closed(const FlowKey& flow, BackendId backend,
                                    SimTime now) {
  (void)backend;
  (void)now;
  flows_.erase(flow);
}

SimTime InbandLbPolicy::flow_delta(const FlowKey& flow, SimTime now) {
  return estimator_.current_delta(flows_.get_or_create(flow, now).ensemble);
}

void InbandLbPolicy::maybe_restore(SimTime now) {
  if (config_.restore_interval <= 0) return;
  if (now - last_restore_ < config_.restore_interval) return;
  const SimTime last_shift = controller_->last_shift_time();
  if (last_shift != kNoTime &&
      now - last_shift < config_.restore_interval) {
    return;  // controller is active; do not fight it
  }
  last_restore_ = now;

  // Find the backend furthest below its fair share and the one furthest
  // above; drift slots from the latter to the former.
  const auto shares = table_.shares();
  BackendId needy = kNoBackend;
  BackendId donor = kNoBackend;
  double worst_deficit = 0.0;
  double worst_surplus = 0.0;
  for (const auto& b : pool_) {
    if (!b.healthy) continue;
    const double share = b.id < shares.size() ? shares[b.id] : 0.0;
    const double deficit = fair_shares_[b.id] - share;
    if (deficit > worst_deficit) {
      worst_deficit = deficit;
      needy = b.id;
    }
    if (-deficit > worst_surplus) {
      worst_surplus = -deficit;
      donor = b.id;
    }
  }
  if (needy == kNoBackend || donor == kNoBackend || needy == donor) return;
  const double step = std::min(config_.restore_step, worst_deficit);
  const auto count = static_cast<std::size_t>(
      step * static_cast<double>(table_.table_size()));
  if (count > 0) {
    table_.move_slots(donor, needy, count);
    refresh_live_shares();
  }
}

void InbandLbPolicy::audit_invariants(AuditScope& scope) const {
  table_.audit_invariants(scope, &pool_);
  flows_.audit_invariants(scope, estimator_.k());
  tracker_.audit_invariants(scope);
  scope.check(tracker_.backend_count() == pool_.size(),
              "tracker-covers-pool");
  scope.check(fair_shares_.size() == pool_.size() &&
                  target_shares_.size() == pool_.size() &&
                  live_shares_.size() == pool_.size(),
              "share-bookkeeping-sized");
  double live_total = 0.0;
  for (const double s : live_shares_) live_total += s;
  scope.check(live_total > 0.999 && live_total < 1.001,
              "live-shares-normalized");
  const SimTime now = scope.now();
  SimTime prev = kNoTime;
  for (const auto& s : shifts_) {
    scope.check(s.t <= now, "shift-in-past");
    scope.check(prev == kNoTime || s.t >= prev, "shift-history-ordered");
    scope.check(s.from < pool_.size(), "shift-victim-in-pool",
                "shift away from unknown backend " + std::to_string(s.from));
    prev = s.t;
  }
  scope.check(last_restore_ <= now, "restore-clock-sane");
}

void InbandLbPolicy::digest_state(StateDigest& digest) const {
  table_.digest_state(digest);
  flows_.digest_state(digest);
  tracker_.digest_state(digest);
  digest.mix(samples_total_);
  digest.mix(handshake_samples_);
  digest.mix(slots_disturbed_);
  digest.mix_i64(last_restore_);
  digest.mix(shifts_.size());
  for (const auto& s : shifts_) {
    digest.mix_i64(s.t);
    digest.mix_u32(s.from);
    digest.mix(s.slots_moved);
    digest.mix_double(s.worst_score_ns);
    digest.mix_double(s.best_score_ns);
  }
  UnorderedDigest floors;
  // detlint:allow(unordered-iter): per-entry digests fold through the commutative UnorderedDigest combiner
  for (const auto& [addr, floor] : client_floor_) {
    StateDigest e;
    e.mix_u32(addr);
    e.mix_i64(floor);
    floors.add(e);
  }
  floors.mix_into(digest);
}

}  // namespace inband
