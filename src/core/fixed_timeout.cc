#include "core/fixed_timeout.h"

#include "util/assert.h"

namespace inband {

FixedTimeout::FixedTimeout(SimTime delta) : delta_{delta} {
  INBAND_ASSERT(delta > 0, "inter-batch timeout must be positive");
}

SimTime FixedTimeout::on_packet(FixedTimeoutState& f, SimTime now) const {
  // First packet of the flow: start the first batch, no sample.
  if (f.time_last_pkt == kNoTime) {
    f.time_last_batch = now;
    f.time_last_pkt = now;
    return kNoTime;
  }
  INBAND_DCHECK(now >= f.time_last_pkt, "packet timestamps must not regress");

  SimTime t_lb = kNoTime;                       // line 1: T_LB = undef
  if (now - f.time_last_pkt > delta_) {         // line 2
    t_lb = now - f.time_last_batch;             // line 3: new batch
    f.time_last_batch = now;                    // line 4
  }
  f.time_last_pkt = now;                        // line 6
  return t_lb;                                  // line 7
}

}  // namespace inband
