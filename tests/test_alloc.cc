// Allocation-count assertions for the dataplane hot paths.
//
// This binary links util/alloc_counter.cc (global operator new/delete
// replacements), so every heap allocation in the process is counted. The
// tests warm a hot path up to its steady state, snapshot the counter, run
// many more iterations, and require the delta to be exactly zero — the
// acceptance bar for the slab event pool and the eviction-index flow table.
// Under sanitizers the replacement operators are compiled out (the sanitizer
// runtime owns those symbols) and the tests skip.
#include <gtest/gtest.h>

#include <execinfo.h>

#include <cstdint>

#include "core/inband_lb_policy.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "scenario/cluster_rig.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "util/alloc_counter.h"
#include "util/time.h"

namespace inband {
namespace {

#define SKIP_UNLESS_COUNTING()                                        \
  if (!allocs::counting_enabled()) {                                  \
    GTEST_SKIP() << "allocation counting disabled (sanitizer build)"; \
  }

// Stand-in for the dominant event payload: a link-delivery closure carrying
// a Packet by value.
struct FakeDelivery {
  Packet packet;
  std::uint64_t* fired;
  void operator()() { ++*fired; }
};

TEST(AllocFree, EventQueueSteadyStatePushPop) {
  SKIP_UNLESS_COUNTING();
  EventQueue q;
  std::uint64_t fired = 0;
  SimTime t = 0;
  const auto push_one = [&](SimTime at) {
    Packet pkt;
    pkt.payload_len = 100;
    q.push(at, FakeDelivery{std::move(pkt), &fired});
  };
  for (int i = 0; i < 128; ++i) push_one(t + i);
  // Warm-up: lets the pool, every wheel bucket, and the far heap reach
  // their capacity high-water marks. A ring bucket is first touched when
  // the cursor first enters its time range, so the warm-up must cover a
  // full level-1 ring cycle (2^18 ticks at one tick per event).
  for (int i = 0; i < 300000; ++i) {
    t = q.fire_next([](SimTime) {});
    push_one(t + 128);
  }
  const auto before = allocs::snapshot();
  for (int i = 0; i < 100000; ++i) {
    t = q.fire_next([](SimTime) {});
    push_one(t + 128);
  }
  const auto delta = allocs::delta(before, allocs::snapshot());
  EXPECT_EQ(delta.count, 0u) << delta.bytes << " bytes allocated";
  EXPECT_EQ(fired, 400000u);
}

TEST(AllocFree, EventQueueCancelRecycle) {
  SKIP_UNLESS_COUNTING();
  EventQueue q;
  std::uint64_t fired = 0;
  SimTime t = 0;
  EventId pending = kInvalidEventId;
  const auto cycle = [&] {
    // Schedule a "timeout", cancel it (the common TCP pattern: the ACK
    // arrives first), and fire one real event.
    Packet pkt;
    const EventId timeout = q.push(t + 1000, FakeDelivery{std::move(pkt), &fired});
    if (pending != kInvalidEventId) q.cancel(pending);
    pending = timeout;
    Packet pkt2;
    q.push(t + 10, FakeDelivery{std::move(pkt2), &fired});
    t = q.fire_next([](SimTime) {});
  };
  // Warm-up covers two full level-1 ring cycles (time advances ~10 ticks
  // per cycle) so every bucket has seen its worst-case load once.
  for (int i = 0; i < 60000; ++i) cycle();
  const auto before = allocs::snapshot();
  for (int i = 0; i < 100000; ++i) cycle();
  EXPECT_EQ(allocs::delta(before, allocs::snapshot()).count, 0u);
}

TEST(AllocFree, SimulatorSelfReschedulingChain) {
  SKIP_UNLESS_COUNTING();
  Simulator sim;
  std::uint64_t ticks = 0;
  struct Tick {
    Simulator* sim;
    std::uint64_t* ticks;
    void operator()() {
      ++*ticks;
      sim->schedule_after(us(5), Tick{sim, ticks});
    }
  };
  sim.schedule_at(0, Tick{&sim, &ticks});
  for (int i = 0; i < 1000; ++i) sim.step();
  const auto before = allocs::snapshot();
  for (int i = 0; i < 100000; ++i) sim.step();
  EXPECT_EQ(allocs::delta(before, allocs::snapshot()).count, 0u);
  EXPECT_EQ(ticks, 101000u);
}

TEST(AllocFree, InbandPolicySteadyStatePacketLoop) {
  SKIP_UNLESS_COUNTING();
  BackendPool pool;
  for (int i = 0; i < 8; ++i) {
    pool.push_back({static_cast<BackendId>(i), "backend" + std::to_string(i),
                    make_ipv4(10, 2, 0, static_cast<std::uint8_t>(1 + i)), 1,
                    true});
  }
  InbandPolicyConfig cfg;
  cfg.maglev_table_size = 65537;
  InbandLbPolicy policy{pool, cfg};
  Packet pkt;
  pkt.payload_len = 100;
  const auto flow_n = [](std::uint32_t n) {
    return FlowKey{{make_ipv4(10, 0, 0, 1 + (n & 0x3f)),
                    static_cast<std::uint16_t>(1024 + (n % 50000))},
                   {make_ipv4(10, 1, 0, 1), 80},
                   IpProto::kTcp};
  };
  SimTime t = 0;
  std::uint32_t i = 0;
  const auto one_packet = [&] {
    ++i;
    t += us(5);
    pkt.flow = flow_n(i % 64);
    policy.on_packet(pkt, i % 8, t, false);
  };
  // Warm-up: flow table filled, estimator ladders built, tracker windows
  // and controller scratch at capacity, at least one sweep and eviction
  // index compaction behind us (64 flows * 5us spans several sweep
  // intervals over 400k packets = 2s simulated).
  for (int n = 0; n < 400000; ++n) one_packet();
  const auto before = allocs::snapshot();
  for (int n = 0; n < 200000; ++n) one_packet();
  const auto delta = allocs::delta(before, allocs::snapshot());
  EXPECT_EQ(delta.count, 0u) << delta.bytes << " bytes allocated";
}

TEST(AllocFree, PacketPoolSteadyStateAcquireRelease) {
  SKIP_UNLESS_COUNTING();
  PacketPool pool;
  // Warm-up: force one slab and cycle a batch through it once.
  {
    PacketBatch batch;
    while (!batch.full()) batch.push(pool.acquire());
  }
  const auto before = allocs::snapshot();
  for (int n = 0; n < 100000; ++n) {
    PacketBatch batch;
    while (!batch.full()) {
      PacketRef ref = pool.acquire();
      ref->payload_len = 100;
      batch.push(std::move(ref));
    }
    // Refs die with the batch; slots recycle through the freelist.
  }
  const auto delta = allocs::delta(before, allocs::snapshot());
  EXPECT_EQ(delta.count, 0u) << delta.bytes << " bytes allocated";
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

// The acceptance bar for the batch redesign: the whole fig-3 rig — clients,
// LB (conntrack + in-band policy), servers, TCP both ways, links — runs a
// steady-state window without touching the allocator at all. Churn sources
// are configured off (no connection churn, no share sampling, no periodic
// audit, saturated keyspace so the KV store stops inserting) and the
// record vector is pre-reserved; everything that remains per packet must
// come from recycled pools.
TEST(AllocFree, Fig3RigSteadyStateZeroAllocs) {
  SKIP_UNLESS_COUNTING();
  ClusterRigConfig cfg;
  cfg.duration = ms(600);
  cfg.inject_time = ms(100);
  cfg.inject_extra = us(200);
  cfg.share_sample_interval = 0;  // sampler allocates a share vector per tick
  cfg.audit_interval = 0;         // audit scratch is not steady-state
  cfg.client.connections = 2;
  cfg.client.pipeline = 4;
  cfg.client.requests_per_conn = 0;  // no connection churn
  cfg.client.keyspace = 16;          // saturates quickly: store_ stops growing
  cfg.client.value_len = 64;
  cfg.reserve_records = 1 << 20;
  ClusterRig rig{cfg};

  rig.start();
  // Warm-up: handshakes done, store_ fully populated, pools / rings /
  // hash tables at their high-water marks, delay injection behind us.
  rig.run_until(ms(300));
  // Any allocation inside the window is a failure; print where it came
  // from. backtrace() itself may allocate on first use (libgcc init), so
  // prime it before arming the hook.
  {
    void* prime[4];
    backtrace(prime, 4);
  }
  allocs::set_alloc_hook(+[](std::size_t bytes) {
    void* frames[16];
    const int n = backtrace(frames, 16);
    fprintf(stderr, "steady-state allocation of %zu bytes at:\n", bytes);
    backtrace_symbols_fd(frames, n, 2);
  });
  const auto before = allocs::snapshot();
  rig.run_until(ms(550));
  const auto delta = allocs::delta(before, allocs::snapshot());
  allocs::set_alloc_hook(nullptr);
  rig.finish();

  const auto stats = rig.net().stats();
  EXPECT_GT(stats.packets_sent, 10000u);
  EXPECT_EQ(delta.count, 0u)
      << delta.bytes << " bytes allocated across "
      << stats.packets_sent << " packets";
  EXPECT_GT(stats.pool.high_water, 0u);
}

}  // namespace
}  // namespace inband
