// Allocation-count assertions for the dataplane hot paths.
//
// This binary links util/alloc_counter.cc (global operator new/delete
// replacements), so every heap allocation in the process is counted. The
// tests warm a hot path up to its steady state, snapshot the counter, run
// many more iterations, and require the delta to be exactly zero — the
// acceptance bar for the slab event pool and the eviction-index flow table.
// Under sanitizers the replacement operators are compiled out (the sanitizer
// runtime owns those symbols) and the tests skip.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/inband_lb_policy.h"
#include "net/packet.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "util/alloc_counter.h"
#include "util/time.h"

namespace inband {
namespace {

#define SKIP_UNLESS_COUNTING()                                        \
  if (!allocs::counting_enabled()) {                                  \
    GTEST_SKIP() << "allocation counting disabled (sanitizer build)"; \
  }

// Stand-in for the dominant event payload: a link-delivery closure carrying
// a Packet by value.
struct FakeDelivery {
  Packet packet;
  std::uint64_t* fired;
  void operator()() { ++*fired; }
};

TEST(AllocFree, EventQueueSteadyStatePushPop) {
  SKIP_UNLESS_COUNTING();
  EventQueue q;
  std::uint64_t fired = 0;
  SimTime t = 0;
  const auto push_one = [&](SimTime at) {
    Packet pkt;
    pkt.payload_len = 100;
    q.push(at, FakeDelivery{std::move(pkt), &fired});
  };
  for (int i = 0; i < 128; ++i) push_one(t + i);
  // Warm-up: lets the pool, every wheel bucket, and the far heap reach
  // their capacity high-water marks. A ring bucket is first touched when
  // the cursor first enters its time range, so the warm-up must cover a
  // full level-1 ring cycle (2^18 ticks at one tick per event).
  for (int i = 0; i < 300000; ++i) {
    t = q.fire_next([](SimTime) {});
    push_one(t + 128);
  }
  const auto before = allocs::snapshot();
  for (int i = 0; i < 100000; ++i) {
    t = q.fire_next([](SimTime) {});
    push_one(t + 128);
  }
  const auto delta = allocs::delta(before, allocs::snapshot());
  EXPECT_EQ(delta.count, 0u) << delta.bytes << " bytes allocated";
  EXPECT_EQ(fired, 400000u);
}

TEST(AllocFree, EventQueueCancelRecycle) {
  SKIP_UNLESS_COUNTING();
  EventQueue q;
  std::uint64_t fired = 0;
  SimTime t = 0;
  EventId pending = kInvalidEventId;
  const auto cycle = [&] {
    // Schedule a "timeout", cancel it (the common TCP pattern: the ACK
    // arrives first), and fire one real event.
    Packet pkt;
    const EventId timeout = q.push(t + 1000, FakeDelivery{std::move(pkt), &fired});
    if (pending != kInvalidEventId) q.cancel(pending);
    pending = timeout;
    Packet pkt2;
    q.push(t + 10, FakeDelivery{std::move(pkt2), &fired});
    t = q.fire_next([](SimTime) {});
  };
  // Warm-up covers two full level-1 ring cycles (time advances ~10 ticks
  // per cycle) so every bucket has seen its worst-case load once.
  for (int i = 0; i < 60000; ++i) cycle();
  const auto before = allocs::snapshot();
  for (int i = 0; i < 100000; ++i) cycle();
  EXPECT_EQ(allocs::delta(before, allocs::snapshot()).count, 0u);
}

TEST(AllocFree, SimulatorSelfReschedulingChain) {
  SKIP_UNLESS_COUNTING();
  Simulator sim;
  std::uint64_t ticks = 0;
  struct Tick {
    Simulator* sim;
    std::uint64_t* ticks;
    void operator()() {
      ++*ticks;
      sim->schedule_after(us(5), Tick{sim, ticks});
    }
  };
  sim.schedule_at(0, Tick{&sim, &ticks});
  for (int i = 0; i < 1000; ++i) sim.step();
  const auto before = allocs::snapshot();
  for (int i = 0; i < 100000; ++i) sim.step();
  EXPECT_EQ(allocs::delta(before, allocs::snapshot()).count, 0u);
  EXPECT_EQ(ticks, 101000u);
}

TEST(AllocFree, InbandPolicySteadyStatePacketLoop) {
  SKIP_UNLESS_COUNTING();
  BackendPool pool;
  for (int i = 0; i < 8; ++i) {
    pool.push_back({static_cast<BackendId>(i), "backend" + std::to_string(i),
                    make_ipv4(10, 2, 0, static_cast<std::uint8_t>(1 + i)), 1,
                    true});
  }
  InbandPolicyConfig cfg;
  cfg.maglev_table_size = 65537;
  InbandLbPolicy policy{pool, cfg};
  Packet pkt;
  pkt.payload_len = 100;
  const auto flow_n = [](std::uint32_t n) {
    return FlowKey{{make_ipv4(10, 0, 0, 1 + (n & 0x3f)),
                    static_cast<std::uint16_t>(1024 + (n % 50000))},
                   {make_ipv4(10, 1, 0, 1), 80},
                   IpProto::kTcp};
  };
  SimTime t = 0;
  std::uint32_t i = 0;
  const auto one_packet = [&] {
    ++i;
    t += us(5);
    pkt.flow = flow_n(i % 64);
    policy.on_packet(pkt, i % 8, t, false);
  };
  // Warm-up: flow table filled, estimator ladders built, tracker windows
  // and controller scratch at capacity, at least one sweep and eviction
  // index compaction behind us (64 flows * 5us spans several sweep
  // intervals over 400k packets = 2s simulated).
  for (int n = 0; n < 400000; ++n) one_packet();
  const auto before = allocs::snapshot();
  for (int n = 0; n < 200000; ++n) one_packet();
  const auto delta = allocs::delta(before, allocs::snapshot());
  EXPECT_EQ(delta.count, 0u) << delta.bytes << " bytes allocated";
}

}  // namespace
}  // namespace inband
