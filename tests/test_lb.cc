// Unit tests: LB module (Maglev hashing, conntrack, baseline policies,
// dataplane forwarding under DSR).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "lb/load_balancer.h"
#include "lb/policies.h"
#include "tcp/stack.h"

namespace inband {
namespace {

BackendPool make_pool(int n, std::uint32_t weight = 1) {
  BackendPool pool;
  for (int i = 0; i < n; ++i) {
    pool.push_back({static_cast<BackendId>(i), "backend" + std::to_string(i),
                    make_ipv4(10, 2, 0, static_cast<std::uint8_t>(1 + i)),
                    weight, true});
  }
  return pool;
}

FlowKey flow_n(std::uint32_t n) {
  return {{make_ipv4(10, 0, 0, 1), static_cast<std::uint16_t>(1024 + n % 50000)},
          {make_ipv4(10, 1, 0, 1), 80},
          IpProto::kTcp};
}

// --- Maglev ---

TEST(Maglev, TableFullyPopulated) {
  MaglevTable t{251};
  t.build(make_pool(3));
  for (BackendId id : t.raw_table()) EXPECT_NE(id, kNoBackend);
}

TEST(Maglev, NearEvenDistribution) {
  MaglevTable t{65537};
  t.build(make_pool(5));
  for (int i = 0; i < 5; ++i) {
    const double share = static_cast<double>(t.slots_owned(
                             static_cast<BackendId>(i))) /
                         65537.0;
    EXPECT_NEAR(share, 0.2, 0.01) << "backend " << i;
  }
}

TEST(Maglev, WeightsScaleShares) {
  auto pool = make_pool(2);
  pool[0].weight = 3;
  pool[1].weight = 1;
  MaglevTable t{65537};
  t.build(pool);
  const auto shares = t.shares();
  EXPECT_NEAR(shares[0], 0.75, 0.02);
  EXPECT_NEAR(shares[1], 0.25, 0.02);
}

TEST(Maglev, UnhealthyBackendGetsNoSlots) {
  auto pool = make_pool(3);
  pool[1].healthy = false;
  MaglevTable t{251};
  t.build(pool);
  EXPECT_EQ(t.slots_owned(1), 0u);
  EXPECT_EQ(t.slots_owned(0) + t.slots_owned(2), 251u);
}

TEST(Maglev, LookupIsDeterministic) {
  MaglevTable t{251};
  t.build(make_pool(4));
  const FlowKey f = flow_n(7);
  const BackendId b = t.lookup(f);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(t.lookup(f), b);
}

TEST(Maglev, RemovalCausesMinimalDisruption) {
  MaglevTable before{65537};
  before.build(make_pool(10));
  auto pool = make_pool(10);
  pool[3].healthy = false;
  MaglevTable after{65537};
  after.build(pool);
  // Slots not owned by backend 3 should mostly stay put (Maglev's property:
  // disruption ≈ removed share + small churn).
  std::size_t moved_unrelated = 0;
  for (std::uint64_t i = 0; i < 65537; ++i) {
    if (before.raw_table()[i] != 3 &&
        before.raw_table()[i] != after.raw_table()[i]) {
      ++moved_unrelated;
    }
  }
  EXPECT_LT(static_cast<double>(moved_unrelated) / 65537.0, 0.03);
}

TEST(Maglev, ShiftSlotsMovesRequestedFraction) {
  MaglevTable t{4099};
  t.build(make_pool(4));
  const std::size_t before = t.slots_owned(2);
  const std::size_t moved = t.shift_slots(2, 0.10);
  EXPECT_EQ(moved, static_cast<std::size_t>(4099 * 0.10) + 1);
  EXPECT_EQ(t.slots_owned(2), before - moved);
}

TEST(Maglev, ShiftSpreadsEquallyOverOthers) {
  MaglevTable t{4099};
  t.build(make_pool(4));
  std::vector<std::size_t> before;
  for (BackendId i = 0; i < 4; ++i) before.push_back(t.slots_owned(i));
  const std::size_t moved = t.shift_slots(0, 0.09);
  std::size_t gained_total = 0;
  for (BackendId i = 1; i < 4; ++i) {
    const std::size_t gained = t.slots_owned(i) - before[i];
    EXPECT_NEAR(static_cast<double>(gained),
                static_cast<double>(moved) / 3.0, 2.0);
    gained_total += gained;
  }
  EXPECT_EQ(gained_total, moved);
}

TEST(Maglev, RepeatedShiftsDrainBackend) {
  MaglevTable t{4099};
  t.build(make_pool(2));
  for (int i = 0; i < 20; ++i) t.shift_slots(0, 0.10);
  EXPECT_EQ(t.slots_owned(0), 0u);
  EXPECT_EQ(t.slots_owned(1), 4099u);
  // Shifting from an empty owner is a no-op.
  EXPECT_EQ(t.shift_slots(0, 0.10), 0u);
}

TEST(Maglev, MoveSlotsBounded) {
  MaglevTable t{251};
  t.build(make_pool(2));
  const std::size_t owned = t.slots_owned(0);
  EXPECT_EQ(t.move_slots(0, 1, 100000), owned);
  EXPECT_EQ(t.slots_owned(0), 0u);
}

TEST(Maglev, DiffCountsChangedSlots) {
  MaglevTable a{251};
  a.build(make_pool(2));
  MaglevTable b{251};
  b.build(make_pool(2));
  EXPECT_EQ(a.diff(b), 0u);
  const std::size_t moved = b.shift_slots(0, 0.5);
  EXPECT_EQ(a.diff(b), moved);
}

TEST(Maglev, SingleBackendOwnsAll) {
  MaglevTable t{251};
  t.build(make_pool(1));
  EXPECT_EQ(t.slots_owned(0), 251u);
  EXPECT_EQ(t.shift_slots(0, 0.5), 0u);  // nowhere to shift to
}

// --- conntrack ---

TEST(Conntrack, InsertLookupHit) {
  ConnTracker ct;
  const FlowKey f = flow_n(1);
  EXPECT_EQ(ct.lookup(f, 0), kNoBackend);
  ct.insert(f, 2, 0);
  EXPECT_EQ(ct.lookup(f, us(1)), 2u);
  EXPECT_EQ(ct.hits(), 1u);
  EXPECT_EQ(ct.misses(), 1u);
}

TEST(Conntrack, IdleExpiry) {
  ConntrackConfig cfg;
  cfg.idle_timeout = ms(10);
  ConnTracker ct{cfg};
  ct.insert(flow_n(1), 0, 0);
  EXPECT_EQ(ct.lookup(flow_n(1), ms(5)), 0u);
  EXPECT_EQ(ct.lookup(flow_n(1), ms(20)), kNoBackend);  // refreshed at 5ms +10
}

TEST(Conntrack, ClosingLingerThenGone) {
  ConntrackConfig cfg;
  cfg.closing_linger = ms(1);
  ConnTracker ct{cfg};
  ct.insert(flow_n(1), 0, 0);
  EXPECT_TRUE(ct.mark_closing(flow_n(1), us(10)));
  EXPECT_FALSE(ct.mark_closing(flow_n(1), us(10)));  // only first transition
  // Still pinned during the linger (FIN retransmits must reach the server).
  EXPECT_EQ(ct.lookup(flow_n(1), us(500)), 0u);
  EXPECT_EQ(ct.lookup(flow_n(1), ms(3)), kNoBackend);
}

TEST(Conntrack, SweepRemovesExpired) {
  ConntrackConfig cfg;
  cfg.idle_timeout = ms(1);
  cfg.sweep_interval = ms(1);
  ConnTracker ct{cfg};
  for (std::uint32_t i = 0; i < 100; ++i) ct.insert(flow_n(i), 0, 0);
  EXPECT_EQ(ct.size(), 100u);
  ct.sweep(ms(10));
  EXPECT_EQ(ct.size(), 0u);
  EXPECT_EQ(ct.expirations(), 100u);
}

TEST(Conntrack, CapacityEviction) {
  ConntrackConfig cfg;
  cfg.max_entries = 10;
  ConnTracker ct{cfg};
  for (std::uint32_t i = 0; i < 15; ++i) {
    ct.insert(flow_n(i), 0, static_cast<SimTime>(i));
  }
  EXPECT_LE(ct.size(), 10u);
  EXPECT_EQ(ct.evictions(), 5u);
  // The most recent entries survive.
  EXPECT_EQ(ct.lookup(flow_n(14), 100), 0u);
}

TEST(Conntrack, ConnectionsPerBackendExcludesClosing) {
  ConnTracker ct;
  ct.insert(flow_n(1), 0, 0);
  ct.insert(flow_n(2), 1, 0);
  ct.insert(flow_n(3), 1, 0);
  ct.mark_closing(flow_n(2), 0);
  const auto counts = ct.connections_per_backend();
  ASSERT_GE(counts.size(), 2u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
}

// --- baseline policies ---

TEST(Policies, RoundRobinCycles) {
  RoundRobinPolicy p{make_pool(3)};
  EXPECT_EQ(p.pick(flow_n(0), 0), 0u);
  EXPECT_EQ(p.pick(flow_n(1), 0), 1u);
  EXPECT_EQ(p.pick(flow_n(2), 0), 2u);
  EXPECT_EQ(p.pick(flow_n(3), 0), 0u);
}

TEST(Policies, RoundRobinSkipsUnhealthy) {
  auto pool = make_pool(3);
  pool[1].healthy = false;
  RoundRobinPolicy p{pool};
  std::set<BackendId> seen;
  for (int i = 0; i < 6; ++i) seen.insert(p.pick(flow_n(0), 0));
  EXPECT_EQ(seen, (std::set<BackendId>{0, 2}));
}

TEST(Policies, WeightedRandomFollowsWeights) {
  auto pool = make_pool(2);
  pool[0].weight = 3;
  pool[1].weight = 1;
  WeightedRandomPolicy p{pool, 7};
  int first = 0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) {
    if (p.pick(flow_n(0), 0) == 0) ++first;
  }
  EXPECT_NEAR(static_cast<double>(first) / kN, 0.75, 0.02);
}

TEST(Policies, LeastConnBalancesAndReleases) {
  LeastConnPolicy p{make_pool(2)};
  const BackendId a = p.pick(flow_n(1), 0);
  const BackendId b = p.pick(flow_n(2), 0);
  EXPECT_NE(a, b);  // second pick goes to the other backend
  p.on_flow_closed(flow_n(1), a, 0);
  EXPECT_EQ(p.live_connections(a), 0u);
  EXPECT_EQ(p.pick(flow_n(3), 0), a);  // now the emptier one
}

TEST(Policies, StaticMaglevConsistent) {
  StaticMaglevPolicy p{make_pool(4), 251};
  const BackendId b = p.pick(flow_n(9), 0);
  EXPECT_EQ(p.pick(flow_n(9), us(10)), b);
}

// --- dataplane ---

struct RecordingHost final : Host {
  using Host::Host;
  void handle_packet(Packet pkt) override { received.push_back(std::move(pkt)); }
  std::vector<Packet> received;
};

struct LbRig {
  LbRig(int n_backends, std::unique_ptr<RoutingPolicy> policy,
        ConntrackConfig ct = {})
      : net{sim} {
    pool = make_pool(n_backends);
    for (int i = 0; i < n_backends; ++i) {
      backends.push_back(std::make_unique<RecordingHost>(
          sim, net, pool[static_cast<std::size_t>(i)].addr,
          "b" + std::to_string(i)));
    }
    client = std::make_unique<RecordingHost>(sim, net, make_ipv4(10, 0, 0, 1),
                                             "client");
    lb = std::make_unique<LoadBalancer>(sim, net, make_ipv4(10, 1, 0, 1),
                                        "lb", pool, std::move(policy), ct);
    net.add_link(client->addr(), lb->addr(), {});
    for (auto& b : backends) net.add_link(lb->addr(), b->addr(), {});
  }

  void send(const FlowKey& f, std::uint8_t flags = 0) {
    Packet p;
    p.flow = f;
    p.flags = flags;
    client->send(p);
    sim.run();
  }

  Simulator sim;
  Network net;
  BackendPool pool;
  std::vector<std::unique_ptr<RecordingHost>> backends;
  std::unique_ptr<RecordingHost> client;
  std::unique_ptr<LoadBalancer> lb;
};

FlowKey vip_flow(std::uint16_t port) {
  return {{make_ipv4(10, 0, 0, 1), port},
          {make_ipv4(10, 1, 0, 1), 80},
          IpProto::kTcp};
}

TEST(LoadBalancer, ForwardsToPolicyChoice) {
  LbRig rig{2, std::make_unique<RoundRobinPolicy>(make_pool(2))};
  rig.send(vip_flow(1000), tcpflag::kSyn);
  rig.send(vip_flow(1001), tcpflag::kSyn);
  EXPECT_EQ(rig.backends[0]->received.size(), 1u);
  EXPECT_EQ(rig.backends[1]->received.size(), 1u);
}

TEST(LoadBalancer, PerConnectionConsistency) {
  LbRig rig{2, std::make_unique<RoundRobinPolicy>(make_pool(2))};
  // Same flow repeatedly: all packets to the same backend even though the
  // policy would round-robin.
  for (int i = 0; i < 6; ++i) rig.send(vip_flow(1000));
  const auto total0 = rig.backends[0]->received.size();
  const auto total1 = rig.backends[1]->received.size();
  EXPECT_TRUE((total0 == 6 && total1 == 0) || (total0 == 0 && total1 == 6));
}

TEST(LoadBalancer, FlowKeptOnSameBackendAcrossTableChange) {
  auto policy = std::make_unique<StaticMaglevPolicy>(make_pool(2), 251);
  auto* policy_ptr = policy.get();
  LbRig rig{2, std::move(policy)};
  rig.send(vip_flow(1000), tcpflag::kSyn);
  const bool first_to_0 = rig.backends[0]->received.size() == 1;
  // Nuke the table the other way by rebuilding with one backend unhealthy.
  auto pool = make_pool(2);
  pool[first_to_0 ? 0 : 1].healthy = false;
  const_cast<MaglevTable&>(policy_ptr->table()).build(pool);
  rig.send(vip_flow(1000));
  // Conntrack still pins the old backend.
  EXPECT_EQ(rig.backends[first_to_0 ? 0 : 1]->received.size(), 2u);
}

TEST(LoadBalancer, DsrMeansLbNeverSeesResponses) {
  LbRig rig{1, std::make_unique<RoundRobinPolicy>(make_pool(1))};
  // Backend replies directly to the client (needs a link, not via LB).
  rig.net.add_link(rig.backends[0]->addr(), rig.client->addr(), {});
  rig.send(vip_flow(1000), tcpflag::kSyn);
  Packet resp;
  resp.flow = vip_flow(1000).reversed();
  rig.backends[0]->send(resp);
  rig.sim.run();
  ASSERT_EQ(rig.client->received.size(), 1u);
  // The LB forwarded exactly one packet (the request) and saw nothing else.
  EXPECT_EQ(rig.lb->counters().value("lb.packets_in"), 1u);
}

TEST(LoadBalancer, FinTriggersFlowClosedOnce) {
  LbRig rig{2, std::make_unique<LeastConnPolicy>(make_pool(2))};
  auto* lc = dynamic_cast<LeastConnPolicy*>(&rig.lb->policy());
  ASSERT_NE(lc, nullptr);
  rig.send(vip_flow(1000), tcpflag::kSyn);
  EXPECT_EQ(lc->live_connections(0) + lc->live_connections(1), 1u);
  rig.send(vip_flow(1000), tcpflag::kFin);
  rig.send(vip_flow(1000), tcpflag::kFin);  // retransmitted FIN
  EXPECT_EQ(lc->live_connections(0) + lc->live_connections(1), 0u);
  EXPECT_EQ(rig.lb->counters().value("lb.flows_closed"), 1u);
}

TEST(LoadBalancer, CountsPerBackend) {
  LbRig rig{2, std::make_unique<RoundRobinPolicy>(make_pool(2))};
  rig.send(vip_flow(1), tcpflag::kSyn);
  rig.send(vip_flow(2), tcpflag::kSyn);
  rig.send(vip_flow(1));
  EXPECT_EQ(rig.lb->new_flows_to(0) + rig.lb->new_flows_to(1), 2u);
  EXPECT_EQ(rig.lb->forwarded_to(0) + rig.lb->forwarded_to(1), 3u);
}

TEST(LoadBalancer, UnhealthyPolicyChoiceDropped) {
  struct BadPolicy final : RoutingPolicy {
    std::string name() const override { return "bad"; }
    BackendId pick(const FlowKey&, SimTime) override { return kNoBackend; }
  };
  LbRig rig{1, std::make_unique<BadPolicy>()};
  rig.send(vip_flow(1), tcpflag::kSyn);
  EXPECT_EQ(rig.backends[0]->received.size(), 0u);
  EXPECT_EQ(rig.lb->counters().value("lb.drops_no_backend"), 1u);
}


// --- parameterized Maglev properties ---

// (table_size, pool_size)
class MaglevProperty
    : public testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(MaglevProperty, FullCoverageAndNearEvenShares) {
  const auto [table_size, pool_size] = GetParam();
  MaglevTable t{table_size};
  t.build(make_pool(pool_size));
  std::size_t total = 0;
  for (int i = 0; i < pool_size; ++i) {
    total += t.slots_owned(static_cast<BackendId>(i));
  }
  EXPECT_EQ(total, table_size);  // every slot owned
  const double fair = 1.0 / pool_size;
  for (int i = 0; i < pool_size; ++i) {
    const double share =
        static_cast<double>(t.slots_owned(static_cast<BackendId>(i))) /
        static_cast<double>(table_size);
    // Maglev's guarantee: within a few percent of fair for M >> N.
    EXPECT_NEAR(share, fair, fair * 0.25) << "backend " << i;
  }
}

TEST_P(MaglevProperty, LookupAlwaysReturnsPoolMember) {
  const auto [table_size, pool_size] = GetParam();
  MaglevTable t{table_size};
  t.build(make_pool(pool_size));
  for (std::uint32_t i = 0; i < 500; ++i) {
    const BackendId b = t.lookup(flow_n(i));
    EXPECT_LT(b, static_cast<BackendId>(pool_size));
  }
}

TEST_P(MaglevProperty, ShiftConservesSlotCount) {
  const auto [table_size, pool_size] = GetParam();
  if (pool_size < 2) return;
  MaglevTable t{table_size};
  t.build(make_pool(pool_size));
  t.shift_slots(0, 0.13);
  std::size_t total = 0;
  for (int i = 0; i < pool_size; ++i) {
    total += t.slots_owned(static_cast<BackendId>(i));
  }
  EXPECT_EQ(total, table_size);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndPools, MaglevProperty,
    testing::Combine(testing::Values<std::uint64_t>(251, 1021, 4099, 65537),
                     testing::Values(1, 2, 5, 16)));

// Maglev's headline property across pool sizes: removing one backend moves
// almost nothing else.
class MaglevDisruption : public testing::TestWithParam<int> {};

TEST_P(MaglevDisruption, RemovalMovesOnlyVictimSlots) {
  const int n = GetParam();
  MaglevTable before{4099};
  before.build(make_pool(n));
  auto pool = make_pool(n);
  pool[0].healthy = false;
  MaglevTable after{4099};
  after.build(pool);
  std::size_t moved_unrelated = 0;
  for (std::uint64_t i = 0; i < 4099; ++i) {
    if (before.raw_table()[i] != 0 &&
        before.raw_table()[i] != after.raw_table()[i]) {
      ++moved_unrelated;
    }
  }
  EXPECT_LT(static_cast<double>(moved_unrelated) / 4099.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Pools, MaglevDisruption,
                         testing::Values(2, 4, 8, 32));

// --- parameterized conntrack capacity behaviour ---

class ConntrackCapacity : public testing::TestWithParam<std::size_t> {};

TEST_P(ConntrackCapacity, NeverExceedsMaxAndKeepsFreshest) {
  ConntrackConfig cfg;
  cfg.max_entries = GetParam();
  ConnTracker ct{cfg};
  const std::uint32_t total = static_cast<std::uint32_t>(GetParam() * 3);
  for (std::uint32_t i = 0; i < total; ++i) {
    ct.insert(flow_n(i), 0, static_cast<SimTime>(i));
    EXPECT_LE(ct.size(), GetParam());
  }
  // The very last insert always survives.
  EXPECT_EQ(ct.lookup(flow_n(total - 1), static_cast<SimTime>(total)), 0u);
}

INSTANTIATE_TEST_SUITE_P(Capacities, ConntrackCapacity,
                         testing::Values(4, 64, 1024));


// --- weighted Maglev mechanics ---

TEST(MaglevWeighted, InterleavesRatherThanClusters) {
  auto pool = make_pool(2);
  pool[0].weight = 4500;
  pool[1].weight = 5500;
  MaglevTable t{4099};
  t.build(pool);
  // Shares follow the weights...
  const auto shares = t.shares();
  EXPECT_NEAR(shares[0], 0.45, 0.02);
  EXPECT_NEAR(shares[1], 0.55, 0.02);
  // ...and slots are interleaved: the longest same-owner run stays short.
  std::size_t run = 1;
  std::size_t longest = 1;
  const auto& raw = t.raw_table();
  for (std::size_t i = 1; i < raw.size(); ++i) {
    run = raw[i] == raw[i - 1] ? run + 1 : 1;
    longest = std::max(longest, run);
  }
  EXPECT_LT(longest, 40u);  // naive consecutive-turn builds produce runs of thousands
}

TEST(MaglevWeighted, SmallWeightChangeIsSmallDisruption) {
  auto pool = make_pool(4);
  for (auto& b : pool) b.weight = 1000;
  MaglevTable before{4099};
  before.build(pool);
  pool[0].weight = 900;  // -10% on one backend
  MaglevTable after{4099};
  after.build(pool);
  // Disruption should be in the ballpark of the share actually moved
  // (~2.5% of the table), not a rewrite.
  const double disruption =
      static_cast<double>(before.diff(after)) / 4099.0;
  EXPECT_LT(disruption, 0.15);
}

TEST(MaglevWeighted, ExtremeWeightRatios) {
  auto pool = make_pool(3);
  pool[0].weight = 1;
  pool[1].weight = 10;
  pool[2].weight = 100;
  MaglevTable t{4099};
  t.build(pool);
  const auto shares = t.shares();
  EXPECT_NEAR(shares[0], 1.0 / 111, 0.01);
  EXPECT_NEAR(shares[1], 10.0 / 111, 0.02);
  EXPECT_NEAR(shares[2], 100.0 / 111, 0.03);
}

// --- backend health management on the dataplane ---

TEST(LoadBalancer, UnhealthyBackendAvoidedByNewFlows) {
  LbRig rig{2, std::make_unique<StaticMaglevPolicy>(make_pool(2), 251)};
  rig.lb->set_backend_health(0, false);
  for (std::uint16_t p = 100; p < 140; ++p) {
    rig.send(vip_flow(p), tcpflag::kSyn);
  }
  EXPECT_EQ(rig.backends[0]->received.size(), 0u);
  EXPECT_EQ(rig.backends[1]->received.size(), 40u);
  EXPECT_EQ(rig.lb->counters().value("lb.pool_changes"), 1u);
}

TEST(LoadBalancer, ExistingConnectionsDrainThroughUnhealthyBackend) {
  LbRig rig{2, std::make_unique<StaticMaglevPolicy>(make_pool(2), 251)};
  rig.send(vip_flow(100), tcpflag::kSyn);
  const bool on_0 = rig.backends[0]->received.size() == 1;
  const BackendId pinned = on_0 ? 0 : 1;
  rig.lb->set_backend_health(pinned, false);
  // The pinned flow keeps flowing to its (draining) backend.
  rig.send(vip_flow(100));
  EXPECT_EQ(rig.backends[pinned]->received.size(), 2u);
}

TEST(LoadBalancer, HealthRestoredBackendReceivesAgain) {
  LbRig rig{2, std::make_unique<RoundRobinPolicy>(make_pool(2))};
  rig.lb->set_backend_health(0, false);
  rig.send(vip_flow(1), tcpflag::kSyn);
  rig.send(vip_flow(2), tcpflag::kSyn);
  EXPECT_EQ(rig.backends[0]->received.size(), 0u);
  rig.lb->set_backend_health(0, true);
  rig.send(vip_flow(3), tcpflag::kSyn);
  rig.send(vip_flow(4), tcpflag::kSyn);
  EXPECT_GT(rig.backends[0]->received.size(), 0u);
}

TEST(LoadBalancer, WeightChangeRebalancesNewFlows) {
  LbRig rig{2, std::make_unique<StaticMaglevPolicy>(make_pool(2), 4099)};
  auto* policy = dynamic_cast<StaticMaglevPolicy*>(&rig.lb->policy());
  ASSERT_NE(policy, nullptr);
  rig.lb->set_backend_weight(0, 9);
  rig.lb->set_backend_weight(1, 1);
  const auto shares = policy->table().shares();
  EXPECT_NEAR(shares[0], 0.9, 0.03);
}


// --- robustness: junk traffic at the LB (§2.4 mentions volumetric attacks) ---

TEST(LoadBalancer, SynFloodBoundsAllState) {
  ConntrackConfig ct;
  ct.max_entries = 256;
  LbRig rig{2, std::make_unique<RoundRobinPolicy>(make_pool(2)), ct};
  // 10k distinct spoofed flows, SYN only, no follow-up.
  for (std::uint32_t i = 0; i < 10'000; ++i) {
    Packet p;
    p.flow = {{make_ipv4(10, 0, 0, 1),
               static_cast<std::uint16_t>(1 + i % 60'000)},
              {make_ipv4(10, 1, 0, 1),
               static_cast<std::uint16_t>(80 + i / 60'000)},
              IpProto::kTcp};
    p.flags = tcpflag::kSyn;
    rig.client->send(p);
  }
  rig.sim.run();
  EXPECT_LE(rig.lb->conntrack().size(), 256u);
  EXPECT_GT(rig.lb->conntrack().evictions(), 0u);
  // Every SYN still forwarded (the LB does not blackhole; servers decide).
  EXPECT_EQ(rig.backends[0]->received.size() + rig.backends[1]->received.size(),
            10'000u);
}

}  // namespace
}  // namespace inband
