// Unit tests: discrete-event simulator (queue ordering, cancellation,
// periodic tasks, run_until semantics).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include "check/reference_models.h"
#include "check/state_digest.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/time.h"

namespace inband {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.push(10, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterPopFails) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  q.push(20, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_at(us(100), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, us(100));
  EXPECT_EQ(sim.now(), us(100));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule_after(us(10), [&] {
    times.push_back(sim.now());
    sim.schedule_after(us(10), [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{us(10), us(20)}));
}

TEST(Simulator, ZeroDelayRunsAfterCurrentHandler) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(0, [&] {
    sim.schedule_after(0, [&] { order.push_back(2); });
    order.push_back(1);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, StopBreaksRun) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1, [&] {
    ++count;
    sim.stop();
  });
  sim.schedule_at(2, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, RunUntilExecutesInclusiveDeadline) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(us(10), [&] { ++count; });
  sim.schedule_at(us(20), [&] { ++count; });
  sim.schedule_at(us(21), [&] { ++count; });
  sim.run_until(us(20));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), us(20));
  sim.run_until(us(30));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), us(30));
}

TEST(Simulator, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  sim.run_until(ms(5));
  EXPECT_EQ(sim.now(), ms(5));
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(us(5), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, ExecutedEventsCounted) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1, [&] { ++count; });
  sim.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(PeriodicTask, FiresAtPeriod) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTask task{sim, ms(10), [&](SimTime t) { fires.push_back(t); }};
  task.start(ms(10));
  sim.run_until(ms(35));
  EXPECT_EQ(fires, (std::vector<SimTime>{ms(10), ms(20), ms(30)}));
}

TEST(PeriodicTask, CancelStopsFiring) {
  Simulator sim;
  int count = 0;
  PeriodicTask task{sim, ms(1), [&](SimTime) { ++count; }};
  task.start(ms(1));
  sim.schedule_at(ms(3) + 1, [&] { task.cancel(); });
  sim.run_until(ms(10));
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTask, CallbackMayCancelItself) {
  Simulator sim;
  int count = 0;
  PeriodicTask task{sim, ms(1), [&](SimTime) {
                      if (++count == 2) task.cancel();
                    }};
  task.start(0);
  sim.run_until(ms(10));
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, DestructionCancels) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task{sim, ms(1), [&](SimTime) { ++count; }};
    task.start(ms(1));
  }
  sim.run_until(ms(5));
  EXPECT_EQ(count, 0);
}

TEST(Simulator, HandlersCanScheduleManyLayers) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
}

// --- EventCallback: the pool's erased callable ---

namespace cbtrack {
int live = 0;       // constructed minus destroyed
int destroyed = 0;  // total destructor runs
struct Tracked {
  Tracked() { ++live; }
  Tracked(const Tracked&) { ++live; }
  Tracked(Tracked&&) noexcept { ++live; }
  ~Tracked() {
    --live;
    ++destroyed;
  }
};
void reset_counters() {
  live = 0;
  destroyed = 0;
}
}  // namespace cbtrack

TEST(EventCallback, InvokesInlineTarget) {
  int hits = 0;
  EventCallback cb{[&] { ++hits; }};
  EXPECT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(EventCallback, LargeCaptureFallsBackToHeap) {
  struct Big {
    std::array<std::int64_t, 64> payload;  // 512B, > kInlineBytes
  };
  static_assert(!EventCallback::fits_inline<Big>());
  Big big{};
  big.payload[0] = 7;
  big.payload[63] = 9;
  std::int64_t sum = 0;
  EventCallback cb{[big, &sum] { sum = big.payload[0] + big.payload[63]; }};
  cb();
  EXPECT_EQ(sum, 16);
}

TEST(EventCallback, MoveTransfersTargetAndEmptiesSource) {
  int hits = 0;
  EventCallback a{[&] { ++hits; }};
  EventCallback b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(EventCallback, DestroysCaptureExactlyOnce) {
  cbtrack::reset_counters();
  {
    EventCallback cb{[t = cbtrack::Tracked{}] { (void)t; }};
    EventCallback moved{std::move(cb)};
    moved();
  }
  EXPECT_EQ(cbtrack::live, 0);
}

// --- event pool: recycling, lazy deletion, generation guard ---

TEST(EventQueue, PendingCallbacksDestroyedWithQueue) {
  cbtrack::reset_counters();
  {
    EventQueue q;
    for (int i = 0; i < 10; ++i) {
      q.push(i, [t = cbtrack::Tracked{}] { (void)t; });
    }
    q.pop().fn();
  }
  EXPECT_EQ(cbtrack::live, 0);
}

TEST(EventQueue, CancelDestroysCaptureImmediately) {
  cbtrack::reset_counters();
  EventQueue q;
  const EventId id = q.push(10, [t = cbtrack::Tracked{}] { (void)t; });
  EXPECT_EQ(cbtrack::live, 1);
  const int before = cbtrack::destroyed;  // temporaries died during push
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(cbtrack::live, 0);
  EXPECT_EQ(cbtrack::destroyed, before + 1);
}

TEST(EventQueue, SelfCancelDuringFireFails) {
  EventQueue q;
  EventId self = kInvalidEventId;
  bool cancel_result = true;
  self = q.push(10, [&] { cancel_result = q.cancel(self); });
  q.fire_next([](SimTime) {});
  EXPECT_FALSE(cancel_result);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FireNextRunsPreHookBeforeCallback) {
  EventQueue q;
  std::vector<int> order;
  q.push(42, [&] { order.push_back(2); });
  const SimTime t = q.fire_next([&](SimTime committed) {
    EXPECT_EQ(committed, 42);
    order.push_back(1);
  });
  EXPECT_EQ(t, 42);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, RecycledSlotHandleDoesNotAliasNewEvent) {
  EventQueue q;
  const EventId first = q.push(10, [] {});
  EXPECT_TRUE(q.cancel(first));
  // The replacement event reuses the pool slot; the dead handle must not
  // cancel it.
  bool ran = false;
  const EventId second = q.push(20, [&] { ran = true; });
  EXPECT_FALSE(q.cancel(first));
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_TRUE(ran);
  EXPECT_FALSE(q.cancel(second));
}

TEST(EventQueue, PushCancelInterleaveStress) {
  // Random push/cancel/pop storm; the queue must keep exact live counts,
  // fire everything uncancelled exactly once, and never fire a cancelled
  // event. Mirrored against LegacyEventQueue below.
  Rng rng{20260806};
  EventQueue q;
  std::vector<EventId> open;
  SimTime now = 0;
  std::uint64_t fired = 0;
  std::uint64_t pushed = 0;
  std::uint64_t cancelled = 0;
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t roll = rng.uniform_u64(0, 99);
    if (roll < 50) {
      open.push_back(q.push(
          now + static_cast<SimTime>(rng.uniform_u64(0, 1000)), [&] { ++fired; }));
      ++pushed;
    } else if (roll < 75 && !open.empty()) {
      const std::size_t pick =
          rng.uniform_u64(0, static_cast<std::uint64_t>(open.size()) - 1);
      if (q.cancel(open[pick])) ++cancelled;
      open[pick] = open.back();
      open.pop_back();
    } else if (!q.empty()) {
      now = q.fire_next([](SimTime) {});
    }
  }
  while (!q.empty()) q.fire_next([](SimTime) {});
  EXPECT_EQ(fired + cancelled, pushed);
  EXPECT_EQ(q.total_pushed(), pushed);
}

TEST(EventQueue, MatchesLegacyQueueOnRandomOps) {
  // Differential check against the pre-pool implementation: identical op
  // sequences must produce the same pop order (by tag and time) and the
  // same digests.
  Rng rng{77};
  EventQueue neu;
  LegacyEventQueue old;
  std::vector<std::pair<EventId, EventId>> open;  // (new id, old id)
  std::vector<int> fired_new;
  std::vector<int> fired_old;
  SimTime now = 0;
  int tag = 0;
  for (int step = 0; step < 5000; ++step) {
    const std::uint64_t roll = rng.uniform_u64(0, 99);
    if (roll < 50) {
      const SimTime t = now + static_cast<SimTime>(rng.uniform_u64(0, 200));
      const int this_tag = tag++;
      open.emplace_back(neu.push(t, [&, this_tag] { fired_new.push_back(this_tag); }),
                        old.push(t, [&, this_tag] { fired_old.push_back(this_tag); }));
    } else if (roll < 70 && !open.empty()) {
      const std::size_t pick =
          rng.uniform_u64(0, static_cast<std::uint64_t>(open.size()) - 1);
      EXPECT_EQ(neu.cancel(open[pick].first), old.cancel(open[pick].second));
      open[pick] = open.back();
      open.pop_back();
    } else if (!neu.empty()) {
      ASSERT_FALSE(old.empty());
      auto popped_old = old.pop();
      const SimTime t = neu.fire_next([](SimTime) {});
      EXPECT_EQ(t, popped_old.t);
      popped_old.fn();
      now = t;
      ASSERT_EQ(fired_new.size(), fired_old.size());
      EXPECT_EQ(fired_new.back(), fired_old.back());
    }
    EXPECT_EQ(neu.size(), old.size());
    EXPECT_EQ(neu.next_time(), old.next_time());
  }
  EXPECT_EQ(fired_new, fired_old);
  StateDigest dn;
  neu.digest_state(dn);
  StateDigest dl;
  old.digest_state(dl);
  EXPECT_EQ(dn.value(), dl.value());
}

}  // namespace

// Friend peer for reaching into the pool's generation bookkeeping; the
// wraparound guard is unreachable through the public API (it needs 2^32
// occupancies of one slot).
struct EventQueueTestPeer {
  static constexpr std::uint32_t max_gen() { return EventQueue::kMaxGen; }
  static std::uint32_t slot_of(EventId id) { return EventQueue::slot_of(id); }
  static void set_free_slot_generation(EventQueue& q, std::uint32_t slot,
                                       std::uint32_t gen) {
    ASSERT_FALSE(static_cast<bool>(q.slot_ref(slot).callback))
        << "slot must be free";
    q.slot_ref(slot).gen = gen;
  }
  static std::uint64_t retired_slots(const EventQueue& q) {
    return q.retired_slots_;
  }
  static std::size_t far_heap_size(const EventQueue& q) {
    return q.far_keys_.size();
  }
  static std::size_t far_reserve() { return EventQueue::kFarReserve; }
};

namespace {

TEST(EventQueue, GenerationWraparoundRetiresSlot) {
  EventQueue q;
  const EventId first = q.push(10, [] {});
  EXPECT_TRUE(q.cancel(first));  // slot 0 is now free
  EventQueueTestPeer::set_free_slot_generation(
      q, 0, EventQueueTestPeer::max_gen() - 1);
  const EventId last = q.push(20, [] {});
  EXPECT_EQ(EventQueueTestPeer::slot_of(last), 0u);
  EXPECT_TRUE(q.cancel(last));  // generation hits kMaxGen: slot retires
  EXPECT_EQ(EventQueueTestPeer::retired_slots(q), 1u);
  // The retired slot never comes back, so the exhausted handle can never
  // alias a fresh event.
  const EventId next = q.push(30, [] {});
  EXPECT_NE(EventQueueTestPeer::slot_of(next), 0u);
  EXPECT_FALSE(q.cancel(last));
  EXPECT_TRUE(q.cancel(next));
}

// Regression: a cancelled event resident in the far heap used to stay behind
// as a tombstone until its 2^18-tick window rotated in, so a cancel-heavy
// far-timer workload (schedule a batch of far-future timeouts, cancel nearly
// all of them, repeat) retained heap entries unboundedly — before the
// compaction in EventQueue::cancel(), the occupancy below ends each round
// near 8 + 1024 * rounds instead of staying flat.
TEST(EventQueue, FarHeapCompactsTombstonesUnderCancelHeavyCancels) {
  EventQueue q;
  constexpr SimTime kFar = SimTime{1} << 20;  // beyond the 2^18 horizon
  std::vector<EventId> keep;
  for (SimTime i = 0; i < 8; ++i) keep.push_back(q.push(kFar + i, [] {}));
  std::size_t high_water = 0;
  for (int round = 0; round < 64; ++round) {
    std::vector<EventId> ids;
    for (int i = 0; i < 1024; ++i) {
      ids.push_back(q.push(kFar + 1000 + round * 1024 + i, [] {}));
    }
    for (EventId id : ids) ASSERT_TRUE(q.cancel(id));
    // Measured after each round's cancels: tombstones left since the last
    // compaction are bounded, so occupancy must not accumulate across rounds.
    high_water =
        std::max(high_water, EventQueueTestPeer::far_heap_size(q));
  }
  EXPECT_EQ(q.size(), keep.size());
  EXPECT_LE(high_water,
            2 * q.size() + 2 * EventQueueTestPeer::far_reserve());
  // Compaction preserves the (time, seq) pop order of the survivors.
  for (std::size_t i = 0; i < keep.size(); ++i) {
    EXPECT_EQ(q.pop().t, kFar + static_cast<SimTime>(i));
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace inband
