// Unit tests: discrete-event simulator (queue ordering, cancellation,
// periodic tasks, run_until semantics).
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace inband {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.push(10, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterPopFails) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  q.push(20, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_at(us(100), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, us(100));
  EXPECT_EQ(sim.now(), us(100));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule_after(us(10), [&] {
    times.push_back(sim.now());
    sim.schedule_after(us(10), [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{us(10), us(20)}));
}

TEST(Simulator, ZeroDelayRunsAfterCurrentHandler) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(0, [&] {
    sim.schedule_after(0, [&] { order.push_back(2); });
    order.push_back(1);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, StopBreaksRun) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1, [&] {
    ++count;
    sim.stop();
  });
  sim.schedule_at(2, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, RunUntilExecutesInclusiveDeadline) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(us(10), [&] { ++count; });
  sim.schedule_at(us(20), [&] { ++count; });
  sim.schedule_at(us(21), [&] { ++count; });
  sim.run_until(us(20));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), us(20));
  sim.run_until(us(30));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), us(30));
}

TEST(Simulator, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  sim.run_until(ms(5));
  EXPECT_EQ(sim.now(), ms(5));
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(us(5), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, ExecutedEventsCounted) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1, [&] { ++count; });
  sim.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(PeriodicTask, FiresAtPeriod) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTask task{sim, ms(10), [&](SimTime t) { fires.push_back(t); }};
  task.start(ms(10));
  sim.run_until(ms(35));
  EXPECT_EQ(fires, (std::vector<SimTime>{ms(10), ms(20), ms(30)}));
}

TEST(PeriodicTask, CancelStopsFiring) {
  Simulator sim;
  int count = 0;
  PeriodicTask task{sim, ms(1), [&](SimTime) { ++count; }};
  task.start(ms(1));
  sim.schedule_at(ms(3) + 1, [&] { task.cancel(); });
  sim.run_until(ms(10));
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTask, CallbackMayCancelItself) {
  Simulator sim;
  int count = 0;
  PeriodicTask task{sim, ms(1), [&](SimTime) {
                      if (++count == 2) task.cancel();
                    }};
  task.start(0);
  sim.run_until(ms(10));
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, DestructionCancels) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task{sim, ms(1), [&](SimTime) { ++count; }};
    task.start(ms(1));
  }
  sim.run_until(ms(5));
  EXPECT_EQ(count, 0);
}

TEST(Simulator, HandlersCanScheduleManyLayers) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
}

}  // namespace
}  // namespace inband
