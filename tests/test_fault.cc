// Fault-injection subsystem tests.
//
// Mechanism tests drive a FaultLayer over a tiny two-host network and verify
// each fault actually happens on the wire: losses drop the configured
// fraction, reordered packets are genuinely overtaken, duplicates arrive
// twice, flap windows black-hole exactly their interval. Negative tests
// corrupt the layer's bookkeeping and assert the invariant auditor reports
// it. Scenario tests then assert the paper's control loop is robust: under
// 1% loss + reordering + jitter the in-band policy still migrates load off a
// slow server — without oscillating — while static Maglev stays inflated,
// and fault-injected runs stay bit-for-bit deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "check/invariant_auditor.h"
#include "core/controller_zoo.h"
#include "fault/fault_layer.h"
#include "fault/fault_plan.h"
#include "fault/server_faults.h"
#include "net/network.h"
#include "scenario/backlogged_rig.h"
#include "scenario/cluster_rig.h"
#include "scenario/metrics.h"
#include "sim/simulator.h"

namespace inband {
namespace {

constexpr Ipv4 kSrc = make_ipv4(10, 0, 0, 1);
constexpr Ipv4 kDst = make_ipv4(10, 2, 0, 1);

class CaptureHost final : public Host {
 public:
  using Host::Host;
  void handle_packet(Packet pkt) override {
    arrivals.push_back({sim().now(), pkt.pkt_id});
  }
  std::vector<std::pair<SimTime, std::uint64_t>> arrivals;
};

// One directed link src→dst with a FaultLayer over it; `send_every` spaces
// the test packets so reorder holds (50us+) genuinely let later packets
// overtake.
struct FaultedWire {
  explicit FaultedWire(FaultPlan plan)
      : layer{sim, net, std::move(plan),
              {{kSrc, kDst, LinkScope::kLbToServer, 0}}} {}

  void send_spaced(int count, SimTime send_every) {
    for (int i = 0; i < count; ++i) {
      sim.schedule_at(i * send_every, [this] {
        Packet p;
        p.flow = {{kSrc, 1111}, {kDst, 80}, IpProto::kTcp};
        p.payload_len = 100;
        net.send(kSrc, kDst, std::move(p));
      });
    }
    sim.run();
  }

  std::size_t audit_violations() {
    InvariantAuditor auditor{AuditFailMode::kCollect};
    auditor.register_hook("fault",
                          [this](AuditScope& s) { layer.audit_invariants(s); });
    return auditor.run_all(sim.now());
  }

  Simulator sim;
  Network net{sim};
  CaptureHost src{sim, net, kSrc, "src"};
  CaptureHost dst{sim, net, kDst, "dst"};
  Link& link = net.add_link(kSrc, kDst, {10'000'000'000, us(10), 0});
  FaultLayer layer;
};

// --- plan construction ---

TEST(FaultPlan, EmptyPlanIsDisabled) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.links.push_back({});
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlan, NoisePlanCoversEveryLink) {
  const FaultPlan plan = make_noise_plan(0.01, 0.01, 0.002, us(20));
  ASSERT_EQ(plan.links.size(), 1u);
  EXPECT_EQ(plan.links[0].scope, LinkScope::kAll);
  EXPECT_DOUBLE_EQ(plan.links[0].loss, 0.01);
  EXPECT_DOUBLE_EQ(plan.links[0].reorder, 0.01);
  EXPECT_DOUBLE_EQ(plan.links[0].duplicate, 0.002);
  EXPECT_EQ(plan.links[0].jitter_max, us(20));
  plan.validate();  // must not assert
}

TEST(FaultEventNames, AreDistinct) {
  EXPECT_STREQ(fault_event_name(FaultEvent::Kind::kLoss), "loss");
  EXPECT_STRNE(fault_event_name(FaultEvent::Kind::kLinkDown),
               fault_event_name(FaultEvent::Kind::kLinkUp));
  EXPECT_STRNE(link_scope_name(LinkScope::kClientToLb),
               link_scope_name(LinkScope::kLbToServer));
}

// --- loss ---

TEST(FaultLayerMechanism, LossDropsTheConfiguredFraction) {
  FaultPlan plan;
  plan.links.push_back({.loss = 0.25});
  FaultedWire wire{std::move(plan)};
  wire.send_spaced(2000, us(1));

  const std::uint64_t lost = wire.layer.counters().value("fault.loss");
  EXPECT_EQ(wire.dst.arrivals.size() + lost, 2000u);
  // Binomial(2000, 0.25): mean 500, sigma ~19. [400, 600] is > 5 sigma.
  EXPECT_GT(lost, 400u);
  EXPECT_LT(lost, 600u);
  // Every loss is on the executed timeline.
  EXPECT_EQ(fault_events_in_window(wire.layer.events(),
                                   FaultEvent::Kind::kLoss, 0, kEndOfTime),
            lost);
  EXPECT_EQ(wire.audit_violations(), 0u);
}

TEST(FaultLayerMechanism, ActivityWindowGatesFaults) {
  FaultPlan plan;
  plan.links.push_back({.loss = 1.0, .start = ms(1), .end = ms(2)});
  FaultedWire wire{std::move(plan)};
  // 30 packets every 100us: 10 before the window, 10 inside, 10 after.
  wire.send_spaced(30, us(100));
  EXPECT_EQ(wire.dst.arrivals.size(), 20u);
  EXPECT_EQ(wire.layer.counters().value("fault.loss"), 10u);
}

// --- reordering ---

TEST(FaultLayerMechanism, ReorderingActuallyReordersDelivery) {
  FaultPlan plan;
  plan.links.push_back({.reorder = 0.3});
  FaultedWire wire{std::move(plan)};
  wire.send_spaced(500, us(10));

  // Nothing is lost — reordering only delays.
  ASSERT_EQ(wire.dst.arrivals.size(), 500u);
  EXPECT_GT(wire.layer.counters().value("fault.reorders"), 50u);

  // Delivery order differs from send order (pkt_ids are stamped in send
  // order), yet every packet arrived exactly once.
  std::vector<std::uint64_t> ids;
  for (const auto& [t, id] : wire.dst.arrivals) ids.push_back(id);
  EXPECT_FALSE(std::is_sorted(ids.begin(), ids.end()));
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  EXPECT_EQ(wire.audit_violations(), 0u);
}

// --- duplication ---

TEST(FaultLayerMechanism, DuplicationDeliversExtraCopies) {
  FaultPlan plan;
  plan.links.push_back({.duplicate = 1.0});
  FaultedWire wire{std::move(plan)};
  wire.send_spaced(50, us(20));

  EXPECT_EQ(wire.layer.counters().value("fault.duplicates"), 50u);
  ASSERT_EQ(wire.dst.arrivals.size(), 100u);
  // Each pkt_id arrives exactly twice.
  std::vector<std::uint64_t> ids;
  for (const auto& [t, id] : wire.dst.arrivals) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i + 1 < ids.size(); i += 2) {
    EXPECT_EQ(ids[i], ids[i + 1]);
  }
  EXPECT_EQ(wire.audit_violations(), 0u);
}

// --- jitter ---

TEST(FaultLayerMechanism, JitterPerturbsButPreservesDelivery) {
  FaultPlan plan;
  plan.links.push_back({.jitter_max = us(100)});
  FaultedWire jittered{plan};
  jittered.send_spaced(200, us(200));
  FaultPlan passthrough;  // enabled but all-zero spec: no faults fire
  passthrough.links.push_back({});
  FaultedWire clean{std::move(passthrough)};
  clean.send_spaced(200, us(200));

  ASSERT_EQ(jittered.dst.arrivals.size(), 200u);
  EXPECT_GT(jittered.layer.counters().value("fault.jittered"), 100u);
  bool any_shift = false;
  for (std::size_t i = 0; i < 200; ++i) {
    any_shift |= jittered.dst.arrivals[i] != clean.dst.arrivals[i];
  }
  EXPECT_TRUE(any_shift);
}

TEST(FaultLayerMechanism, SameSeedSameSchedule) {
  const FaultPlan plan = make_noise_plan(0.05, 0.05, 0.01, us(50));
  FaultedWire a{plan};
  a.send_spaced(300, us(10));
  FaultedWire b{plan};
  b.send_spaced(300, us(10));
  EXPECT_EQ(a.dst.arrivals, b.dst.arrivals);

  FaultPlan reseeded = plan;
  reseeded.seed = 99;
  FaultedWire c{std::move(reseeded)};
  c.send_spaced(300, us(10));
  EXPECT_NE(a.dst.arrivals, c.dst.arrivals);
}

// --- link flaps ---

TEST(FaultLayerMechanism, FlapWindowBlackholesItsInterval) {
  FaultPlan plan;
  plan.flaps.push_back({LinkScope::kAll, -1, ms(1), ms(2)});
  FaultedWire wire{std::move(plan)};
  // Packets every 100us across [0, 3ms): the 10 inside [1ms, 2ms) vanish.
  wire.send_spaced(30, us(100));

  EXPECT_EQ(wire.dst.arrivals.size(), 20u);
  EXPECT_EQ(wire.layer.counters().value("fault.flap_drops"), 10u);
  EXPECT_EQ(wire.layer.counters().value("fault.flap_transitions"), 2u);
  for (const auto& [t, id] : wire.dst.arrivals) {
    // Deliveries originate outside the outage (10us propagation).
    EXPECT_TRUE(t - us(10) < ms(1) || t - us(10) >= ms(2)) << t;
  }

  // Timeline: down, 10 drops, up — in order.
  const auto& ev = wire.layer.events();
  ASSERT_EQ(ev.size(), 12u);
  EXPECT_EQ(ev.front().kind, FaultEvent::Kind::kLinkDown);
  EXPECT_EQ(ev.front().t, ms(1));
  EXPECT_EQ(ev.back().kind, FaultEvent::Kind::kLinkUp);
  EXPECT_EQ(ev.back().t, ms(2));
  EXPECT_EQ(fault_events_in_window(ev, FaultEvent::Kind::kFlapDrop, ms(1),
                                   ms(2)),
            10u);
  EXPECT_EQ(wire.audit_violations(), 0u);
}

// --- invariant auditor catches corrupt bookkeeping ---

TEST(FaultLayerAudit, CorruptBookkeepingIsDetected) {
  FaultPlan plan;
  plan.links.push_back({.loss = 0.5});
  FaultedWire wire{std::move(plan)};
  wire.send_spaced(100, us(10));
  ASSERT_EQ(wire.audit_violations(), 0u);

  wire.layer.corrupt_bookkeeping_for_test();
  InvariantAuditor auditor{AuditFailMode::kCollect};
  auditor.register_hook(
      "fault", [&](AuditScope& s) { wire.layer.audit_invariants(s); });
  EXPECT_GT(auditor.run_all(wire.sim.now()), 0u);
  bool saw_xor = false;
  bool saw_count = false;
  for (const auto& v : auditor.violations()) {
    saw_xor |= v.invariant == "dropped-xor-delivered";
    saw_count |= v.invariant == "dropped-ids-match-counters";
  }
  EXPECT_TRUE(saw_xor);
  EXPECT_TRUE(saw_count);
}

// --- scheduled freeze injector ---

TEST(ScheduledFreeze, ReportsLatestCoveringWindow) {
  ScheduledFreezeInjector inj{{{ms(1), ms(2)}, {ms(1), ms(4)}, {ms(6), ms(7)}}};
  EXPECT_EQ(inj.frozen_until(0), 0);
  EXPECT_EQ(inj.frozen_until(ms(1)), ms(4));  // overlapping: latest end wins
  EXPECT_EQ(inj.frozen_until(ms(3)), ms(4));
  EXPECT_EQ(inj.frozen_until(ms(4)), 0);      // end is exclusive
  EXPECT_EQ(inj.frozen_until(ms(6)), ms(7));
}

// --- full rigs under faults ---

ClusterRigConfig noisy_cluster(LbMode mode) {
  ClusterRigConfig cfg;
  cfg.mode = mode;
  cfg.duration = sec(4);
  cfg.inject_time = sec(2);
  cfg.inject_extra = ms(1);
  cfg.num_client_hosts = 2;
  cfg.client.connections = 4;
  cfg.client.pipeline = 4;
  cfg.client.requests_per_conn = 50;
  cfg.server.workers = 8;
  cfg.maglev_table_size = 1021;
  cfg.share_sample_interval = ms(5);
  cfg.inband.ensemble.epoch = ms(16);
  cfg.inband.controller.min_samples = 3;
  cfg.inband.controller.cooldown = ms(1);
  cfg.inband.tracker.ewma_tau = ms(2);
  // The robustness configuration from the issue: 1% loss, 1% reordering,
  // 0.2% duplication, 20us jitter on every link.
  cfg.fault = make_noise_plan(0.01, 0.01, 0.002, us(20));
  return cfg;
}

TEST(FaultRobustness, InbandStillShiftsUnderLossAndReordering) {
  ClusterRig rig{noisy_cluster(LbMode::kInband)};
  rig.run();
  ASSERT_NE(rig.fault(), nullptr);
  // The noise actually happened.
  EXPECT_GT(rig.fault()->counters().value("fault.loss"), 100u);
  EXPECT_GT(rig.fault()->counters().value("fault.reorders"), 100u);

  auto* policy = rig.inband_policy();
  ASSERT_NE(policy, nullptr);
  EXPECT_GT(policy->controller().shifts(), 0u);
  // The victim lost at least half its fair share of the table.
  const auto fair = policy->table().table_size() / 2;
  EXPECT_LE(policy->table().slots_owned(0), fair / 2);

  // No oscillation: once drained, the victim's share stays low — it never
  // climbs back above half of fair in the last second of the run.
  double max_late_share = 0.0;
  for (const auto& snap : rig.share_history()) {
    if (snap.t >= sec(3) && !snap.shares.empty()) {
      max_late_share = std::max(max_late_share, snap.shares[0]);
    }
  }
  EXPECT_LT(max_late_share, 0.25);
}

TEST(FaultRobustness, StaticMaglevStaysInflatedUnderNoise) {
  ClusterRig rig{noisy_cluster(LbMode::kStaticMaglev)};
  rig.run();
  const auto get = rig.get_latency_samples();
  ASSERT_GT(get.size(), 1000u);
  const double p95_before = percentile_in_window(get, sec(1), sec(2), 0.95);
  const double p95_after = percentile_in_window(get, sec(3), sec(4), 0.95);
  // No feedback loop: the injected 1ms stays in the tail.
  EXPECT_GT(p95_after, p95_before + static_cast<double>(us(700)));
}

TEST(FaultRobustness, FaultInjectedRunsAreDeterministic) {
  auto config = [] {
    ClusterRigConfig cfg = noisy_cluster(LbMode::kInband);
    cfg.duration = sec(2);
    cfg.inject_time = sec(1);
    // Exercise every fault class: noise + a flap + a crash.
    cfg.fault.flaps.push_back(
        {LinkScope::kServerToClient, 1, ms(600), ms(650)});
    cfg.fault.servers.push_back(
        {ServerFaultSpec::Kind::kCrash, 1, ms(300), ms(500)});
    return cfg;
  };
  ClusterRig a{config()};
  a.run();
  ClusterRig b{config()};
  b.run();
  EXPECT_EQ(a.state_digest(), b.state_digest());

  // The digest actually covers the fault schedule: a different fault seed
  // with identical traffic config must change it.
  auto reseeded = config();
  reseeded.fault.seed ^= 0x5eed;
  ClusterRig c{reseeded};
  c.run();
  EXPECT_NE(a.state_digest(), c.state_digest());
}

TEST(FaultRobustness, ServerCrashResetsConnectionsAndRecovers) {
  ClusterRigConfig cfg = noisy_cluster(LbMode::kStaticMaglev);
  cfg.fault = {};  // isolate the crash
  cfg.duration = sec(3);
  cfg.inject_time = sec(10);  // no delay injection
  cfg.fault.servers.push_back(
      {ServerFaultSpec::Kind::kCrash, 0, sec(1), ms(1500)});
  ClusterRig rig{cfg};
  rig.run();

  ASSERT_NE(rig.fault(), nullptr);
  const auto& ev = rig.fault()->events();
  EXPECT_EQ(fault_events_in_window(ev, FaultEvent::Kind::kServerCrash, 0,
                                   kEndOfTime),
            1u);
  EXPECT_EQ(fault_events_in_window(ev, FaultEvent::Kind::kServerRestart, 0,
                                   kEndOfTime),
            1u);

  // The crash was visible to clients...
  std::uint64_t failures = 0;
  for (int c = 0; c < rig.num_clients(); ++c) {
    failures += rig.client(c).connection_failures();
  }
  EXPECT_GT(failures, 0u);
  // ...and the cluster recovered: requests complete well after the restart.
  std::size_t late_completions = 0;
  for (const auto& r : rig.records()) {
    if (r.sent_at > sec(2)) ++late_completions;
  }
  EXPECT_GT(late_completions, 500u);
  EXPECT_GT(rig.server(0).requests_served(), 100u);
}

TEST(FaultRobustness, NoisyRunPassesFullAudit) {
  ClusterRigConfig cfg = noisy_cluster(LbMode::kInband);
  cfg.duration = sec(1);
  cfg.inject_time = sec(10);
  ClusterRig rig{cfg};
  rig.run();
  EXPECT_EQ(rig.run_full_audit(), 0u);
}

// --- controller zoo under faults ---
//
// Every registered control law, not just the paper's α-shift, must stay
// useful when the feedback channel itself is degraded: under the standard 1%
// noise plan each law still migrates load off the slow server, and a server
// stall is detected and survived. Iterating controller_registry() means a
// law added to the zoo is automatically held to this bar.
//
// The zoo rigs warm the laws up past the connection-establishment transient
// (whose timeout storm can otherwise drain healthy servers to zero slots
// before a single real sample exists) and enable the policy's restore drift,
// the documented remedy for the absorbing zero-slots state: a backend with
// no slots gets no traffic, hence no samples, hence — for staleness-gated
// laws — no way back.

ClusterRigConfig zoo_cluster(ControllerKind kind) {
  ClusterRigConfig cfg = noisy_cluster(LbMode::kInband);
  cfg.inband.controller_kind = kind;
  cfg.num_servers = 3;
  cfg.inband.controller.warmup = ms(100);
  cfg.inband.knapsack.warmup = ms(100);
  cfg.inband.gradient.warmup = ms(100);
  cfg.inband.shortest_queue.warmup = ms(100);
  cfg.inband.restore_interval = ms(100);
  return cfg;
}

TEST(FaultRobustness, EveryControllerConvergesUnderNoise) {
  for (const ControllerKind kind : controller_registry()) {
    SCOPED_TRACE(controller_kind_name(kind));
    ClusterRigConfig cfg = zoo_cluster(kind);
    ClusterRig rig{cfg};
    rig.run();

    auto* policy = rig.inband_policy();
    ASSERT_NE(policy, nullptr);
    EXPECT_GT(policy->controller().shifts(), 0u);
    EXPECT_STREQ(policy->controller().name(), controller_kind_name(kind));
    // The victim fell below half its fair share (1/3 of the table) at some
    // point after injection — the law converged despite the noise. The
    // threshold tolerates the weight-vector laws' anti-starvation floor and
    // shortest-queue's oscillation.
    const SimTime drained = share_drained_at(
        rig.share_history(), 0, 1.0 / 6.0, cfg.inject_time);
    EXPECT_NE(drained, kNoTime);
  }
}

TEST(FaultRobustness, EveryControllerSurvivesServerStall) {
  for (const ControllerKind kind : controller_registry()) {
    SCOPED_TRACE(controller_kind_name(kind));
    ClusterRigConfig cfg = zoo_cluster(kind);
    cfg.duration = sec(3);
    cfg.inject_time = sec(10);  // the stall is the only fault of interest
    cfg.fault = {};
    cfg.fault.servers.push_back(
        {ServerFaultSpec::Kind::kStall, 1, sec(1), sec(2)});
    ClusterRig rig{cfg};
    rig.run();

    ASSERT_NE(rig.fault(), nullptr);
    const auto& ev = rig.fault()->events();
    EXPECT_EQ(fault_events_in_window(ev, FaultEvent::Kind::kServerStall, 0,
                                     kEndOfTime),
              1u);
    // The law noticed: the stalled server lost at least half its fair share
    // while frozen.
    const SimTime drained =
        share_drained_at(rig.share_history(), 1, 1.0 / 6.0, sec(1));
    EXPECT_NE(drained, kNoTime);
    EXPECT_LT(drained, sec(2) + ms(500));
    // The cluster survived: traffic kept completing after the stall lifted,
    // and the stalled server came back into rotation.
    std::size_t late_completions = 0;
    for (const auto& r : rig.records()) {
      if (r.sent_at > sec(2)) ++late_completions;
    }
    EXPECT_GT(late_completions, 500u);
    EXPECT_GT(rig.server(1).requests_served(), 100u);
  }
}

TEST(FaultRobustness, ZooRunsUnderNoiseAreDeterministic) {
  // Same-seed reproducibility for a weight-vector law under the full noise
  // plan — the vector-rebuild path through apply_decision is covered by the
  // digest, not just the α-shift slot path.
  auto config = [] {
    ClusterRigConfig cfg = zoo_cluster(ControllerKind::kGradientDescent);
    cfg.duration = sec(2);
    cfg.inject_time = sec(1);
    return cfg;
  };
  ClusterRig a{config()};
  a.run();
  ClusterRig b{config()};
  b.run();
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

// --- backlogged rig under faults ---

TEST(FaultRobustness, BackloggedRigSurvivesNoise) {
  BackloggedRigConfig cfg;
  cfg.duration = ms(800);
  cfg.step_time = ms(400);
  cfg.fault = make_noise_plan(0.01, 0.01, 0.0, us(5));
  BackloggedRig rig{cfg};
  rig.run();
  ASSERT_NE(rig.fault(), nullptr);
  EXPECT_GT(rig.fault()->counters().value("fault.loss"), 10u);
  // The backlogged flow keeps flowing through retransmissions.
  EXPECT_GT(rig.arrivals().size(), 500u);
  EXPECT_GT(rig.ground_truth().size(), 100u);
}

TEST(FaultRobustness, BackloggedNoiseIsDeterministic) {
  BackloggedRigConfig cfg;
  cfg.duration = ms(400);
  cfg.fault = make_noise_plan(0.02, 0.02, 0.005, us(5));
  BackloggedRig a{cfg};
  a.run();
  BackloggedRig b{cfg};
  b.run();
  EXPECT_EQ(a.arrivals(), b.arrivals());
  ASSERT_EQ(a.ground_truth().size(), b.ground_truth().size());
}

}  // namespace
}  // namespace inband
