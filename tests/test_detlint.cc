// Tests for detlint, the determinism-hazard static analyzer (tools/detlint).
//
// Two layers:
//  - engine tests call analyze_source()/harvest_decls() directly and pin
//    rule behavior (true positives, non-triggers, waivers, header imports)
//    down to the finding line;
//  - binary tests shell the built `detlint` executable in --json mode over
//    the fixture corpus (tools/detlint/fixtures) and assert the end-to-end
//    contract: every violating fixture is flagged — including the replica
//    of the PR 2 KvServer pointer-order bug — clean fixtures are silent,
//    waived fixtures exit 0, and exit codes follow the documented scheme.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "rules.h"

namespace {

using detlint::FileReport;
using detlint::Finding;
using detlint::HarvestedDecls;

// ---------------------------------------------------------------------------
// Engine-level tests.
// ---------------------------------------------------------------------------

// Returns the findings matching `rule` (waived or not).
std::vector<Finding> FindingsFor(const FileReport& report,
                                 const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : report.findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

int CountUnwaived(const FileReport& report) {
  int n = 0;
  for (const Finding& f : report.findings) {
    if (!f.waived) ++n;
  }
  return n;
}

TEST(DetlintEngine, FlagsRangeForOverUnorderedMember) {
  const char* src = R"(
#include <unordered_map>
struct S {
  std::unordered_map<int, int> m_;
  int sum() const {
    int n = 0;
    for (const auto& [k, v] : m_) n += v;
    return n;
  }
};
)";
  FileReport r = detlint::analyze_source("x.cc", src, /*control_path=*/false);
  auto hits = FindingsFor(r, "unordered-iter");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 7);
  EXPECT_FALSE(hits[0].waived);
}

TEST(DetlintEngine, FlagsBeginIteratorAndFreeBegin) {
  const char* src = R"(
#include <unordered_set>
std::unordered_set<int> s_;
void f() {
  auto it = s_.begin();
  auto it2 = begin(s_);
  (void)it;
  (void)it2;
}
)";
  FileReport r = detlint::analyze_source("x.cc", src, false);
  EXPECT_EQ(FindingsFor(r, "unordered-iter").size(), 2u);
}

TEST(DetlintEngine, SortedSnapshotHelperCallIsNotFlagged) {
  // The blessed pattern: the unordered container appears only as a call
  // argument inside the range expression, never as the range itself.
  const char* src = R"(
#include <unordered_map>
#include "util/sorted_view.h"
struct S {
  std::unordered_map<int, int> m_;
  int sum() const {
    int n = 0;
    for (const auto* e : sorted_entries(m_)) n += e->second;
    return n;
  }
};
)";
  FileReport r = detlint::analyze_source("x.cc", src, false);
  EXPECT_TRUE(FindingsFor(r, "unordered-iter").empty());
}

TEST(DetlintEngine, LookupsDoNotTriggerIterationRule) {
  const char* src = R"(
#include <unordered_map>
std::unordered_map<int, int> m_;
bool has(int k) { return m_.find(k) != m_.end(); }
int get(int k) { return m_.at(k); }
)";
  FileReport r = detlint::analyze_source("x.cc", src, false);
  EXPECT_TRUE(FindingsFor(r, "unordered-iter").empty());
}

TEST(DetlintEngine, HeaderImportTracksMembersDeclaredElsewhere) {
  // The .cc never declares map_; the harvested header decls carry it.
  HarvestedDecls header = detlint::harvest_decls(R"(
#include <unordered_map>
struct Conntrack {
  std::unordered_map<int, int> map_;
};
)");
  ASSERT_EQ(header.unordered.size(), 1u);
  EXPECT_EQ(header.unordered[0], "map_");

  const char* cc = R"(
void Conntrack_sweep(Conntrack& c);
int sum(const Conntrack& c) {
  int n = 0;
  for (const auto& [k, v] : map_) n += v;
  return n;
}
)";
  FileReport without = detlint::analyze_source("c.cc", cc, false);
  EXPECT_TRUE(FindingsFor(without, "unordered-iter").empty());

  FileReport with = detlint::analyze_source("c.cc", cc, false, &header);
  EXPECT_EQ(FindingsFor(with, "unordered-iter").size(), 1u);
}

TEST(DetlintEngine, LocalOrderedDeclShadowsImportedUnorderedName) {
  HarvestedDecls header = detlint::harvest_decls(R"(
#include <unordered_map>
std::unordered_map<int, int> links_;
)");
  // This file re-declares links_ as an ordered std::map: iterating it is
  // deterministic and must not inherit the imported unordered tag.
  const char* cc = R"(
#include <map>
std::map<int, int> links_;
int sum() {
  int n = 0;
  for (const auto& [k, v] : links_) n += v;
  return n;
}
)";
  FileReport r = detlint::analyze_source("c.cc", cc, false, &header);
  EXPECT_TRUE(FindingsFor(r, "unordered-iter").empty());
}

TEST(DetlintEngine, PointerSortHashAndCastFlagged) {
  const char* src = R"(
#include <algorithm>
#include <cstdint>
#include <vector>
struct B { int id; };
void f(std::vector<B*>& pool) {
  std::sort(pool.begin(), pool.end());
  auto h = std::hash<B*>{}(pool[0]);
  auto a = reinterpret_cast<std::uintptr_t>(pool[0]);
  (void)h;
  (void)a;
}
)";
  FileReport r = detlint::analyze_source("x.cc", src, false);
  EXPECT_EQ(FindingsFor(r, "pointer-order").size(), 3u);
}

TEST(DetlintEngine, PointerSortWithComparatorIsClean) {
  const char* src = R"(
#include <algorithm>
#include <vector>
struct B { int id; };
void f(std::vector<B*>& pool) {
  std::sort(pool.begin(), pool.end(),
            [](const B* a, const B* b) { return a->id < b->id; });
}
)";
  FileReport r = detlint::analyze_source("x.cc", src, false);
  EXPECT_TRUE(FindingsFor(r, "pointer-order").empty());
}

TEST(DetlintEngine, WallClockAndEntropyFlaggedEverywhere) {
  const char* src = R"(
#include <chrono>
#include <cstdlib>
#include <random>
void f() {
  auto t = std::chrono::steady_clock::now();
  int r = std::rand();
  std::random_device rd;
  (void)t; (void)r; (void)rd;
}
)";
  FileReport r = detlint::analyze_source("x.cc", src, /*control_path=*/false);
  EXPECT_EQ(FindingsFor(r, "wall-clock").size(), 3u);
}

TEST(DetlintEngine, FloatEqOnlyFiresOnControlPaths) {
  const char* src = R"(
bool f(double a, double b) { return a == b; }
)";
  FileReport off = detlint::analyze_source("bench/x.cc", src, false);
  EXPECT_TRUE(FindingsFor(off, "float-eq").empty());

  FileReport on = detlint::analyze_source("lb/x.cc", src, true);
  ASSERT_EQ(FindingsFor(on, "float-eq").size(), 1u);
  EXPECT_EQ(FindingsFor(on, "float-eq")[0].line, 2);
}

TEST(DetlintEngine, WaiverOnLineAboveOrSameLineSuppresses) {
  const char* src = R"(
#include <unordered_map>
std::unordered_map<int, int> m_;
int f() {
  int n = 0;
  // detlint:allow(unordered-iter): commutative sum; order-independent
  for (const auto& [k, v] : m_) n += v;
  for (const auto& [k, v] : m_) n += v;  // detlint:allow(unordered-iter): same
  return n;
}
)";
  FileReport r = detlint::analyze_source("x.cc", src, false);
  auto hits = FindingsFor(r, "unordered-iter");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_TRUE(hits[0].waived);
  EXPECT_EQ(hits[0].waiver_reason, "commutative sum; order-independent");
  EXPECT_TRUE(hits[1].waived);
  EXPECT_EQ(CountUnwaived(r), 0);
  EXPECT_TRUE(r.unused_waivers.empty());
}

TEST(DetlintEngine, MalformedAndUnknownWaiversAreFindings) {
  const char* src = R"(
// detlint:allow(unordered-iter)
// detlint:allow(unordered-iter):
// detlint:allow(no-such-rule): reason
int x = 0;
)";
  FileReport r = detlint::analyze_source("x.cc", src, false);
  EXPECT_EQ(FindingsFor(r, "bad-waiver").size(), 3u);
}

TEST(DetlintEngine, UnusedWaiverReported) {
  const char* src = R"(
// detlint:allow(wall-clock): stale
int x = 0;
)";
  FileReport r = detlint::analyze_source("x.cc", src, false);
  ASSERT_EQ(r.unused_waivers.size(), 1u);
  EXPECT_EQ(r.unused_waivers[0].line, 2);
}

// ---------------------------------------------------------------------------
// Binary-level tests: shell `detlint --json` over the fixture corpus.
// ---------------------------------------------------------------------------

struct RunResult {
  int exit_code = -1;
  std::string out;
};

RunResult RunDetlint(const std::string& args) {
  const std::string cmd = std::string(DETLINT_BIN) + " " + args + " 2>&1";
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) r.out.append(buf, n);
  const int status = pclose(pipe);
  r.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string Fixture(const std::string& rel) {
  return std::string(DETLINT_FIXTURES) + "/" + rel;
}

int CountOccurrences(const std::string& hay, const std::string& needle) {
  int count = 0;
  for (size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// Extracts the N from `"<key>": N` in the JSON counts object.
int JsonCount(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t pos = json.rfind(needle);
  if (pos == std::string::npos) return -1;
  return std::atoi(json.c_str() + pos + needle.size());
}

TEST(DetlintBinary, KvServerBugReplicaIsCaught) {
  // The PR 2 bug: KvServer::abort_all_connections iterated the unordered
  // open-connection set directly (abort order = hash-table order), and the
  // half-fix sorted the snapshot by raw pointer value. Both steps must be
  // flagged.
  RunResult r =
      RunDetlint("--json " + Fixture("unordered_iter/kv_server_bug.cc"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("\"line\": 21, \"rule\": \"unordered-iter\""),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("open_conns_"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"rule\": \"pointer-order\""), std::string::npos)
      << r.out;
  EXPECT_EQ(JsonCount(r.out, "unwaived"), 3) << r.out;
}

TEST(DetlintBinary, ViolatingFixturesAreFlaggedPerRule) {
  struct Case {
    const char* path;
    const char* rule;
    int expected;
  };
  const Case cases[] = {
      {"unordered_iter/violate.cc", "unordered-iter", 4},
      {"pointer_order/violate.cc", "pointer-order", 3},
      {"wall_clock/violate.cc", "wall-clock", 5},
      {"lb/float_eq_violate.cc", "float-eq", 3},
      {"bad_waiver/violate.cc", "bad-waiver", 3},
  };
  for (const Case& c : cases) {
    RunResult r = RunDetlint("--json " + Fixture(c.path));
    EXPECT_EQ(r.exit_code, 1) << c.path;
    const std::string tag = std::string("\"rule\": \"") + c.rule + "\"";
    EXPECT_EQ(CountOccurrences(r.out, tag), c.expected)
        << c.path << "\n"
        << r.out;
  }
}

TEST(DetlintBinary, CleanFixturesExitZeroWithNoFindings) {
  const char* clean[] = {
      "unordered_iter/clean.cc",
      "pointer_order/clean.cc",
      "wall_clock/clean.cc",
      "lb/float_eq_clean.cc",
      "float_eq_outside_control_path.cc",
  };
  for (const char* path : clean) {
    RunResult r = RunDetlint("--json " + Fixture(path));
    EXPECT_EQ(r.exit_code, 0) << path << "\n" << r.out;
    EXPECT_EQ(JsonCount(r.out, "unwaived"), 0) << path << "\n" << r.out;
    EXPECT_EQ(JsonCount(r.out, "waived"), 0) << path << "\n" << r.out;
  }
}

TEST(DetlintBinary, WaivedFixturesExitZeroWithWaivedFindings) {
  struct Case {
    const char* path;
    int waived;
  };
  const Case cases[] = {
      {"unordered_iter/waived.cc", 2},
      {"pointer_order/waived.cc", 1},
      {"wall_clock/waived.cc", 2},
      {"lb/float_eq_waived.cc", 1},
  };
  for (const Case& c : cases) {
    RunResult r = RunDetlint("--json " + Fixture(c.path));
    EXPECT_EQ(r.exit_code, 0) << c.path << "\n" << r.out;
    EXPECT_EQ(JsonCount(r.out, "unwaived"), 0) << c.path << "\n" << r.out;
    EXPECT_EQ(JsonCount(r.out, "waived"), c.waived) << c.path << "\n" << r.out;
  }
}

TEST(DetlintBinary, FloatEqControlPathScopingViaDirectoryName) {
  // Scanning the fixtures root applies float-eq only to files whose path
  // contains an lb/ (or core/) component; the identical comparison outside
  // that subtree stays quiet even in the same invocation.
  RunResult r = RunDetlint("--json " + Fixture("lb") + " " +
                           Fixture("float_eq_outside_control_path.cc"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(CountOccurrences(r.out, "\"rule\": \"float-eq\""), 4) << r.out;
  EXPECT_EQ(r.out.find("float_eq_outside_control_path"), std::string::npos)
      << "outside-control-path file must produce no findings: " << r.out;
}

TEST(DetlintBinary, UnusedWaiverSurfacesInJson) {
  RunResult r = RunDetlint("--json " + Fixture("bad_waiver/violate.cc"));
  EXPECT_EQ(JsonCount(r.out, "unused_waivers"), 1) << r.out;
  EXPECT_NE(r.out.find("\"rules\": \"wall-clock\""), std::string::npos)
      << r.out;
}

TEST(DetlintBinary, UsageErrorsExitTwo) {
  EXPECT_EQ(RunDetlint("").exit_code, 2);
  EXPECT_EQ(RunDetlint("--no-such-flag x.cc").exit_code, 2);
}

TEST(DetlintBinary, ListRulesNamesAllFive) {
  RunResult r = RunDetlint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule : {"unordered-iter", "pointer-order", "wall-clock",
                           "float-eq", "bad-waiver"}) {
    EXPECT_NE(r.out.find(rule), std::string::npos) << rule;
  }
}

TEST(DetlintBinary, WholeCorpusSummary) {
  // One invocation over the entire corpus pins the aggregate counts; any
  // new fixture or rule regression shifts these numbers.
  RunResult r = RunDetlint("--json " + std::string(DETLINT_FIXTURES));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(JsonCount(r.out, "unwaived"), 24) << r.out;
  EXPECT_EQ(JsonCount(r.out, "waived"), 6) << r.out;
  EXPECT_EQ(JsonCount(r.out, "files_scanned"), 29) << r.out;
}

}  // namespace
